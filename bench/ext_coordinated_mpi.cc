// Extension bench (the paper's deferred future work): adaptive vs static
// coordinated checkpointing for MPI-style jobs, across rank counts and
// phase stagger.
//
// Expected shape: with aligned ranks, the adaptive decider keeps most of
// its single-process advantage; as the ranks' phases stagger, no moment is
// cheap for everyone and the advantage erodes — quantifying why the paper
// says AIC for MPI "requires tracking similarity degrees of all MPI
// processes" and defers it.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "control/coordinated.h"

using namespace aic;
using control::Scheme;

int main() {
  bench::Session session("ext_coordinated_mpi");
  bench::Checker check;
  const auto benchmark = workload::SpecBenchmark::kMilc;

  auto make_cfg = [&](int procs, double stagger) {
    control::CoordinatedConfig cfg;
    const auto split = model::split_rate(2e-4);  // per-process rate
    cfg.base.system.lambda = {split[0], split[1], split[2]};
    const double scale = bench::smoke_pick(0.125, 0.03125);
    cfg.base.workload_scale = scale;
    const auto prof = workload::spec_profile(benchmark, scale);
    cfg.base.costs =
        control::CostModel::paper_scaled(prof.footprint_pages * kPageSize);
    cfg.processes = procs;
    cfg.stagger_fraction = stagger;
    return cfg;
  };

  TextTable table("Extension — coordinated MPI checkpointing (milc)");
  table.set_header({"ranks", "stagger", "AIC", "SIC", "adaptive gain"});

  double gain_aligned = 0.0, gain_staggered = 0.0;
  double net2_2ranks = 0.0, net2_8ranks = 0.0;
  for (int procs : {2, 4, 8}) {
    for (double stagger : {0.0, 0.5, 1.0}) {
      const auto cfg = make_cfg(procs, stagger);
      const auto aic = run_coordinated(Scheme::kAic, benchmark, cfg);
      const auto sic = run_coordinated(Scheme::kSic, benchmark, cfg);
      const double gain = (sic.net2 - aic.net2) / sic.net2;
      table.add_row({std::to_string(procs), TextTable::num(stagger, 1),
                     TextTable::num(aic.net2, 3),
                     TextTable::num(sic.net2, 3), TextTable::pct(gain, 1)});
      std::string key = "p";
      key += std::to_string(procs);
      key += ".stagger";
      key += TextTable::num(stagger, 1);
      session.sample("net2." + key + ".aic", "net2", aic.net2);
      session.sample("net2." + key + ".sic", "net2", sic.net2);
      session.sample("gain." + key, "ratio", gain, /*higher_is_better=*/true);
      if (procs == 4 && stagger == 0.0) gain_aligned = gain;
      if (procs == 4 && stagger == 1.0) gain_staggered = gain;
      if (procs == 2 && stagger == 0.0) net2_2ranks = aic.net2;
      if (procs == 8 && stagger == 0.0) net2_8ranks = aic.net2;
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  check.expect(net2_8ranks > net2_2ranks,
               "job-level failure rate scales with ranks (8 > 2)");
  check.expect(gain_aligned >= gain_staggered - 0.03,
               "phase stagger erodes the adaptive advantage (why the paper "
               "defers AIC-for-MPI)");
  return session.finish(check);
}
