// Microbenchmarks for the AIC predictor path. The paper claims the
// per-hot-page metric computation (JD + DI) stays below 100 us — measured
// here for real — and that the online decision is cheap enough to run
// every second.
#include <benchmark/benchmark.h>

#include "bench_session_gbench.h"

#include "common/rng.h"
#include "common/units.h"
#include "predictor/metrics.h"
#include "predictor/predictor.h"
#include "predictor/regression.h"

namespace {

using namespace aic;

void BM_JdDiPerPage(benchmark::State& state) {
  Rng rng(1);
  Bytes cur(kPageSize), old(kPageSize);
  for (auto& x : cur) x = std::uint8_t(rng());
  old = cur;
  for (int i = 0; i < 512; ++i) old[rng.uniform_u64(kPageSize)] ^= 0xFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor::jaccard_distance(cur, old));
    benchmark::DoNotOptimize(predictor::divergence_index(cur));
  }
  // The paper's bound: < 100 us per hot page (JD + DI together).
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_JdDiPerPage);

void BM_StepwiseFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  const int n = int(state.range(0));
  for (int i = 0; i < n; ++i) {
    predictor::BaseMetrics m{rng.uniform(0, 1000), rng.uniform(0, 60),
                             rng.uniform(), rng.uniform()};
    auto x = predictor::expand_features(m);
    xs.emplace_back(x.begin(), x.end());
    ys.push_back(3.0 + 0.01 * x[0] + 5.0 * x[2] + 0.1 * rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor::stepwise_fit(xs, ys));
  }
}
BENCHMARK(BM_StepwiseFit)->Arg(4)->Arg(32)->Arg(256);

void BM_OnlineGdUpdate(benchmark::State& state) {
  predictor::LinearModel m;
  m.selected = {0, 2, 9};
  m.weights = {0.0, 0.0, 0.0};
  predictor::OnlineGd gd(m, 0.5);
  Rng rng(3);
  std::vector<double> x(predictor::kCandidateCount, 0.0);
  for (auto _ : state) {
    x[0] = rng.uniform(0, 1000);
    x[2] = rng.uniform();
    x[9] = x[0] * x[2];
    benchmark::DoNotOptimize(gd.update(x, 3.0 + 0.01 * x[0] + 5.0 * x[2]));
  }
}
BENCHMARK(BM_OnlineGdUpdate);

void BM_PredictorObserveAndPredict(benchmark::State& state) {
  predictor::AicPredictor p;
  Rng rng(4);
  for (auto _ : state) {
    predictor::BaseMetrics m{rng.uniform(0, 1000), rng.uniform(0, 60),
                             rng.uniform(), rng.uniform()};
    p.observe(m, 0.01 * m.dirty_pages, m.jd, 100.0 * m.dirty_pages * m.jd);
    benchmark::DoNotOptimize(
        p.predict(predictor::Target::kDeltaSize, m));
  }
}
BENCHMARK(BM_PredictorObserveAndPredict);

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_predictor", argc, argv);
}
