// Fig. 6 reproduction: NET^2 of an RMS application (pF3D-like profile,
// limited inter-process communication) under the concurrent models and
// Moody, across system sizes. RMS scaling (Section III.D): failure rates
// stay flat (processes fail independently) while c3 grows with the shared
// remote-storage congestion.
//
// Paper shape: concurrent models always beat Moody and the improvement gap
// expands as the system scales; L2L3 ~= L1L2L3.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/interval_models.h"
#include "model/moody.h"
#include "model/optimizer.h"

using namespace aic;
using model::LevelCombo;

int main() {
  bench::Session session("fig06_rms_netsq");
  bench::Checker check;
  const std::vector<double> scales = {1, 2, 4, 8, 10, 16, 20};

  TextTable table("Fig. 6 — NET^2 of RMS application vs system size");
  table.set_header({"size", "L1L3", "L2L3", "L1L2L3", "Moody",
                    "L2L3 gain vs Moody"});

  std::map<double, std::map<std::string, double>> results;
  for (double s : scales) {
    const auto sys = model::SystemProfile::coastal().scaled_rms(s);
    auto best = [&](LevelCombo combo) {
      return model::minimize_scalar(
                 [&](double w) { return model::net2_static(combo, sys, w); },
                 1.0, 5e6, 32, 50)
          .value;
    };
    const double l1l3 = best(LevelCombo::kL1L3);
    const double l2l3 = best(LevelCombo::kL2L3);
    const double l1l2l3 = best(LevelCombo::kL1L2L3);
    const auto moody = model::optimize_moody(sys);
    const double gain = (moody.net2 - l2l3) / moody.net2;
    results[s] = {{"L1L3", l1l3},
                  {"L2L3", l2l3},
                  {"L1L2L3", l1l2l3},
                  {"Moody", moody.net2},
                  {"gain", gain}};
    const std::string sz = TextTable::num(s, 0) + "x";
    session.sample("net2.rms." + sz + ".l1l3", "net2", l1l3);
    session.sample("net2.rms." + sz + ".l2l3", "net2", l2l3);
    session.sample("net2.rms." + sz + ".moody", "net2", moody.net2);
    session.sample("gain_vs_moody." + sz, "ratio", gain,
                   /*higher_is_better=*/true);
    table.add_row({TextTable::num(s, 0) + "x", TextTable::num(l1l3, 3),
                   TextTable::num(l2l3, 3), TextTable::num(l1l2l3, 3),
                   TextTable::num(moody.net2, 3), TextTable::pct(gain, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  for (double s : scales) {
    auto& r = results[s];
    check.expect(std::abs(r["L2L3"] - r["L1L2L3"]) < 0.05 * r["L2L3"],
                 "L2L3 ~= L1L2L3 at " + TextTable::num(s, 0) + "x");
    check.expect(r["L2L3"] < r["Moody"],
                 "concurrent beats Moody at " + TextTable::num(s, 0) + "x");
  }
  check.expect(results[20]["gain"] > results[1]["gain"],
               "improvement gap expands with the system size");
  return session.finish(check);
}
