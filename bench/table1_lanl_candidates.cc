// Table 1 reproduction: fraction of candidate jobs (jobs whose every
// process always has one idle core on its node) on the five LANL systems,
// under the production packing scheduler and the rectified scheduler that
// reserves one core per node when available.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "workload/lanl_trace.h"

using namespace aic;

int main() {
  bench::Session session("table1_lanl_candidates");
  bench::Checker check;

  // Paper's reference values for side-by-side comparison.
  struct Ref {
    int id;
    double packed;
    double rectified;
  };
  const Ref refs[] = {
      {15, 0.50, 0.50}, {20, 0.17, 0.32}, {23, 0.77, 0.78},
      {8, 0.47, 0.75},  {16, 0.41, 0.42},
  };

  TextTable table("Table 1 — LANL candidate jobs (synthetic logs)");
  table.set_header({"system", "type", "nodes", "cores/node",
                    "% candidates", "% after rescheduling",
                    "paper", "paper resched"});

  double packed20 = 0.0;
  double min_other_packed = 1.0;
  double gain20 = 0.0, gain8 = 0.0, gain15 = 0.0, gain16 = 0.0;

  for (const Ref& ref : refs) {
    // The per-system candidate study now lives in workload/lanl_trace so
    // the fleet bench draws its job mix from the same generator.
    const auto study = workload::run_candidate_study(ref.id, /*days=*/60);
    const auto& sys = study.system;
    const auto& packed = study.packed;
    const auto& rect = study.rectified;

    table.add_row({std::to_string(sys.system_id), sys.type,
                   std::to_string(sys.nodes),
                   std::to_string(sys.cores_per_node),
                   TextTable::pct(packed.fraction(), 0),
                   TextTable::pct(rect.fraction(), 0),
                   TextTable::pct(ref.packed, 0),
                   TextTable::pct(ref.rectified, 0)});

    std::string id = "sys";
    id += std::to_string(sys.system_id);
    session.sample("candidates." + id + ".packed", "fraction",
                   packed.fraction(), /*higher_is_better=*/true);
    session.sample("candidates." + id + ".rectified", "fraction",
                   rect.fraction(), /*higher_is_better=*/true);

    if (ref.id == 20) {
      packed20 = packed.fraction();
      gain20 = rect.fraction() - packed.fraction();
    } else {
      min_other_packed = std::min(min_other_packed, packed.fraction());
    }
    if (ref.id == 8) gain8 = rect.fraction() - packed.fraction();
    if (ref.id == 15) gain15 = rect.fraction() - packed.fraction();
    if (ref.id == 16) gain16 = rect.fraction() - packed.fraction();
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  check.expect(packed20 < min_other_packed,
               "System 20 has the fewest candidates under the production "
               "scheduler");
  check.expect(gain20 > 0.10 && gain8 > 0.15,
               "rectified scheduling recovers the small-core clusters "
               "(systems 20 and 8)");
  check.expect(gain15 < 0.02 && gain16 < 0.08,
               "rectified scheduling barely moves systems 15 and 16");
  return session.finish(check);
}
