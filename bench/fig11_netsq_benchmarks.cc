// Fig. 11 reproduction: NET^2 of the six SPEC benchmarks under AIC, SIC
// and Moody on the Section-V testbed (failure rate 1e-3 with Coastal
// shares, Coastal bandwidths scaled to footprint, SF = 1).
//
// Paper shape: the concurrent schemes (AIC, SIC) beat Moody markedly on
// every benchmark; AIC <= SIC everywhere, with the largest gaps on the
// big-delta benchmarks (milc, lbm) and the smallest on sphinx3.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "control/experiment.h"

using namespace aic;
using control::Scheme;

int main() {
  bench::Session session("fig11_netsq_benchmarks");
  bench::Checker check;
  const double kScale = bench::smoke_pick(0.25, 0.0625);

  TextTable table("Fig. 11 — NET^2 of six benchmarks under AIC / SIC / Moody");
  table.set_header({"benchmark", "AIC", "SIC", "Moody", "AIC ckpts",
                    "AIC vs SIC", "AIC vs Moody"});

  std::map<workload::SpecBenchmark, std::map<std::string, double>> results;
  for (auto b : workload::all_benchmarks()) {
    const auto cfg = bench::testbed_config(b, kScale);
    const auto aic = run_experiment(Scheme::kAic, b, cfg);
    const auto sic = run_experiment(Scheme::kSic, b, cfg);
    const auto moody = run_experiment(Scheme::kMoody, b, cfg);
    const double vs_sic = (sic.net2 - aic.net2) / sic.net2;
    const double vs_moody = (moody.net2 - aic.net2) / moody.net2;
    results[b] = {{"aic", aic.net2},
                  {"sic", sic.net2},
                  {"moody", moody.net2},
                  {"vs_sic", vs_sic}};
    const std::string bn = to_string(b);
    session.metric("net2." + bn + ".aic", "net2").params["workload_scale"] =
        kScale;
    session.sample("net2." + bn + ".aic", "net2", aic.net2);
    session.sample("net2." + bn + ".sic", "net2", sic.net2);
    session.sample("net2." + bn + ".moody", "net2", moody.net2);
    session.sample("gain_vs_sic." + bn, "ratio", vs_sic,
                   /*higher_is_better=*/true);
    table.add_row({aic.workload, TextTable::num(aic.net2, 3),
                   TextTable::num(sic.net2, 3), TextTable::num(moody.net2, 3),
                   std::to_string(aic.intervals.size()),
                   TextTable::pct(vs_sic, 1), TextTable::pct(vs_moody, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  for (auto b : workload::all_benchmarks()) {
    auto& r = results[b];
    check.expect(r["aic"] < r["moody"] && r["sic"] < r["moody"],
                 std::string(to_string(b)) +
                     ": concurrent schemes beat Moody");
    check.expect(r["aic"] <= r["sic"] * 1.02,
                 std::string(to_string(b)) + ": AIC <= SIC (2% slack)");
  }
  const double milc_gap =
      results[workload::SpecBenchmark::kMilc]["vs_sic"];
  const double lbm_gap = results[workload::SpecBenchmark::kLbm]["vs_sic"];
  const double sphinx_gap =
      results[workload::SpecBenchmark::kSphinx3]["vs_sic"];
  check.expect(milc_gap > 0.05 && lbm_gap > 0.03,
               "largest AIC gains on milc and lbm (paper: gap larger for "
               "applications with higher NET^2)");
  check.expect(sphinx_gap < milc_gap,
               "sphinx3 benefits least from adaptivity (tiny deltas)");
  return session.finish(check);
}
