// Table 3 reproduction: per-benchmark base execution time, compression
// ratio and delta latency of the conventional whole-file Xdelta3 vs the
// page-aligned Xdelta3-PA (plus the XOR+RLE baseline from the related
// work), and AIC's failure-free execution-time overhead.
//
// Paper shape: Xdelta3 and Xdelta3-PA land close to each other per
// benchmark; the benchmark ordering of ratios holds (sphinx3 smallest,
// lbm/milc worst); AIC overhead stays in the low single digits (paper:
// 0.7% .. 2.6%).
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "control/experiment.h"
#include "delta/page_delta.h"
#include "delta/xor_delta.h"
#include "mem/snapshot.h"

using namespace aic;

namespace {

struct CompressorResult {
  double ratio_pa = 0.0;
  double ratio_whole = 0.0;
  double ratio_xor = 0.0;
  double ratio_cdelta = 0.0;
  double latency_pa = 0.0;
  double latency_whole = 0.0;
  double latency_cdelta = 0.0;
};

/// Runs SIC-style periodic checkpoints and compresses each interval's
/// dirty pages with all four compressors.
CompressorResult compare_compressors(workload::SpecBenchmark b, double scale,
                                     double interval,
                                     const control::CostModel& costs) {
  auto wl = workload::make_spec_workload(b, scale);
  mem::AddressSpace space;
  wl->initialize(space);
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();

  delta::PageAlignedCompressor pa;
  delta::PageAlignedCompressor cdelta({}, /*correcting=*/true);
  delta::WholeFileCompressor whole;
  delta::XorDeltaCodec xr;

  double in_bytes = 0, pa_bytes = 0, whole_bytes = 0, xor_bytes = 0;
  double cdelta_bytes = 0;
  double pa_work = 0, whole_work = 0, cdelta_work = 0;
  const int checkpoints = std::min(10, int(wl->base_time() / interval));
  for (int i = 0; i < checkpoints; ++i) {
    wl->step(space, interval);
    std::vector<delta::DirtyPage> dirty;
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});

    const auto pa_res = pa.compress(dirty, prev);
    const auto cdelta_res = cdelta.compress(dirty, prev);
    const auto whole_res = whole.compress(dirty, prev);
    // XOR baseline works page-aligned too (the classic scheme of [19]).
    double xor_out = 0;
    for (const auto& page : dirty) {
      delta::CodecStats st;
      if (prev.contains(page.id)) {
        (void)xr.encode(prev.page_bytes(page.id), page.bytes, &st);
        xor_out += double(std::min<std::uint64_t>(st.output_bytes,
                                                  kPageSize));
      } else {
        xor_out += double(kPageSize);
      }
    }

    in_bytes += double(pa_res.stats.input_bytes);
    pa_bytes += double(pa_res.stats.output_bytes);
    cdelta_bytes += double(cdelta_res.stats.output_bytes);
    whole_bytes += double(whole_res.stats.output_bytes);
    xor_bytes += xor_out;
    pa_work += double(pa_res.stats.work_units);
    cdelta_work += double(cdelta_res.stats.work_units);
    whole_work += double(whole_res.stats.work_units);

    prev = mem::Snapshot::capture(space);
    space.protect_all();
  }
  CompressorResult r;
  r.ratio_pa = pa_bytes / in_bytes;
  r.ratio_whole = whole_bytes / in_bytes;
  r.ratio_xor = xor_bytes / in_bytes;
  r.ratio_cdelta = cdelta_bytes / in_bytes;
  r.latency_pa = pa_work / costs.compress_bps / checkpoints;
  r.latency_whole = whole_work / costs.compress_bps / checkpoints;
  r.latency_cdelta = cdelta_work / costs.compress_bps / checkpoints;
  return r;
}

struct MovedBlockResult {
  double ratio_pa = 0.0;
  double ratio_cdelta = 0.0;
  double latency_pa = 0.0;
  double latency_cdelta = 0.0;
  std::uint64_t pages_moved = 0;
};

/// The workload the correcting coder exists for (ISSUE 6): a checkpoint
/// interval dominated by data motion rather than in-place edits — a band
/// of whole-page moves (pages shifted by a few ids, as when a buffer pool
/// or arena compacts) plus sub-page memmove churn with small edits.
/// Latency uses deterministic codec work units through the same cost
/// model as the rest of the table, so the strictly-better-ratio /
/// equal-or-lower-latency gate is reproducible.
MovedBlockResult moved_block_scenario(const control::CostModel& costs) {
  Rng rng(0x6D0);
  const std::size_t pages = 128;
  mem::AddressSpace space;
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  // Pages 8..72: whole-page moves (page id takes page id-3's old image).
  for (mem::PageId id = 8; id < 72; ++id) {
    Bytes img(prev.page_bytes(id - 3).begin(), prev.page_bytes(id - 3).end());
    space.write(id, 0, img);
  }
  // Pages 72..128: in-page memmove by an unaligned distance + a small edit.
  for (mem::PageId id = 72; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      std::memmove(b.data() + 37, b.data(), b.size() - 37);
      b[rng.uniform_u64(b.size())] = std::uint8_t(rng());
    });
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});

  delta::PageAlignedCompressor pa;
  delta::PageAlignedCompressor cdelta({}, /*correcting=*/true);
  const auto pa_res = pa.compress(dirty, prev);
  const auto cdelta_res = cdelta.compress(dirty, prev);

  MovedBlockResult r;
  r.ratio_pa =
      double(pa_res.stats.output_bytes) / double(pa_res.stats.input_bytes);
  r.ratio_cdelta = double(cdelta_res.stats.output_bytes) /
                   double(cdelta_res.stats.input_bytes);
  r.latency_pa = double(pa_res.stats.work_units) / costs.compress_bps;
  r.latency_cdelta =
      double(cdelta_res.stats.work_units) / costs.compress_bps;
  r.pages_moved = cdelta_res.pages_moved;
  return r;
}

}  // namespace

int main() {
  bench::Session session("table3_compressors");
  bench::Checker check;
  const double kScale = bench::smoke_pick(0.25, 0.0625);

  TextTable table(
      "Table 3 — compressors (ratio = compressed/uncompressed, latency = "
      "mean delta latency per checkpoint) and AIC overhead");
  table.set_header({"benchmark", "base t(s)", "Xdelta3 ratio",
                    "Xdelta3-PA ratio", "cdelta ratio", "XOR ratio",
                    "Xdelta3 lat(s)", "PA lat(s)", "cdelta lat(s)",
                    "AIC exec(s)", "AIC overhead"});

  double max_overhead = 0.0;
  double sphinx_pa = 1.0, lbm_pa = 0.0, milc_pa = 0.0;
  double worst_gap = 0.0;
  for (auto b : workload::all_benchmarks()) {
    const auto cfg = bench::testbed_config(b, kScale);
    const auto comp = compare_compressors(b, kScale, 10.0, cfg.costs);
    const auto aic = control::run_experiment(control::Scheme::kAic, b, cfg);

    table.add_row({aic.workload, TextTable::num(aic.base_time, 0),
                   TextTable::num(comp.ratio_whole, 2),
                   TextTable::num(comp.ratio_pa, 2),
                   TextTable::num(comp.ratio_cdelta, 2),
                   TextTable::num(comp.ratio_xor, 2),
                   TextTable::num(comp.latency_whole, 1),
                   TextTable::num(comp.latency_pa, 1),
                   TextTable::num(comp.latency_cdelta, 1),
                   TextTable::num(aic.exec_time, 0),
                   TextTable::pct(aic.overhead_fraction(), 1)});

    const std::string bn = to_string(b);
    session.sample("ratio." + bn + ".pa", "ratio", comp.ratio_pa);
    session.sample("ratio." + bn + ".whole", "ratio", comp.ratio_whole);
    session.sample("ratio." + bn + ".xor", "ratio", comp.ratio_xor);
    session.sample("ratio." + bn + ".cdelta", "ratio", comp.ratio_cdelta);
    session.sample("latency." + bn + ".pa", "s", comp.latency_pa);
    session.sample("latency." + bn + ".cdelta", "s", comp.latency_cdelta);
    session.sample("overhead." + bn, "fraction", aic.overhead_fraction());

    max_overhead = std::max(max_overhead, aic.overhead_fraction());
    worst_gap = std::max(worst_gap,
                         std::abs(comp.ratio_pa - comp.ratio_whole));
    if (b == workload::SpecBenchmark::kSphinx3) sphinx_pa = comp.ratio_pa;
    if (b == workload::SpecBenchmark::kLbm) lbm_pa = comp.ratio_pa;
    if (b == workload::SpecBenchmark::kMilc) milc_pa = comp.ratio_pa;
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  check.expect(max_overhead < 0.05,
               "AIC failure-free overhead stays in low single digits "
               "(paper: 0.7% .. 2.6%)");
  check.expect(sphinx_pa < 0.5, "sphinx3 compresses best (paper PA: 0.27)");
  // Absolute ratios depend on where checkpoints land relative to the
  // consolidation phases (see EXPERIMENTS.md); the benchmark ORDERING is
  // the reproducible shape: lbm and milc compress worst, sphinx3 best.
  check.expect(lbm_pa > 0.4 && milc_pa > 0.4 && lbm_pa > 2.0 * sphinx_pa &&
                   milc_pa > 2.0 * sphinx_pa,
               "lbm/milc compress worst of the six (paper PA: 0.90 / 0.79)");
  check.expect(worst_gap < 0.35,
               "Xdelta3 and Xdelta3-PA land in the same ballpark per "
               "benchmark");

  // The correcting coder's acceptance gate (ISSUE 6): on a moved-block
  // interval it must deliver a strictly better ratio at equal-or-lower
  // deterministic encode latency than the greedy page coder.
  {
    const auto cfg = bench::testbed_config(workload::SpecBenchmark::kMilc,
                                           kScale);
    const MovedBlockResult moved = moved_block_scenario(cfg.costs);
    TextTable mt("Moved-block interval — greedy Xdelta3-PA vs the "
                 "correcting coder (cdelta)");
    mt.set_header({"compressor", "ratio", "latency(s)", "pages moved"});
    mt.add_row({"Xdelta3-PA", TextTable::num(moved.ratio_pa, 3),
                TextTable::num(moved.latency_pa, 2), "0"});
    mt.add_row({"cdelta", TextTable::num(moved.ratio_cdelta, 3),
                TextTable::num(moved.latency_cdelta, 2),
                std::to_string(moved.pages_moved)});
    mt.print(std::cout);
    mt.print_csv(std::cout);

    session.sample("moved.ratio.pa", "ratio", moved.ratio_pa);
    session.sample("moved.ratio.cdelta", "ratio", moved.ratio_cdelta);
    session.sample("moved.latency.pa", "s", moved.latency_pa);
    session.sample("moved.latency.cdelta", "s", moved.latency_cdelta);
    // "active" = whatever coder ships as the delta engine. The recorded
    // baselines carry the greedy coder's numbers here (the seed's active
    // engine), so aic_benchdiff shows the correcting coder's moved-block
    // win as a tracked improvement and gates any future backslide.
    session.sample("moved.ratio.active", "ratio", moved.ratio_cdelta);
    session.sample("moved.latency.active", "s", moved.latency_cdelta);

    check.expect(moved.ratio_cdelta < moved.ratio_pa,
                 "correcting coder strictly better ratio on the "
                 "moved-block workload");
    check.expect(moved.latency_cdelta <= moved.latency_pa,
                 "correcting coder at equal-or-lower encode latency "
                 "(deterministic work units)");
    check.expect(moved.pages_moved > 0,
                 "whole-page moves detected as cdelta records");
  }
  return session.finish(check);
}
