// Fig. 2 reproduction: normalized delta latency and delta size of Sjeng,
// Lbm and Bzip2 when the second (incremental) checkpoint is taken at
// different points of time over a 60-second window after the first full
// checkpoint. The paper's headline observation: wide swings — Sjeng's
// delta drops by ~95% between its worst and best checkpoint moments.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "control/cost_model.h"
#include "delta/page_delta.h"
#include "mem/snapshot.h"

using namespace aic;

namespace {

struct Series {
  std::vector<double> latency;  // seconds (modeled from work units)
  std::vector<double> size;     // bytes
};

Series sweep(workload::SpecBenchmark b, double scale, int seconds) {
  auto wl = workload::make_spec_workload(b, scale);
  mem::AddressSpace space;
  wl->initialize(space);
  const mem::Snapshot first = mem::Snapshot::capture(space);
  space.protect_all();

  const auto costs = control::CostModel::paper_scaled(
      workload::spec_profile(b, scale).footprint_pages * kPageSize);
  delta::PageAlignedCompressor pa;

  Series out;
  for (int t = 1; t <= seconds; ++t) {
    wl->step(space, 1.0);
    std::vector<delta::DirtyPage> dirty;
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});
    const auto res = pa.compress(dirty, first);
    // Delta latency: read two checkpoints + compress + write back, modeled
    // from the deterministic work units (Section II.B measures it the same
    // way on their disk).
    out.latency.push_back(double(res.stats.work_units) / costs.compress_bps);
    out.size.push_back(double(res.stats.output_bytes));
  }
  return out;
}

}  // namespace

int main() {
  bench::Session session("fig02_delta_swings");
  bench::Checker check;
  const int kSeconds = bench::smoke_pick(60, 12);
  const double kScale = bench::smoke_pick(0.25, 0.0625);
  const std::vector<workload::SpecBenchmark> benches = {
      workload::SpecBenchmark::kSjeng, workload::SpecBenchmark::kLbm,
      workload::SpecBenchmark::kBzip2};

  std::map<workload::SpecBenchmark, Series> series;
  for (auto b : benches) series[b] = sweep(b, kScale, kSeconds);

  TextTable table(
      "Fig. 2 — normalized delta latency / size vs checkpoint time (60 s "
      "window, second checkpoint against the initial full one)");
  table.set_header({"t(s)", "sjeng lat", "sjeng size", "lbm lat", "lbm size",
                    "bzip2 lat", "bzip2 size"});
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / double(v.size());
  };
  std::map<workload::SpecBenchmark, std::pair<double, double>> means;
  for (auto b : benches)
    means[b] = {mean(series[b].latency), mean(series[b].size)};

  for (int t = 0; t < kSeconds; ++t) {
    auto norm = [&](workload::SpecBenchmark b, bool lat) {
      const auto& s = series[b];
      const auto& m = means[b];
      return lat ? s.latency[std::size_t(t)] / m.first
                 : s.size[std::size_t(t)] / m.second;
    };
    table.add_row({std::to_string(t + 1),
                   TextTable::num(norm(benches[0], true), 2),
                   TextTable::num(norm(benches[0], false), 2),
                   TextTable::num(norm(benches[1], true), 2),
                   TextTable::num(norm(benches[1], false), 2),
                   TextTable::num(norm(benches[2], true), 2),
                   TextTable::num(norm(benches[2], false), 2)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  // Shape checks: swings exist; sjeng's valley is a deep drop from its
  // local peak (the paper reports a 95% decrease within three seconds).
  for (auto b : benches) {
    const auto& s = series[b].size;
    double lo = s[0], hi = s[0];
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double swing = hi / std::max(lo, 1.0);
    std::printf("%s: min %.0f B, max %.0f B, swing %.1fx\n",
                to_string(b), lo, hi, swing);
    const std::string bn = to_string(b);
    session.sample("delta_size_mean." + bn, "B", means[b].second);
    session.sample("delta_latency_mean." + bn, "s", means[b].first);
    session.sample("swing." + bn, "ratio", swing, /*higher_is_better=*/true);
    if (b == workload::SpecBenchmark::kSjeng) {
      check.expect(swing > 5.0, "sjeng shows wide delta-size swings (>5x)");
      // Deep short-window drop: some t where size(t+3) < 0.3 * size(t).
      bool deep_drop = false;
      for (std::size_t i = 0; i + 3 < s.size(); ++i)
        if (s[i + 3] < 0.3 * s[i]) deep_drop = true;
      check.expect(deep_drop,
                   "sjeng drops >70% within a 3-second shift of the "
                   "checkpoint time (paper: 95% between 32 s and 35 s)");
    }
    if (b == workload::SpecBenchmark::kLbm) {
      check.expect(swing > 1.5, "lbm still swings, though shallower");
    }
  }
  return session.finish(check);
}
