// Elastic-resize bench: an elastic job grows 4x mid-run (failure exposure
// and capture costs re-derived at the new width) and the question is
// whether re-planning w_L* at the reconfiguration pays. Two policies run
// the same seeds through the analytic failure simulator:
//
//   replan  — the AIC decider re-runs the EVT minimization of the
//             adaptive NET^2 objective at every resize;
//   static  — the ablation: the pre-resize work span is kept for the
//             whole run.
//
// The span is deliberately provisioned for the NARROW width, so after the
// grow the static policy checkpoints far too sparsely for the scaled-up
// strike rate: its wasted time (turnaround - base_time) should exceed the
// re-planner's. Every run must still recover byte-exact, and the timeline
// must be deterministic per seed — the same contracts the unit suite
// pins, re-checked here at bench scale. A third leg enables the rewind
// window (budget k) and checks pruning never breaks recovery.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "failure/failure.h"
#include "obs/clock.h"
#include "sim/failure_sim.h"
#include "workload/workload.h"

using namespace aic;

namespace {

sim::FailureSimConfig elastic_config(std::uint64_t seed, bool replan) {
  sim::FailureSimConfig cfg;
  cfg.benchmark = workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = bench::smoke_pick(0.25, 0.125);
  // Sparse static span, tuned (loosely) for the pre-resize width: the
  // grow at a third of the run scales lambda with the width and leaves
  // the no-replan ablation exposed for the remaining two thirds. Smoke
  // softens the grow (2x, lower strike rate) — the static ablation's
  // thrashing is exactly what makes the full run expensive.
  cfg.failures =
      failure::FailureSpec::from_total(bench::smoke_pick(0.03, 0.02));
  cfg.checkpoint_interval = 40.0;
  cfg.base_cores = 4;
  cfg.resizes = {{50.0, bench::smoke_pick<std::uint64_t>(16, 8)}};
  cfg.replan_on_resize = replan;
  cfg.seed = seed;
  return cfg;
}

struct PolicyAgg {
  double wasted_sum = 0.0;
  double net2_sum = 0.0;
  double interval_sum = 0.0;
  int runs = 0;
  int verified = 0;
  int resizes = 0;
  int replans = 0;

  void add(const sim::FailureSimResult& r) {
    wasted_sum += r.turnaround - r.base_time;
    net2_sum += r.net2();
    interval_sum += r.final_checkpoint_interval;
    ++runs;
    verified += r.final_state_verified ? 1 : 0;
    resizes += r.resizes_applied;
    replans += r.replans;
  }
  double mean_wasted() const { return wasted_sum / double(runs); }
  double mean_net2() const { return net2_sum / double(runs); }
  double mean_interval() const { return interval_sum / double(runs); }
};

}  // namespace

int main() {
  bench::Session session("elastic_resize");
  bench::Checker check;

  const int seeds = bench::smoke_pick(20, 5);

  // Determinism spot-check before anything else: one seed, two runs.
  {
    const sim::FailureSimResult a = run_failure_sim(elastic_config(1, true));
    const sim::FailureSimResult b = run_failure_sim(elastic_config(1, true));
    check.expect(a.turnaround == b.turnaround &&
                     a.checkpoints == b.checkpoints &&
                     a.replans == b.replans,
                 "elastic sim timeline is deterministic per seed");
  }

  PolicyAgg replan, fixed;
  const std::uint64_t t0 = obs::wall_now_ns();
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 100 + std::uint64_t(s);
    const sim::FailureSimResult on =
        run_failure_sim(elastic_config(seed, true));
    const sim::FailureSimResult off =
        run_failure_sim(elastic_config(seed, false));
    replan.add(on);
    fixed.add(off);
    session.sample("elastic.replan.wasted_s", "s",
                   on.turnaround - on.base_time);
    session.sample("elastic.static.wasted_s", "s",
                   off.turnaround - off.base_time);
  }
  const double wall_s = obs::wall_seconds_since(t0);

  session.sample("elastic.replan.net2", "net2", replan.mean_net2());
  session.sample("elastic.static.net2", "net2", fixed.mean_net2());
  session.sample("elastic.replan.interval_s", "s", replan.mean_interval());

  TextTable table("Elastic grow (4x): replanned vs static work span");
  table.set_header({"policy", "mean wasted s", "mean NET^2",
                    "mean final w s", "resizes", "replans"});
  table.add_row({"replan", TextTable::num(replan.mean_wasted(), 2),
                 TextTable::num(replan.mean_net2(), 3),
                 TextTable::num(replan.mean_interval(), 1),
                 std::to_string(replan.resizes),
                 std::to_string(replan.replans)});
  table.add_row({"static", TextTable::num(fixed.mean_wasted(), 2),
                 TextTable::num(fixed.mean_net2(), 3),
                 TextTable::num(fixed.mean_interval(), 1),
                 std::to_string(fixed.resizes),
                 std::to_string(fixed.replans)});
  table.print(std::cout);
  table.print_csv(std::cout);
  std::cout << "(" << seeds << " seeds per policy, " << wall_s
            << " s wall)\n";

  check.expect(replan.verified == replan.runs && fixed.verified == fixed.runs,
               "every run recovers byte-exact across the resize");
  check.expect(replan.resizes >= replan.runs && fixed.resizes >= fixed.runs,
               "every run applies the reconfiguration");
  check.expect(replan.replans >= replan.resizes,
               "the replanner re-decides w_L* at every resize");
  check.expect(fixed.replans == 0, "the ablation never re-plans");
  check.expect(replan.mean_interval() < elastic_config(0, true)
                                            .checkpoint_interval,
               "post-grow replan tightens the work span below the static "
               "setting");
  check.expect(replan.mean_wasted() < fixed.mean_wasted(),
               "replanning beats the static span on mean wasted time");

  // Rewind-window leg: a budget of 4 live checkpoints must prune on these
  // runs and recovery must survive every discard schedule decision.
  {
    sim::FailureSimConfig cfg = elastic_config(7, true);
    cfg.rewind_budget = 4;
    const sim::FailureSimResult r = run_failure_sim(cfg);
    session.sample("elastic.rewind.pruned", "count",
                   double(r.checkpoints_pruned));
    check.expect(r.final_state_verified,
                 "rewind budget 4: recovery survives pruning");
    check.expect(r.checkpoints_pruned > 0,
                 "rewind budget 4: the schedule actually prunes");
  }

  return session.finish(check);
}
