// Validation harness (beyond the paper): the analytic Markov models versus
// Monte-Carlo simulation.
//
//  (a) The L2L3 interval chain vs 50k stochastic walks of the same graph.
//  (b) The chain vs an independently hand-coded event-level simulation of
//      the protocol.
//  (c) The full-stack failure simulator (real checkpoints, real restores,
//      byte-exact verification) vs the per-interval model's NET^2.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "model/interval_models.h"
#include "sim/chain_sim.h"
#include "sim/failure_sim.h"

using namespace aic;

int main() {
  bench::Session session("model_vs_simulation");
  bench::Checker check;

  auto sys = model::SystemProfile::coastal();
  sys.lambda = {5e-5, 4.5e-4, 1e-4};

  TextTable table("Model vs simulation — expected L2L3 interval time");
  table.set_header({"w (s)", "analytic", "MC walk", "event sim",
                    "MC 95% CI"});
  for (double w : {1500.0, 3000.0, 6000.0}) {
    const auto p = model::IntervalParams::from_profile(sys);
    model::MarkovChain::StateId start;
    auto chain = model::make_l2l3_chain(sys, w, p, p, &start);
    const double analytic = chain.expected_time(start);
    auto walk = sim::simulate_chain(chain, start, 50000, Rng(1));
    auto event = sim::simulate_l2l3_interval(sys, w, 50000, Rng(2));
    table.add_row({TextTable::num(w, 0), TextTable::num(analytic, 1),
                   TextTable::num(walk.mean(), 1),
                   TextTable::num(event.mean(), 1),
                   "+/- " + TextTable::num(walk.ci95_halfwidth(), 1)});
    std::string wk = "w";
    wk += TextTable::num(w, 0);
    session.sample("interval_s." + wk + ".analytic", "s", analytic);
    session.sample("interval_s." + wk + ".mc_walk", "s", walk.mean());
    session.sample("interval_s." + wk + ".event_sim", "s", event.mean());
    check.expect(std::abs(walk.mean() - analytic) <
                     4.0 * walk.ci95_halfwidth(),
                 "MC walk matches solver at w=" + TextTable::num(w, 0));
    check.expect(std::abs(event.mean() - analytic) <
                     4.0 * event.ci95_halfwidth(),
                 "independent event sim matches solver at w=" +
                     TextTable::num(w, 0));
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  // Full-stack: many seeds of the failure simulator on bzip2.
  TextTable fs("Full-stack failure injection (bzip2, rate 0.02/s)");
  fs.set_header({"seed", "turnaround", "NET^2", "failures", "restores",
                 "verified"});
  RunningStats net2s;
  bool all_verified = true;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::FailureSimConfig cfg;
    cfg.benchmark = workload::SpecBenchmark::kBzip2;
    cfg.workload_scale = 0.125;
    cfg.failures = failure::FailureSpec::from_total(0.02);
    cfg.checkpoint_interval = 10.0;
    cfg.seed = seed;
    const auto res = sim::run_failure_sim(cfg);
    net2s.add(res.net2());
    // Repeated-sample metric: one observation per seed, so benchdiff can
    // judge this one against real run-to-run noise.
    session.metric("net2.fullstack.bzip2", "net2").samples.push_back(
        res.net2());
    all_verified = all_verified && res.final_state_verified;
    fs.add_row({std::to_string(seed), TextTable::num(res.turnaround, 1),
                TextTable::num(res.net2(), 3),
                std::to_string(res.total_failures()),
                std::to_string(res.restores),
                res.final_state_verified ? "yes" : "NO"});
  }
  fs.print(std::cout);
  fs.print_csv(std::cout);
  std::printf("mean NET^2 over seeds: %.3f +/- %.3f\n", net2s.mean(),
              net2s.ci95_halfwidth());
  check.expect(all_verified,
               "every failure-injected run recovered byte-exact state");
  check.expect(net2s.mean() > 1.0,
               "failures cost turnaround (NET^2 > 1)");
  return session.finish(check);
}
