// Ablation: which pieces of the AIC decider matter?
//
// Compares, on the two benchmarks with the widest delta swings (milc,
// sjeng):
//   SIC          — static interval from the profiled L2L3 optimum,
//   AIC          — the full adaptive decider (span + dip gating),
//   AIC@2s/@5s   — coarser decision periods (the paper argues for
//                  per-second granularity).
// Shape expectations: the full AIC beats SIC; coarser decision periods
// erode the gain (the dips are seconds wide).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "control/experiment.h"

using namespace aic;
using control::Scheme;

int main() {
  bench::Session session("ablation_decider");
  bench::Checker check;
  const double kScale = bench::smoke_pick(0.25, 0.0625);

  TextTable table("Ablation — decider variants (NET^2; lower is better)");
  table.set_header({"benchmark", "SIC", "AIC (1s)", "AIC (2s)", "AIC (5s)"});

  for (auto b :
       {workload::SpecBenchmark::kMilc, workload::SpecBenchmark::kSjeng}) {
    auto cfg = bench::testbed_config(b, kScale);
    const auto sic = run_experiment(Scheme::kSic, b, cfg);
    const auto aic1 = run_experiment(Scheme::kAic, b, cfg);
    cfg.decision_period = 2.0;
    const auto aic2 = run_experiment(Scheme::kAic, b, cfg);
    cfg.decision_period = 5.0;
    const auto aic5 = run_experiment(Scheme::kAic, b, cfg);

    table.add_row({aic1.workload, TextTable::num(sic.net2, 3),
                   TextTable::num(aic1.net2, 3), TextTable::num(aic2.net2, 3),
                   TextTable::num(aic5.net2, 3)});

    const std::string bn = to_string(b);
    session.sample("net2." + bn + ".sic", "net2", sic.net2);
    session.sample("net2." + bn + ".aic_1s", "net2", aic1.net2);
    session.sample("net2." + bn + ".aic_2s", "net2", aic2.net2);
    session.sample("net2." + bn + ".aic_5s", "net2", aic5.net2);

    check.expect(aic1.net2 <= sic.net2,
                 std::string(to_string(b)) + ": full AIC beats SIC");
    check.expect(aic1.net2 <= aic5.net2 * 1.05,
                 std::string(to_string(b)) +
                     ": per-second decisions are not worse than 5 s ones");
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  return session.finish(check);
}
