// Session adapter for the google-benchmark targets (micro_*): a reporter
// that mirrors every iteration run into a bench::Session metric, so the
// micro benches emit the same BENCH_<target>.json as the table/figure
// benches and aic_benchdiff can track them too. Kept out of bench_util.h
// so the non-micro benches don't take the benchmark dependency.
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"

namespace aic::bench {

/// ConsoleReporter that also records each per-iteration run (seconds per
/// iteration, real time) under the benchmark's full name, plus every
/// user counter as "<name>.<counter>" — that is how ratio and peak-memory
/// metrics become diffable alongside the timings. Aggregate rows and
/// errored runs are passed through to the console but not recorded.
class SessionReporter : public benchmark::ConsoleReporter {
 public:
  explicit SessionReporter(Session* session) : session_(session) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations <= 0) {
        continue;
      }
      session_->sample(run.benchmark_name(), "s/iter",
                       run.real_accumulated_time / double(run.iterations));
      for (const auto& [cname, counter] : run.counters) {
        // Counters follow the session default: lower is better (ratios,
        // peak bytes). Constant config counters (e.g. "workers") diff as
        // neutral.
        session_->sample(run.benchmark_name() + "." + cname, "counter",
                         double(counter.value));
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  Session* session_;
};

/// Shared main for the micro benches: google-benchmark under a
/// SessionReporter, then the usual bench-record emission. Replaces
/// BENCHMARK_MAIN().
inline int run_gbench_main(const char* target, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Session session(target);
  SessionReporter reporter(&session);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const Checker no_checks;
  return session.finish(no_checks);
}

}  // namespace aic::bench
