// Microbenchmarks for the analytic machinery: Markov-chain solves, the
// offline optimizer, and AIC's per-decision online search. The paper's
// argument for online feasibility: the Newton–Raphson decision is O(1) and
// converges in a handful of iterations — the full decision must fit easily
// inside the one-second decision period.
#include <benchmark/benchmark.h>

#include "bench_session_gbench.h"

#include "model/interval_models.h"
#include "model/moody.h"
#include "model/optimizer.h"

namespace {

using namespace aic;
using model::LevelCombo;

void BM_L2L3IntervalSolve(benchmark::State& state) {
  const auto sys = model::SystemProfile::coastal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::expected_interval_time(LevelCombo::kL2L3, sys, 3000.0));
  }
}
BENCHMARK(BM_L2L3IntervalSolve);

void BM_L1L2L3IntervalSolve(benchmark::State& state) {
  const auto sys = model::SystemProfile::coastal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::expected_interval_time(LevelCombo::kL1L2L3, sys, 3000.0));
  }
}
BENCHMARK(BM_L1L2L3IntervalSolve);

void BM_MoodyPeriodSolve(benchmark::State& state) {
  const auto sys = model::SystemProfile::coastal();
  const int n = int(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::moody_period_time(sys, 2000.0, n, n));
  }
}
BENCHMARK(BM_MoodyPeriodSolve)->Arg(0)->Arg(2)->Arg(4);

void BM_OfflineOptimize(benchmark::State& state) {
  const auto sys = model::SystemProfile::coastal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::minimize_scalar(
        [&](double w) {
          return model::net2_static(LevelCombo::kL2L3, sys, w);
        },
        1.0, 1e6, 32, 50));
  }
}
BENCHMARK(BM_OfflineOptimize);

void BM_OnlineDecision(benchmark::State& state) {
  // The exact search the AIC decider runs once per second: EVT boundaries
  // + coarse grid + Newton–Raphson over the adaptive interval model.
  const auto sys = model::SystemProfile::coastal();
  const auto p = model::IntervalParams::from_profile(sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::extreme_value_minimum(
        [&](double w) { return model::net2_adaptive(sys, w, p, p); }, 1.0,
        1e5, 2500.0));
  }
}
BENCHMARK(BM_OnlineDecision);

void BM_MoodyFullOptimize(benchmark::State& state) {
  const auto sys = model::SystemProfile::coastal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::optimize_moody(sys));
  }
}
BENCHMARK(BM_MoodyFullOptimize);

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_model", argc, argv);
}
