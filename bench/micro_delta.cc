// Microbenchmarks (google-benchmark): real wall-clock throughput of the
// delta codecs across page-similarity levels, plus the page-aligned
// checkpoint compressor end to end. These measure the host's actual
// compressor speed — the experiment harness uses deterministic work units
// instead, calibrated to the paper's testbed class.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/units.h"
#include "delta/page_delta.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "mem/snapshot.h"

namespace {

using namespace aic;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

/// Target = source with `dissimilarity` fraction rewritten contiguously.
Bytes edited(const Bytes& source, double dissimilarity, Rng& rng) {
  Bytes t = source;
  const std::size_t len = std::size_t(dissimilarity * double(t.size()));
  if (len == 0) return t;
  const std::size_t off = rng.uniform_u64(t.size() - len + 1);
  for (std::size_t i = 0; i < len; ++i) t[off + i] = std::uint8_t(rng());
  return t;
}

void BM_XDelta3Encode(benchmark::State& state) {
  Rng rng(1);
  const std::size_t size = 256 * kKiB;
  const double dissim = double(state.range(0)) / 100.0;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, dissim, rng);
  delta::XDelta3Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Encode)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_XDelta3Decode(benchmark::State& state) {
  Rng rng(2);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, 0.1, rng);
  delta::XDelta3Codec codec;
  Bytes delta = codec.encode(src, tgt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(src, delta));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Decode);

void BM_XorDeltaEncode(benchmark::State& state) {
  Rng rng(3);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, double(state.range(0)) / 100.0, rng);
  delta::XorDeltaCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XorDeltaEncode)->Arg(1)->Arg(50);

void BM_PageAlignedCompress(benchmark::State& state) {
  // A realistic checkpoint: `pages` hot pages, 20% of each rewritten.
  Rng rng(4);
  const std::size_t pages = std::size_t(state.range(0));
  mem::AddressSpace space;
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  for (mem::PageId id = 0; id < pages; ++id) {
    Bytes edit = random_bytes(rng, kPageSize / 5);
    space.write(id, rng.uniform_u64(kPageSize - edit.size()), edit);
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::PageAlignedCompressor pa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.compress(dirty, prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(pages * kPageSize));
}
BENCHMARK(BM_PageAlignedCompress)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
