// Microbenchmarks (google-benchmark): real wall-clock throughput of the
// delta codecs across page-similarity levels, plus the page-aligned
// checkpoint compressor end to end. These measure the host's actual
// compressor speed — the experiment harness uses deterministic work units
// instead, calibrated to the paper's testbed class.
#include <benchmark/benchmark.h>

#include "bench_session_gbench.h"

#include "common/rng.h"
#include "common/units.h"
#include "delta/page_delta.h"
#include "delta/parallel_page_delta.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "mem/snapshot.h"

namespace {

using namespace aic;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

/// Target = source with `dissimilarity` fraction rewritten contiguously.
Bytes edited(const Bytes& source, double dissimilarity, Rng& rng) {
  Bytes t = source;
  const std::size_t len = std::size_t(dissimilarity * double(t.size()));
  if (len == 0) return t;
  const std::size_t off = rng.uniform_u64(t.size() - len + 1);
  for (std::size_t i = 0; i < len; ++i) t[off + i] = std::uint8_t(rng());
  return t;
}

void BM_XDelta3Encode(benchmark::State& state) {
  Rng rng(1);
  const std::size_t size = 256 * kKiB;
  const double dissim = double(state.range(0)) / 100.0;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, dissim, rng);
  delta::XDelta3Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Encode)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_XDelta3Decode(benchmark::State& state) {
  Rng rng(2);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, 0.1, rng);
  delta::XDelta3Codec codec;
  Bytes delta = codec.encode(src, tgt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(src, delta));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Decode);

void BM_XorDeltaEncode(benchmark::State& state) {
  Rng rng(3);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, double(state.range(0)) / 100.0, rng);
  delta::XorDeltaCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XorDeltaEncode)->Arg(1)->Arg(50);

void BM_PageAlignedCompress(benchmark::State& state) {
  // A realistic checkpoint: `pages` hot pages, 20% of each rewritten.
  Rng rng(4);
  const std::size_t pages = std::size_t(state.range(0));
  mem::AddressSpace space;
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  for (mem::PageId id = 0; id < pages; ++id) {
    Bytes edit = random_bytes(rng, kPageSize / 5);
    space.write(id, rng.uniform_u64(kPageSize - edit.size()), edit);
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::PageAlignedCompressor pa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.compress(dirty, prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(pages * kPageSize));
}
BENCHMARK(BM_PageAlignedCompress)->Arg(64)->Arg(512);

/// Shared setup for the thread-scaling benchmarks: a previous snapshot plus
/// a dirty set whose pages all carry `dissimilarity` fraction rewritten.
struct ScalingWorkload {
  mem::AddressSpace space;
  mem::Snapshot prev;
  std::vector<delta::DirtyPage> dirty;

  ScalingWorkload(std::size_t pages, double dissimilarity, Rng& rng) {
    space.allocate_range(0, pages);
    for (mem::PageId id = 0; id < pages; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    prev = mem::Snapshot::capture(space);
    space.protect_all();
    for (mem::PageId id = 0; id < pages; ++id) {
      const std::size_t len = std::size_t(dissimilarity * double(kPageSize));
      if (len == 0) {
        // Conservatively write-protected page, rewritten with identical
        // bytes: dirty, but the memcmp fast path should skip the codec.
        Bytes same(space.page_bytes(id).begin(), space.page_bytes(id).end());
        space.write(id, 0, same);
        continue;
      }
      Bytes edit = random_bytes(rng, len);
      space.write(id, rng.uniform_u64(kPageSize - len + 1), edit);
    }
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});
  }
};

/// Thread scaling at a fixed per-page dissimilarity: workers x dissim%.
/// 64 pages = the 256 KiB working set of the acceptance criterion.
void BM_ParallelPageCompress(benchmark::State& state) {
  Rng rng(14);
  const unsigned workers = unsigned(state.range(0));
  const double dissim = double(state.range(1)) / 100.0;
  ScalingWorkload wl(64, dissim, rng);
  delta::ParallelPageCompressor pc(
      {.workers = workers, .min_shard_pages = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.compress(wl.dirty, wl.prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(wl.dirty.size() * kPageSize));
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_ParallelPageCompress)
    ->ArgsProduct({{1, 2, 4, 8}, {10, 50, 90}})
    ->UseRealTime();

/// Mixed-dissimilarity 256 KiB checkpoint: a quarter of the pages each at
/// unchanged / light-edit / half-rewritten / fully-rewritten — the workload
/// the >= 2.5x @ 4 workers acceptance criterion is measured on.
void BM_ParallelPageCompressMixed(benchmark::State& state) {
  Rng rng(15);
  const unsigned workers = unsigned(state.range(0));
  mem::AddressSpace space;
  const std::size_t pages = 64;  // 256 KiB
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  const double levels[] = {0.0, 0.1, 0.5, 1.0};
  for (mem::PageId id = 0; id < pages; ++id) {
    const double dissim = levels[id % 4];
    const std::size_t len = std::size_t(dissim * double(kPageSize));
    Bytes edit = len == 0 ? Bytes(space.page_bytes(id).begin(),
                                  space.page_bytes(id).end())
                          : random_bytes(rng, len);
    space.write(id, len == 0 ? 0 : rng.uniform_u64(kPageSize - len + 1),
                edit);
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::ParallelPageCompressor pc(
      {.workers = workers, .min_shard_pages = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.compress(dirty, prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(dirty.size() * kPageSize));
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_ParallelPageCompressMixed)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_delta", argc, argv);
}
