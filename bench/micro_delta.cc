// Microbenchmarks (google-benchmark): real wall-clock throughput of the
// delta codecs across page-similarity levels, plus the page-aligned
// checkpoint compressor end to end. These measure the host's actual
// compressor speed — the experiment harness uses deterministic work units
// instead, calibrated to the paper's testbed class.
#include <benchmark/benchmark.h>

#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "bench_session_gbench.h"

#include "ckpt/checkpointer.h"
#include "common/rng.h"
#include "common/units.h"
#include "delta/correcting.h"
#include "delta/page_delta.h"
#include "delta/parallel_page_delta.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"

// ---- binary-wide heap accounting for the restore-memory metric ----
// Same scheme as tests/heap_guard.h (each binary defines its own operator
// new replacement): live bytes via malloc_usable_size on both sides, CAS
// high-water mark. The restore benchmarks report peak-above-start as a
// counter, which the session reporter turns into a diffable metric.

namespace {
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

void note_alloc(void* p) {
  if (p == nullptr) return;
  const std::uint64_t live =
      g_live_bytes.fetch_add(malloc_usable_size(p),
                             std::memory_order_relaxed) +
      malloc_usable_size(p);
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

void note_free(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

std::uint64_t reset_heap_peak() {
  const std::uint64_t live = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(live, std::memory_order_relaxed);
  return live;
}

std::uint64_t heap_peak() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}
}  // namespace

// noinline: if GCC inlines these it sees the underlying malloc/free and
// -Wmismatched-new-delete mis-pairs them with the sized operator delete.
__attribute__((noinline)) void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}

__attribute__((noinline)) void* operator new(
    std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size);
  note_alloc(p);
  return p;
}

__attribute__((noinline)) void operator delete(void* p) noexcept {
  note_free(p);
  std::free(p);
}

__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  note_free(p);
  std::free(p);
}

__attribute__((noinline)) void operator delete(
    void* p, const std::nothrow_t&) noexcept {
  note_free(p);
  std::free(p);
}

namespace {

using namespace aic;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

/// Target = source with `dissimilarity` fraction rewritten contiguously.
Bytes edited(const Bytes& source, double dissimilarity, Rng& rng) {
  Bytes t = source;
  const std::size_t len = std::size_t(dissimilarity * double(t.size()));
  if (len == 0) return t;
  const std::size_t off = rng.uniform_u64(t.size() - len + 1);
  for (std::size_t i = 0; i < len; ++i) t[off + i] = std::uint8_t(rng());
  return t;
}

void BM_XDelta3Encode(benchmark::State& state) {
  Rng rng(1);
  const std::size_t size = 256 * kKiB;
  const double dissim = double(state.range(0)) / 100.0;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, dissim, rng);
  delta::XDelta3Codec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Encode)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_XDelta3Decode(benchmark::State& state) {
  Rng rng(2);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, 0.1, rng);
  delta::XDelta3Codec codec;
  Bytes delta = codec.encode(src, tgt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(src, delta));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XDelta3Decode);

void BM_XorDeltaEncode(benchmark::State& state) {
  Rng rng(3);
  const std::size_t size = 256 * kKiB;
  Bytes src = random_bytes(rng, size);
  Bytes tgt = edited(src, double(state.range(0)) / 100.0, rng);
  delta::XorDeltaCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(src, tgt));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(size));
}
BENCHMARK(BM_XorDeltaEncode)->Arg(1)->Arg(50);

void BM_PageAlignedCompress(benchmark::State& state) {
  // A realistic checkpoint: `pages` hot pages, 20% of each rewritten.
  Rng rng(4);
  const std::size_t pages = std::size_t(state.range(0));
  mem::AddressSpace space;
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  for (mem::PageId id = 0; id < pages; ++id) {
    Bytes edit = random_bytes(rng, kPageSize / 5);
    space.write(id, rng.uniform_u64(kPageSize - edit.size()), edit);
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::PageAlignedCompressor pa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.compress(dirty, prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(pages * kPageSize));
}
BENCHMARK(BM_PageAlignedCompress)->Arg(64)->Arg(512);

/// Shared setup for the thread-scaling benchmarks: a previous snapshot plus
/// a dirty set whose pages all carry `dissimilarity` fraction rewritten.
struct ScalingWorkload {
  mem::AddressSpace space;
  mem::Snapshot prev;
  std::vector<delta::DirtyPage> dirty;

  ScalingWorkload(std::size_t pages, double dissimilarity, Rng& rng) {
    space.allocate_range(0, pages);
    for (mem::PageId id = 0; id < pages; ++id) {
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
    }
    prev = mem::Snapshot::capture(space);
    space.protect_all();
    for (mem::PageId id = 0; id < pages; ++id) {
      const std::size_t len = std::size_t(dissimilarity * double(kPageSize));
      if (len == 0) {
        // Conservatively write-protected page, rewritten with identical
        // bytes: dirty, but the memcmp fast path should skip the codec.
        Bytes same(space.page_bytes(id).begin(), space.page_bytes(id).end());
        space.write(id, 0, same);
        continue;
      }
      Bytes edit = random_bytes(rng, len);
      space.write(id, rng.uniform_u64(kPageSize - len + 1), edit);
    }
    for (auto id : space.dirty_pages())
      dirty.push_back({id, space.page_bytes(id)});
  }
};

/// Thread scaling at a fixed per-page dissimilarity: workers x dissim%.
/// 64 pages = the 256 KiB working set of the acceptance criterion.
void BM_ParallelPageCompress(benchmark::State& state) {
  Rng rng(14);
  const unsigned workers = unsigned(state.range(0));
  const double dissim = double(state.range(1)) / 100.0;
  ScalingWorkload wl(64, dissim, rng);
  delta::ParallelPageCompressor pc(
      {.workers = workers, .min_shard_pages = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.compress(wl.dirty, wl.prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(wl.dirty.size() * kPageSize));
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_ParallelPageCompress)
    ->ArgsProduct({{1, 2, 4, 8}, {10, 50, 90}})
    ->UseRealTime();

/// Mixed-dissimilarity 256 KiB checkpoint: a quarter of the pages each at
/// unchanged / light-edit / half-rewritten / fully-rewritten — the workload
/// the >= 2.5x @ 4 workers acceptance criterion is measured on.
void BM_ParallelPageCompressMixed(benchmark::State& state) {
  Rng rng(15);
  const unsigned workers = unsigned(state.range(0));
  mem::AddressSpace space;
  const std::size_t pages = 64;  // 256 KiB
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  const double levels[] = {0.0, 0.1, 0.5, 1.0};
  for (mem::PageId id = 0; id < pages; ++id) {
    const double dissim = levels[id % 4];
    const std::size_t len = std::size_t(dissim * double(kPageSize));
    Bytes edit = len == 0 ? Bytes(space.page_bytes(id).begin(),
                                  space.page_bytes(id).end())
                          : random_bytes(rng, len);
    space.write(id, len == 0 ? 0 : rng.uniform_u64(kPageSize - len + 1),
                edit);
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::ParallelPageCompressor pc(
      {.workers = workers, .min_shard_pages = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.compress(dirty, prev));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(dirty.size() * kPageSize));
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_ParallelPageCompressMixed)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// ---- moved-block workloads: the correcting coder's target case ----

/// kind 0: memmove the middle half forward by ~1 page + 17 bytes.
/// kind 1: memmove backward by ~2 pages + 101 bytes.
/// kind 2: splice/insert/delete churn (16 random edits changing length).
/// kind 3: permutation of 48-byte chunks (sub-block moves, the greedy
///         coder's blind spot).
Bytes moved_target(const Bytes& source, int kind, Rng& rng) {
  Bytes t = source;
  switch (kind) {
    case 0: {
      const std::size_t shift = kPageSize + 17;
      const std::size_t len = t.size() / 2 - shift;
      std::memmove(t.data() + t.size() / 4 + shift,
                   source.data() + t.size() / 4, len);
      return t;
    }
    case 1: {
      const std::size_t shift = 2 * kPageSize + 101;
      const std::size_t len = t.size() / 2 - shift;
      std::memmove(t.data() + t.size() / 4,
                   source.data() + t.size() / 4 + shift, len);
      return t;
    }
    case 2: {
      for (int e = 0; e < 16; ++e) {
        const std::size_t at = rng.uniform_u64(t.size());
        if (rng.bernoulli(0.5)) {
          Bytes ins(1 + rng.uniform_u64(64));
          for (auto& x : ins) x = std::uint8_t(rng());
          t.insert(t.begin() + at, ins.begin(), ins.end());
        } else {
          const std::size_t len =
              std::min<std::size_t>(1 + rng.uniform_u64(64), t.size() - at);
          t.erase(t.begin() + at, t.begin() + at + len);
        }
      }
      return t;
    }
    default: {
      const std::size_t chunk = 48;
      const std::size_t chunks = t.size() / chunk;
      std::vector<std::size_t> order(chunks);
      for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
      for (std::size_t i = chunks - 1; i > 0; --i)
        std::swap(order[i], order[rng.uniform_u64(i + 1)]);
      Bytes out;
      out.reserve(t.size());
      for (std::size_t c : order)
        out.insert(out.end(), source.begin() + c * chunk,
                   source.begin() + (c + 1) * chunk);
      out.insert(out.end(), source.begin() + chunks * chunk, source.end());
      return out;
    }
  }
}

/// Encode latency + compression ratio of both whole-buffer coders on the
/// moved-block workloads. Same workload per Arg, so
/// BM_CorrectingEncodeMoved/<k> vs BM_XDelta3EncodeMoved/<k> is the
/// ratio-at-equal-latency comparison, and each is tracked by benchdiff.
template <typename Codec>
void moved_encode_bench(benchmark::State& state) {
  Rng rng(0x717 + std::uint64_t(state.range(0)));
  const Bytes src = random_bytes(rng, 256 * kKiB);
  const Bytes tgt = moved_target(src, int(state.range(0)), rng);
  const Codec codec;
  std::size_t delta_size = 0;
  for (auto _ : state) {
    Bytes d = codec.encode(src, tgt);
    delta_size = d.size();
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(tgt.size()));
  state.counters["ratio"] = double(delta_size) / double(tgt.size());
}

void BM_XDelta3EncodeMoved(benchmark::State& state) {
  moved_encode_bench<delta::XDelta3Codec>(state);
}
BENCHMARK(BM_XDelta3EncodeMoved)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CorrectingEncodeMoved(benchmark::State& state) {
  moved_encode_bench<delta::CorrectingDeltaCodec>(state);
}
BENCHMARK(BM_CorrectingEncodeMoved)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CorrectingDecode(benchmark::State& state) {
  Rng rng(0x718);
  const Bytes src = random_bytes(rng, 256 * kKiB);
  const Bytes tgt = moved_target(src, 3, rng);
  const delta::CorrectingDeltaCodec codec;
  const Bytes d = codec.encode(src, tgt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(src, d));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(tgt.size()));
}
BENCHMARK(BM_CorrectingDecode);

/// Page-level correcting compressor on a moved-pages checkpoint: half the
/// dirty pages are whole-page moves (cdelta records), half partial edits.
void BM_CorrectingPagesCompress(benchmark::State& state) {
  Rng rng(0x719);
  const std::size_t pages = std::size_t(state.range(0));
  mem::AddressSpace space;
  space.allocate_range(0, pages);
  for (mem::PageId id = 0; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  mem::Snapshot prev = mem::Snapshot::capture(space);
  space.protect_all();
  for (mem::PageId id = 0; id < pages; ++id) {
    if (id % 2 == 0 && id + 4 < pages) {
      Bytes img(prev.page_bytes(id + 4).begin(),
                prev.page_bytes(id + 4).end());
      space.write(id, 0, img);
    } else {
      Bytes edit = random_bytes(rng, kPageSize / 5);
      space.write(id, rng.uniform_u64(kPageSize - edit.size()), edit);
    }
  }
  std::vector<delta::DirtyPage> dirty;
  for (auto id : space.dirty_pages())
    dirty.push_back({id, space.page_bytes(id)});
  delta::PageAlignedCompressor pa({}, /*correcting=*/true);
  std::uint64_t out_bytes = 0;
  for (auto _ : state) {
    auto res = pa.compress(dirty, prev);
    out_bytes = res.stats.output_bytes;
    benchmark::DoNotOptimize(res);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(pages * kPageSize));
  state.counters["ratio"] =
      double(out_bytes) / double(pages * kPageSize);
}
BENCHMARK(BM_CorrectingPagesCompress)->Arg(64)->Arg(512);

// ---- restart reconstruction: wall time and peak heap per mode ----

/// A chain whose incrementals touch every page (the worst case for
/// out-of-place restore): tiny full, then an incremental allocating the
/// rest, then one editing all pages.
std::unique_ptr<ckpt::CheckpointChain> restore_chain(std::size_t pages) {
  Rng rng(0x71A);
  mem::AddressSpace space;
  space.allocate_range(0, 4);
  for (mem::PageId id = 0; id < 4; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  ckpt::CheckpointChain::Config cfg;
  cfg.correcting = true;
  auto chain = std::make_unique<ckpt::CheckpointChain>(cfg);
  chain->capture(space, {}, 0.0);
  space.protect_all();
  space.allocate_range(4, pages);
  for (mem::PageId id = 4; id < pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      for (auto& x : b) x = std::uint8_t(rng());
    });
  }
  chain->capture(space, {}, 1.0);
  space.protect_all();
  for (mem::PageId id = 0; id < pages; ++id) {
    Bytes edit = random_bytes(rng, 16);
    space.write(id, rng.uniform_u64(kPageSize - edit.size()), edit);
  }
  chain->capture(space, {}, 2.0);
  return chain;
}

void restore_bench(benchmark::State& state, ckpt::RestartEngine::Mode mode) {
  const std::size_t pages = std::size_t(state.range(0));
  const auto chain = restore_chain(pages);
  const std::vector<ckpt::CheckpointFile>& files = chain->files();
  const delta::PageAlignedCompressor pa({}, /*correcting=*/true);
  std::uint64_t peak = 0;
  for (auto _ : state) {
    const std::uint64_t live0 = reset_heap_peak();
    auto restored = ckpt::RestartEngine::restore(files, pa, mode);
    peak = std::max(peak, heap_peak() - live0);
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(pages * kPageSize));
  state.counters["peak_heap_kib"] = double(peak) / 1024.0;
}

void BM_RestoreInPlace(benchmark::State& state) {
  restore_bench(state, ckpt::RestartEngine::Mode::kInPlace);
}
BENCHMARK(BM_RestoreInPlace)->Arg(64)->Arg(512);

void BM_RestoreOutOfPlace(benchmark::State& state) {
  restore_bench(state, ckpt::RestartEngine::Mode::kOutOfPlace);
}
BENCHMARK(BM_RestoreOutOfPlace)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_delta", argc, argv);
}
