// Microbenchmarks (google-benchmark): cost of the observability layer.
//
// Two families:
//
//   * raw primitive costs — Counter::add, Gauge::set, Histogram::observe,
//     TraceLog::span — the per-operation price an instrument pays when a
//     hub is attached;
//   * a representative instrumented kernel (page checksum loop with the
//     same handle-caching pattern the pipeline components use), built
//     three ways: instrumentation removed entirely, instrumentation
//     present but disabled (null hub — one branch per site), and enabled.
//     The overhead-guard test (tests/obs_test.cc) asserts the disabled
//     path allocates nothing; this bench makes the wall-clock difference
//     between "removed" and "disabled" visible — the contract is that it
//     stays in the noise (< 2%).
#include <benchmark/benchmark.h>

#include "bench_session_gbench.h"

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace aic;

// ---------------------------------------------------------------------------
// Raw primitive costs.

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("bench.counter");
  for (auto _ : state) {
    c->add();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.gauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    g->set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(g->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram(
      "bench.histogram", obs::Histogram::exponential_buckets(1e-6, 4.0, 16));
  double v = 1e-7;
  for (auto _ : state) {
    h->observe(v);
    v = v < 1.0 ? v * 1.5 : 1e-7;
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  // Small capacity: spans past the bound only bump dropped(), which is the
  // steady state of a long instrumented run.
  obs::TraceLog log(1 << 12);
  double t = 0.0;
  for (auto _ : state) {
    log.span(obs::TimeDomain::kVirtual, "bench", "span", t, t + 0.5, 0,
             {{"bytes", 4096.0}});
    t += 1.0;
  }
  benchmark::DoNotOptimize(log.dropped());
}
BENCHMARK(BM_TraceSpan);

// ---------------------------------------------------------------------------
// Representative instrumented kernel: checksum a buffer page by page,
// bumping per-page instruments the way the pipeline components do (handles
// resolved once at attach, one null-hub branch per site on the hot path).

constexpr std::size_t kKernelPage = 4096;
constexpr std::size_t kKernelPages = 64;

std::vector<std::uint8_t> kernel_buffer() {
  std::vector<std::uint8_t> buf(kKernelPage * kKernelPages);
  std::uint32_t x = 0x9e3779b9u;
  for (auto& b : buf) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    b = std::uint8_t(x);
  }
  return buf;
}

std::uint64_t checksum_page(const std::uint8_t* p) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < kKernelPage; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

/// The component pattern under test: resolve handles iff a hub is attached,
/// branch on them at each site.
class InstrumentedScanner {
 public:
  explicit InstrumentedScanner(obs::Hub* hub) {
    if (hub != nullptr) {
      m_pages_ = hub->metrics.counter("bench.kernel.pages");
      m_bytes_ = hub->metrics.counter("bench.kernel.bytes");
      m_page_sum_ = hub->metrics.histogram(
          "bench.kernel.page_sum",
          obs::Histogram::exponential_buckets(1.0, 4.0, 16));
    }
  }

  std::uint64_t scan(const std::vector<std::uint8_t>& buf) {
    std::uint64_t acc = 0;
    for (std::size_t pg = 0; pg < kKernelPages; ++pg) {
      const std::uint64_t h = checksum_page(buf.data() + pg * kKernelPage);
      acc ^= h;
      if (m_pages_ != nullptr) m_pages_->add();
      if (m_bytes_ != nullptr) m_bytes_->add(kKernelPage);
      if (m_page_sum_ != nullptr) m_page_sum_->observe(double(h >> 32));
    }
    return acc;
  }

 private:
  obs::Counter* m_pages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Histogram* m_page_sum_ = nullptr;
};

/// Same kernel with the instrumentation sites not written at all — the
/// "removed" baseline the disabled path must match.
std::uint64_t scan_uninstrumented(const std::vector<std::uint8_t>& buf) {
  std::uint64_t acc = 0;
  for (std::size_t pg = 0; pg < kKernelPages; ++pg) {
    acc ^= checksum_page(buf.data() + pg * kKernelPage);
  }
  return acc;
}

void BM_KernelRemoved(benchmark::State& state) {
  const auto buf = kernel_buffer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_uninstrumented(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelRemoved);

void BM_KernelObsDisabled(benchmark::State& state) {
  const auto buf = kernel_buffer();
  InstrumentedScanner scanner(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelObsDisabled);

void BM_KernelObsEnabled(benchmark::State& state) {
  const auto buf = kernel_buffer();
  obs::Hub hub;
  InstrumentedScanner scanner(&hub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelObsEnabled);

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_obs", argc, argv);
}
