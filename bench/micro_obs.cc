// Microbenchmarks (google-benchmark): cost of the observability layer.
//
// Two families:
//
//   * raw primitive costs — Counter::add, Gauge::set, Histogram::observe,
//     TraceLog::span — the per-operation price an instrument pays when a
//     hub is attached;
//   * a representative instrumented kernel (page checksum loop with the
//     same handle-caching pattern the pipeline components use), built
//     three ways: instrumentation removed entirely, instrumentation
//     present but disabled (null hub — one branch per site), and enabled.
//     The overhead-guard test (tests/obs_test.cc) asserts the disabled
//     path allocates nothing; this bench makes the wall-clock difference
//     between "removed" and "disabled" visible — the contract is that it
//     stays in the noise (< 2%).
#include <benchmark/benchmark.h>

#include "bench_session_gbench.h"

#include <cstdint>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {

using namespace aic;

// File-local metric names for the telemetry kernels (the obs-name-literal
// rule's sanctioned form for bench-only instruments).
constexpr const char* kBenchTelCounter = "bench.tel.events";
constexpr const char* kBenchTelGauge = "bench.tel.depth";
constexpr const char* kBenchTelHisto = "bench.tel.latency";
constexpr const char* kBenchTelSeries = "bench.tel.depth";

// ---------------------------------------------------------------------------
// Raw primitive costs.

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("bench.counter");
  for (auto _ : state) {
    c->add();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.gauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    g->set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(g->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram(
      "bench.histogram", obs::Histogram::exponential_buckets(1e-6, 4.0, 16));
  double v = 1e-7;
  for (auto _ : state) {
    h->observe(v);
    v = v < 1.0 ? v * 1.5 : 1e-7;
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  // Small capacity: spans past the bound only bump dropped(), which is the
  // steady state of a long instrumented run.
  obs::TraceLog log(1 << 12);
  double t = 0.0;
  for (auto _ : state) {
    log.span(obs::TimeDomain::kVirtual, "bench", "span", t, t + 0.5, 0,
             {{"bytes", 4096.0}});
    t += 1.0;
  }
  benchmark::DoNotOptimize(log.dropped());
}
BENCHMARK(BM_TraceSpan);

// ---------------------------------------------------------------------------
// Representative instrumented kernel: checksum a buffer page by page,
// bumping per-page instruments the way the pipeline components do (handles
// resolved once at attach, one null-hub branch per site on the hot path).

constexpr std::size_t kKernelPage = 4096;
constexpr std::size_t kKernelPages = 64;

std::vector<std::uint8_t> kernel_buffer() {
  std::vector<std::uint8_t> buf(kKernelPage * kKernelPages);
  std::uint32_t x = 0x9e3779b9u;
  for (auto& b : buf) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    b = std::uint8_t(x);
  }
  return buf;
}

std::uint64_t checksum_page(const std::uint8_t* p) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < kKernelPage; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

/// The component pattern under test: resolve handles iff a hub is attached,
/// branch on them at each site.
class InstrumentedScanner {
 public:
  explicit InstrumentedScanner(obs::Hub* hub) {
    if (hub != nullptr) {
      m_pages_ = hub->metrics.counter("bench.kernel.pages");
      m_bytes_ = hub->metrics.counter("bench.kernel.bytes");
      m_page_sum_ = hub->metrics.histogram(
          "bench.kernel.page_sum",
          obs::Histogram::exponential_buckets(1.0, 4.0, 16));
    }
  }

  std::uint64_t scan(const std::vector<std::uint8_t>& buf) {
    std::uint64_t acc = 0;
    for (std::size_t pg = 0; pg < kKernelPages; ++pg) {
      const std::uint64_t h = checksum_page(buf.data() + pg * kKernelPage);
      acc ^= h;
      if (m_pages_ != nullptr) m_pages_->add();
      if (m_bytes_ != nullptr) m_bytes_->add(kKernelPage);
      if (m_page_sum_ != nullptr) m_page_sum_->observe(double(h >> 32));
    }
    return acc;
  }

 private:
  obs::Counter* m_pages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Histogram* m_page_sum_ = nullptr;
};

/// Same kernel with the instrumentation sites not written at all — the
/// "removed" baseline the disabled path must match.
std::uint64_t scan_uninstrumented(const std::vector<std::uint8_t>& buf) {
  std::uint64_t acc = 0;
  for (std::size_t pg = 0; pg < kKernelPages; ++pg) {
    acc ^= checksum_page(buf.data() + pg * kKernelPage);
  }
  return acc;
}

void BM_KernelRemoved(benchmark::State& state) {
  const auto buf = kernel_buffer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_uninstrumented(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelRemoved);

void BM_KernelObsDisabled(benchmark::State& state) {
  const auto buf = kernel_buffer();
  InstrumentedScanner scanner(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelObsDisabled);

void BM_KernelObsEnabled(benchmark::State& state) {
  const auto buf = kernel_buffer();
  obs::Hub hub;
  InstrumentedScanner scanner(&hub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(buf));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(buf.size()));
}
BENCHMARK(BM_KernelObsEnabled);

// ---------------------------------------------------------------------------
// Telemetry-plane kernels: the per-round-boundary costs the fleet pays
// when the sampler, SLO engine, and causal log are attached. These run
// once per scheduler quantum, not per page, so the budget is microseconds,
// but they must stay flat in the registry size they scan.

/// One sampler tick over a registry shaped like a mid-size fleet's: 16
/// counters, 16 gauges (one tenant family), 4 histograms.
void BM_SamplerSample(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 16; ++i) {
    const std::string suffix = "." + std::to_string(i);
    reg.counter(kBenchTelCounter + suffix)->add(std::uint64_t(i) * 7);
    reg.gauge(kBenchTelGauge + suffix)->set(double(i));
  }
  std::vector<obs::Histogram*> hs;
  for (int i = 0; i < 4; ++i) {
    hs.push_back(
        reg.histogram(kBenchTelHisto + ("." + std::to_string(i)),
                      obs::Histogram::exponential_buckets(1e-3, 2.0, 16)));
  }
  obs::TimeseriesStore store;
  obs::Sampler sampler(&reg, &store);
  double t = 0.0;
  for (auto _ : state) {
    for (obs::Histogram* h : hs) h->observe(t - double(std::int64_t(t)) + 0.1);
    sampler.sample(t);
    t += 1.0;
  }
  benchmark::DoNotOptimize(sampler.samples());
}
BENCHMARK(BM_SamplerSample);

/// One SLO evaluation round: 8 rules (half with burn windows) against a
/// store whose watched series hold a full ring of samples.
void BM_SloEvaluate(benchmark::State& state) {
  obs::TimeseriesStore store;
  obs::SloEngine engine;
  for (int i = 0; i < 8; ++i) {
    const std::string series = kBenchTelSeries + ("." + std::to_string(i));
    obs::Series& s = store.series(series);
    for (int k = 0; k < 512; ++k) s.push(double(k), double((k * 7 + i) % 10));
    std::string rule = "r" + std::to_string(i) + ": " + series + " < 8";
    if (i % 2 == 0) rule += " budget 0.25 burn 30/300 x2";
    engine.add_rule(rule);
  }
  double t = 512.0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      store.series(kBenchTelSeries + ("." + std::to_string(i)))
          .push(t, double(std::int64_t(t) % 10));
    }
    benchmark::DoNotOptimize(engine.evaluate(store, t));
    t += 1.0;
  }
  benchmark::DoNotOptimize(engine.evaluations());
}
BENCHMARK(BM_SloEvaluate);

/// A full causal-chain lifecycle: open, the fleet's typical five segment
/// adds, close — the per-checkpoint price of time-to-safe attribution.
void BM_CausalChainCycle(benchmark::State& state) {
  obs::CausalLog log;
  double t = 0.0;
  for (auto _ : state) {
    const std::uint64_t id = log.open("bench/chain", 3, t);
    log.add(id, obs::CausalSegment::kCapture, 0.05);
    log.add(id, obs::CausalSegment::kAdmissionQueue, 0.01);
    log.add(id, obs::CausalSegment::kDrainQueue, 0.2);
    log.add(id, obs::CausalSegment::kInFlight, 1.0);
    log.add(id, obs::CausalSegment::kBackoff, 0.1);
    log.close_at(id, t + 1.4);
    t += 1.0;
  }
  benchmark::DoNotOptimize(log.closed());
}
BENCHMARK(BM_CausalChainCycle);

}  // namespace

int main(int argc, char** argv) {
  return aic::bench::run_gbench_main("micro_obs", argc, argv);
}
