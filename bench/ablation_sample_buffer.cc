// Ablation: the hot-page sample buffer (Section IV.E).
//
// The SB bounds both memory and the per-decision JD/DI cost; the paper
// uses 8 MiB. Sweep the buffer size on sjeng and report NET^2 and the
// control overhead — the expectation is a plateau: beyond a modest buffer,
// more samples no longer improve decisions, while the metric cost keeps
// growing.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "control/experiment.h"

using namespace aic;
using control::Scheme;

int main() {
  bench::Session session("ablation_sample_buffer");
  bench::Checker check;
  const auto b = workload::SpecBenchmark::kSjeng;

  TextTable table("Ablation — sample buffer size (sjeng)");
  table.set_header({"SB size", "NET^2", "control overhead", "ckpts"});

  double first_net2 = 0.0, last_net2 = 0.0;
  double small_overhead = 0.0, large_overhead = 0.0;
  const std::vector<std::uint64_t> sizes = {256 * kKiB, kMiB, 8 * kMiB,
                                            32 * kMiB};
  for (std::uint64_t sb : sizes) {
    auto cfg = bench::testbed_config(b, 0.25);
    cfg.sampler.buffer_bytes = sb;
    // Metric cost scales with what is actually computed per decision;
    // remove the stride cap so the ablation exposes the raw cost curve.
    cfg.sampler.max_compute_pages = std::size_t(sb / kPageSize);
    const auto res = run_experiment(Scheme::kAic, b, cfg);
    table.add_row({std::to_string(sb / kKiB) + " KiB",
                   TextTable::num(res.net2, 3),
                   TextTable::num(res.control_overhead, 2) + " s",
                   std::to_string(res.intervals.size())});
    const std::string sz = std::to_string(sb / kKiB) + "kib";
    session.sample("net2.sb_" + sz, "net2", res.net2);
    session.sample("control_overhead.sb_" + sz, "s", res.control_overhead);
    if (sb == sizes.front()) {
      first_net2 = res.net2;
      small_overhead = res.control_overhead;
    }
    if (sb == sizes.back()) {
      last_net2 = res.net2;
      large_overhead = res.control_overhead;
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  check.expect(std::abs(first_net2 - last_net2) < 0.15 * first_net2,
               "NET^2 plateaus across SB sizes (sampling is robust)");
  check.expect(large_overhead > small_overhead,
               "metric cost grows with the buffer (why SB is bounded)");
  return session.finish(check);
}
