// Fleet-scale bench: the multi-tenant checkpoint service (src/fleet) at
// 100 -> 1000 -> 10000 concurrent LANL-candidate jobs. The channel is
// provisioned proportionally to the fleet (a fixed per-job share), so the
// scaling law to check is: aggregate goodput and NET^2 grow with the
// fleet while p99 time-to-safe stays bounded. The bench also re-runs the
// base scale at 1/2/4 shards and checks the timeline digest is
// byte-identical — the determinism contract, enforced outside the unit
// suite too.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/qos_policy.h"
#include "obs/clock.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/lanl_trace.h"

using namespace aic;

namespace {

// 20 MB/s of drain bandwidth per hosted job: generous enough that
// admission passes the whole mix and the scaling law is about the fleet,
// not about queueing (scripts covering backpressure live in the tests).
constexpr double kPerJobBps = 2.0e7;

fleet::FleetConfig fleet_config(int shards, std::size_t jobs) {
  fleet::FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = 42;
  cfg.quantum_s = 5.0;
  cfg.bandwidth_bps = kPerJobBps * double(jobs);
  cfg.latency_s = 1.0e-3;
  cfg.chunk_bytes = 4 * 1024 * 1024;
  cfg.lambda_total = 1.0e-3;
  cfg.restart_s = 10.0;
  cfg.min_interval_s = 15.0;
  cfg.max_interval_s = 600.0;
  cfg.full_every = 8;
  cfg.max_virtual_s = 86400.0;
  cfg.admission.target_utilization = 0.7;
  cfg.admission.queue_capacity = jobs;  // queue, never reject
  return cfg;
}

std::vector<workload::FleetJobSpec> fleet_mix(std::size_t jobs) {
  workload::FleetMixConfig mix;
  mix.jobs = jobs;
  mix.tenants = 8;
  mix.seed = 42;
  mix.arrival_horizon_s = 300.0;
  mix.min_work_s = bench::smoke_pick(60.0, 30.0);
  mix.max_work_s = bench::smoke_pick(600.0, 90.0);
  mix.pages_per_process = 256;
  return workload::lanl_fleet_jobs(mix);
}

fleet::QosPolicy fleet_policy(double bandwidth_bps) {
  fleet::QosPolicy policy;
  // Tenant 0 holds a hard reservation for a tenth of the channel; the
  // other seven are best-effort with equal weights.
  policy.set(fleet::Tenant{0, "gold", {1.0, bandwidth_bps / 10.0}});
  return policy;
}

struct ScaleResult {
  std::size_t jobs = 0;
  double wall_s = 0.0;
  fleet::FleetReport report;
};

ScaleResult run_scale(std::size_t jobs, int shards) {
  const fleet::FleetConfig cfg = fleet_config(shards, jobs);
  fleet::FleetScheduler fleet(cfg, fleet_mix(jobs),
                              fleet_policy(cfg.bandwidth_bps));
  const std::uint64_t t0 = obs::wall_now_ns();
  fleet.run();
  ScaleResult r;
  r.jobs = jobs;
  r.wall_s = obs::wall_seconds_since(t0);
  r.report = fleet.report();
  return r;
}

/// Same run with the full telemetry plane attached: per-round sampling,
/// SLO rules with burn windows, and causal time-to-safe chains.
ScaleResult run_scale_telemetry(std::size_t jobs, int shards) {
  obs::Hub hub;
  obs::Telemetry& tel = hub.enable_telemetry();
  namespace on = obs::names;
  tel.slo().add_rule(std::string("goodput: ") + on::kFleetGoodputBps +
                     " > 1.0");
  tel.slo().add_rule(std::string("tts-p99: ") + on::kFleetTimeToSafeSeconds +
                     ".p99 < 120 budget 0.1 burn 60/600 x2");
  fleet::FleetConfig cfg = fleet_config(shards, jobs);
  cfg.obs = &hub;
  fleet::FleetScheduler fleet(cfg, fleet_mix(jobs),
                              fleet_policy(cfg.bandwidth_bps));
  const std::uint64_t t0 = obs::wall_now_ns();
  fleet.run();
  ScaleResult r;
  r.jobs = jobs;
  r.wall_s = obs::wall_seconds_since(t0);
  r.report = fleet.report();
  return r;
}

}  // namespace

int main() {
  bench::Session session("fleet_scale");
  bench::Checker check;

  const std::vector<std::size_t> scales =
      bench::smoke_mode() ? std::vector<std::size_t>{30, 100}
                          : std::vector<std::size_t>{100, 1000, 10000};

  // Determinism first: the base scale must produce one timeline no matter
  // how the simulation core is sharded.
  {
    const ScaleResult one = run_scale(scales.front(), 1);
    const ScaleResult two = run_scale(scales.front(), 2);
    const ScaleResult four = run_scale(scales.front(), 4);
    check.expect(one.report.digest == two.report.digest &&
                     one.report.digest == four.report.digest,
                 "timeline digest is byte-identical at 1/2/4 shards");
    check.expect(one.report.elapsed_s == two.report.elapsed_s &&
                     one.report.elapsed_s == four.report.elapsed_s,
                 "virtual elapsed time is shard-count invariant");

    // Telemetry is a pure reader: re-running the same scales with the
    // full plane attached (sampler + SLO rules + causal log, ticked at
    // every round boundary) must reproduce the same digest at every shard
    // count, and the observed run's goodput must stay within 2% of the
    // unobserved one — the observability tax the fleet is allowed to pay.
    const ScaleResult t_one = run_scale_telemetry(scales.front(), 1);
    const ScaleResult t_two = run_scale_telemetry(scales.front(), 2);
    const ScaleResult t_four = run_scale_telemetry(scales.front(), 4);
    check.expect(t_one.report.digest == one.report.digest &&
                     t_two.report.digest == one.report.digest &&
                     t_four.report.digest == one.report.digest,
                 "telemetry-on digest matches telemetry-off at 1/2/4 shards");
    const double off = one.report.goodput_bps;
    const double on = t_one.report.goodput_bps;
    check.expect(off > 0.0 && std::abs(on - off) <= 0.02 * off,
                 "telemetry-on goodput within 2% of telemetry-off");
    session.sample("fleet.telemetry.goodput_delta_frac", "frac",
                   off > 0.0 ? std::abs(on - off) / off : 0.0);
  }

  TextTable table("Fleet scaling — proportionally provisioned channel");
  table.set_header({"jobs", "elapsed (virt s)", "goodput MB/s", "p99 tts s",
                    "NET^2 GB", "failures", "wall s"});

  std::vector<ScaleResult> results;
  for (const std::size_t jobs : scales) {
    const ScaleResult r = run_scale(jobs, 1);
    results.push_back(r);
    const auto& rep = r.report;

    const std::string tag = "fleet.jobs" + std::to_string(jobs);
    session.sample(tag + ".goodput_bps", "Bps", rep.goodput_bps,
                   /*higher_is_better=*/true);
    session.sample(tag + ".tts_p99_s", "s", rep.tts_p99_s);
    session.sample(tag + ".net2_bytes", "bytes", double(rep.net2_bytes));
    // Virtual elapsed is deterministic and diffable; per-scale wall time
    // is printed for the reader but not emitted as a metric — single
    // sub-millisecond samples would flap aic_benchdiff's gate.
    session.sample(tag + ".elapsed_s", "s", rep.elapsed_s);

    table.add_row({std::to_string(jobs), TextTable::num(rep.elapsed_s, 0),
                   TextTable::num(rep.goodput_bps / 1.0e6, 1),
                   TextTable::num(rep.tts_p99_s, 2),
                   TextTable::num(double(rep.net2_bytes) / 1.0e9, 2),
                   std::to_string(rep.failures),
                   TextTable::num(r.wall_s, 2)});

    check.expect(rep.complete,
                 "fleet of " + std::to_string(jobs) + " jobs runs to "
                 "completion");
    check.expect(rep.rejected == 0,
                 "unbounded queue admits the whole " + std::to_string(jobs) +
                     "-job mix");
    check.expect(rep.goodput_bps > 0.0,
                 "fleet of " + std::to_string(jobs) + " jobs commits bytes");
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& prev = results[i - 1].report;
    const auto& cur = results[i].report;
    check.expect(cur.net2_bytes > prev.net2_bytes,
                 "NET^2 grows from " + std::to_string(results[i - 1].jobs) +
                     " to " + std::to_string(results[i].jobs) + " jobs");
    check.expect(cur.goodput_bps > prev.goodput_bps,
                 "goodput grows with the provisioned fleet (" +
                     std::to_string(results[i].jobs) + " jobs)");
    check.expect(cur.tts_p99_s < 10.0 * results.front().report.tts_p99_s +
                                     1.0,
                 "p99 time-to-safe stays bounded at " +
                     std::to_string(results[i].jobs) + " jobs");
  }

  return session.finish(check);
}
