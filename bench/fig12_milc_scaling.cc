// Fig. 12 reproduction: NET^2 of Milc under adaptive (AIC) and static
// (SIC) concurrent checkpointing across system scales 0.25x .. 4x. RMS
// scaling: only the per-node remote bandwidth B3 shrinks with size.
//
// Paper shape: the AIC-vs-SIC reduction widens as the system grows —
// from 14% at the small end to 47% at 4x.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "control/experiment.h"

using namespace aic;
using control::Scheme;

int main() {
  bench::Session session("fig12_milc_scaling");
  bench::Checker check;
  const double kScale = bench::smoke_pick(0.25, 0.0625);
  const std::vector<double> sizes = {0.25, 0.5, 1.0, 2.0, 4.0};

  TextTable table("Fig. 12 — NET^2 of Milc, AIC vs SIC, across system size");
  table.set_header({"size", "AIC", "SIC", "reduction"});

  std::map<double, double> reductions;
  for (double s : sizes) {
    const auto cfg =
        bench::testbed_config(workload::SpecBenchmark::kMilc, kScale, s);
    const auto aic =
        run_experiment(Scheme::kAic, workload::SpecBenchmark::kMilc, cfg);
    const auto sic =
        run_experiment(Scheme::kSic, workload::SpecBenchmark::kMilc, cfg);
    const double reduction = (sic.net2 - aic.net2) / sic.net2;
    reductions[s] = reduction;
    const std::string sz = TextTable::num(s, 2) + "x";
    session.sample("net2.milc." + sz + ".aic", "net2", aic.net2);
    session.sample("net2.milc." + sz + ".sic", "net2", sic.net2);
    session.sample("reduction." + sz, "ratio", reduction,
                   /*higher_is_better=*/true);
    table.add_row({TextTable::num(s, 2) + "x", TextTable::num(aic.net2, 3),
                   TextTable::num(sic.net2, 3),
                   TextTable::pct(reduction, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  check.expect(reductions[4.0] > reductions[0.25],
               "AIC-vs-SIC gap widens with the system size");
  check.expect(reductions[4.0] > 0.30,
               "large reduction at 4x (paper: 47%)");
  for (double s : sizes) {
    check.expect(reductions[s] > -0.02,
                 "AIC never loses to SIC at " + TextTable::num(s, 2) + "x");
  }
  return session.finish(check);
}
