// Shared helpers for the table/figure reproduction benches: the paper's
// testbed configuration (Section V.A/V.C) and a uniform CHECK reporter for
// the shape assertions each bench makes against the paper's claims.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "control/experiment.h"
#include "model/system_profile.h"
#include "workload/workload.h"

namespace aic::bench {

/// True when AIC_BENCH_SMOKE is set to a non-empty value: CI's
/// `verify.sh --bench-smoke` leg runs every bench this way. Benches should
/// shrink their parameters to a seconds-scale run, and reproduction CHECK
/// failures become informational — tiny runs exercise the machinery for
/// crashes and bit-rot, they cannot reproduce the paper's shapes.
inline bool smoke_mode() {
  const char* v = std::getenv("AIC_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0';
}

/// Picks a bench parameter by mode: the full-fidelity value normally, the
/// tiny value under --bench-smoke.
template <typename T>
inline T smoke_pick(T full, T tiny) {
  return smoke_mode() ? tiny : full;
}

/// The Section V testbed configuration: failure rate 1e-3 split with the
/// Coastal shares, Coastal bandwidths rescaled to the synthetic footprint
/// (see control::CostModel::paper_scaled), SF = 1.
inline control::ExperimentConfig testbed_config(
    workload::SpecBenchmark benchmark, double workload_scale = 0.25,
    double system_scale = 1.0) {
  control::ExperimentConfig cfg;
  const auto split = model::split_rate(1e-3);
  cfg.system.lambda = {split[0], split[1], split[2]};
  cfg.workload_scale = workload_scale;
  const auto prof = workload::spec_profile(benchmark, workload_scale);
  cfg.costs = control::CostModel::paper_scaled(prof.footprint_pages *
                                               kPageSize)
                  .scaled_rms(system_scale);
  return cfg;
}

/// Reproduction-check reporter: prints CHECK lines and tracks failures so
/// a bench's exit code reflects whether the paper's shape held.
class Checker {
 public:
  void expect(bool ok, const std::string& claim) {
    std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
    if (!ok) ++failures_;
  }
  /// Nonzero iff a reproduction check failed — except under smoke mode,
  /// where parameters are deliberately too tiny for the paper's shapes and
  /// the leg only gates on crashes.
  int exit_code() const {
    if (failures_ != 0 && smoke_mode()) {
      std::printf("CHECK note %d failure(s) ignored in smoke mode\n",
                  failures_);
      return 0;
    }
    return failures_ == 0 ? 0 : 1;
  }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

}  // namespace aic::bench
