// Shared helpers for the table/figure reproduction benches: the paper's
// testbed configuration (Section V.A/V.C) and a uniform CHECK reporter for
// the shape assertions each bench makes against the paper's claims.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "control/experiment.h"
#include "model/system_profile.h"
#include "workload/workload.h"

namespace aic::bench {

/// The Section V testbed configuration: failure rate 1e-3 split with the
/// Coastal shares, Coastal bandwidths rescaled to the synthetic footprint
/// (see control::CostModel::paper_scaled), SF = 1.
inline control::ExperimentConfig testbed_config(
    workload::SpecBenchmark benchmark, double workload_scale = 0.25,
    double system_scale = 1.0) {
  control::ExperimentConfig cfg;
  const auto split = model::split_rate(1e-3);
  cfg.system.lambda = {split[0], split[1], split[2]};
  cfg.workload_scale = workload_scale;
  const auto prof = workload::spec_profile(benchmark, workload_scale);
  cfg.costs = control::CostModel::paper_scaled(prof.footprint_pages *
                                               kPageSize)
                  .scaled_rms(system_scale);
  return cfg;
}

/// Reproduction-check reporter: prints CHECK lines and tracks failures so
/// a bench's exit code reflects whether the paper's shape held.
class Checker {
 public:
  void expect(bool ok, const std::string& claim) {
    std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
    if (!ok) ++failures_;
  }
  int exit_code() const { return failures_ == 0 ? 0 : 1; }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

}  // namespace aic::bench
