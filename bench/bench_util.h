// Shared helpers for the table/figure reproduction benches: the paper's
// testbed configuration (Section V.A/V.C), a uniform CHECK reporter for
// the shape assertions each bench makes against the paper's claims, and
// the telemetry Session every bench target uses to emit its
// BENCH_<target>.json result file (obs/bench_record.h).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "control/experiment.h"
#include "model/system_profile.h"
#include "obs/bench_record.h"
#include "obs/clock.h"
#include "workload/workload.h"

namespace aic::bench {

/// True when AIC_BENCH_SMOKE is set to a non-empty value: CI's
/// `verify.sh --bench-smoke` leg runs every bench this way. Benches should
/// shrink their parameters to a seconds-scale run, and reproduction CHECK
/// failures become informational — tiny runs exercise the machinery for
/// crashes and bit-rot, they cannot reproduce the paper's shapes.
inline bool smoke_mode() {
  const char* v = std::getenv("AIC_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0';
}

/// Picks a bench parameter by mode: the full-fidelity value normally, the
/// tiny value under --bench-smoke.
template <typename T>
inline T smoke_pick(T full, T tiny) {
  return smoke_mode() ? tiny : full;
}

/// The Section V testbed configuration: failure rate 1e-3 split with the
/// Coastal shares, Coastal bandwidths rescaled to the synthetic footprint
/// (see control::CostModel::paper_scaled), SF = 1.
inline control::ExperimentConfig testbed_config(
    workload::SpecBenchmark benchmark, double workload_scale = 0.25,
    double system_scale = 1.0) {
  control::ExperimentConfig cfg;
  const auto split = model::split_rate(1e-3);
  cfg.system.lambda = {split[0], split[1], split[2]};
  cfg.workload_scale = workload_scale;
  const auto prof = workload::spec_profile(benchmark, workload_scale);
  cfg.costs = control::CostModel::paper_scaled(prof.footprint_pages *
                                               kPageSize)
                  .scaled_rms(system_scale);
  return cfg;
}

/// Reproduction-check reporter: prints CHECK lines and tracks failures so
/// a bench's exit code reflects whether the paper's shape held. The full
/// claim/verdict list is retained so Session::finish can embed it in the
/// target's BENCH_*.json.
class Checker {
 public:
  void expect(bool ok, const std::string& claim) {
    std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
    results_.emplace_back(claim, ok);
    if (!ok) ++failures_;
  }
  /// Nonzero iff a reproduction check failed — except under smoke mode,
  /// where parameters are deliberately too tiny for the paper's shapes and
  /// the leg only gates on crashes.
  int exit_code() const {
    if (failures_ != 0 && smoke_mode()) {
      std::printf("CHECK note %d failure(s) ignored in smoke mode\n",
                  failures_);
      return 0;
    }
    return failures_ == 0 ? 0 : 1;
  }
  int failures() const { return failures_; }
  const std::vector<std::pair<std::string, bool>>& results() const {
    return results_;
  }

 private:
  int failures_ = 0;
  std::vector<std::pair<std::string, bool>> results_;
};

/// Benchmark telemetry session: collects named metric samples while the
/// bench runs and writes the schema-versioned BENCH_<target>.json on
/// finish(). Results land in $AIC_BENCH_OUT (default: the working
/// directory), which is how scripts/bench.sh and the verify.sh bench-smoke
/// leg collect a results directory for tools/aic_benchdiff.
///
/// Usage shape (see any bench/ main):
///
///   bench::Session session("fig11_netsq_benchmarks");
///   bench::Checker check;
///   ...
///   session.sample("net2.milc.aic", "net2", r.net2());
///   ...
///   return session.finish(check);
class Session {
 public:
  explicit Session(std::string_view target)
      : record_(obs::make_bench_record(target, smoke_mode())),
        t0_ns_(obs::wall_now_ns()) {}

  /// Get-or-create a metric series (first creator's unit/direction win).
  obs::BenchMetric& metric(std::string_view name, std::string_view unit,
                           bool higher_is_better = false) {
    return record_.metric(name, unit, higher_is_better);
  }

  /// Appends one observation to the named series.
  void sample(std::string_view name, std::string_view unit, double value,
              bool higher_is_better = false) {
    metric(name, unit, higher_is_better).samples.push_back(value);
  }

  /// Times fn() `reps` times (seconds through obs::wall_now_ns — bench
  /// clocks and trace clocks agree by construction) into a repeated-sample
  /// metric, so aic_benchdiff gets a bootstrap-able distribution.
  template <typename F>
  void time_samples(std::string_view name, int reps, F&& fn) {
    obs::BenchMetric& m = metric(name, "s");
    for (int i = 0; i < reps; ++i) {
      const std::uint64_t t0 = obs::wall_now_ns();
      fn();
      m.samples.push_back(obs::wall_seconds_since(t0));
    }
  }

  obs::BenchRecord& record() { return record_; }

  /// Embeds the checker's verdicts, stamps the whole-run wall time, writes
  /// BENCH_<target>.json, and returns the bench's exit code (the checker's
  /// verdict, or 2 when the result file cannot be written).
  int finish(const Checker& check) {
    for (const auto& [claim, ok] : check.results()) {
      record_.checks.push_back({claim, ok});
    }
    sample("wall.total_s", "s", obs::wall_seconds_since(t0_ns_));
    // A series the bench declared but never fed would fail schema
    // validation; drop it rather than block the whole record.
    std::erase_if(record_.metrics,
                  [](const obs::BenchMetric& m) { return m.samples.empty(); });
    const char* out_dir = std::getenv("AIC_BENCH_OUT");
    const std::string path =
        std::string(out_dir != nullptr && out_dir[0] != '\0' ? out_dir : ".") +
        "/" + obs::bench_record_filename(record_.target);
    std::ofstream out(path, std::ios::binary);
    if (out) out << obs::bench_record_to_json(record_);
    if (!out) {
      std::fprintf(stderr, "bench-record: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("bench-record: wrote %s (%zu metric(s), %zu check(s))\n",
                path.c_str(), record_.metrics.size(), record_.checks.size());
    return check.exit_code();
  }

 private:
  obs::BenchRecord record_;
  std::uint64_t t0_ns_;
};

}  // namespace aic::bench
