// Fig. 7 reproduction: NET^2 of the L2L3 concurrent model under different
// sharing factors (SF = computation processes per checkpointing core) and
// system sizes, with Moody's optimum as the profitability reference.
//
// Paper shape: L2L3 degrades as SF grows (the shared checkpointing core's
// transfers dilate) but remains profitable against Moody for SF in the
// 3-15 range across 1x-20x sizes.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/interval_models.h"
#include "model/moody.h"
#include "model/optimizer.h"

using namespace aic;
using model::LevelCombo;

int main() {
  bench::Session session("fig07_sharing_factor");
  bench::Checker check;
  const std::vector<double> sizes = {1, 4, 10, 20};
  const std::vector<double> sfs = {1, 2, 3, 5, 8, 10, 15, 20, 30};

  TextTable table("Fig. 7 — NET^2 of L2L3 under sharing factor and size");
  std::vector<std::string> header = {"SF"};
  for (double s : sizes) header.push_back(TextTable::num(s, 0) + "x L2L3");
  for (double s : sizes) header.push_back(TextTable::num(s, 0) + "x Moody");
  table.set_header(header);

  std::map<double, double> moody_ref;
  for (double s : sizes) {
    moody_ref[s] =
        model::optimize_moody(model::SystemProfile::coastal().scaled_rms(s))
            .net2;
  }

  // max SF (per size) at which L2L3 still beats Moody.
  std::map<double, double> last_profitable;
  for (double sf : sfs) {
    std::vector<std::string> row = {TextTable::num(sf, 0)};
    std::vector<double> l2l3_vals;
    for (double s : sizes) {
      const auto sys =
          model::SystemProfile::coastal().scaled_rms(s).with_sharing(sf);
      const double v =
          model::minimize_scalar(
              [&](double w) {
                return model::net2_static(LevelCombo::kL2L3, sys, w);
              },
              1.0, 1e7, 32, 50)
              .value;
      l2l3_vals.push_back(v);
      if (v < moody_ref[s]) last_profitable[s] = sf;
      row.push_back(TextTable::num(v, 3));
    }
    for (double s : sizes) row.push_back(TextTable::num(moody_ref[s], 3));
    table.add_row(row);
  }
  table.print(std::cout);
  table.print_csv(std::cout);

  for (double s : sizes) {
    std::printf("size %.0fx: L2L3 profitable up to SF = %.0f\n", s,
                last_profitable[s]);
    const std::string sz = TextTable::num(s, 0) + "x";
    session.sample("max_profitable_sf." + sz, "sf", last_profitable[s],
                   /*higher_is_better=*/true);
    session.sample("net2.moody." + sz, "net2", moody_ref[s]);
    check.expect(last_profitable[s] >= 3.0,
                 "L2L3 beats Moody at SF >= 3 for size " +
                     TextTable::num(s, 0) + "x");
  }
  return session.finish(check);
}
