// Transfer-engine goodput bench: the Fig. 7 sharing mechanism measured at
// the chunk level, plus retry pressure on a lossy channel.
//
// Part 1 drains N equal checkpoint objects concurrently over one channel
// and reports each drain's goodput: the engine prices every chunk at
// bandwidth / active_streams, so per-drain goodput must track B/N (the
// sharing factor emergent, not assumed) while aggregate goodput stays ~B.
//
// Part 2 repeats a drain over channels with increasing drop probability
// and reports the xfer::Stats counters (chunks, retries, wasted bytes,
// backoff time): everything still commits, goodput degrades monotonically.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "storage/storage.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

using namespace aic;

namespace {

Bytes object_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = std::uint8_t(rng());
  return b;
}

}  // namespace

int main() {
  bench::Session session("xfer_goodput");
  bench::Checker check;
  const double bandwidth = 1.0e6;  // 1 MB/s channel
  const std::size_t object_size = bench::smoke_pick<std::size_t>(
      std::size_t(2) << 20, std::size_t(64) << 10);
  const std::size_t chunk = bench::smoke_pick<std::size_t>(64 << 10, 8 << 10);

  // ---- Part 1: emergent bandwidth sharing ----
  TextTable sharing("xfer goodput — per-drain share vs concurrent drains");
  sharing.set_header({"streams", "per-drain B/s", "expected B/N",
                      "aggregate B/s", "elapsed s"});
  for (std::size_t n : {1, 2, 4, 8}) {
    storage::RemoteStore target(1.0e12);
    xfer::StagedTargetSink sink(target);
    xfer::TransferScheduler::Config cfg;
    cfg.chunk_bytes = chunk;
    xfer::TransferScheduler sched(cfg);
    sched.add_level(3, {bandwidth, 0.0}, &sink);

    std::vector<xfer::TransferId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(sched.submit(3, "obj-" + std::to_string(i),
                                 object_bytes(object_size, i + 1)));
    }
    sched.run_until_idle();

    double per_drain = 0.0;
    for (xfer::TransferId id : ids) {
      const xfer::TransferRecord& rec = sched.record(id);
      per_drain += double(rec.total_bytes) /
                   (rec.commit_time - rec.submit_time) / double(n);
    }
    const double aggregate = sched.stats().goodput_bps(sched.now());
    const double expected = bandwidth / double(n);
    sharing.add_row({TextTable::num(double(n), 0),
                     TextTable::num(per_drain, 0),
                     TextTable::num(expected, 0),
                     TextTable::num(aggregate, 0),
                     TextTable::num(sched.now(), 2)});
    auto& per = session.metric("goodput.per_drain.n" + std::to_string(n),
                               "B/s", /*higher_is_better=*/true);
    per.params["streams"] = double(n);
    per.samples.push_back(per_drain);
    session.sample("goodput.aggregate.n" + std::to_string(n), "B/s",
                   aggregate, /*higher_is_better=*/true);
    check.expect(per_drain > 0.9 * expected && per_drain < 1.1 * expected,
                 "per-drain goodput ~ B/" + std::to_string(n) +
                     " with " + std::to_string(n) + " concurrent drains");
    check.expect(aggregate > 0.9 * bandwidth,
                 "aggregate goodput fills the channel at N = " +
                     std::to_string(n));
  }
  sharing.print(std::cout);
  sharing.print_csv(std::cout);

  // ---- Part 2: retry pressure on a lossy channel ----
  TextTable lossy("xfer stats — lossy channel (seeded drop probability)");
  lossy.set_header({"drop p", "chunks", "retries", "wasted B", "backoff s",
                    "goodput B/s"});
  double last_goodput = 2.0 * bandwidth;
  for (double p : {0.0, 0.1, 0.3}) {
    storage::RemoteStore target(1.0e12);
    xfer::StagedTargetSink sink(target);
    xfer::TransferScheduler::Config cfg;
    cfg.chunk_bytes = chunk;
    cfg.retry.max_attempts_per_chunk = 32;  // ride out long loss bursts
    cfg.retry.initial_backoff_s = 0.01;
    cfg.retry.max_backoff_s = 0.16;
    xfer::TransferScheduler sched(cfg);
    sched.add_level(3, {bandwidth, 0.0}, &sink);
    sched.channel(3).set_drop_probability(p, 42);

    const xfer::TransferId id =
        sched.submit(3, "obj", object_bytes(object_size, 7));
    sched.run_until_idle();

    const xfer::TransferRecord& rec = sched.record(id);
    const xfer::Stats s = sched.stats();
    const double goodput = s.goodput_bps(sched.now());
    lossy.add_row({TextTable::num(p, 2),
                   TextTable::num(double(s.chunks_sent), 0),
                   TextTable::num(double(s.retries), 0),
                   TextTable::num(double(s.bytes_wasted), 0),
                   TextTable::num(s.backoff_seconds, 3),
                   TextTable::num(goodput, 0)});
    std::string pk = "p";
    pk += TextTable::num(p, 2);
    session.sample("goodput.lossy." + pk, "B/s", goodput,
                   /*higher_is_better=*/true);
    session.sample("retries.lossy." + pk, "count", double(s.retries));
    session.sample("backoff.lossy." + pk, "s", s.backoff_seconds);
    check.expect(rec.state == xfer::TransferState::kCommitted,
                 "drain commits despite drop p = " + TextTable::num(p, 2));
    check.expect(goodput < last_goodput,
                 "goodput degrades monotonically at drop p = " +
                     TextTable::num(p, 2));
    if (p > 0.0) {
      check.expect(s.retries > 0, "losses force retries at drop p = " +
                                      TextTable::num(p, 2));
    }
    last_goodput = goodput;
  }
  lossy.print(std::cout);
  lossy.print_csv(std::cout);

  return session.finish(check);
}
