#!/usr/bin/env bash
# Tool-level test for aic_fsck's future-format-version semantics.
#
# A record that opens with a well-formed "AICCKPT" magic and a version
# digit newer than this build ("AICCKPT4"..."AICCKPT9") is NOT corruption:
# the chain needs a newer reader, not repair. aic_fsck must surface it as
# the typed [unsupported-version] diagnostic and exit 2 — distinct from
# both a clean chain (0) and an integrity failure (1). The same record
# with a non-digit version byte IS corruption and must stay exit 1.
#
# Usage: fsck_version_test.sh <path-to-aic_fsck>
set -u

fsck="${1:?usage: fsck_version_test.sh <path-to-aic_fsck>}"
if [[ ! -x "$fsck" ]]; then
  echo "aic_fsck binary not built in this configuration; skipping"
  exit 127
fi

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
fail() {
  echo "FAIL: $*"
  exit 1
}

# Case 1: a v4 record — plausible future format, unreadable by this build.
# "AAICCKT" is the little-endian byte image of the checkpoint magic
# constant (ckpt/checkpoint_file.cc), followed by the version digit.
printf 'AAICCKT4\x00\x00\x00\x00rest-of-a-format-we-cannot-read' \
  >"$dir/ckpt-0"
out="$("$fsck" "$dir")"
rc=$?
echo "$out"
[[ $rc -eq 2 ]] || fail "future-version record must exit 2, got $rc"
grep -q 'unsupported-version' <<<"$out" ||
  fail "missing [unsupported-version] diagnostic"
grep -q 'UNSUPPORTED VERSION' <<<"$out" ||
  fail "summary must say UNSUPPORTED VERSION"
grep -q 'newer than this build' <<<"$out" ||
  fail "diagnostic must explain the reader is too old"
grep -q 'CORRUPT' <<<"$out" &&
  fail "future-version chain must not be reported CORRUPT"

# Case 2 (contrast): same record with a non-digit version byte — that is
# not a version from the future, it is a damaged magic: plain corruption.
printf 'AAICCKTz\x00\x00\x00\x00rest-of-a-format-we-cannot-read' \
  >"$dir/ckpt-0"
out="$("$fsck" "$dir")"
rc=$?
echo "$out"
[[ $rc -eq 1 ]] || fail "damaged magic must exit 1, got $rc"
grep -q 'CORRUPT' <<<"$out" || fail "damaged magic must report CORRUPT"
grep -q 'unsupported-version' <<<"$out" &&
  fail "damaged magic must not claim unsupported-version"

echo "fsck_version_test: OK"
