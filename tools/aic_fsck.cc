// aic_fsck — checkpoint-chain integrity checker.
//
// Usage:
//   aic_fsck [options] <checkpoint-file|chain-directory>...
//
// Each file argument is one serialized ckpt::CheckpointFile record; a
// directory argument contributes its regular files in lexicographic name
// order (the order MultiLevelStore's ckpt-<index> keys sort in). All
// records together form one chain, verified in argument order.
//
// Options:
//   --structural   skip payload replay (structural invariants only)
//   --no-v1-warn   do not warn about checksum-less v1 records
//   -q, --quiet    print only the summary line
//
// Exit status: 0 chain clean (warnings allowed), 1 integrity errors
// found, 2 usage or I/O error — or a record whose format version is newer
// than this build reads ([unsupported-version]): that chain needs a newer
// aic_fsck, not repair, so it is deliberately NOT exit 1. Never crashes on
// corrupt input — every fault surfaces as a printed diagnostic.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "verify/chain_verifier.h"

namespace {

namespace fs = std::filesystem;
using aic::Bytes;

bool read_file(const fs::path& path, Bytes& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return !in.bad();
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--structural] [--no-v1-warn] [-q|--quiet] "
               "<checkpoint-file|chain-directory>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  aic::verify::ChainVerifier::Options options;
  bool quiet = false;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--structural") {
      options.replay = false;
    } else if (arg == "--no-v1-warn") {
      options.warn_v1 = false;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "aic_fsck: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  // Expand directories, keep explicit files as given. Staged transfer
  // partials ("<key>.partial" — an interrupted drain's resumable leftover)
  // are never chain records: they are reported as their own diagnostic and
  // excluded from verification rather than flagged as corruption.
  std::vector<fs::path> record_paths;
  std::vector<fs::path> partial_paths;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<fs::path> entries;
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file()) entries.push_back(entry.path());
      }
      if (ec) {
        std::cerr << "aic_fsck: cannot list " << input << ": "
                  << ec.message() << "\n";
        return 2;
      }
      std::sort(entries.begin(), entries.end());
      for (const fs::path& p : entries) {
        if (aic::verify::is_partial_transfer_name(p.filename().string())) {
          partial_paths.push_back(p);
        } else {
          record_paths.push_back(p);
        }
      }
    } else {
      record_paths.push_back(input);
    }
  }
  if (record_paths.empty() && partial_paths.empty()) {
    std::cerr << "aic_fsck: no checkpoint records found\n";
    return 2;
  }

  std::vector<Bytes> records;
  records.reserve(record_paths.size());
  for (const fs::path& path : record_paths) {
    Bytes bytes;
    if (!read_file(path, bytes)) {
      std::cerr << "aic_fsck: cannot read " << path << "\n";
      return 2;
    }
    records.push_back(std::move(bytes));
  }

  const aic::verify::ChainVerifier verifier(options);
  const aic::verify::Report report = verifier.verify_serialized(records);

  if (!quiet) {
    for (const fs::path& p : partial_paths) {
      std::cout << p.string()
                << ": NOTE [staged-partial] in-progress transfer staging "
                   "file — resumable drain leftover, not part of the "
                   "committed chain\n";
    }
    for (const auto& d : report.diagnostics) {
      std::cout << record_paths[std::min(d.chain_index,
                                         record_paths.size() - 1)]
                       .string()
                << ": " << d.render() << "\n";
    }
  }
  bool unsupported = false;
  for (const auto& d : report.diagnostics)
    unsupported |= d.code == aic::verify::CheckCode::kUnsupportedVersion;

  std::cout << "aic_fsck: " << report.summary();
  if (!partial_paths.empty()) {
    std::cout << ", " << partial_paths.size() << " staged partial(s)";
  }
  std::cout << (report.ok()      ? " — clean"
                : unsupported    ? " — UNSUPPORTED VERSION"
                                 : " — CORRUPT")
            << "\n";
  // Reader-too-old beats corrupt: nothing here is repairable by this
  // build, and scripts must not treat it as chain damage.
  if (unsupported) return 2;
  return report.ok() ? 0 : 1;
}
