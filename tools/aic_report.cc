// aic_report — human-readable summary of an instrumented AIC run.
//
// Usage:
//   aic_report [--csv] <metrics.json> [chrome_trace.json]
//   aic_report --demo [--out DIR]
//
// The first form reads a metrics snapshot exported by
// obs::metrics_to_json and (optionally) the run's Chrome-trace file from
// obs::trace_to_chrome_json, and prints the per-run report: simulator
// outcome, decider behaviour with the chosen w_L* history, predictor
// residual statistics, compression and transfer-engine totals. --csv
// instead re-emits the metrics as kind,name,field,value CSV rows.
//
// --demo runs a small instrumented pipeline onto one hub — an adaptive
// (AIC) experiment to exercise the decider and predictor, then a
// failure-simulator run with the transfer engine on and a few injected
// failures — prints its report, and with --out also writes
// DIR/metrics.json and DIR/trace.json, ready to open in chrome://tracing
// or feed back through the first form.
//
// Exit status: 0 success, 1 malformed input, 2 usage or I/O error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "control/cost_model.h"
#include "control/experiment.h"
#include "failure/failure.h"
#include "model/system_profile.h"
#include "obs/export.h"
#include "obs/report.h"
#include "sim/failure_sim.h"
#include "workload/workload.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--csv] <metrics.json> [chrome_trace.json]\n"
            << "       " << argv0 << " --demo [--out DIR]\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return bool(out);
}

int run_demo(const std::string& out_dir) {
  aic::obs::Hub hub;

  // Adaptive experiment first: populates the decider and predictor
  // sections (w_L* history, Newton iterations, residual histograms).
  {
    const auto benchmark = aic::workload::SpecBenchmark::kBzip2;
    aic::control::ExperimentConfig ecfg;
    const auto split = aic::model::split_rate(1e-3);
    ecfg.system.lambda = {split[0], split[1], split[2]};
    ecfg.workload_scale = 0.125;
    const auto prof = aic::workload::spec_profile(benchmark,
                                                  ecfg.workload_scale);
    ecfg.costs = aic::control::CostModel::paper_scaled(prof.footprint_pages *
                                                       aic::kPageSize);
    ecfg.obs = &hub;
    aic::control::run_experiment(aic::control::Scheme::kAic, benchmark, ecfg);
  }

  // Then a failure-simulator run through the same hub: transfer-engine
  // chunk spans, failure/restore instants, end-of-run gauges.
  aic::sim::FailureSimConfig cfg;
  cfg.benchmark = aic::workload::SpecBenchmark::kBzip2;
  cfg.workload_scale = 0.125;
  cfg.failures = aic::failure::FailureSpec::from_total(0.04);
  cfg.checkpoint_interval = 10.0;
  cfg.seed = 11;
  cfg.use_transfer_engine = true;
  cfg.obs = &hub;
  const aic::sim::FailureSimResult res = aic::sim::run_failure_sim(cfg);

  const aic::obs::RunReport report = aic::obs::RunReport::from_hub(hub);
  std::cout << report.render();
  std::cout << "\n(final state verified: "
            << (res.final_state_verified ? "yes" : "NO") << ")\n";

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string metrics_path = out_dir + "/metrics.json";
    const std::string trace_path = out_dir + "/trace.json";
    if (!write_file(metrics_path,
                    aic::obs::metrics_to_json(hub.metrics.snapshot())) ||
        !write_file(trace_path, aic::obs::trace_to_chrome_json(hub.trace))) {
      std::cerr << "aic_report: cannot write into " << out_dir << "\n";
      return 2;
    }
    std::cout << "wrote " << metrics_path << " and " << trace_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool demo = false;
  std::string out_dir;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--out") {
      if (++i >= argc) return usage(argv[0]);
      out_dir = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage(argv[0]);
    }
  }

  if (demo) {
    if (csv || !metrics_path.empty()) return usage(argv[0]);
    return run_demo(out_dir);
  }
  if (metrics_path.empty()) return usage(argv[0]);

  const auto metrics_json = read_file(metrics_path);
  if (!metrics_json) {
    std::cerr << "aic_report: cannot read " << metrics_path << "\n";
    return 2;
  }
  std::string trace_json;
  if (!trace_path.empty()) {
    const auto t = read_file(trace_path);
    if (!t) {
      std::cerr << "aic_report: cannot read " << trace_path << "\n";
      return 2;
    }
    trace_json = *t;
  }

  try {
    if (csv) {
      std::cout << aic::obs::metrics_to_csv(
          aic::obs::metrics_from_json(*metrics_json));
      return 0;
    }
    const aic::obs::RunReport report =
        aic::obs::RunReport::from_json(*metrics_json, trace_json);
    std::cout << report.render();
  } catch (const aic::CheckError& e) {
    std::cerr << "aic_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
