// aic_top — text dashboard over a recorded telemetry plane.
//
// Usage:
//   aic_top [--top K] [--follow [--delay-ms N]] <telemetry.json>
//   aic_top --demo [--jobs N] [--shards S] [--out DIR] [--top K]
//
// The first form reads a telemetry document exported by
// obs::telemetry_to_json (schema aic-telemetry-v1) and renders the fleet's
// health at the recording instant: per-tenant series sparklines, the SLO
// rule verdicts with burn rates, the recent SLO event tail, and the top-k
// slowest time-to-safe causal chains with their segment breakdowns —
// "where did the p99 actually go". --follow replays the recorded series
// history as successive frames (oldest to newest) before settling on the
// final dashboard; --delay-ms throttles the frames (0 = as fast as the
// terminal drains, the CI setting).
//
// --demo runs a multi-tenant fleet (default 1000 jobs) with telemetry and
// a few SLO rules attached, prints the dashboard, and with --out also
// writes DIR/telemetry.json ready to feed back through the first form.
//
// Exit status: 0 success, 1 malformed input, 2 usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/qos_policy.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/lanl_trace.h"

namespace {

namespace on = aic::obs::names;
using aic::obs::CausalChain;
using aic::obs::CausalSegment;
using aic::obs::SamplePoint;
using aic::obs::SloStatus;
using aic::obs::TelemetryDoc;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--top K] [--follow [--delay-ms N]] <telemetry.json>\n"
            << "       " << argv0
            << " --demo [--jobs N] [--shards S] [--out DIR] [--top K]\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return bool(out);
}

/// 1234567.0 -> "1.2M" — compact engineering units for table cells.
std::string human(double v) {
  const char* suffix = "";
  double a = v < 0 ? -v : v;
  if (a >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (a >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (a >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::ostringstream os;
  os.precision(v == 0.0 || (v >= 10 && !*suffix) ? 0 : 1);
  os << std::fixed << v << suffix;
  return os.str();
}

std::string seconds(double s) {
  std::ostringstream os;
  os.precision(s >= 100 ? 0 : 2);
  os << std::fixed << s << "s";
  return os.str();
}

/// Unicode block sparkline of the last `width` points, scaled min..max.
std::string sparkline(const std::vector<SamplePoint>& pts, std::size_t width) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  if (pts.empty()) return std::string(width, '-');
  const std::size_t n = std::min(width, pts.size());
  const std::size_t first = pts.size() - n;
  double lo = pts[first].v, hi = pts[first].v;
  for (std::size_t i = first; i < pts.size(); ++i) {
    lo = std::min(lo, pts[i].v);
    hi = std::max(hi, pts[i].v);
  }
  std::string out;
  for (std::size_t i = first; i < pts.size(); ++i) {
    const double norm = hi > lo ? (pts[i].v - lo) / (hi - lo) : 0.5;
    out += kBlocks[std::size_t(norm * 8.0 + 0.5)];
  }
  return out;
}

const std::vector<SamplePoint>* find_series(const TelemetryDoc& doc,
                                            const std::string& name) {
  auto it = doc.series.find(name);
  return it == doc.series.end() ? nullptr : &it->second;
}

/// Points with t <= cutoff (the --follow frame truncation).
std::vector<SamplePoint> upto(const std::vector<SamplePoint>& pts,
                              double cutoff) {
  std::vector<SamplePoint> out;
  for (const SamplePoint& p : pts) {
    if (p.t <= cutoff) out.push_back(p);
  }
  return out;
}

/// Tenant ids present in the doc's fleet.tenant.<id>.* namespace.
std::vector<std::uint64_t> tenants_of(const TelemetryDoc& doc) {
  std::set<std::uint64_t> ids;
  const std::string prefix = "fleet.tenant.";
  for (const auto& [name, pts] : doc.series) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t dot = name.find('.', prefix.size());
    if (dot == std::string::npos || dot == prefix.size()) continue;
    const std::string id = name.substr(prefix.size(), dot - prefix.size());
    if (id.find_first_not_of("0123456789") != std::string::npos) continue;
    ids.insert(std::stoull(id));
  }
  return {ids.begin(), ids.end()};
}

void render_tenants(const TelemetryDoc& doc, double cutoff,
                    std::ostream& out) {
  const std::vector<std::uint64_t> ids = tenants_of(doc);
  if (ids.empty()) {
    out << "  (no per-tenant series recorded)\n";
    return;
  }
  for (const std::uint64_t id : ids) {
    const std::string base = on::tenant_metric(id, "");
    auto last_of = [&](const char* field) -> std::optional<double> {
      const auto* pts = find_series(doc, base + field);
      if (pts == nullptr) return std::nullopt;
      const auto cut = upto(*pts, cutoff);
      if (cut.empty()) return std::nullopt;
      return cut.back().v;
    };
    const auto* goodput = find_series(doc, base + on::kTenantGoodputBps);
    const std::vector<SamplePoint> gp =
        goodput ? upto(*goodput, cutoff) : std::vector<SamplePoint>{};
    out << "  tenant " << id << "  goodput " << sparkline(gp, 24) << " "
        << human(gp.empty() ? 0.0 : gp.back().v) << "Bps";
    if (const auto v = last_of(on::kTenantCommits)) {
      out << "  commits " << human(*v);
    }
    if (const auto v = last_of(on::kTenantNet2Bytes)) {
      out << "  net2 " << human(*v) << "B";
    }
    const auto* tts =
        find_series(doc, base + std::string(on::kTenantTimeToSafeSeconds) +
                             ".p99");
    if (tts != nullptr) {
      const auto cut = upto(*tts, cutoff);
      if (!cut.empty()) out << "  tts.p99 " << seconds(cut.back().v);
    }
    out << "\n";
  }
}

void render_slo(const TelemetryDoc& doc, std::ostream& out) {
  if (doc.status.empty()) {
    out << "  (no SLO rules attached)\n";
    return;
  }
  for (const SloStatus& s : doc.status) {
    const char* verdict = !s.evaluated ? "  n/a  "
                          : s.breached  ? "BREACH "
                          : s.burning   ? "BURNING"
                                        : "  ok   ";
    out << "  [" << verdict << "] " << s.rule << ": " << s.series << " "
        << to_string(s.cmp) << " " << human(s.threshold);
    if (s.evaluated) {
      out << "  value " << human(s.value);
      if (s.burn_long > 0.0 || s.burn_short > 0.0) {
        out << "  burn " << human(s.burn_short) << "x/" << human(s.burn_long)
            << "x";
      }
      if (s.breaches > 0) out << "  breaches " << s.breaches;
      if (s.burn_alerts > 0) out << "  alerts " << s.burn_alerts;
    }
    out << "\n";
  }
}

void render_events(const TelemetryDoc& doc, double cutoff, std::size_t tail,
                   std::ostream& out) {
  std::vector<const aic::obs::SloEvent*> shown;
  for (const auto& e : doc.events) {
    if (e.t <= cutoff) shown.push_back(&e);
  }
  if (shown.empty()) {
    out << "  (none)\n";
    return;
  }
  const std::size_t first = shown.size() > tail ? shown.size() - tail : 0;
  for (std::size_t i = first; i < shown.size(); ++i) {
    const auto& e = *shown[i];
    out << "  t=" << seconds(e.t) << "  " << e.rule << " "
        << to_string(e.kind) << "  value " << human(e.value) << "\n";
  }
}

void render_chains(const TelemetryDoc& doc, std::size_t top_k,
                   std::ostream& out) {
  if (doc.slowest.empty()) {
    out << "  (no closed causal chains)\n";
    return;
  }
  const std::size_t n = std::min(top_k, doc.slowest.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CausalChain& c = doc.slowest[i];
    out << "  " << (i + 1) << ". " << c.label << " (tenant " << c.tenant
        << ")  total " << seconds(c.total_s) << "  —  ";
    // Percent denominator: segments can legitimately over-account the
    // closer's total (a modeled capture pause runs concurrently with the
    // drain timeline), so scale against whichever is larger.
    const double denom = std::max(c.total_s, c.accounted());
    // Segments sorted largest-first; zero segments omitted.
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < aic::obs::kCausalSegmentCount; ++s) {
      if (c.seg[s] > 0.0) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return c.seg[a] > c.seg[b];
    });
    bool first = true;
    for (const std::size_t s : order) {
      if (!first) out << " | ";
      first = false;
      const int pct = denom > 0.0 ? int(c.seg[s] / denom * 100.0 + 0.5) : 0;
      out << to_string(CausalSegment(s)) << " " << seconds(c.seg[s]) << " "
          << pct << "%";
    }
    if (c.unattributed() > 0.005 * std::max(1.0, c.total_s)) {
      out << (first ? "" : " | ") << "unattributed "
          << seconds(c.unattributed());
    }
    out << "\n";
  }
}

void render(const TelemetryDoc& doc, std::size_t top_k, std::ostream& out) {
  out << "aic_top — telemetry at virtual t=" << seconds(doc.now_s) << "  ("
      << doc.series.size() << " series, " << doc.rules.size()
      << " SLO rules, " << doc.events.size() << " retained events)\n";

  out << "\nfleet\n";
  for (const char* name : {on::kFleetGoodputBps, on::kFleetAdmissionDemandBps,
                           on::kFleetAdmissionQueueDepth}) {
    const auto* pts = find_series(doc, name);
    if (pts == nullptr || pts->empty()) continue;
    out << "  " << name << " " << sparkline(*pts, 32) << " "
        << human(pts->back().v) << "\n";
  }

  out << "\ntenants\n";
  render_tenants(doc, doc.now_s, out);
  out << "\nslo\n";
  render_slo(doc, out);
  out << "\nslo events (tail)\n";
  render_events(doc, doc.now_s, 8, out);
  out << "\nslowest time-to-safe chains\n";
  render_chains(doc, top_k, out);
}

void follow(const TelemetryDoc& doc, std::size_t top_k, int delay_ms,
            std::ostream& out) {
  // Frame cutoffs: the distinct sample times of the recorded series,
  // strided down to at most 30 frames.
  std::set<double> times;
  for (const auto& [name, pts] : doc.series) {
    for (const SamplePoint& p : pts) times.insert(p.t);
  }
  std::vector<double> cuts(times.begin(), times.end());
  const std::size_t stride = std::max<std::size_t>(1, cuts.size() / 30);
  for (std::size_t i = 0; i < cuts.size(); i += stride) {
    const double t = cuts[i];
    out << "--- frame t=" << seconds(t) << " ---\n";
    render_tenants(doc, t, out);
    if (delay_ms > 0) {
      out.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  out << "--- final ---\n";
  render(doc, top_k, out);
}

int run_demo(std::size_t jobs, int shards, const std::string& out_dir,
             std::size_t top_k) {
  aic::obs::Hub hub;
  aic::obs::Telemetry& tel = hub.enable_telemetry();
  // Threshold SLOs over the demo fleet: goodput floor (gauge), bounded
  // p99 time-to-safe with burn-rate windows, and an admission queue that
  // should stay shallow.
  tel.slo().add_rule(std::string(on::kFleetGoodputBps) + "-floor: " +
                     on::kFleetGoodputBps + " > 1.0");
  tel.slo().add_rule("tts-p99: " + std::string(on::kFleetTimeToSafeSeconds) +
                     ".p99 < 120 budget 0.1 burn 60/600 x1");
  tel.slo().add_rule("admission-queue: " +
                     std::string(on::kFleetAdmissionQueueDepth) +
                     " < 1 budget 0.25 burn 60/600 x2");

  aic::fleet::FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = 42;
  cfg.quantum_s = 5.0;
  cfg.bandwidth_bps = 2.0e7 * double(jobs);
  cfg.chunk_bytes = 4 * 1024 * 1024;
  cfg.lambda_total = 1.0e-3;
  cfg.restart_s = 10.0;
  cfg.min_interval_s = 15.0;
  cfg.max_interval_s = 600.0;
  cfg.max_virtual_s = 86400.0;
  cfg.admission.target_utilization = 0.7;
  cfg.admission.queue_capacity = jobs;
  cfg.obs = &hub;

  aic::workload::FleetMixConfig mix;
  mix.jobs = jobs;
  mix.tenants = 8;
  mix.seed = 42;
  mix.arrival_horizon_s = 300.0;
  mix.min_work_s = 60.0;
  mix.max_work_s = 600.0;
  mix.pages_per_process = 256;

  aic::fleet::QosPolicy policy;
  policy.set(aic::fleet::Tenant{0, "gold", {1.0, cfg.bandwidth_bps / 10.0}});

  aic::fleet::FleetScheduler fleet(cfg, aic::workload::lanl_fleet_jobs(mix),
                                   policy);
  fleet.run();

  const TelemetryDoc doc = tel.doc();
  render(doc, top_k, std::cout);

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/telemetry.json";
    if (!write_file(path, aic::obs::telemetry_to_json(doc))) {
      std::cerr << "error: cannot write " << path << "\n";
      return 2;
    }
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool do_follow = false;
  int delay_ms = 0;
  std::size_t top_k = 8;
  std::size_t jobs = 1000;
  int shards = 1;
  std::string out_dir;
  std::string input;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--follow") {
      do_follow = true;
    } else if (arg == "--delay-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      delay_ms = std::atoi(v);
    } else if (arg == "--top") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      top_k = std::size_t(std::atoll(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      jobs = std::size_t(std::atoll(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      shards = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_dir = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (demo) {
      if (!input.empty()) return usage(argv[0]);
      return run_demo(jobs, shards, out_dir, top_k);
    }
    if (input.empty()) return usage(argv[0]);
    const auto text = read_file(input);
    if (!text) {
      std::cerr << "error: cannot read " << input << "\n";
      return 2;
    }
    const TelemetryDoc doc = aic::obs::telemetry_from_json(*text);
    if (do_follow) {
      follow(doc, top_k, delay_ms, std::cout);
    } else {
      render(doc, top_k, std::cout);
    }
    return 0;
  } catch (const aic::CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
