// aic_lint — project-aware static analyzer for the AIC tree.
//
// Token-level reimplementation of the scripts/lint.sh conventions (L1–L6)
// plus the include-layering DAG, determinism, and exception-discipline
// rules — see src/analysis/rules.h for the catalog and DESIGN.md §14 for
// the architecture. Scans src/ (all rules) and bench/ + tools/
// (clock-gateway only) under the given root.
//
// Usage:
//   aic_lint [--root DIR] [--baseline FILE | --no-baseline] [--json]
//            [--all] [--write-baseline FILE]
//
// Options:
//   --root DIR             tree to scan (default .; must contain src/)
//   --baseline FILE        suppression baseline (default
//                          <root>/.aic-lint-baseline.json when present)
//   --no-baseline          ignore any baseline
//   --json                 emit the aic-lint-v1 findings document
//   --all                  print suppressed findings too
//   --write-baseline FILE  write a baseline covering every currently
//                          unsuppressed finding, then exit 0 (burn-down
//                          bookkeeping, not a free pass: review the diff)
//
// Exit status (matches aic_fsck / aic_benchdiff conventions):
//   0  clean — no unsuppressed findings, no stale baseline entries
//   1  findings (or a stale baseline entry: the baseline must stay exact)
//   2  usage, I/O, or baseline-parse error
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/check.h"

namespace {

namespace fs = std::filesystem;
using aic::analysis::Analysis;
using aic::analysis::Baseline;
using aic::analysis::BaselineEntry;
using aic::analysis::Finding;
using aic::analysis::SourceFile;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--baseline FILE | --no-baseline] [--json]"
            << " [--all] [--write-baseline FILE]\n";
  return 2;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

/// Collects .cc/.h files under root/<sub>, with repo-relative forward-slash
/// paths, sorted for deterministic reports.
bool collect(const fs::path& root, const std::string& sub,
             std::vector<SourceFile>* out) {
  std::error_code ec;
  const fs::path dir = root / sub;
  if (!fs::is_directory(dir, ec)) return true;  // bench/ or tools/ may be absent
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && source_extension(it->path())) {
      paths.push_back(it->path());
    }
  }
  if (ec) {
    std::cerr << "aic_lint: cannot walk " << dir.string() << ": "
              << ec.message() << "\n";
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    const auto content = read_file(p);
    if (!content) {
      std::cerr << "aic_lint: cannot read " << p.string() << "\n";
      return false;
    }
    out->push_back(
        {fs::relative(p, root).generic_string(), std::move(*content)});
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  bool no_baseline = false, json = false, show_all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (++i >= argc) return false;
      *out = argv[i];
      return true;
    };
    if (arg == "--root") {
      if (!next(&root)) return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (!next(&baseline_path)) return usage(argv[0]);
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--all") {
      show_all = true;
    } else if (arg == "--write-baseline") {
      if (!next(&write_baseline_path)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  std::error_code ec;
  if (!fs::is_directory(fs::path(root) / "src", ec)) {
    std::cerr << "aic_lint: " << root << " has no src/ directory\n";
    return 2;
  }

  std::vector<SourceFile> files;
  for (const char* sub : {"src", "bench", "tools"}) {
    if (!collect(root, sub, &files)) return 2;
  }

  Baseline baseline;
  if (!no_baseline) {
    fs::path bp = baseline_path.empty()
                      ? fs::path(root) / ".aic-lint-baseline.json"
                      : fs::path(baseline_path);
    const bool required = !baseline_path.empty();
    if (fs::is_regular_file(bp, ec)) {
      const auto text = read_file(bp);
      if (!text) {
        std::cerr << "aic_lint: cannot read baseline " << bp.string() << "\n";
        return 2;
      }
      try {
        baseline = aic::analysis::baseline_from_json(*text);
      } catch (const aic::CheckError& e) {
        std::cerr << "aic_lint: bad baseline " << bp.string() << ": "
                  << e.what() << "\n";
        return 2;
      }
    } else if (required) {
      std::cerr << "aic_lint: baseline not found: " << bp.string() << "\n";
      return 2;
    }
  }

  const Analysis analysis = aic::analysis::analyze(files, baseline);

  if (!write_baseline_path.empty()) {
    Baseline fresh;
    for (const Finding& f : analysis.findings) {
      if (f.suppressed) continue;
      fresh.entries.push_back(
          {f.rule, f.path, f.fingerprint, "baselined legacy finding"});
    }
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "aic_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    out << aic::analysis::baseline_to_json(fresh);
    std::cout << "aic_lint: wrote " << fresh.entries.size()
              << " suppression(s) to " << write_baseline_path << "\n";
    return 0;
  }

  if (json) {
    std::cout << aic::analysis::analysis_to_json(analysis);
  } else {
    for (const Finding& f : analysis.findings) {
      if (f.suppressed && !show_all) continue;
      std::cout << f.path << ":" << f.line << ": " << f.rule << ": "
                << f.message;
      if (f.suppressed) std::cout << " [suppressed: " << f.suppressed_by << "]";
      std::cout << "\n";
    }
    for (const BaselineEntry& e : analysis.stale) {
      std::cout << "stale baseline entry: " << e.rule << " " << e.path << " ("
                << e.fingerprint << ") — finding fixed? remove the entry\n";
    }
    std::cout << "aic_lint: " << analysis.files << " file(s), "
              << analysis.unsuppressed << " finding(s), "
              << analysis.suppressed_baseline << " baselined, "
              << analysis.suppressed_inline << " inline-allowed, "
              << analysis.stale.size() << " stale baseline entr(y/ies)\n";
  }
  return analysis.clean() ? 0 : 1;
}
