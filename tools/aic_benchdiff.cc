// aic_benchdiff — noise-aware comparison of benchmark telemetry records.
//
// Usage:
//   aic_benchdiff [options] <baseline> <current>
//   aic_benchdiff --check <path>...
//
// <baseline> and <current> are either single BENCH_<target>.json files
// (written by bench::Session) or directories holding any number of them;
// directory pairs are matched by filename. Metrics are paired by name and
// judged with a bootstrap confidence interval over the recorded samples —
// a metric is only flagged when its whole 95% CI clears the threshold, so
// single noisy samples don't page anyone. --check just validates that
// every named record parses against the aic-bench-v1 schema.
//
// Options:
//   --threshold T   relative-change threshold (default 0.10)
//   --bootstrap N   bootstrap resample count (default 500)
//   --seed S        bootstrap RNG seed (default 42)
//   --all           print neutral metrics too (default: changes only)
//   --check         validate records instead of diffing
//
// Exit status: 0 no regressions, 1 at least one regression (named on
// stdout), 2 usage, I/O or parse error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "obs/bench_diff.h"
#include "obs/bench_record.h"

namespace {

namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threshold T] [--bootstrap N] [--seed S] [--all]"
            << " <baseline> <current>\n"
            << "       " << argv0 << " --check <path>...\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

/// Collects BENCH record paths keyed by filename: a directory contributes
/// every BENCH_*.json inside it, a plain file contributes itself.
std::map<std::string, std::string> collect_records(const std::string& path,
                                                   bool* ok) {
  std::map<std::string, std::string> out;
  *ok = true;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 + 6 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        out[name] = entry.path().string();
      }
    }
    if (ec) *ok = false;
  } else if (fs::is_regular_file(path, ec)) {
    out[fs::path(path).filename().string()] = path;
  } else {
    *ok = false;
  }
  return out;
}

std::optional<aic::obs::BenchRecord> load_record(const std::string& path) {
  const auto text = read_file(path);
  if (!text) {
    std::cerr << "aic_benchdiff: cannot read " << path << "\n";
    return std::nullopt;
  }
  try {
    return aic::obs::bench_record_from_json(*text);
  } catch (const aic::CheckError& e) {
    std::cerr << "aic_benchdiff: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::string fmt_value(double v) {
  // Benchmark values span ~12 orders of magnitude (seconds/iter to B/s);
  // fixed precision either truncates or drowns, so pick per magnitude.
  const double a = std::abs(v);
  if (a != 0.0 && (a < 1e-3 || a >= 1e6)) {
    std::ostringstream os;
    os.precision(3);
    os << std::scientific << v;
    return os.str();
  }
  return aic::TextTable::num(v, a < 1.0 ? 4 : 3);
}

int run_check(const std::vector<std::string>& paths) {
  int records = 0;
  for (const std::string& arg : paths) {
    bool ok = false;
    const auto found = collect_records(arg, &ok);
    if (!ok || found.empty()) {
      std::cerr << "aic_benchdiff: no bench records at " << arg << "\n";
      return 2;
    }
    for (const auto& [name, path] : found) {
      const auto rec = load_record(path);
      if (!rec) return 2;
      std::cout << "ok: " << path << " (" << rec->target << ", "
                << rec->metrics.size() << " metric(s))\n";
      ++records;
    }
  }
  std::cout << records << " record(s) valid\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  aic::obs::DiffOptions opt;
  bool show_all = false;
  bool check_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](double* out) {
      if (++i >= argc) return false;
      try {
        *out = std::stod(argv[i]);
      } catch (...) {
        return false;
      }
      return true;
    };
    if (arg == "--threshold") {
      double v;
      if (!next_value(&v) || v <= 0.0) return usage(argv[0]);
      opt.threshold = v;
    } else if (arg == "--bootstrap") {
      double v;
      if (!next_value(&v) || v < 1.0) return usage(argv[0]);
      opt.bootstrap_iterations = int(v);
    } else if (arg == "--seed") {
      double v;
      if (!next_value(&v)) return usage(argv[0]);
      opt.seed = std::uint64_t(v);
    } else if (arg == "--all") {
      show_all = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (check_only) {
    if (paths.empty()) return usage(argv[0]);
    return run_check(paths);
  }
  if (paths.size() != 2) return usage(argv[0]);

  bool base_ok = false, cur_ok = false;
  const auto base_paths = collect_records(paths[0], &base_ok);
  const auto cur_paths = collect_records(paths[1], &cur_ok);
  if (!base_ok || base_paths.empty()) {
    std::cerr << "aic_benchdiff: no bench records at " << paths[0] << "\n";
    return 2;
  }
  if (!cur_ok || cur_paths.empty()) {
    std::cerr << "aic_benchdiff: no bench records at " << paths[1] << "\n";
    return 2;
  }

  int regressions = 0, improvements = 0, neutral = 0, unpaired = 0;
  std::vector<std::string> regressed_names;

  for (const auto& [name, cur_path] : cur_paths) {
    const auto base_it = base_paths.find(name);
    if (base_it == base_paths.end()) {
      std::cout << "note: " << name << " only in current — skipped\n";
      ++unpaired;
      continue;
    }
    const auto base = load_record(base_it->second);
    const auto cur = load_record(cur_path);
    if (!base || !cur) return 2;

    const aic::obs::RecordDiff diff = aic::obs::diff_records(*base, *cur, opt);
    regressions += diff.regressions;
    improvements += diff.improvements;
    neutral += diff.neutral;

    if (diff.provenance_mismatch) {
      std::cerr << "warning: " << diff.target
                << ": baseline and current builds differ ("
                << base->build.compiler << "/" << base->build.build_type
                << "/" << (base->build.sanitizer.empty()
                               ? "no-sanitizer"
                               : base->build.sanitizer)
                << " vs " << cur->build.compiler << "/"
                << cur->build.build_type << "/"
                << (cur->build.sanitizer.empty() ? "no-sanitizer"
                                                 : cur->build.sanitizer)
                << ") — medians may not be comparable\n";
    }

    aic::TextTable table("benchdiff — " + diff.target);
    table.set_header({"metric", "unit", "baseline", "current", "change",
                      "badness CI", "verdict"});
    bool any_row = false;
    for (const aic::obs::MetricDiff& m : diff.metrics) {
      const bool changed =
          m.verdict != aic::obs::DiffVerdict::kNeutral;
      if (!changed && !show_all) continue;
      any_row = true;
      std::string ci("-");
      if (m.verdict == aic::obs::DiffVerdict::kRegression ||
          m.verdict == aic::obs::DiffVerdict::kImprovement ||
          m.verdict == aic::obs::DiffVerdict::kNeutral) {
        std::ostringstream os;
        os << "[" << aic::TextTable::pct(m.badness_lo, 1) << ", "
           << aic::TextTable::pct(m.badness_hi, 1) << "]";
        ci = os.str();
      }
      const bool paired =
          m.verdict != aic::obs::DiffVerdict::kOnlyBaseline &&
          m.verdict != aic::obs::DiffVerdict::kOnlyCurrent;
      table.add_row({m.name, m.unit,
                     paired || m.verdict ==
                                   aic::obs::DiffVerdict::kOnlyBaseline
                         ? fmt_value(m.baseline_median)
                         : "-",
                     paired || m.verdict ==
                                   aic::obs::DiffVerdict::kOnlyCurrent
                         ? fmt_value(m.current_median)
                         : "-",
                     paired ? aic::TextTable::pct(m.rel_change, 1) : "-",
                     ci, to_string(m.verdict)});
      if (m.verdict == aic::obs::DiffVerdict::kRegression) {
        regressed_names.push_back(diff.target + "/" + m.name);
      }
    }
    if (any_row) {
      table.print(std::cout);
    } else {
      std::cout << diff.target << ": " << diff.metrics.size()
                << " metric(s), no changes beyond threshold\n";
    }
  }
  for (const auto& [name, path] : base_paths) {
    if (cur_paths.find(name) == cur_paths.end()) {
      std::cout << "note: " << name << " only in baseline — skipped\n";
      ++unpaired;
    }
  }

  std::cout << "\nsummary: " << regressions << " regression(s), "
            << improvements << " improvement(s), " << neutral
            << " neutral (threshold " << aic::TextTable::pct(opt.threshold, 0)
            << ", " << opt.bootstrap_iterations << " bootstrap rounds)\n";
  for (const std::string& n : regressed_names) {
    std::cout << "REGRESSION: " << n << "\n";
  }
  return regressions > 0 ? 1 : 0;
}
