#!/usr/bin/env bash
# Tool-level test for aic_fsck's staged-partial semantics.
#
# A "<key>.partial" file in a chain directory is the staging leftover of an
# in-progress (interrupted, resumable) transfer drain — NOT corruption. The
# same garbage bytes under a non-partial name ARE corruption. aic_fsck must
# tell the two apart: distinct diagnostic + exit 0 for the partial, error +
# exit 1 for the impostor record.
#
# Usage: fsck_partial_test.sh <path-to-aic_fsck>
set -u

fsck="${1:?usage: fsck_partial_test.sh <path-to-aic_fsck>}"
if [[ ! -x "$fsck" ]]; then
  echo "aic_fsck binary not built in this configuration; skipping"
  exit 127
fi

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
fail() {
  echo "FAIL: $*"
  exit 1
}

# Case 1: directory holding only a staged partial -> clean, distinct note.
printf 'torn mid-chunk bytes' >"$dir/ckpt-7.partial"
out="$("$fsck" "$dir")"
rc=$?
echo "$out"
[[ $rc -eq 0 ]] || fail "partial-only directory must exit 0, got $rc"
grep -q 'staged-partial' <<<"$out" ||
  fail "missing staged-partial diagnostic"
grep -q '1 staged partial(s)' <<<"$out" ||
  fail "summary must count staged partials"
grep -q 'clean' <<<"$out" || fail "partial-only directory must be clean"

# Case 2: the same bytes as a regular record name -> corruption, exit 1.
mv "$dir/ckpt-7.partial" "$dir/ckpt-7"
out="$("$fsck" "$dir")"
rc=$?
echo "$out"
[[ $rc -eq 1 ]] || fail "garbage chain record must exit 1, got $rc"
grep -q 'CORRUPT' <<<"$out" || fail "garbage record must report CORRUPT"

echo "fsck_partial_test: OK"
