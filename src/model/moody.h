// The Moody et al. multi-level checkpointing baseline [11, 12].
//
// Moody checkpointing is sequential (blocking): every checkpoint suspends
// the application for the full c_k. The schedule is hierarchical with
// counts n_k: between consecutive L2 checkpoints there are n1 L1
// checkpoints; between consecutive L3 checkpoints there are n2 L2
// checkpoints. One L3 period therefore has N = (n1+1)(n2+1) segments of
// work span w; segment j ends with a checkpoint of level
//   3            if j == N,
//   2            if j is a multiple of (n1+1),
//   1            otherwise.
//
// A level-k failure in segment j restarts from the most recent checkpoint
// position p < j whose level is >= k (p = 0 denotes the previous period's
// L3 checkpoint) at recovery cost r_k, then re-executes segments p+1..j —
// re-taking their checkpoints, exactly as the real system would. The whole
// period is solved as one absorbing Markov chain; Moody's "efficiency" is
// the inverse of our NET^2 = E[period] / (N*w).
//
// optimize_moody() searches (w, n1, n2) for the minimum NET^2, mirroring
// how the released Moody code "explores its variables, searching for the
// optimal one".
#pragma once

#include <vector>

#include "model/system_profile.h"

namespace aic::model {

/// Expected wall time of one full L3 period. n1, n2 >= 0.
double moody_period_time(const SystemProfile& sys, double w, int n1, int n2);

/// NET^2 of the Moody schedule: E[period] / ((n1+1)(n2+1) w).
double moody_net2(const SystemProfile& sys, double w, int n1, int n2);

struct MoodyResult {
  double net2 = 0.0;
  double w = 0.0;
  int n1 = 0;
  int n2 = 0;
};

/// Searches n1, n2 over `counts` (default {0,1,2,4}) and w over a log
/// grid with golden-section refinement; returns the best configuration.
MoodyResult optimize_moody(const SystemProfile& sys,
                           const std::vector<int>& counts = {0, 1, 2, 4});

}  // namespace aic::model
