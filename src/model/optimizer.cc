#include "model/optimizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace aic::model {

OptResult minimize_scalar(const ScalarFn& f, double lo, double hi,
                          int grid_points, int refine_iters) {
  AIC_CHECK(lo > 0.0 && hi > lo && grid_points >= 3);
  // Log-spaced coarse grid (work spans range over orders of magnitude).
  double best_x = lo;
  double best_v = f(lo);
  int best_i = 0;
  const double ratio = std::pow(hi / lo, 1.0 / double(grid_points - 1));
  std::vector<double> xs(grid_points);
  for (int i = 0; i < grid_points; ++i)
    xs[i] = lo * std::pow(ratio, double(i));
  xs.back() = hi;
  for (int i = 0; i < grid_points; ++i) {
    const double v = f(xs[i]);
    if (v < best_v) {
      best_v = v;
      best_x = xs[i];
      best_i = i;
    }
  }
  // Golden-section refinement in the bracketing cells.
  double a = xs[std::max(0, best_i - 1)];
  double b = xs[std::min(grid_points - 1, best_i + 1)];
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = f(c), fd = f(d);
  for (int it = 0; it < refine_iters && (b - a) > 1e-9 * b; ++it) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = f(d);
    }
  }
  const double mid = 0.5 * (a + b);
  const double fm = f(mid);
  if (fm < best_v) return {mid, fm};
  return {best_x, best_v};
}

double newton_raphson_stationary(const ScalarFn& f, double x0, double lo,
                                 double hi, int max_iters, double tol,
                                 int* iters_out) {
  AIC_CHECK(lo > 0.0 && hi > lo);
  double x = std::clamp(x0, lo, hi);
  int used = max_iters;
  for (int it = 0; it < max_iters; ++it) {
    const double h = std::max(1e-6 * x, 1e-9);
    const double f_plus = f(x + h);
    const double f_minus = f(x - h >= lo ? x - h : lo);
    const double f_mid = f(x);
    const double d1 = (f_plus - f_minus) / (2.0 * h);
    const double d2 = (f_plus - 2.0 * f_mid + f_minus) / (h * h);
    if (std::abs(d1) <= tol) {
      used = it;
      break;
    }
    if (d2 <= 0.0 || !std::isfinite(d2)) {
      // Non-convex locally: take a damped gradient step instead of an NR
      // step, which would head to a maximum.
      x = std::clamp(x - (d1 > 0 ? 0.25 : -0.25) * x, lo, hi);
      continue;
    }
    double next = x - d1 / d2;
    if (!std::isfinite(next)) {
      used = it + 1;
      break;
    }
    next = std::clamp(next, lo, hi);
    if (std::abs(next - x) <= 1e-9 * std::max(1.0, x)) {
      x = next;
      used = it + 1;
      break;
    }
    x = next;
  }
  if (iters_out != nullptr) *iters_out = used;
  return x;
}

OptResult extreme_value_minimum(const ScalarFn& f, double lo, double hi,
                                double x0) {
  return extreme_value_minimum(f, lo, hi, x0, nullptr);
}

OptResult extreme_value_minimum(const ScalarFn& f, double lo, double hi,
                                double x0, EvtDiag* diag) {
  // Boundaries first (the Extreme Value Theorem's frame).
  OptResult best{lo, f(lo)};
  const double f_hi = f(hi);
  if (f_hi < best.value) best = {hi, f_hi};

  // A fixed coarse log grid safeguards the Newton–Raphson seed: the NET^2
  // curve has an infeasibility cliff below w = SF*(c3_prev - c1_prev), and
  // finite-difference NR started inside it can stall on derivative noise.
  // The grid is O(1) work (a dozen chain solves), preserving the paper's
  // online-cost argument.
  constexpr int kCoarse = 12;
  double seed = std::clamp(x0, lo, hi);
  double seed_val = f(seed);
  if (seed_val < best.value) best = {seed, seed_val};
  const double ratio = std::pow(hi / lo, 1.0 / double(kCoarse + 1));
  double x = lo;
  for (int i = 0; i < kCoarse; ++i) {
    x *= ratio;
    const double v = f(x);
    if (v < best.value) best = {x, v};
    if (v < seed_val) {
      seed = x;
      seed_val = v;
    }
  }

  int iters = 0;
  const double x_stat = newton_raphson_stationary(f, seed, lo, hi, 200,
                                                  1e-10, &iters);
  const double f_stat = f(x_stat);
  if (f_stat < best.value) best = {x_stat, f_stat};

  // Bounded polish around the winner. Finite-difference NR can stall on
  // derivative noise a grid cell away from the true minimum (the decider
  // ground-truth test measured up to ~8% NET^2 left on the table), and the
  // bracketing cells may be non-unimodal (the infeasibility cliff, NR
  // stall points), so refine with a dense log grid + golden section over
  // the one-cell neighbourhood. O(100) more chain solves — small next to
  // the NR search itself, preserving the online-cost argument.
  {
    const double a = std::max(lo, best.x / ratio);
    const double b = std::min(hi, best.x * ratio);
    if (b > a) {
      const OptResult polished = minimize_scalar(f, a, b, 24, 48);
      if (polished.value < best.value) best = polished;
    }
  }

  if (diag != nullptr) {
    diag->newton_iters = iters;
    diag->used_boundary = best.x <= lo || best.x >= hi;
  }
  return best;
}

}  // namespace aic::model
