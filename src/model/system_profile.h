// System/application profiles for the checkpoint models.
//
// The baseline is LLNL's Coastal cluster as used by the paper (Section
// III.D / V.A): lambda1 = 2e-7, lambda2 = 1.8e-6, lambda3 = 4e-7 per
// second, c1 = 0.5 s (RAM-disk coordinated checkpoint), c2 = 4.5 s (RAID-5
// partner-memory write), c3 = 1052 s (Lustre), r_k = c_k, B2 = 483 GB/s
// aggregate, B3 = 2 MB/s per node with 1024 nodes writing.
//
// Scaling rules (Sections III.D and V.C):
//   MPI  scaling s: lambda_k *= s (any process failure kills the job) and
//                   c3 *= s (shared remote-storage bandwidth), c1/c2 fixed.
//   RMS  scaling s: c3 *= s only (processes fail independently).
//   Sharing factor SF: one checkpointing core serves SF processes; the
//                   concurrent remote segments dilate by SF.
#pragma once

#include <array>

namespace aic::model {

struct SystemProfile {
  /// Per-level failure rates, lambda[k-1] = lambda_k (1/s).
  std::array<double, 3> lambda{0.0, 0.0, 0.0};
  /// Checkpoint latencies c_k (s). c1 <= c2 <= c3 expected.
  std::array<double, 3> c{0.0, 0.0, 0.0};
  /// Recovery times r_k (s).
  std::array<double, 3> r{0.0, 0.0, 0.0};
  /// Sharing factor: computation cores per checkpointing core (>= 1).
  double sharing_factor = 1.0;

  double total_lambda() const { return lambda[0] + lambda[1] + lambda[2]; }

  /// The Coastal cluster profile from [11] as quoted by the paper.
  static SystemProfile coastal();

  /// MPI scaling: failure rates and c3 grow with the system size.
  SystemProfile scaled_mpi(double s) const;
  /// RMS scaling: only c3 (per-node remote bandwidth) grows.
  SystemProfile scaled_rms(double s) const;
  /// Returns a copy with the given sharing factor.
  SystemProfile with_sharing(double sf) const;

  /// Effective duration of a concurrent remote segment of nominal length
  /// `seconds` under the sharing factor (resources split evenly in the
  /// worst case, Section III.D).
  double shared(double seconds) const { return seconds * sharing_factor; }
};

/// Failure-rate split used in the testbed evaluation (Section V.C):
/// lambda_k proportional to Coastal's 8.3% / 75% / 1.67% shares, rescaled
/// to a given total rate.
std::array<double, 3> coastal_rate_shares();
std::array<double, 3> split_rate(double total_lambda);

}  // namespace aic::model
