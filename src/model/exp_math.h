// Identities for exponentially distributed failure inter-arrival times.
//
// With failure rate lambda, over a state of duration tau:
//   P(no failure)              = exp(-lambda * tau)
//   E[time-to-failure | X<tau] = 1/lambda - tau / (exp(lambda*tau) - 1)
//
// The conditional expectation is evaluated with expm1 and a series fallback
// so it stays accurate for lambda*tau down to 0 (where it tends to tau/2).
// These are the edge weights of every Markov model in this module
// (Section III.C: "Since the time between failures follows an exponential
// distribution, the edge-associated values can be calculated").
#pragma once

namespace aic::model {

/// P(no failure within tau) at rate lambda. tau >= 0, lambda >= 0.
double p_no_failure(double lambda, double tau);

/// E[X | X < tau] for X ~ Exp(lambda): mean time until the failure that
/// interrupts a state of duration tau. Returns 0 for tau == 0.
double expected_failure_time(double lambda, double tau);

}  // namespace aic::model
