// Concurrent multi-level checkpoint interval models (Section III).
//
// Each builder constructs the per-interval Markov chain of Fig. 4 for one
// level combination and returns its expected wall time T_int. States follow
// the paper's description for L1L3 (Section III.C); L2L3 and L1L2L3 "are
// derived similarly", which we do with the same semantics:
//
//   S1    work + local write (w + c1); the process halts during c1.
//   S2*   concurrent remote transfer segments on the checkpointing core
//         while the process keeps computing (durations dilated by the
//         sharing factor SF).
//   S3/S4 recovery from the *previous* interval's checkpoints (old L1/L2 or
//         old L3) — restore point: end of the previous interval's w.
//   S5    rerun of the previous interval's concurrent segment (the work
//         done while the previous transfer was in flight is not covered by
//         the old checkpoints).
//   S6*   recovery from the *current* interval's checkpoint (it exists once
//         c1, resp. the L2 transfer, completed); only transfer progress is
//         lost, so these loop back into the S2 family.
//
// Interval accounting: an interval accomplishes U = w + SF*(c3 - c1)
// seconds of base work (the process computes through the whole concurrent
// segment), and completes when its L3 transfer lands. Hence
//   NET^2(w) = T_int(w) / U(w),
// which degenerates to T_int/w for blocking schemes (D = 0). This is the
// accounting under which concurrent checkpointing hides remote-transfer
// cost in the failure-free limit, matching the paper's motivation.
//
// The adaptive variant (Fig. 8) re-parameterizes the states that reference
// the previous interval (greyed in the paper) with interval-(i-1) values.
#pragma once

#include "model/markov_chain.h"
#include "model/system_profile.h"

namespace aic::model {

enum class LevelCombo { kL1L3, kL2L3, kL1L2L3 };

const char* to_string(LevelCombo combo);

/// Checkpoint latencies/recovery times of one interval (static models use
/// the same values for every interval).
struct IntervalParams {
  double c1 = 0.0, c2 = 0.0, c3 = 0.0;
  double r1 = 0.0, r2 = 0.0, r3 = 0.0;

  static IntervalParams from_profile(const SystemProfile& p) {
    return {p.c[0], p.c[1], p.c[2], p.r[0], p.r[1], p.r[2]};
  }
};

/// Expected wall time of one interval with work span w under the static
/// concurrent model for the given level combination.
double expected_interval_time(LevelCombo combo, const SystemProfile& sys,
                              double w);

/// Useful base work accomplished per interval (w plus the concurrent
/// segment), for the same accounting as expected_interval_time.
double interval_work(LevelCombo combo, const SystemProfile& sys, double w);

/// NET^2 contribution of one static interval: T_int / U.
double net2_static(LevelCombo combo, const SystemProfile& sys, double w);

/// Adaptive two-level (L2L3) interval model of Fig. 8: `cur` parameterizes
/// this interval's checkpoints, `prev` the previous interval's (used by the
/// old-checkpoint recovery states and the rerun state).
double expected_interval_time_adaptive(const SystemProfile& sys, double w,
                                       const IntervalParams& cur,
                                       const IntervalParams& prev);

/// Useful work of an adaptive interval: w + SF*(c3_cur - c1_cur).
double interval_work_adaptive(const SystemProfile& sys, double w,
                              const IntervalParams& cur);

/// Per-interval NET^2 of the adaptive model: T_int / U. Minimizing this in
/// w is the AIC decision problem (Section III.E).
double net2_adaptive(const SystemProfile& sys, double w,
                     const IntervalParams& cur, const IntervalParams& prev);

/// Builds the (adaptive) L2L3 interval chain and reports its entry state.
/// Exposed so simulation-based validation (sim/chain_sim) can walk the
/// exact graph the solver computes on.
MarkovChain make_l2l3_chain(const SystemProfile& sys, double w,
                            const IntervalParams& cur,
                            const IntervalParams& prev,
                            MarkovChain::StateId* start);

/// Expected wall time of a *tail* segment: w_tail seconds of work after the
/// last checkpoint with no further checkpoint before job completion. Any
/// failure restarts from the previous checkpoint (prev's recovery states +
/// rerun of its concurrent segment). Used by Eq. (1) for the final stretch
/// of a run — without it, "never checkpoint again" would look free.
double expected_tail_time(const SystemProfile& sys, double w_tail,
                          const IntervalParams& prev);

}  // namespace aic::model
