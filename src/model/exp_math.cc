#include "model/exp_math.h"

#include <cmath>

#include "common/check.h"

namespace aic::model {

double p_no_failure(double lambda, double tau) {
  AIC_CHECK(lambda >= 0.0 && tau >= 0.0);
  return std::exp(-lambda * tau);
}

double expected_failure_time(double lambda, double tau) {
  AIC_CHECK(lambda >= 0.0 && tau >= 0.0);
  if (tau == 0.0) return 0.0;
  const double x = lambda * tau;
  if (x < 1e-6) {
    // Series of 1/lambda - tau/expm1(x) around x = 0:
    //   tau * (1/2 - x/12 + x^3/720 - ...)
    return tau * (0.5 - x / 12.0);
  }
  return 1.0 / lambda - tau / std::expm1(x);
}

}  // namespace aic::model
