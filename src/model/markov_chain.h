// Generic absorbing Markov chain for checkpoint-interval analysis.
//
// A chain is a set of states, each with a deterministic duration tau and,
// for every failure level k, a transition target taken when a level-k
// failure interrupts the state. Completing the duration without failure
// follows the success edge (possibly to kDone, the absorbing completion).
//
// With per-level exponential failure rates lambda_k (total lambda), the
// edge probabilities and expected dwell times follow from exp_math:
//   success:  p = e^(-lambda tau),            dwell = tau
//   fail(k):  p = (lambda_k/lambda)(1-e^..),  dwell = E[X | X < tau]
//
// expected_time(start) solves E_i = dwell_i + sum_j P_ij E_j by dense
// Gaussian elimination — chains here range from ~6 states (concurrent
// two-level model) to a few hundred (Moody period chains), well within
// dense-solver territory. This mirrors Section III.C: "the formula ... can
// be obtained by solving a set of linear equations".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aic::model {

class MarkovChain {
 public:
  using StateId = int;
  static constexpr StateId kDone = -1;

  /// `level_rates[k]` is lambda_{k+1}; all rates must be >= 0.
  explicit MarkovChain(std::vector<double> level_rates);

  std::size_t level_count() const { return rates_.size(); }
  double total_rate() const { return total_rate_; }

  /// Adds a state with dwell duration `tau` (>= 0) and a debugging label.
  /// Success and failure targets default to unset and must be assigned
  /// before solving (failure targets may be left unset only when the
  /// corresponding rate is zero).
  StateId add_state(double tau, std::string label = {});

  void set_success(StateId state, StateId target);
  /// level is 1-based (level-k failure, k in [1, level_count()]).
  void set_failure(StateId state, int level, StateId target);
  /// Convenience: same target for several levels.
  void set_failures(StateId state, std::initializer_list<int> levels,
                    StateId target);

  double duration(StateId state) const;
  std::size_t state_count() const { return states_.size(); }
  const std::string& label(StateId state) const;

  /// Edge accessors (for simulators/diagnostics that walk the graph).
  /// Targets must have been assigned (CheckError otherwise).
  StateId success_target(StateId state) const;
  StateId failure_target(StateId state, int level) const;
  double level_rate(int level) const;

  /// Expected time from `start` until absorption in kDone. Throws
  /// CheckError if the chain is incomplete or does not absorb.
  double expected_time(StateId start) const;

  /// Expected number of visits to each state starting from `start`
  /// (diagnostics; e.g. expected recoveries per interval).
  std::vector<double> expected_visits(StateId start) const;

 private:
  struct State {
    double tau = 0.0;
    std::string label;
    StateId success = kUnset;
    std::vector<StateId> on_failure;  // per level, kUnset if not assigned
  };
  static constexpr StateId kUnset = -2;

  void check_complete() const;
  /// True iff kDone is reachable from every state along positive-rate
  /// edges (topology only, independent of probability underflow).
  bool absorbs_structurally() const;
  /// Builds transition probabilities P and per-visit dwell b.
  void build(std::vector<std::vector<double>>& p,
             std::vector<double>& b) const;

  std::vector<double> rates_;
  double total_rate_ = 0.0;
  std::vector<State> states_;
};

}  // namespace aic::model
