#include "model/system_profile.h"

#include "common/check.h"

namespace aic::model {

SystemProfile SystemProfile::coastal() {
  SystemProfile p;
  p.lambda = {2e-7, 1.8e-6, 4e-7};
  p.c = {0.5, 4.5, 1052.0};
  p.r = p.c;  // the paper sets r_k = c_k
  p.sharing_factor = 1.0;
  return p;
}

SystemProfile SystemProfile::scaled_mpi(double s) const {
  AIC_CHECK(s > 0.0);
  SystemProfile p = *this;
  for (auto& l : p.lambda) l *= s;
  p.c[2] *= s;
  p.r[2] *= s;
  return p;
}

SystemProfile SystemProfile::scaled_rms(double s) const {
  AIC_CHECK(s > 0.0);
  SystemProfile p = *this;
  p.c[2] *= s;
  p.r[2] *= s;
  return p;
}

SystemProfile SystemProfile::with_sharing(double sf) const {
  AIC_CHECK(sf >= 1.0);
  SystemProfile p = *this;
  p.sharing_factor = sf;
  return p;
}

std::array<double, 3> coastal_rate_shares() {
  // Derived from the Coastal rates (2e-7, 1.8e-6, 4e-7): 8.33%, 75%,
  // 16.7%. (The paper's "1.67%" for lambda3 is a typo — the quoted Coastal
  // rates themselves give 16.7%, and the three shares must sum to 1.)
  const double total = 2e-7 + 1.8e-6 + 4e-7;
  return {2e-7 / total, 1.8e-6 / total, 4e-7 / total};
}

std::array<double, 3> split_rate(double total_lambda) {
  AIC_CHECK(total_lambda >= 0.0);
  auto shares = coastal_rate_shares();
  return {total_lambda * shares[0], total_lambda * shares[1],
          total_lambda * shares[2]};
}

}  // namespace aic::model
