// Work-span optimization: offline (grid + golden section) and AIC's online
// local search (Newton–Raphson stationary point + Extreme Value Theorem
// boundary comparison, Section III.E).
#pragma once

#include <functional>

namespace aic::model {

using ScalarFn = std::function<double(double)>;

struct OptResult {
  double x = 0.0;
  double value = 0.0;
};

/// Offline minimization of f over [lo, hi]: logarithmic coarse grid, then
/// golden-section refinement around the best cell. Deterministic; used by
/// the static models ("this can be done numerically, like in earlier
/// work").
OptResult minimize_scalar(const ScalarFn& f, double lo, double hi,
                          int grid_points = 32, int refine_iters = 60);

/// Newton–Raphson search for a stationary point of f (zero of f') starting
/// from x0, with derivatives by central finite differences. Iterates until
/// |f'| <= tol or `max_iters` (the paper bounds it at 200; it converges in
/// a handful of steps in practice). The iterate is clamped to [lo, hi].
/// `iters_out`, when non-null, receives the iteration count consumed.
double newton_raphson_stationary(const ScalarFn& f, double x0, double lo,
                                 double hi, int max_iters = 200,
                                 double tol = 1e-10, int* iters_out = nullptr);

/// Diagnostics of one extreme_value_minimum search, for the decider's
/// observability instruments.
struct EvtDiag {
  /// Newton–Raphson iterations consumed by the stationary-point search.
  int newton_iters = 0;
  /// True when the search settled on a boundary of [lo, hi] — the Extreme
  /// Value Theorem fallback, not the paper's common interior-minimum case.
  bool used_boundary = false;
};

/// AIC's online selection of the local-optimal work span w_L*: by the
/// Extreme Value Theorem the minimum over [lo, hi] is at a boundary or an
/// interior stationary point; compare f at lo, hi, a coarse seed grid, and
/// the NR point, then polish the winner with a bounded golden-section
/// pass (finite-difference NR stalls on derivative noise near flat
/// minima). Total cost stays O(1) chain solves per decision.
OptResult extreme_value_minimum(const ScalarFn& f, double lo, double hi,
                                double x0);
/// Same search, also reporting per-search diagnostics into *diag.
OptResult extreme_value_minimum(const ScalarFn& f, double lo, double hi,
                                double x0, EvtDiag* diag);

}  // namespace aic::model
