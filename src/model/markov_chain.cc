#include "model/markov_chain.h"
#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/linalg.h"
#include "model/exp_math.h"

namespace aic::model {

MarkovChain::MarkovChain(std::vector<double> level_rates)
    : rates_(std::move(level_rates)) {
  AIC_CHECK_MSG(!rates_.empty(), "need at least one failure level");
  for (double r : rates_) {
    AIC_CHECK(r >= 0.0);
    total_rate_ += r;
  }
}

MarkovChain::StateId MarkovChain::add_state(double tau, std::string label) {
  AIC_CHECK_MSG(tau >= 0.0, "state duration must be non-negative");
  State s;
  s.tau = tau;
  s.label = std::move(label);
  s.on_failure.assign(rates_.size(), kUnset);
  states_.push_back(std::move(s));
  return StateId(states_.size()) - 1;
}

void MarkovChain::set_success(StateId state, StateId target) {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  AIC_CHECK(target == kDone ||
            (target >= 0 && std::size_t(target) < states_.size()));
  states_[state].success = target;
}

void MarkovChain::set_failure(StateId state, int level, StateId target) {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  AIC_CHECK_MSG(level >= 1 && std::size_t(level) <= rates_.size(),
                "failure level out of range");
  AIC_CHECK(target == kDone ||
            (target >= 0 && std::size_t(target) < states_.size()));
  states_[state].on_failure[level - 1] = target;
}

void MarkovChain::set_failures(StateId state, std::initializer_list<int> levels,
                               StateId target) {
  for (int level : levels) set_failure(state, level, target);
}

double MarkovChain::duration(StateId state) const {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  return states_[state].tau;
}

const std::string& MarkovChain::label(StateId state) const {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  return states_[state].label;
}

MarkovChain::StateId MarkovChain::success_target(StateId state) const {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  AIC_CHECK_MSG(states_[state].success != kUnset, "success edge unset");
  return states_[state].success;
}

MarkovChain::StateId MarkovChain::failure_target(StateId state,
                                                 int level) const {
  AIC_CHECK(state >= 0 && std::size_t(state) < states_.size());
  AIC_CHECK(level >= 1 && std::size_t(level) <= rates_.size());
  const StateId t = states_[state].on_failure[std::size_t(level - 1)];
  AIC_CHECK_MSG(t != kUnset, "failure edge unset");
  return t;
}

double MarkovChain::level_rate(int level) const {
  AIC_CHECK(level >= 1 && std::size_t(level) <= rates_.size());
  return rates_[std::size_t(level - 1)];
}

void MarkovChain::check_complete() const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    AIC_CHECK_MSG(s.success != kUnset,
                  "state " << i << " (" << s.label << ") has no success edge");
    for (std::size_t k = 0; k < rates_.size(); ++k) {
      if (rates_[k] > 0.0) {
        AIC_CHECK_MSG(s.on_failure[k] != kUnset,
                      "state " << i << " (" << s.label
                               << ") missing level-" << (k + 1)
                               << " failure edge");
      }
    }
  }
}

void MarkovChain::build(std::vector<std::vector<double>>& p,
                        std::vector<double>& b) const {
  const std::size_t n = states_.size();
  p.assign(n, std::vector<double>(n + 1, 0.0));  // column n == kDone
  b.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const State& s = states_[i];
    const double ps = p_no_failure(total_rate_, s.tau);
    const double pf = 1.0 - ps;
    const double tf = expected_failure_time(total_rate_, s.tau);
    auto col = [&](StateId t) { return t == kDone ? n : std::size_t(t); };
    p[i][col(s.success)] += ps;
    b[i] += ps * s.tau;
    if (pf > 0.0 && total_rate_ > 0.0) {
      for (std::size_t k = 0; k < rates_.size(); ++k) {
        if (rates_[k] == 0.0) continue;
        const double pk = pf * rates_[k] / total_rate_;
        p[i][col(s.on_failure[k])] += pk;
        b[i] += pk * tf;
      }
    }
  }
}

bool MarkovChain::absorbs_structurally() const {
  // Backward reachability from kDone along success edges and failure edges
  // whose level rate is positive. Independent of numeric probabilities, so
  // it distinguishes topology bugs from probability underflow.
  const std::size_t n = states_.size();
  std::vector<bool> reaches(n, false);
  bool changed = true;
  auto edge_reaches = [&](StateId t) {
    return t == kDone || reaches[std::size_t(t)];
  };
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (reaches[i]) continue;
      const State& s = states_[i];
      bool ok = edge_reaches(s.success);
      for (std::size_t k = 0; !ok && k < rates_.size(); ++k)
        if (rates_[k] > 0.0 && s.on_failure[k] != kUnset)
          ok = edge_reaches(s.on_failure[k]);
      if (ok) {
        reaches[i] = true;
        changed = true;
      }
    }
  }
  for (bool r : reaches)
    if (!r) return false;
  return true;
}

double MarkovChain::expected_time(StateId start) const {
  AIC_CHECK(start >= 0 && std::size_t(start) < states_.size());
  check_complete();
  AIC_CHECK_MSG(absorbs_structurally(),
                "chain does not absorb (no path to done)");
  const std::size_t n = states_.size();
  std::vector<std::vector<double>> p;
  std::vector<double> b;
  build(p, b);

  // Solve (I - P) E = b over transient states.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = (i == j ? 1.0 : 0.0) - p[i][j];
  std::vector<double> e;
  // The chain absorbs structurally, so a singular system means success
  // probabilities underflowed (states of many mean-times-between-failures)
  // — the expected time is effectively infinite.
  if (!solve_linear(a, b, e))
    return std::numeric_limits<double>::infinity();
  // Small negative round-off is clamped. Large negative values mean the
  // system is so ill-conditioned that the absorption probability has
  // underflowed (e.g. work spans of many mean-times-between-failures); the
  // expected time is astronomically large there, so report infinity and
  // let optimizers steer away. Structural errors are caught earlier by
  // check_complete() and the singularity check.
  double scale = 1.0;
  for (double v : e) scale = std::max(scale, std::abs(v));
  for (double& v : e) {
    if (v < -1e-9 * scale)
      return std::numeric_limits<double>::infinity();
    if (v < 0.0) v = 0.0;
  }
  return e[start];
}

std::vector<double> MarkovChain::expected_visits(StateId start) const {
  AIC_CHECK(start >= 0 && std::size_t(start) < states_.size());
  check_complete();
  const std::size_t n = states_.size();
  std::vector<std::vector<double>> p;
  std::vector<double> b;
  build(p, b);

  // Visits v solves v = e_start + P^T v  =>  (I - P^T) v = e_start.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = (i == j ? 1.0 : 0.0) - p[j][i];
  std::vector<double> rhs(n, 0.0);
  rhs[std::size_t(start)] = 1.0;
  std::vector<double> v;
  AIC_CHECK_MSG(solve_linear(a, rhs, v), "chain does not absorb");
  return v;
}

}  // namespace aic::model
