#include "model/moody.h"

#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/check.h"
#include "model/markov_chain.h"
#include "model/optimizer.h"

namespace aic::model {
namespace {

/// Checkpoint level at period position j (1-based); position 0 is the
/// previous period's L3 checkpoint.
int level_at(int j, int n1, int n2, int n_total) {
  if (j == 0) return 3;
  if (j == n_total) return 3;
  (void)n2;
  if (j % (n1 + 1) == 0) return 2;
  return 1;
}

}  // namespace

double moody_period_time(const SystemProfile& sys, double w, int n1, int n2) {
  AIC_CHECK(w > 0.0 && n1 >= 0 && n2 >= 0);
  const int n_total = (n1 + 1) * (n2 + 1);

  MarkovChain m({sys.lambda[0], sys.lambda[1], sys.lambda[2]});

  // Segment states 1..n_total.
  std::vector<MarkovChain::StateId> seg(n_total + 1, MarkovChain::kDone);
  for (int j = 1; j <= n_total; ++j) {
    const int lvl = level_at(j, n1, n2, n_total);
    seg[j] = m.add_state(w + sys.c[lvl - 1],
                         "seg" + std::to_string(j) + " L" +
                             std::to_string(lvl));
  }

  // Latest position p <= from with a checkpoint of level >= k.
  auto latest_at_least = [&](int k, int from) {
    for (int p = from; p >= 1; --p) {
      if (level_at(p, n1, n2, n_total) >= k) return p;
    }
    return 0;  // previous period's L3
  };

  // Recovery states keyed by (failure level, restore position).
  std::map<std::pair<int, int>, MarkovChain::StateId> recovery;
  // Two passes: create, then wire (recovery states reference each other).
  std::function<MarkovChain::StateId(int, int)> get_recovery =
      [&](int k, int p) -> MarkovChain::StateId {
    auto key = std::make_pair(k, p);
    auto it = recovery.find(key);
    if (it != recovery.end()) return it->second;
    auto id = m.add_state(sys.r[k - 1], "rec L" + std::to_string(k) + "@" +
                                            std::to_string(p));
    recovery.emplace(key, id);
    // Success: resume at the segment after the restore point.
    m.set_success(id, p + 1 <= n_total ? seg[p + 1] : MarkovChain::kDone);
    // A level-k' failure during recovery restarts recovery from the latest
    // surviving checkpoint at position <= p able to handle it.
    for (int k2 = 1; k2 <= 3; ++k2) {
      const int q = latest_at_least(k2, p);
      m.set_failure(id, k2, get_recovery(k2, q));
    }
    return id;
  };

  for (int j = 1; j <= n_total; ++j) {
    m.set_success(seg[j], j < n_total ? seg[j + 1] : MarkovChain::kDone);
    for (int k = 1; k <= 3; ++k) {
      const int p = latest_at_least(k, j - 1);
      m.set_failure(seg[j], k, get_recovery(k, p));
    }
  }

  return m.expected_time(seg[1]);
}

double moody_net2(const SystemProfile& sys, double w, int n1, int n2) {
  const int n_total = (n1 + 1) * (n2 + 1);
  return moody_period_time(sys, w, n1, n2) / (double(n_total) * w);
}

MoodyResult optimize_moody(const SystemProfile& sys,
                           const std::vector<int>& counts) {
  MoodyResult best;
  best.net2 = std::numeric_limits<double>::infinity();
  // Work spans from around the cheapest checkpoint latency up to several
  // mean-time-between-failures.
  const double lambda = sys.total_lambda();
  const double lo = std::max(0.1, sys.c[0] * 0.1);
  const double hi =
      lambda > 0 ? std::max(10.0 / lambda, sys.c[2] * 50.0) : sys.c[2] * 1e4;
  for (int n1 : counts) {
    for (int n2 : counts) {
      auto f = [&](double w) { return moody_net2(sys, w, n1, n2); };
      OptResult r = minimize_scalar(f, lo, hi, 20, 40);
      if (r.value < best.net2) {
        best = MoodyResult{r.value, r.x, n1, n2};
      }
    }
  }
  return best;
}

}  // namespace aic::model
