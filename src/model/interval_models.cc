#include "model/interval_models.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "model/markov_chain.h"

namespace aic::model {
namespace {

/// Feasibility: the paper's concurrent model "does not initiate any L1
/// until the last L3 has finished", so the work span must cover the
/// previous interval's concurrent transfer: w >= SF*(c3_prev - c1_prev).
/// Infeasible spans get a steep finite penalty that decreases toward the
/// boundary, so derivative-based searches are pushed into the feasible
/// region instead of seeing NaNs.
constexpr double kInfeasiblePenalty = 1e6;

double infeasible_penalty(double w, double d_prev) {
  return kInfeasiblePenalty * (1.0 + (d_prev - w) / std::max(d_prev, 1e-9));
}

void check_params(const IntervalParams& p) {
  AIC_CHECK_MSG(p.c1 >= 0 && p.c2 >= p.c1 && p.c3 >= p.c2,
                "need 0 <= c1 <= c2 <= c3");
  AIC_CHECK(p.r1 >= 0 && p.r2 >= 0 && p.r3 >= 0);
}

std::vector<double> rates(const SystemProfile& sys) {
  return {sys.lambda[0], sys.lambda[1], sys.lambda[2]};
}

/// L1L3 chain (Fig. 4(a)). Levels: f1 -> L1, f2/f3 -> L3 (no L2 enabled).
double interval_l1l3(const SystemProfile& sys, double w,
                     const IntervalParams& cur, const IntervalParams& prev) {
  MarkovChain m(rates(sys));
  const double d_cur = sys.shared(cur.c3 - cur.c1);
  const double d_prev = sys.shared(prev.c3 - prev.c1);

  auto s1 = m.add_state(w + cur.c1, "S1 w+c1");
  auto s2 = m.add_state(d_cur, "S2 c3-c1");
  auto s3 = m.add_state(prev.r1, "S3 r1 old");
  auto s4 = m.add_state(prev.r3, "S4 r3 old");
  auto s5 = m.add_state(d_prev, "S5 rerun");
  auto s6 = m.add_state(cur.r1, "S6 r1 new");

  m.set_success(s1, s2);
  m.set_failure(s1, 1, s3);
  m.set_failures(s1, {2, 3}, s4);

  m.set_success(s2, MarkovChain::kDone);
  m.set_failure(s2, 1, s6);
  m.set_failures(s2, {2, 3}, s4);

  m.set_success(s3, s5);
  m.set_failure(s3, 1, s3);
  m.set_failures(s3, {2, 3}, s4);

  m.set_success(s4, s5);
  m.set_failures(s4, {1, 2, 3}, s4);

  m.set_success(s5, s1);
  m.set_failure(s5, 1, s3);
  m.set_failures(s5, {2, 3}, s4);

  m.set_success(s6, s2);
  m.set_failure(s6, 1, s6);
  m.set_failures(s6, {2, 3}, s4);

  return m.expected_time(s1);
}

/// L2L3 chain (Fig. 4(b)); also the adaptive model of Fig. 8 when
/// cur != prev. Levels: f1/f2 -> L2, f3 -> L3 (L1 embedded in L2; the
/// local write still happens in S1 but no L1 recovery level exists).
MarkovChain build_l2l3(const SystemProfile& sys, double w,
                       const IntervalParams& cur, const IntervalParams& prev,
                       MarkovChain::StateId* start) {
  MarkovChain m(rates(sys));
  const double d2_cur = sys.shared(cur.c2 - cur.c1);
  const double d3_cur = sys.shared(cur.c3 - cur.c2);
  const double d_full_cur = sys.shared(cur.c3 - cur.c1);
  const double d_prev = sys.shared(prev.c3 - prev.c1);

  auto s1 = m.add_state(w + cur.c1, "S1 w+c1");
  auto s2a = m.add_state(d2_cur, "S2a L2 xfer");
  auto s2b = m.add_state(d3_cur, "S2b L3 tail");
  auto s2r = m.add_state(d_full_cur, "S2r L3 retry");
  auto s3 = m.add_state(prev.r2, "S3 r2 old");
  auto s4 = m.add_state(prev.r3, "S4 r3 old");
  auto s5 = m.add_state(d_prev, "S5 rerun");
  auto s6 = m.add_state(cur.r2, "S6 r2 new");

  m.set_success(s1, s2a);
  m.set_failures(s1, {1, 2}, s3);
  m.set_failure(s1, 3, s4);

  m.set_success(s2a, s2b);
  m.set_failures(s2a, {1, 2}, s3);  // new L2 incomplete -> old L2
  m.set_failure(s2a, 3, s4);

  m.set_success(s2b, MarkovChain::kDone);
  m.set_failures(s2b, {1, 2}, s6);  // new L2 complete
  m.set_failure(s2b, 3, s4);

  m.set_success(s2r, MarkovChain::kDone);
  m.set_failures(s2r, {1, 2}, s6);
  m.set_failure(s2r, 3, s4);

  m.set_success(s3, s5);
  m.set_failures(s3, {1, 2}, s3);
  m.set_failure(s3, 3, s4);

  m.set_success(s4, s5);
  m.set_failures(s4, {1, 2, 3}, s4);

  m.set_success(s5, s1);
  m.set_failures(s5, {1, 2}, s3);
  m.set_failure(s5, 3, s4);

  m.set_success(s6, s2r);
  m.set_failures(s6, {1, 2}, s6);
  m.set_failure(s6, 3, s4);

  *start = s1;
  return m;
}

double interval_l2l3(const SystemProfile& sys, double w,
                     const IntervalParams& cur, const IntervalParams& prev) {
  MarkovChain::StateId start;
  MarkovChain m = build_l2l3(sys, w, cur, prev, &start);
  return m.expected_time(start);
}

/// L1L2L3 chain (Fig. 4(c)): adds cheap L1 recovery for f1.
double interval_l1l2l3(const SystemProfile& sys, double w,
                       const IntervalParams& cur, const IntervalParams& prev) {
  MarkovChain m(rates(sys));
  const double d2_cur = sys.shared(cur.c2 - cur.c1);
  const double d3_cur = sys.shared(cur.c3 - cur.c2);
  const double d_full_cur = sys.shared(cur.c3 - cur.c1);
  const double d_prev = sys.shared(prev.c3 - prev.c1);

  auto s1 = m.add_state(w + cur.c1, "S1 w+c1");
  auto s2a = m.add_state(d2_cur, "S2a L2 xfer");
  auto s2b = m.add_state(d3_cur, "S2b L3 tail");
  auto s2r = m.add_state(d_full_cur, "S2r L3 retry");
  auto s3a = m.add_state(prev.r1, "S3a r1 old");
  auto s3b = m.add_state(prev.r2, "S3b r2 old");
  auto s4 = m.add_state(prev.r3, "S4 r3 old");
  auto s5 = m.add_state(d_prev, "S5 rerun");
  auto s6a = m.add_state(cur.r1, "S6a r1 new->S2a");
  auto s6b = m.add_state(cur.r1, "S6b r1 new->S2r");
  auto s6c = m.add_state(cur.r2, "S6c r2 new->S2r");

  m.set_success(s1, s2a);
  m.set_failure(s1, 1, s3a);
  m.set_failure(s1, 2, s3b);
  m.set_failure(s1, 3, s4);

  // During the L2 transfer, the current L1 file exists: f1 recovers from it
  // and restarts both transfers; f2 must fall back to the old L2.
  m.set_success(s2a, s2b);
  m.set_failure(s2a, 1, s6a);
  m.set_failure(s2a, 2, s3b);
  m.set_failure(s2a, 3, s4);

  // After the L2 transfer completed, only the L3 tail restarts.
  m.set_success(s2b, MarkovChain::kDone);
  m.set_failure(s2b, 1, s6b);
  m.set_failure(s2b, 2, s6c);
  m.set_failure(s2b, 3, s4);

  m.set_success(s2r, MarkovChain::kDone);
  m.set_failure(s2r, 1, s6b);
  m.set_failure(s2r, 2, s6c);
  m.set_failure(s2r, 3, s4);

  m.set_success(s3a, s5);
  m.set_failure(s3a, 1, s3a);
  m.set_failure(s3a, 2, s3b);
  m.set_failure(s3a, 3, s4);

  m.set_success(s3b, s5);
  m.set_failure(s3b, 1, s3a);  // old L1 shares the restore point, cheaper
  m.set_failure(s3b, 2, s3b);
  m.set_failure(s3b, 3, s4);

  m.set_success(s4, s5);
  m.set_failures(s4, {1, 2, 3}, s4);

  m.set_success(s5, s1);
  m.set_failure(s5, 1, s3a);
  m.set_failure(s5, 2, s3b);
  m.set_failure(s5, 3, s4);

  m.set_success(s6a, s2a);
  m.set_failure(s6a, 1, s6a);
  m.set_failure(s6a, 2, s3b);
  m.set_failure(s6a, 3, s4);

  m.set_success(s6b, s2r);
  m.set_failure(s6b, 1, s6b);
  m.set_failure(s6b, 2, s6c);
  m.set_failure(s6b, 3, s4);

  m.set_success(s6c, s2r);
  m.set_failure(s6c, 1, s6b);
  m.set_failure(s6c, 2, s6c);
  m.set_failure(s6c, 3, s4);

  return m.expected_time(s1);
}

}  // namespace

MarkovChain make_l2l3_chain(const SystemProfile& sys, double w,
                            const IntervalParams& cur,
                            const IntervalParams& prev,
                            MarkovChain::StateId* start) {
  AIC_CHECK(w > 0.0 && start != nullptr);
  check_params(cur);
  check_params(prev);
  return build_l2l3(sys, w, cur, prev, start);
}

const char* to_string(LevelCombo combo) {
  switch (combo) {
    case LevelCombo::kL1L3:
      return "L1L3";
    case LevelCombo::kL2L3:
      return "L2L3";
    case LevelCombo::kL1L2L3:
      return "L1L2L3";
  }
  return "?";
}

double expected_interval_time(LevelCombo combo, const SystemProfile& sys,
                              double w) {
  AIC_CHECK(w > 0.0);
  const IntervalParams p = IntervalParams::from_profile(sys);
  check_params(p);
  const double d_prev = sys.shared(p.c3 - p.c1);
  if (w < d_prev) return infeasible_penalty(w, d_prev) * (w + d_prev);
  switch (combo) {
    case LevelCombo::kL1L3:
      return interval_l1l3(sys, w, p, p);
    case LevelCombo::kL2L3:
      return interval_l2l3(sys, w, p, p);
    case LevelCombo::kL1L2L3:
      return interval_l1l2l3(sys, w, p, p);
  }
  AIC_CHECK(false);
  return 0.0;
}

double interval_work(LevelCombo combo, const SystemProfile& sys, double w) {
  (void)combo;  // all combos compute through the full concurrent segment
  return w + sys.shared(sys.c[2] - sys.c[0]);
}

double net2_static(LevelCombo combo, const SystemProfile& sys, double w) {
  return expected_interval_time(combo, sys, w) /
         interval_work(combo, sys, w);
}

double expected_interval_time_adaptive(const SystemProfile& sys, double w,
                                       const IntervalParams& cur,
                                       const IntervalParams& prev) {
  AIC_CHECK(w > 0.0);
  check_params(cur);
  check_params(prev);
  const double d_prev = sys.shared(prev.c3 - prev.c1);
  if (w < d_prev) return infeasible_penalty(w, d_prev) * (w + d_prev);
  return interval_l2l3(sys, w, cur, prev);
}

double interval_work_adaptive(const SystemProfile& sys, double w,
                              const IntervalParams& cur) {
  return w + sys.shared(cur.c3 - cur.c1);
}

double net2_adaptive(const SystemProfile& sys, double w,
                     const IntervalParams& cur, const IntervalParams& prev) {
  return expected_interval_time_adaptive(sys, w, cur, prev) /
         interval_work_adaptive(sys, w, cur);
}

double expected_tail_time(const SystemProfile& sys, double w_tail,
                          const IntervalParams& prev) {
  if (w_tail <= 0.0) return 0.0;
  check_params(prev);
  MarkovChain m(rates(sys));
  const double d_prev = sys.shared(prev.c3 - prev.c1);
  auto s1 = m.add_state(w_tail, "tail work");
  auto s3 = m.add_state(prev.r2, "r2 old");
  auto s4 = m.add_state(prev.r3, "r3 old");
  auto s5 = m.add_state(d_prev, "rerun");

  m.set_success(s1, MarkovChain::kDone);
  m.set_failures(s1, {1, 2}, s3);
  m.set_failure(s1, 3, s4);

  m.set_success(s3, s5);
  m.set_failures(s3, {1, 2}, s3);
  m.set_failure(s3, 3, s4);

  m.set_success(s4, s5);
  m.set_failures(s4, {1, 2, 3}, s4);

  m.set_success(s5, s1);
  m.set_failures(s5, {1, 2}, s3);
  m.set_failure(s5, 3, s4);

  return m.expected_time(s1);
}

}  // namespace aic::model
