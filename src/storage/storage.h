// Simulated checkpoint storage targets with bandwidth accounting.
//
// The paper's three levels map onto three targets:
//   L1 — LocalDisk        (node-local disk or RAM disk)
//   L2 — Raid5Group       (main memory of a RAID-5 group of partner nodes;
//                          we implement real striping + parity so a single
//                          node loss is recoverable, matching [11, 18])
//   L3 — RemoteStore      (Lustre-like remote file system; per-node
//                          bandwidth B3 shrinks as the system scales)
//
// Targets store named objects (checkpoint files) in memory and report the
// time a write/read of that size takes at the configured bandwidth; the
// discrete-event simulator turns those durations into virtual time. A
// target can be failed (unavailable) and, for RAID-5, individual member
// nodes can fail and be rebuilt.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace aic::storage {

/// Seconds to move `bytes` at `bandwidth_bps` plus a fixed setup latency.
/// Throws CheckError for non-positive or non-finite bandwidth and for
/// negative or non-finite latency (the inputs that would otherwise turn
/// every downstream duration into inf/NaN).
double transfer_seconds(std::uint64_t bytes, double bandwidth_bps,
                        double latency_s = 0.0);

class StorageTarget {
 public:
  virtual ~StorageTarget() = default;

  virtual std::string name() const = 0;
  /// Write bandwidth in bytes/second (reads use the same figure; the
  /// paper's model sets r_k = c_k).
  virtual double bandwidth_bps() const = 0;
  virtual bool available() const = 0;

  /// Stores an object; returns the simulated duration in seconds.
  /// Throws CheckError if the target is unavailable.
  virtual double put(const std::string& key, Bytes data) = 0;
  /// Fetches an object; returns nullopt if missing or unavailable.
  virtual std::optional<Bytes> get(const std::string& key) const = 0;
  /// Duration a read of `key` would take (for recovery-time accounting).
  virtual double read_seconds(const std::string& key) const = 0;

  virtual bool erase(const std::string& key) = 0;
  virtual std::uint64_t stored_bytes() const = 0;
};

/// Node-local disk (L1). Lost entirely on a total node failure.
class LocalDisk final : public StorageTarget {
 public:
  explicit LocalDisk(double bandwidth_bps, double latency_s = 0.0);

  std::string name() const override { return "local-disk"; }
  double bandwidth_bps() const override { return bandwidth_; }
  bool available() const override { return !failed_; }

  double put(const std::string& key, Bytes data) override;
  std::optional<Bytes> get(const std::string& key) const override;
  double read_seconds(const std::string& key) const override;
  bool erase(const std::string& key) override;
  std::uint64_t stored_bytes() const override;

  /// Total node failure: the disk and its contents become unavailable.
  void fail() { failed_ = true; }
  /// Node replaced: disk back online, contents gone.
  void replace();

 private:
  double bandwidth_;
  double latency_;
  bool failed_ = false;
  std::map<std::string, Bytes> objects_;
};

/// RAID-5 group of `n` partner-node memories (L2): objects are striped
/// across n-1 data shares plus one rotating parity share; any single member
/// loss is tolerated and repairable.
class Raid5Group final : public StorageTarget {
 public:
  /// `nodes` >= 3; `bandwidth_bps` is the aggregate write bandwidth to the
  /// group (the paper's B2); `stripe_unit` is the striping granularity.
  Raid5Group(std::size_t nodes, double bandwidth_bps,
             std::size_t stripe_unit = 64 * 1024, double latency_s = 0.0);

  std::string name() const override { return "raid5-group"; }
  double bandwidth_bps() const override { return bandwidth_; }
  /// Available while at most one member is down.
  bool available() const override { return failed_nodes() <= 1; }

  double put(const std::string& key, Bytes data) override;
  /// Reconstructs from parity transparently when one member is down.
  std::optional<Bytes> get(const std::string& key) const override;
  double read_seconds(const std::string& key) const override;
  bool erase(const std::string& key) override;
  std::uint64_t stored_bytes() const override;

  std::size_t node_count() const { return shares_.size(); }
  std::size_t failed_nodes() const;
  bool is_node_failed(std::size_t node) const;
  void fail_node(std::size_t node);
  /// Rebuilds a replaced member's shares from the surviving members.
  /// Returns the rebuilt byte count. Requires all other members healthy:
  /// throws CheckError if a second member is down (XOR reconstruction
  /// would silently produce garbage shares).
  std::uint64_t rebuild_node(std::size_t node);

 private:
  struct ObjectMeta {
    std::uint64_t size = 0;        // original object size
    std::uint64_t stripes = 0;     // number of stripes
  };
  /// share index layout: for stripe s, parity lives on node
  /// (n-1 - s % n), data units fill the remaining nodes in order.
  std::size_t parity_node(std::uint64_t stripe) const;

  std::size_t stripe_unit_;
  double bandwidth_;
  double latency_;
  std::vector<bool> node_failed_;
  // shares_[node][key] -> concatenated share units for that object.
  std::vector<std::map<std::string, Bytes>> shares_;
  std::map<std::string, ObjectMeta> meta_;
};

/// Remote parallel file system (L3). Never fails in-model (a level-3
/// failure means everything below it is lost, and L3 is the recovery
/// source), but its per-node bandwidth is the scarce resource.
class RemoteStore final : public StorageTarget {
 public:
  explicit RemoteStore(double bandwidth_bps, double latency_s = 0.0);

  std::string name() const override { return "remote-store"; }
  double bandwidth_bps() const override { return bandwidth_; }
  bool available() const override { return true; }

  double put(const std::string& key, Bytes data) override;
  std::optional<Bytes> get(const std::string& key) const override;
  double read_seconds(const std::string& key) const override;
  bool erase(const std::string& key) override;
  std::uint64_t stored_bytes() const override;

 private:
  double bandwidth_;
  double latency_;
  std::map<std::string, Bytes> objects_;
};

}  // namespace aic::storage
