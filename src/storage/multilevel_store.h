// Multi-level checkpoint placement over the storage substrate — the glue
// between the checkpoint chain and the L1/L2/L3 targets of Section III.A:
//
//   L1: the node-local disk   (lost on a level-2+ failure)
//   L2: a RAID-5 partner group (lost on a level-3 failure)
//   L3: the remote file system (survives everything in-model)
//
// The L1 write is synchronous and blocking (the paper's c1 halt). The L2
// and L3 placements are *drains* through the xfer transfer engine: each
// put becomes a chunked transfer over that level's simulated channel,
// staged invisibly until atomically committed, interruptible by failures
// mid-flight, and resumable from the last acked chunk. put_checkpoint()
// runs the drains to completion in virtual time (the original synchronous
// contract); put_checkpoint_async() only queues them, so a caller driving
// the clock (failure simulator, AsyncCheckpointer) can interleave failures
// with a drain at any chunk boundary.
//
// recover() answers "what is the newest restorable chain after a level-k
// failure", actually reading the surviving copies — including the RAID-5
// reconstruction path when a partner node is down. Staged partials are
// never visible to it: a torn drain can cost at most one checkpoint of
// recency, never a corrupt restore.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint_file.h"
#include "common/rng.h"
#include "storage/storage.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"

namespace aic::storage {

struct MultiLevelConfig {
  double local_bps = 100.0e6;
  double raid_bps = 400.0e6;    // per-node share of the group bandwidth
  double remote_bps = 2.0e6;    // B3
  std::size_t raid_nodes = 4;
  /// Per-message latency of the L2/L3 channels (seconds, charged per
  /// chunk by the transfer engine).
  double raid_latency_s = 0.0;
  double remote_latency_s = 0.0;
  /// Chunking and retry/backoff policy of the L2/L3 drains.
  xfer::TransferScheduler::Config xfer;
};

/// Durations of one checkpoint's placement at each level.
struct PlacementTimes {
  double local = 0.0;   // blocking (the c1 component)
  double raid = 0.0;    // concurrent (part of c2)
  double remote = 0.0;  // concurrent (part of c3)
};

/// Handle to one checkpoint's queued drains (put_checkpoint_async).
struct DrainTicket {
  std::uint64_t index = 0;
  double local_seconds = 0.0;
  /// Unset when the level was unavailable at submit time.
  std::optional<xfer::TransferId> raid;
  std::optional<xfer::TransferId> remote;
};

class MultiLevelStore {
 public:
  explicit MultiLevelStore(MultiLevelConfig config = MultiLevelConfig{});

  /// Blocking local write plus L2/L3 drains run to completion in virtual
  /// time; returns per-level durations. Throws xfer::TransferError if a
  /// drain exhausts its retry budget (injected channel faults).
  PlacementTimes put_checkpoint(const ckpt::CheckpointFile& file);

  /// Blocking local write; L2/L3 drains only queued. Drive them with
  /// xfer().run_until()/run_until_idle().
  DrainTicket put_checkpoint_async(const ckpt::CheckpointFile& file);

  /// Simulates a level-k failure's storage damage:
  ///   k = 1: nothing lost (transient fault),
  ///   k = 2: the local disk is gone (node replaced),
  ///   k = 3: local disk gone and one RAID member lost *and* rebuilt from
  ///          parity if possible — if a second member would be needed, the
  ///          group's copies are unavailable until re-seeded.
  /// For k >= 2 every in-flight L2/L3 drain is interrupted at its current
  /// chunk (the checkpointing core died with the node); the partials stay
  /// resumable via resume_drains().
  void apply_failure(int level, Rng& rng);

  /// Re-queues drains interrupted by apply_failure (L2 only while the
  /// group is available); each resumes from its last acked chunk. Returns
  /// the number of drains resumed.
  std::size_t resume_drains();

  /// Drains not yet committed or aborted (pending, in-flight, or
  /// interrupted) — the "checkpointing core still busy" signal.
  std::size_t unfinished_drains() const;

  /// Fetches the newest complete restart chain readable after the damage
  /// so far, preferring the cheapest surviving level; nullopt if nothing
  /// restorable survives (no full checkpoint anywhere). Also reports the
  /// read time and the level used. Only committed objects are visible —
  /// never staged partials.
  struct Recovery {
    std::vector<ckpt::CheckpointFile> chain;
    double read_seconds = 0.0;
    int level_used = 0;  // 1 = local, 2 = raid, 3 = remote
  };
  std::optional<Recovery> recover() const;

  /// Rolls the store back to the first `count` checkpoints: newer
  /// committed objects are erased everywhere and their live drains (and
  /// staged partials) discarded. Pairs with CheckpointChain::rollback_to
  /// after a recovery.
  void truncate_to(std::uint64_t count);

  /// Rewind-window reclamation: erases one mid-chain checkpoint at every
  /// level (discarding its drains) and, when the prune re-anchored the
  /// successor as a full checkpoint, rewrites the successor's stored
  /// object with `reanchored` — committed copies are replaced in place and
  /// unfinished drains are discarded and resubmitted with the new bytes,
  /// so no level can ever commit the stale delta over a hole. The newest
  /// checkpoint can never be reclaimed. Returns the bytes erased across
  /// levels (the storage the window freed). Pairs with
  /// CheckpointChain::PruneEvent.
  std::uint64_t reclaim_checkpoint(
      std::uint64_t index, const ckpt::CheckpointFile* reanchored = nullptr);

  /// Replaces a group that lost more members than RAID-5 tolerates with
  /// fresh (empty) nodes; call reseed_from_remote() afterwards.
  void repair_raid_group();

  /// Re-seeds lower levels from the remote copies (what a replacement node
  /// does after recovery); returns the bytes copied down. Checkpoints
  /// whose remote drain has not committed yet are skipped.
  std::uint64_t reseed_from_remote();

  const LocalDisk& local() const { return local_; }
  const Raid5Group& raid() const { return raid_; }
  const RemoteStore& remote() const { return remote_; }

  /// The drain engine: inject channel faults, step virtual time, read
  /// per-transfer records and aggregate xfer::Stats.
  xfer::TransferScheduler& xfer() { return xfer_; }
  const xfer::TransferScheduler& xfer() const { return xfer_; }
  /// Staged (in-progress) partials per level, for diagnostics and tests.
  const xfer::StagedTargetSink& raid_staging() const { return raid_sink_; }
  const xfer::StagedTargetSink& remote_staging() const {
    return remote_sink_;
  }

  std::uint64_t checkpoints_stored() const { return next_index_; }

 private:
  static std::string key_for(std::uint64_t index) {
    return "ckpt-" + std::to_string(index);
  }
  /// Newest index such that keys [start-of-chain .. index] are all present
  /// on `target`, where start-of-chain is the newest full checkpoint.
  std::optional<Recovery> recover_from(const StorageTarget& target,
                                       int level) const;
  /// True while `index`'s remote drain has not committed (still live,
  /// interrupted, or aborted) — i.e. the remote copy is legitimately
  /// absent.
  bool remote_drain_unfinished(std::uint64_t index) const;

  MultiLevelConfig config_;
  LocalDisk local_;
  Raid5Group raid_;
  RemoteStore remote_;
  xfer::StagedTargetSink raid_sink_;
  xfer::StagedTargetSink remote_sink_;
  xfer::TransferScheduler xfer_;
  std::uint64_t next_index_ = 0;
  /// index -> is this a full checkpoint (chain boundaries).
  std::map<std::uint64_t, bool> is_full_;
  /// index -> that checkpoint's drain handles.
  std::map<std::uint64_t, DrainTicket> drains_;
};

}  // namespace aic::storage
