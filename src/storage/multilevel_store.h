// Multi-level checkpoint placement over the storage substrate — the glue
// between the checkpoint chain and the L1/L2/L3 targets of Section III.A:
//
//   L1: the node-local disk   (lost on a level-2+ failure)
//   L2: a RAID-5 partner group (lost on a level-3 failure)
//   L3: the remote file system (survives everything in-model)
//
// put_checkpoint() writes a serialized checkpoint file to the local disk
// (blocking, duration c1') and returns the transfer durations for the
// partner group and remote store (to run on the checkpointing core).
// recover() answers "what is the newest restorable chain after a level-k
// failure", actually reading the surviving copies — including the RAID-5
// reconstruction path when a partner node is down.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint_file.h"
#include "common/rng.h"
#include "storage/storage.h"

namespace aic::storage {

struct MultiLevelConfig {
  double local_bps = 100.0e6;
  double raid_bps = 400.0e6;    // per-node share of the group bandwidth
  double remote_bps = 2.0e6;    // B3
  std::size_t raid_nodes = 4;
};

/// Durations of one checkpoint's placement at each level.
struct PlacementTimes {
  double local = 0.0;   // blocking (the c1 component)
  double raid = 0.0;    // concurrent (part of c2)
  double remote = 0.0;  // concurrent (part of c3)
};

class MultiLevelStore {
 public:
  explicit MultiLevelStore(MultiLevelConfig config = MultiLevelConfig{});

  /// Writes the file everywhere; returns per-level durations. The caller
  /// decides what is blocking vs concurrent.
  PlacementTimes put_checkpoint(const ckpt::CheckpointFile& file);

  /// Simulates a level-k failure's storage damage:
  ///   k = 1: nothing lost (transient fault),
  ///   k = 2: the local disk is gone (node replaced),
  ///   k = 3: local disk gone and one RAID member lost *and* rebuilt from
  ///          parity if possible — if a second member would be needed, the
  ///          group's copies are unavailable until re-seeded.
  void apply_failure(int level, Rng& rng);

  /// Fetches the newest complete restart chain readable after the damage
  /// so far, preferring the cheapest surviving level; nullopt if nothing
  /// restorable survives (no full checkpoint anywhere). Also reports the
  /// read time and the level used.
  struct Recovery {
    std::vector<ckpt::CheckpointFile> chain;
    double read_seconds = 0.0;
    int level_used = 0;  // 1 = local, 2 = raid, 3 = remote
  };
  std::optional<Recovery> recover() const;

  /// Replaces a group that lost more members than RAID-5 tolerates with
  /// fresh (empty) nodes; call reseed_from_remote() afterwards.
  void repair_raid_group();

  /// Re-seeds lower levels from the remote copies (what a replacement node
  /// does after recovery); returns the bytes copied down.
  std::uint64_t reseed_from_remote();

  const LocalDisk& local() const { return local_; }
  const Raid5Group& raid() const { return raid_; }
  const RemoteStore& remote() const { return remote_; }

  std::uint64_t checkpoints_stored() const { return next_index_; }

 private:
  static std::string key_for(std::uint64_t index) {
    return "ckpt-" + std::to_string(index);
  }
  /// Newest index such that keys [start-of-chain .. index] are all present
  /// on `target`, where start-of-chain is the newest full checkpoint.
  std::optional<Recovery> recover_from(const StorageTarget& target,
                                       int level) const;

  MultiLevelConfig config_;
  LocalDisk local_;
  Raid5Group raid_;
  RemoteStore remote_;
  std::uint64_t next_index_ = 0;
  /// index -> is this a full checkpoint (chain boundaries).
  std::map<std::uint64_t, bool> is_full_;
};

}  // namespace aic::storage
