#include "storage/storage.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aic::storage {

double transfer_seconds(std::uint64_t bytes, double bandwidth_bps,
                        double latency_s) {
  AIC_CHECK_MSG(std::isfinite(bandwidth_bps) && bandwidth_bps > 0.0,
                "bandwidth must be positive and finite, got "
                    << bandwidth_bps);
  AIC_CHECK_MSG(std::isfinite(latency_s) && latency_s >= 0.0,
                "latency must be non-negative and finite, got " << latency_s);
  return latency_s + double(bytes) / bandwidth_bps;
}

// ---------- LocalDisk ----------

LocalDisk::LocalDisk(double bandwidth_bps, double latency_s)
    : bandwidth_(bandwidth_bps), latency_(latency_s) {
  AIC_CHECK(bandwidth_bps > 0.0);
}

double LocalDisk::put(const std::string& key, Bytes data) {
  AIC_CHECK_MSG(!failed_, "write to failed local disk");
  const double t = transfer_seconds(data.size(), bandwidth_, latency_);
  objects_[key] = std::move(data);
  return t;
}

std::optional<Bytes> LocalDisk::get(const std::string& key) const {
  if (failed_) return std::nullopt;
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

double LocalDisk::read_seconds(const std::string& key) const {
  auto it = objects_.find(key);
  AIC_CHECK_MSG(!failed_ && it != objects_.end(),
                "read_seconds on missing object " << key);
  return transfer_seconds(it->second.size(), bandwidth_, latency_);
}

bool LocalDisk::erase(const std::string& key) {
  return objects_.erase(key) > 0;
}

std::uint64_t LocalDisk::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

void LocalDisk::replace() {
  failed_ = false;
  objects_.clear();
}

// ---------- Raid5Group ----------

Raid5Group::Raid5Group(std::size_t nodes, double bandwidth_bps,
                       std::size_t stripe_unit, double latency_s)
    : stripe_unit_(stripe_unit),
      bandwidth_(bandwidth_bps),
      latency_(latency_s),
      node_failed_(nodes, false),
      shares_(nodes) {
  AIC_CHECK_MSG(nodes >= 3, "RAID-5 needs at least 3 members");
  AIC_CHECK(bandwidth_bps > 0.0);
  AIC_CHECK(stripe_unit >= 1);
}

std::size_t Raid5Group::failed_nodes() const {
  return std::size_t(
      std::count(node_failed_.begin(), node_failed_.end(), true));
}

std::size_t Raid5Group::parity_node(std::uint64_t stripe) const {
  const std::size_t n = shares_.size();
  return (n - 1) - std::size_t(stripe % n);
}

double Raid5Group::put(const std::string& key, Bytes data) {
  AIC_CHECK_MSG(available(), "write to degraded-beyond-repair RAID group");
  const std::size_t n = shares_.size();
  const std::size_t data_units = n - 1;
  const std::size_t stripe_bytes = stripe_unit_ * data_units;
  const std::uint64_t stripes =
      data.empty() ? 0 : (data.size() + stripe_bytes - 1) / stripe_bytes;

  // The write time covers data + parity at the aggregate group bandwidth.
  const std::uint64_t written =
      stripes * stripe_unit_ * n;  // includes parity + padding
  const double t = transfer_seconds(std::max<std::uint64_t>(written, 1),
                                    bandwidth_, latency_);

  // Lay out shares. Each stripe: data_units units + 1 parity unit.
  std::vector<Bytes> node_share(n);
  Bytes unit(stripe_unit_, 0);
  for (std::uint64_t s = 0; s < stripes; ++s) {
    const std::size_t pnode = parity_node(s);
    Bytes parity(stripe_unit_, 0);
    std::size_t unit_idx = 0;
    for (std::size_t node = 0; node < n; ++node) {
      if (node == pnode) continue;
      const std::size_t off = std::size_t(s) * stripe_bytes +
                              unit_idx * stripe_unit_;
      std::fill(unit.begin(), unit.end(), 0);
      if (off < data.size()) {
        const std::size_t len = std::min(stripe_unit_, data.size() - off);
        std::copy(data.begin() + off, data.begin() + off + len, unit.begin());
      }
      for (std::size_t b = 0; b < stripe_unit_; ++b) parity[b] ^= unit[b];
      node_share[node].insert(node_share[node].end(), unit.begin(),
                              unit.end());
      ++unit_idx;
    }
    node_share[pnode].insert(node_share[pnode].end(), parity.begin(),
                             parity.end());
  }
  for (std::size_t node = 0; node < n; ++node) {
    if (node_failed_[node]) continue;  // degraded write skips the dead node
    shares_[node][key] = std::move(node_share[node]);
  }
  meta_[key] = ObjectMeta{data.size(), stripes};
  return t;
}

std::optional<Bytes> Raid5Group::get(const std::string& key) const {
  if (!available()) return std::nullopt;
  auto mit = meta_.find(key);
  if (mit == meta_.end()) return std::nullopt;
  const ObjectMeta& meta = mit->second;
  const std::size_t n = shares_.size();
  const std::size_t data_units = n - 1;

  // Collect each node's share (empty span if the node is down or the share
  // is missing, e.g. written while that node was down).
  std::vector<const Bytes*> share(n, nullptr);
  std::size_t missing = 0;
  for (std::size_t node = 0; node < n; ++node) {
    if (node_failed_[node]) {
      ++missing;
      continue;
    }
    auto it = shares_[node].find(key);
    if (it == shares_[node].end()) {
      ++missing;
      continue;
    }
    share[node] = &it->second;
  }
  if (missing > 1) return std::nullopt;

  Bytes out;
  out.reserve(meta.size);
  Bytes unit(stripe_unit_, 0);
  for (std::uint64_t s = 0; s < meta.stripes; ++s) {
    const std::size_t pnode = parity_node(s);
    // Per-stripe unit index within each node's concatenated share:
    // every node contributes exactly one unit per stripe.
    const std::size_t share_off = std::size_t(s) * stripe_unit_;
    std::size_t unit_idx = 0;
    for (std::size_t node = 0; node < n; ++node) {
      if (node == pnode) continue;
      if (share[node]) {
        const Bytes& sh = *share[node];
        AIC_CHECK(share_off + stripe_unit_ <= sh.size());
        std::copy(sh.begin() + share_off,
                  sh.begin() + share_off + stripe_unit_, unit.begin());
      } else {
        // Reconstruct the lost data unit: XOR of all surviving units of
        // this stripe (including parity).
        std::fill(unit.begin(), unit.end(), 0);
        for (std::size_t other = 0; other < n; ++other) {
          if (other == node) continue;
          AIC_CHECK_MSG(share[other], "two members missing in one stripe");
          const Bytes& sh = *share[other];
          AIC_CHECK(share_off + stripe_unit_ <= sh.size());
          for (std::size_t b = 0; b < stripe_unit_; ++b)
            unit[b] ^= sh[share_off + b];
        }
      }
      // Append, trimming the final stripe's padding.
      const std::size_t logical_off =
          (std::size_t(s) * data_units + unit_idx) * stripe_unit_;
      if (logical_off < meta.size) {
        const std::size_t len =
            std::min(stripe_unit_, std::size_t(meta.size) - logical_off);
        out.insert(out.end(), unit.begin(), unit.begin() + len);
      }
      ++unit_idx;
    }
  }
  AIC_CHECK(out.size() == meta.size);
  return out;
}

double Raid5Group::read_seconds(const std::string& key) const {
  auto mit = meta_.find(key);
  AIC_CHECK_MSG(mit != meta_.end(), "read_seconds on missing object " << key);
  return transfer_seconds(std::max<std::uint64_t>(mit->second.size, 1),
                          bandwidth_, latency_);
}

bool Raid5Group::erase(const std::string& key) {
  bool existed = meta_.erase(key) > 0;
  for (auto& node : shares_) node.erase(key);
  return existed;
}

std::uint64_t Raid5Group::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : shares_)
    for (const auto& [k, v] : node) total += v.size();
  return total;
}

void Raid5Group::fail_node(std::size_t node) {
  AIC_CHECK(node < shares_.size());
  node_failed_[node] = true;
  shares_[node].clear();
}

bool Raid5Group::is_node_failed(std::size_t node) const {
  AIC_CHECK(node < shares_.size());
  return node_failed_[node];
}

std::uint64_t Raid5Group::rebuild_node(std::size_t node) {
  AIC_CHECK(node < shares_.size());
  AIC_CHECK_MSG(node_failed_[node], "rebuilding a healthy node");
  AIC_CHECK_MSG(failed_nodes() == 1,
                "rebuild_node(" << node << ") with another member down — "
                "parity reconstruction needs every other member healthy");
  node_failed_[node] = false;
  std::uint64_t rebuilt = 0;
  const std::size_t n = shares_.size();
  for (const auto& [key, meta] : meta_) {
    Bytes share;
    share.resize(std::size_t(meta.stripes) * stripe_unit_, 0);
    bool have_all = true;
    for (std::uint64_t s = 0; s < meta.stripes && have_all; ++s) {
      const std::size_t off = std::size_t(s) * stripe_unit_;
      for (std::size_t other = 0; other < n; ++other) {
        if (other == node) continue;
        auto it = shares_[other].find(key);
        if (it == shares_[other].end()) {
          have_all = false;
          break;
        }
        const Bytes& sh = it->second;
        AIC_CHECK(off + stripe_unit_ <= sh.size());
        for (std::size_t b = 0; b < stripe_unit_; ++b)
          share[off + b] ^= sh[off + b];
      }
    }
    if (have_all && meta.stripes > 0) {
      rebuilt += share.size();
      shares_[node][key] = std::move(share);
    }
  }
  return rebuilt;
}

// ---------- RemoteStore ----------

RemoteStore::RemoteStore(double bandwidth_bps, double latency_s)
    : bandwidth_(bandwidth_bps), latency_(latency_s) {
  AIC_CHECK(bandwidth_bps > 0.0);
}

double RemoteStore::put(const std::string& key, Bytes data) {
  const double t = transfer_seconds(data.size(), bandwidth_, latency_);
  objects_[key] = std::move(data);
  return t;
}

std::optional<Bytes> RemoteStore::get(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

double RemoteStore::read_seconds(const std::string& key) const {
  auto it = objects_.find(key);
  AIC_CHECK_MSG(it != objects_.end(), "read_seconds on missing object " << key);
  return transfer_seconds(it->second.size(), bandwidth_, latency_);
}

bool RemoteStore::erase(const std::string& key) {
  return objects_.erase(key) > 0;
}

std::uint64_t RemoteStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

}  // namespace aic::storage
