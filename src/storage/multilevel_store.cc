#include "storage/multilevel_store.h"

#include <algorithm>

#include "common/check.h"

namespace aic::storage {

MultiLevelStore::MultiLevelStore(MultiLevelConfig config)
    : config_(config),
      local_(config.local_bps),
      raid_(config.raid_nodes, config.raid_bps),
      remote_(config.remote_bps),
      raid_sink_(raid_),
      remote_sink_(remote_),
      xfer_(config.xfer) {
  xfer_.add_level(2, {config.raid_bps, config.raid_latency_s}, &raid_sink_);
  xfer_.add_level(3, {config.remote_bps, config.remote_latency_s},
                  &remote_sink_);
}

DrainTicket MultiLevelStore::put_checkpoint_async(
    const ckpt::CheckpointFile& file) {
  Bytes wire = file.serialize();
  const std::string key = key_for(next_index_);
  DrainTicket ticket;
  ticket.index = next_index_;
  ticket.local_seconds = local_.available() ? local_.put(key, wire) : 0.0;
  if (raid_.available()) ticket.raid = xfer_.submit(2, key, wire);
  ticket.remote = xfer_.submit(3, key, std::move(wire));
  is_full_[next_index_] = file.kind == ckpt::CheckpointKind::kFull;
  drains_[next_index_] = ticket;
  ++next_index_;
  return ticket;
}

PlacementTimes MultiLevelStore::put_checkpoint(
    const ckpt::CheckpointFile& file) {
  const DrainTicket ticket = put_checkpoint_async(file);
  xfer_.run_until_idle();
  PlacementTimes times;
  times.local = ticket.local_seconds;
  if (ticket.raid.has_value()) {
    xfer_.rethrow_if_aborted(*ticket.raid);
    const xfer::TransferRecord& r = xfer_.record(*ticket.raid);
    times.raid = r.commit_time - r.submit_time;
  }
  xfer_.rethrow_if_aborted(*ticket.remote);
  const xfer::TransferRecord& r3 = xfer_.record(*ticket.remote);
  times.remote = r3.commit_time - r3.submit_time;
  return times;
}

void MultiLevelStore::apply_failure(int level, Rng& rng) {
  AIC_CHECK(level >= 1 && level <= 3);
  if (level >= 2) {
    // The node (and its checkpointing core) is gone: every in-flight drain
    // dies at its current chunk and becomes a resumable partial.
    xfer_.interrupt_level(2);
    xfer_.interrupt_level(3);
    // The node's disk is gone; a spare comes up with an empty disk.
    local_.fail();
    local_.replace();
  }
  if (level == 2) {
    // The dead node may have been a member of a partner group: one RAID
    // member drops out and is rebuilt from parity — data stays readable
    // throughout (the reconstruction path is exercised by recover()).
    // With a member already down the group has no parity slack to give.
    if (raid_.failed_nodes() == 0) {
      const std::size_t victim = rng.uniform_u64(raid_.node_count());
      raid_.fail_node(victim);
      raid_.rebuild_node(victim);
    }
  }
  if (level == 3) {
    // Catastrophic: two group members lost — beyond RAID-5's tolerance,
    // only the remote copies survive until reseed_from_remote().
    const std::size_t a = rng.uniform_u64(raid_.node_count());
    const std::size_t b = (a + 1) % raid_.node_count();
    if (!raid_.is_node_failed(a)) raid_.fail_node(a);
    if (!raid_.is_node_failed(b)) raid_.fail_node(b);
  }
}

std::size_t MultiLevelStore::resume_drains() {
  std::size_t resumed = xfer_.resume_level(3);
  // Resuming an L2 drain needs a group that can accept the commit.
  if (raid_.available()) resumed += xfer_.resume_level(2);
  return resumed;
}

std::size_t MultiLevelStore::unfinished_drains() const {
  return xfer_.runnable_count() + xfer_.interrupted_count();
}

void MultiLevelStore::truncate_to(std::uint64_t count) {
  AIC_CHECK_MSG(count <= next_index_,
                "truncate_to(" << count << ") beyond " << next_index_);
  for (std::uint64_t i = count; i < next_index_; ++i) {
    const std::string key = key_for(i);
    local_.erase(key);
    raid_.erase(key);
    remote_.erase(key);
    auto it = drains_.find(i);
    if (it != drains_.end()) {
      if (it->second.raid.has_value() && xfer_.known(*it->second.raid)) {
        xfer_.discard(*it->second.raid);
      }
      if (it->second.remote.has_value() && xfer_.known(*it->second.remote)) {
        xfer_.discard(*it->second.remote);
      }
      drains_.erase(it);
    }
    is_full_.erase(i);
  }
  next_index_ = count;
}

std::uint64_t MultiLevelStore::reclaim_checkpoint(
    std::uint64_t index, const ckpt::CheckpointFile* reanchored) {
  AIC_CHECK_MSG(index + 1 < next_index_,
                "reclaim_checkpoint(" << index << ") would drop the newest "
                                      << "checkpoint (have " << next_index_
                                      << ")");
  const std::string key = key_for(index);
  std::uint64_t freed = 0;
  for (const StorageTarget* t :
       {static_cast<const StorageTarget*>(&local_),
        static_cast<const StorageTarget*>(&raid_),
        static_cast<const StorageTarget*>(&remote_)}) {
    if (!t->available()) continue;
    if (auto bytes = t->get(key)) freed += bytes->size();
  }
  local_.erase(key);
  raid_.erase(key);
  remote_.erase(key);
  auto it = drains_.find(index);
  if (it != drains_.end()) {
    if (it->second.raid.has_value() && xfer_.known(*it->second.raid))
      xfer_.discard(*it->second.raid);
    if (it->second.remote.has_value() && xfer_.known(*it->second.remote))
      xfer_.discard(*it->second.remote);
    drains_.erase(it);
  }
  is_full_.erase(index);

  if (reanchored != nullptr) {
    const std::uint64_t succ = index + 1;
    const std::string skey = key_for(succ);
    const Bytes wire = reanchored->serialize();
    auto dit = drains_.find(succ);
    // Per level: a committed copy is replaced in place; a still-running
    // (or interrupted/aborted) drain is carrying the stale delta bytes and
    // must be discarded and resubmitted so it can never commit over the
    // hole the reclaim just opened.
    auto settle = [&](int level, std::optional<xfer::TransferId>& id,
                      const StorageTarget& target) {
      const bool committed =
          id.has_value() && xfer_.known(*id) &&
          xfer_.record(*id).state == xfer::TransferState::kCommitted;
      if (committed) {
        if (target.available()) {
          if (level == 2) raid_.put(skey, wire);
          else remote_.put(skey, wire);
        }
        return;
      }
      if (id.has_value() && xfer_.known(*id)) xfer_.discard(*id);
      if (level == 3 || target.available())
        id = xfer_.submit(level, skey, wire);
    };
    if (local_.available() && local_.get(skey).has_value())
      local_.put(skey, wire);
    if (dit != drains_.end()) {
      settle(2, dit->second.raid, raid_);
      settle(3, dit->second.remote, remote_);
    }
    is_full_[succ] = true;
  }
  return freed;
}

void MultiLevelStore::repair_raid_group() {
  // Replacement members join empty; re-striping happens via
  // reseed_from_remote().
  raid_ = Raid5Group(config_.raid_nodes, config_.raid_bps);
  for (std::uint64_t i = 0; i < next_index_; ++i) raid_.erase(key_for(i));
}

std::optional<MultiLevelStore::Recovery> MultiLevelStore::recover_from(
    const StorageTarget& target, int level) const {
  if (!target.available() || next_index_ == 0) return std::nullopt;
  // Walk from the newest checkpoint backwards to its chain-starting full,
  // requiring every file on the way to be readable from this target.
  for (std::uint64_t newest = next_index_; newest-- > 0;) {
    std::vector<ckpt::CheckpointFile> chain;
    double read_seconds = 0.0;
    bool complete = false;
    for (std::uint64_t i = newest + 1; i-- > 0;) {
      auto bytes = target.get(key_for(i));
      if (!bytes.has_value()) break;  // hole: try an older newest
      read_seconds += target.read_seconds(key_for(i));
      chain.push_back(ckpt::CheckpointFile::parse(*bytes));
      if (is_full_.at(i)) {
        complete = true;
        break;
      }
    }
    if (!complete) continue;
    std::reverse(chain.begin(), chain.end());
    return Recovery{std::move(chain), read_seconds, level};
  }
  return std::nullopt;
}

std::optional<MultiLevelStore::Recovery> MultiLevelStore::recover() const {
  if (auto r = recover_from(local_, 1)) return r;
  if (auto r = recover_from(raid_, 2)) return r;
  return recover_from(remote_, 3);
}

bool MultiLevelStore::remote_drain_unfinished(std::uint64_t index) const {
  auto it = drains_.find(index);
  if (it == drains_.end() || !it->second.remote.has_value()) return false;
  const xfer::TransferId id = *it->second.remote;
  if (!xfer_.known(id)) return false;
  return xfer_.record(id).state != xfer::TransferState::kCommitted;
}

std::uint64_t MultiLevelStore::reseed_from_remote() {
  std::uint64_t copied = 0;
  for (std::uint64_t i = 0; i < next_index_; ++i) {
    const std::string key = key_for(i);
    auto bytes = remote_.get(key);
    if (!bytes.has_value()) {
      // Legitimately absent only while its drain is still in progress (or
      // died mid-flight); anything else means the remote store lost data.
      AIC_CHECK_MSG(remote_drain_unfinished(i), "remote store lost " << key);
      continue;
    }
    if (local_.available() && !local_.get(key).has_value()) {
      copied += bytes->size();
      local_.put(key, *bytes);
    }
    if (raid_.available() && !raid_.get(key).has_value()) {
      copied += bytes->size();
      // A fully healthy group is required to re-stripe.
      if (raid_.failed_nodes() == 0) raid_.put(key, *bytes);
    }
  }
  return copied;
}

}  // namespace aic::storage
