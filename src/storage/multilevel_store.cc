#include "storage/multilevel_store.h"

#include <algorithm>

#include "common/check.h"

namespace aic::storage {

MultiLevelStore::MultiLevelStore(MultiLevelConfig config)
    : config_(config),
      local_(config.local_bps),
      raid_(config.raid_nodes, config.raid_bps),
      remote_(config.remote_bps) {}

PlacementTimes MultiLevelStore::put_checkpoint(
    const ckpt::CheckpointFile& file) {
  const Bytes wire = file.serialize();
  const std::string key = key_for(next_index_);
  PlacementTimes times;
  times.local = local_.available() ? local_.put(key, wire) : 0.0;
  times.raid = raid_.available() ? raid_.put(key, wire) : 0.0;
  times.remote = remote_.put(key, wire);
  is_full_[next_index_] = file.kind == ckpt::CheckpointKind::kFull;
  ++next_index_;
  return times;
}

void MultiLevelStore::apply_failure(int level, Rng& rng) {
  AIC_CHECK(level >= 1 && level <= 3);
  if (level >= 2) {
    // The node (and its disk) is gone; a spare comes up with an empty disk.
    local_.fail();
    local_.replace();
  }
  if (level == 2) {
    // The dead node may have been a member of a partner group: one RAID
    // member drops out and is rebuilt from parity — data stays readable
    // throughout (the reconstruction path is exercised by recover()).
    const std::size_t victim = rng.uniform_u64(raid_.node_count());
    raid_.fail_node(victim);
    raid_.rebuild_node(victim);
  }
  if (level == 3) {
    // Catastrophic: two group members lost — beyond RAID-5's tolerance,
    // only the remote copies survive until reseed_from_remote().
    const std::size_t a = rng.uniform_u64(raid_.node_count());
    const std::size_t b = (a + 1) % raid_.node_count();
    raid_.fail_node(a);
    raid_.fail_node(b);
  }
}

void MultiLevelStore::repair_raid_group() {
  // Replacement members join empty; re-striping happens via
  // reseed_from_remote().
  for (std::size_t n = 0; n < raid_.node_count(); ++n) {
    if (raid_.failed_nodes() == 0) break;
    // rebuild_node clears the failed flag; with 2 losses the rebuilt
    // content is unreliable, so erase everything and reseed.
    // (Raid5Group::rebuild_node requires the node to be marked failed.)
  }
  raid_ = Raid5Group(config_.raid_nodes, config_.raid_bps);
  for (std::uint64_t i = 0; i < next_index_; ++i) raid_.erase(key_for(i));
}

std::optional<MultiLevelStore::Recovery> MultiLevelStore::recover_from(
    const StorageTarget& target, int level) const {
  if (!target.available() || next_index_ == 0) return std::nullopt;
  // Walk from the newest checkpoint backwards to its chain-starting full,
  // requiring every file on the way to be readable from this target.
  for (std::uint64_t newest = next_index_; newest-- > 0;) {
    std::vector<ckpt::CheckpointFile> chain;
    double read_seconds = 0.0;
    bool complete = false;
    for (std::uint64_t i = newest + 1; i-- > 0;) {
      auto bytes = target.get(key_for(i));
      if (!bytes.has_value()) break;  // hole: try an older newest
      read_seconds += target.read_seconds(key_for(i));
      chain.push_back(ckpt::CheckpointFile::parse(*bytes));
      if (is_full_.at(i)) {
        complete = true;
        break;
      }
    }
    if (!complete) continue;
    std::reverse(chain.begin(), chain.end());
    return Recovery{std::move(chain), read_seconds, level};
  }
  return std::nullopt;
}

std::optional<MultiLevelStore::Recovery> MultiLevelStore::recover() const {
  if (auto r = recover_from(local_, 1)) return r;
  if (auto r = recover_from(raid_, 2)) return r;
  return recover_from(remote_, 3);
}

std::uint64_t MultiLevelStore::reseed_from_remote() {
  std::uint64_t copied = 0;
  for (std::uint64_t i = 0; i < next_index_; ++i) {
    const std::string key = key_for(i);
    auto bytes = remote_.get(key);
    AIC_CHECK_MSG(bytes.has_value(), "remote store lost " << key);
    if (local_.available() && !local_.get(key).has_value()) {
      copied += bytes->size();
      local_.put(key, *bytes);
    }
    if (raid_.available() && !raid_.get(key).has_value()) {
      copied += bytes->size();
      // A fully healthy group is required to re-stripe.
      if (raid_.failed_nodes() == 0) raid_.put(key, *bytes);
    }
  }
  return copied;
}

}  // namespace aic::storage
