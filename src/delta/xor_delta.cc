#include "delta/xor_delta.h"

#include "common/check.h"

namespace aic::delta {
namespace {

constexpr std::uint8_t kZeroRun = 0x00;
constexpr std::uint8_t kLiteral = 0x01;

std::uint8_t source_at(ByteSpan source, std::size_t i) {
  return i < source.size() ? source[i] : 0;
}

}  // namespace

Bytes XorDeltaCodec::encode(ByteSpan source, ByteSpan target,
                            CodecStats* stats) const {
  CodecStats st;
  st.input_bytes = target.size();
  st.source_bytes = source.size();

  Bytes out;
  out.reserve(target.size() / 16 + 16);
  ByteWriter w(out);
  w.varint(source.size());
  w.varint(target.size());

  auto xor_at = [&](std::size_t k) {
    return std::uint8_t(target[k] ^ source_at(source, k));
  };

  std::size_t i = 0;
  while (i < target.size()) {
    // Measure the zero run starting here.
    std::size_t run = 0;
    while (i + run < target.size() && xor_at(i + run) == 0) ++run;
    if (run > 0 && (run >= min_zero_run_ || i + run == target.size())) {
      w.u8(kZeroRun);
      w.varint(run);
      ++st.copy_ops;  // a zero run plays the role of a COPY
      i += run;
      st.work_units += run;
      continue;
    }
    // Literal segment: scan until a worthwhile zero run begins or the end.
    const std::size_t lit_start = i;
    std::size_t zeros = 0;
    std::size_t j = i;
    while (j < target.size()) {
      zeros = xor_at(j) == 0 ? zeros + 1 : 0;
      ++j;
      if (zeros == min_zero_run_) {
        j -= min_zero_run_;  // exclude the upcoming run from the literal
        break;
      }
    }
    const std::size_t lit_len = j - lit_start;
    w.u8(kLiteral);
    w.varint(lit_len);
    for (std::size_t k = 0; k < lit_len; ++k) w.u8(xor_at(lit_start + k));
    ++st.add_ops;
    st.work_units += 2 * lit_len;
    i = j;
  }

  st.output_bytes = out.size();
  if (stats) *stats = st;
  return out;
}

Bytes XorDeltaCodec::decode(ByteSpan source, ByteSpan delta,
                            CodecStats* stats) const {
  CodecStats st;
  ByteReader r(delta);
  const std::uint64_t source_size = r.varint();
  const std::uint64_t target_size = r.varint();
  AIC_CHECK_MSG(source_size == source.size(),
                "delta was made against a different source");
  Bytes out;
  out.reserve(target_size);
  while (!r.done()) {
    const std::uint8_t op = r.u8();
    const std::uint64_t len = r.varint();
    if (op == kZeroRun) {
      for (std::uint64_t k = 0; k < len; ++k)
        out.push_back(source_at(source, out.size()));
      ++st.copy_ops;
    } else if (op == kLiteral) {
      ByteSpan lit = r.raw(len);
      for (std::uint64_t k = 0; k < len; ++k)
        out.push_back(std::uint8_t(lit[k] ^ source_at(source, out.size())));
      ++st.add_ops;
    } else {
      AIC_CHECK_MSG(false, "bad xor-delta opcode " << int(op));
    }
    st.work_units += len;
  }
  AIC_CHECK_MSG(out.size() == target_size, "decoded size mismatch");
  st.input_bytes = out.size();
  st.source_bytes = source.size();
  st.output_bytes = delta.size();
  if (stats) *stats = st;
  return out;
}

}  // namespace aic::delta
