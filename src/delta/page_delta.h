// Checkpoint-level delta compression: the page-aligned Xdelta3-PA coder of
// Section IV.C and the conventional whole-file Xdelta3 coder it is compared
// against (Table 3).
//
// Xdelta3-PA differences *each* dirty page against its previous version
// from the prior checkpoint, if one exists; new pages are stored raw. The
// page alignment is what lets the AIC predictor estimate compression cost
// per page (JD/DI metrics) — the whole-file coder cannot support online
// decision because its cost has no per-page decomposition.
//
// Payload formats (both varint-based, see common/bytes.h):
//   page-aligned: varint page_count, then per page:
//       varint page_id, u8 kind (0 raw | 1 delta | 2 same | 3 cdelta),
//       then for raw/delta: varint len, bytes (a "same" record is just the
//       id + kind — the page is bit-identical to its previous version, the
//       common case for conservatively write-protected pages, detected by a
//       memcmp fast path that skips the codec entirely); a cdelta record
//       is varint src_page_id, varint len, then a correcting-coder
//       (delta format v3) instruction stream applied against the previous
//       version of src_page_id — src_page_id == page_id for an in-frame
//       delta, a different id for a whole-page move (detected via the
//       MoveIndex content hash, the common case when a region of the
//       address space is memmoved by whole pages). cdelta records only
//       appear in correcting-mode payloads (checkpoint format v3), but
//       decompress() always understands all four kinds.
//   whole-file:   varint page_count, varint page_id deltas (ascending),
//       varint delta_len, delta bytes (XDelta3 over the concatenation of
//       the dirty pages against the concatenation of *all* pages of the
//       previous checkpoint in id order)
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "delta/correcting.h"
#include "delta/xdelta3.h"
#include "mem/snapshot.h"

namespace aic::delta {

using mem::PageId;

/// One dirty page to compress: id plus its current image.
struct DirtyPage {
  PageId id;
  ByteSpan bytes;  // exactly kPageSize bytes, owned by the caller
};

/// Aggregate accounting for one checkpoint compression.
struct DeltaResult {
  Bytes payload;
  CodecStats stats;
  std::uint64_t pages_total = 0;
  std::uint64_t pages_delta = 0;  // pages encoded as a delta (hot pages)
  std::uint64_t pages_raw = 0;    // new pages stored verbatim
  std::uint64_t pages_same = 0;   // unchanged pages (memcmp fast path)
  /// Subset of pages_delta encoded against a *different* previous page
  /// (whole-page moves found via the MoveIndex; correcting mode only).
  std::uint64_t pages_moved = 0;
};

/// Content index over the previous checkpoint's pages for whole-page move
/// detection: fnv1a64(page content) -> lowest page id with that content.
/// Built once per compress() call (correcting mode only) and shared
/// read-only across shards, so parallel output stays byte-identical to
/// serial. Candidates are memcmp-verified before use — a hash collision
/// costs one compare, never a wrong encoding.
class MoveIndex {
 public:
  /// Empty index: move detection off (greedy mode).
  MoveIndex() = default;
  explicit MoveIndex(const mem::Snapshot& prev);

  /// Lowest previous-page id whose content is bit-identical to `bytes`,
  /// or nullopt.
  std::optional<mem::PageId> find(ByteSpan bytes,
                                  const mem::Snapshot& prev) const;

 private:
  std::unordered_map<std::uint64_t, mem::PageId> by_content_;
};

/// Page-aligned delta compressor: Xdelta3-PA (greedy), or — in correcting
/// mode — the one-pass correcting coder with whole-page move detection
/// (payload kind cdelta, checkpoint format v3).
class PageAlignedCompressor {
 public:
  explicit PageAlignedCompressor(XDelta3Config per_page = page_config(),
                                 bool correcting = false);

  /// Default per-page coder tuning: 4 KiB inputs want small blocks.
  static XDelta3Config page_config() {
    return XDelta3Config{.block_size = 32, .max_probes = 8, .min_match = 12};
  }

  /// Compresses `dirty` against `prev` (the previous checkpoint's pages).
  DeltaResult compress(const std::vector<DirtyPage>& dirty,
                       const mem::Snapshot& prev) const;

  /// Inverse: reconstructs the dirty pages' images given the same `prev`.
  /// Decodes every record kind regardless of the compressor's encode mode.
  mem::Snapshot decompress(ByteSpan payload, const mem::Snapshot& prev) const;

  /// Applies the payload directly onto `state` (the accumulated restart
  /// image), mutating page frames where they sit instead of materializing
  /// a second snapshot — the Burns/Long/Stockmeyer in-place restore. Page
  /// frames whose old content is still needed by a later whole-page-move
  /// record are stashed (copied once) until their last reader, so extra
  /// memory is one scratch page plus the transiently-stashed movers,
  /// rather than a full decoded snapshot. Equivalent to
  /// decompress() + overlay (tested byte-exact). Freed pages must be
  /// applied AFTER this call, exactly like the decompress() path.
  void decompress_in_place(ByteSpan payload, mem::Snapshot& state) const;

  /// Builds the move index for one compress() call: populated in
  /// correcting mode, empty (detection off) in greedy mode.
  MoveIndex move_index(const mem::Snapshot& prev) const;

  /// Encodes one dirty page (same/cdelta/delta/raw record) into `w`,
  /// merging its accounting into `acc` — everything except
  /// `stats.output_bytes`, which the caller sets from the finished
  /// payload. `moves` is the shared per-call MoveIndex (from
  /// move_index()). This is the single per-page encoder shared with
  /// ParallelPageCompressor: both compressors emit the exact same record
  /// stream, which is what makes parallel output byte-identical to serial
  /// output (a tested invariant).
  void encode_page(const DirtyPage& page, const mem::Snapshot& prev,
                   const MoveIndex& moves, ByteWriter& w,
                   DeltaResult& acc) const;

  bool correcting() const { return correcting_; }

 private:
  XDelta3Codec codec_;
  CorrectingDeltaCodec ccodec_{CorrectingDeltaCodec::page_config()};
  bool correcting_ = false;
};

/// Conventional whole-file delta compressor (plain Xdelta3 between two
/// successive checkpoints), for the Table 3 comparison.
class WholeFileCompressor {
 public:
  explicit WholeFileCompressor(XDelta3Config config = file_config());

  static XDelta3Config file_config() {
    return XDelta3Config{.block_size = 256, .max_probes = 8, .min_match = 32};
  }

  DeltaResult compress(const std::vector<DirtyPage>& dirty,
                       const mem::Snapshot& prev) const;
  mem::Snapshot decompress(ByteSpan payload, const mem::Snapshot& prev) const;

 private:
  XDelta3Codec codec_;
};

}  // namespace aic::delta
