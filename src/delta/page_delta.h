// Checkpoint-level delta compression: the page-aligned Xdelta3-PA coder of
// Section IV.C and the conventional whole-file Xdelta3 coder it is compared
// against (Table 3).
//
// Xdelta3-PA differences *each* dirty page against its previous version
// from the prior checkpoint, if one exists; new pages are stored raw. The
// page alignment is what lets the AIC predictor estimate compression cost
// per page (JD/DI metrics) — the whole-file coder cannot support online
// decision because its cost has no per-page decomposition.
//
// Payload formats (both varint-based, see common/bytes.h):
//   page-aligned: varint page_count, then per page:
//       varint page_id, u8 kind (0 raw | 1 delta | 2 same),
//       then for raw/delta: varint len, bytes (a "same" record is just the
//       id + kind — the page is bit-identical to its previous version, the
//       common case for conservatively write-protected pages, detected by a
//       memcmp fast path that skips the codec entirely)
//   whole-file:   varint page_count, varint page_id deltas (ascending),
//       varint delta_len, delta bytes (XDelta3 over the concatenation of
//       the dirty pages against the concatenation of *all* pages of the
//       previous checkpoint in id order)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "delta/xdelta3.h"
#include "mem/snapshot.h"

namespace aic::delta {

using mem::PageId;

/// One dirty page to compress: id plus its current image.
struct DirtyPage {
  PageId id;
  ByteSpan bytes;  // exactly kPageSize bytes, owned by the caller
};

/// Aggregate accounting for one checkpoint compression.
struct DeltaResult {
  Bytes payload;
  CodecStats stats;
  std::uint64_t pages_total = 0;
  std::uint64_t pages_delta = 0;  // pages encoded as a delta (hot pages)
  std::uint64_t pages_raw = 0;    // new pages stored verbatim
  std::uint64_t pages_same = 0;   // unchanged pages (memcmp fast path)
};

/// Page-aligned delta compressor (Xdelta3-PA).
class PageAlignedCompressor {
 public:
  explicit PageAlignedCompressor(XDelta3Config per_page = page_config());

  /// Default per-page coder tuning: 4 KiB inputs want small blocks.
  static XDelta3Config page_config() {
    return XDelta3Config{.block_size = 32, .max_probes = 8, .min_match = 12};
  }

  /// Compresses `dirty` against `prev` (the previous checkpoint's pages).
  DeltaResult compress(const std::vector<DirtyPage>& dirty,
                       const mem::Snapshot& prev) const;

  /// Inverse: reconstructs the dirty pages' images given the same `prev`.
  mem::Snapshot decompress(ByteSpan payload, const mem::Snapshot& prev) const;

  /// Encodes one dirty page (same/delta/raw record) into `w`, merging its
  /// accounting into `acc` — everything except `stats.output_bytes`, which
  /// the caller sets from the finished payload. This is the single per-page
  /// encoder shared with ParallelPageCompressor: both compressors emit the
  /// exact same record stream, which is what makes parallel output
  /// byte-identical to serial output (a tested invariant).
  void encode_page(const DirtyPage& page, const mem::Snapshot& prev,
                   ByteWriter& w, DeltaResult& acc) const;

 private:
  XDelta3Codec codec_;
};

/// Conventional whole-file delta compressor (plain Xdelta3 between two
/// successive checkpoints), for the Table 3 comparison.
class WholeFileCompressor {
 public:
  explicit WholeFileCompressor(XDelta3Config config = file_config());

  static XDelta3Config file_config() {
    return XDelta3Config{.block_size = 256, .max_probes = 8, .min_match = 32};
  }

  DeltaResult compress(const std::vector<DirtyPage>& dirty,
                       const mem::Snapshot& prev) const;
  mem::Snapshot decompress(ByteSpan payload, const mem::Snapshot& prev) const;

 private:
  XDelta3Codec codec_;
};

}  // namespace aic::delta
