#include "delta/page_delta.h"

#include "common/check.h"
#include "common/units.h"

namespace aic::delta {
namespace {

constexpr std::uint8_t kKindRaw = 0;
constexpr std::uint8_t kKindDelta = 1;

}  // namespace

PageAlignedCompressor::PageAlignedCompressor(XDelta3Config per_page)
    : codec_(per_page) {}

DeltaResult PageAlignedCompressor::compress(
    const std::vector<DirtyPage>& dirty, const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  ByteWriter w(result.payload);
  w.varint(dirty.size());
  for (const DirtyPage& page : dirty) {
    AIC_CHECK(page.bytes.size() == kPageSize);
    w.varint(page.id);
    result.stats.input_bytes += kPageSize;
    if (prev.contains(page.id)) {
      CodecStats st;
      Bytes delta = codec_.encode(prev.page_bytes(page.id), page.bytes, &st);
      result.stats.work_units += st.work_units;
      result.stats.copy_ops += st.copy_ops;
      result.stats.add_ops += st.add_ops;
      result.stats.source_bytes += kPageSize;
      if (delta.size() < kPageSize) {
        w.u8(kKindDelta);
        w.varint(delta.size());
        w.raw(delta);
        ++result.pages_delta;
        continue;
      }
      // Delta expanded (dissimilar page): fall through to raw.
    }
    w.u8(kKindRaw);
    w.varint(kPageSize);
    w.raw(page.bytes);
    result.stats.work_units += kPageSize;
    ++result.pages_raw;
  }
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot PageAlignedCompressor::decompress(
    ByteSpan payload, const mem::Snapshot& prev) const {
  mem::Snapshot out;
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageId id = r.varint();
    const std::uint8_t kind = r.u8();
    const std::uint64_t len = r.varint();
    ByteSpan body = r.raw(len);
    if (kind == kKindRaw) {
      out.put_page(id, body);
    } else if (kind == kKindDelta) {
      AIC_CHECK_MSG(prev.contains(id),
                    "delta page " << id << " missing from previous snapshot");
      Bytes page = codec_.decode(prev.page_bytes(id), body);
      AIC_CHECK(page.size() == kPageSize);
      out.put_page(id, page);
    } else {
      AIC_CHECK_MSG(false, "bad page kind " << int(kind));
    }
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in page-delta payload");
  return out;
}

WholeFileCompressor::WholeFileCompressor(XDelta3Config config)
    : codec_(config) {}

DeltaResult WholeFileCompressor::compress(const std::vector<DirtyPage>& dirty,
                                          const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  result.pages_delta = dirty.size();

  // Source: all pages of the previous checkpoint, concatenated in id order.
  Bytes source;
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  // Target: the dirty pages, concatenated in the given order.
  Bytes target;
  target.reserve(dirty.size() * kPageSize);
  for (const DirtyPage& page : dirty) {
    AIC_CHECK(page.bytes.size() == kPageSize);
    target.insert(target.end(), page.bytes.begin(), page.bytes.end());
  }

  ByteWriter w(result.payload);
  w.varint(dirty.size());
  PageId last = 0;
  for (const DirtyPage& page : dirty) {
    // Ids are stored as deltas from the previous id (ascending input).
    AIC_CHECK_MSG(page.id >= last, "dirty pages must be id-sorted");
    w.varint(page.id - last);
    last = page.id;
  }
  CodecStats st;
  Bytes delta = codec_.encode(source, target, &st);
  w.varint(delta.size());
  w.raw(delta);
  result.stats = st;
  result.stats.input_bytes = target.size();
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot WholeFileCompressor::decompress(ByteSpan payload,
                                              const mem::Snapshot& prev) const {
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  std::vector<PageId> ids(count);
  PageId last = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    last += r.varint();
    ids[i] = last;
  }
  const std::uint64_t delta_len = r.varint();
  ByteSpan delta = r.raw(delta_len);
  AIC_CHECK_MSG(r.done(), "trailing bytes in whole-file payload");

  Bytes source;
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  Bytes target = codec_.decode(source, delta);
  AIC_CHECK(target.size() == count * kPageSize);

  mem::Snapshot out;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.put_page(ids[i],
                 ByteSpan(target.data() + i * kPageSize, kPageSize));
  }
  return out;
}

}  // namespace aic::delta
