#include "delta/page_delta.h"

#include <cstring>

#include "common/check.h"
#include "common/units.h"

namespace aic::delta {
namespace {

constexpr std::uint8_t kKindRaw = 0;
constexpr std::uint8_t kKindDelta = 1;
constexpr std::uint8_t kKindSame = 2;

}  // namespace

PageAlignedCompressor::PageAlignedCompressor(XDelta3Config per_page)
    : codec_(per_page) {}

void PageAlignedCompressor::encode_page(const DirtyPage& page,
                                        const mem::Snapshot& prev,
                                        ByteWriter& w,
                                        DeltaResult& acc) const {
  AIC_CHECK(page.bytes.size() == kPageSize);
  w.varint(page.id);
  acc.stats.input_bytes += kPageSize;
  if (prev.contains(page.id)) {
    ByteSpan prev_bytes = prev.page_bytes(page.id);
    acc.stats.source_bytes += kPageSize;
    // Fast path: conservatively write-protected pages are often rewritten
    // with identical content; one memcmp replaces the whole codec pass and
    // the record is just id + kind. Charged as one page of work (the
    // compare scan); a failed compare's partial scan is folded into the
    // encode cost below.
    if (std::memcmp(prev_bytes.data(), page.bytes.data(), kPageSize) == 0) {
      w.u8(kKindSame);
      acc.stats.work_units += kPageSize;
      ++acc.pages_same;
      return;
    }
    CodecStats st;
    Bytes delta = codec_.encode(prev_bytes, page.bytes, &st);
    acc.stats.work_units += st.work_units;
    acc.stats.copy_ops += st.copy_ops;
    acc.stats.add_ops += st.add_ops;
    if (delta.size() < kPageSize) {
      w.u8(kKindDelta);
      w.varint(delta.size());
      w.raw(delta);
      ++acc.pages_delta;
      return;
    }
    // Delta expanded (dissimilar page): fall through to raw.
  }
  w.u8(kKindRaw);
  w.varint(kPageSize);
  w.raw(page.bytes);
  acc.stats.work_units += kPageSize;
  ++acc.pages_raw;
}

DeltaResult PageAlignedCompressor::compress(
    const std::vector<DirtyPage>& dirty, const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  // Worst case is every page raw plus small headers; reserving the dirty-set
  // size up front kills the repeated ByteWriter reallocation on big sets.
  result.payload.reserve(dirty.size() * (kPageSize + 16) + 10);
  ByteWriter w(result.payload);
  w.varint(dirty.size());
  for (const DirtyPage& page : dirty) encode_page(page, prev, w, result);
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot PageAlignedCompressor::decompress(
    ByteSpan payload, const mem::Snapshot& prev) const {
  mem::Snapshot out;
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageId id = r.varint();
    const std::uint8_t kind = r.u8();
    if (kind == kKindSame) {
      AIC_CHECK_MSG(prev.contains(id),
                    "same page " << id << " missing from previous snapshot");
      out.put_page(id, prev.page_bytes(id));
      continue;
    }
    const std::uint64_t len = r.varint();
    ByteSpan body = r.raw(len);
    if (kind == kKindRaw) {
      AIC_CHECK_MSG(body.size() == kPageSize,
                    "raw page " << id << " body is " << body.size()
                                << " bytes, expected " << kPageSize);
      out.put_page(id, body);
    } else if (kind == kKindDelta) {
      AIC_CHECK_MSG(prev.contains(id),
                    "delta page " << id << " missing from previous snapshot");
      Bytes page = codec_.decode(prev.page_bytes(id), body);
      AIC_CHECK(page.size() == kPageSize);
      out.put_page(id, page);
    } else {
      AIC_CHECK_MSG(false, "bad page kind " << int(kind));
    }
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in page-delta payload");
  return out;
}

WholeFileCompressor::WholeFileCompressor(XDelta3Config config)
    : codec_(config) {}

DeltaResult WholeFileCompressor::compress(const std::vector<DirtyPage>& dirty,
                                          const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  result.pages_delta = dirty.size();

  // Source: all pages of the previous checkpoint, concatenated in id order.
  Bytes source;
  source.reserve(prev.page_count() * kPageSize);
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  // Target: the dirty pages, concatenated in the given order.
  Bytes target;
  target.reserve(dirty.size() * kPageSize);
  for (const DirtyPage& page : dirty) {
    AIC_CHECK(page.bytes.size() == kPageSize);
    target.insert(target.end(), page.bytes.begin(), page.bytes.end());
  }

  ByteWriter w(result.payload);
  w.varint(dirty.size());
  PageId last = 0;
  for (const DirtyPage& page : dirty) {
    // Ids are stored as deltas from the previous id (ascending input).
    AIC_CHECK_MSG(page.id >= last, "dirty pages must be id-sorted");
    w.varint(page.id - last);
    last = page.id;
  }
  CodecStats st;
  Bytes delta = codec_.encode(source, target, &st);
  w.varint(delta.size());
  w.raw(delta);
  result.stats = st;
  result.stats.input_bytes = target.size();
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot WholeFileCompressor::decompress(ByteSpan payload,
                                              const mem::Snapshot& prev) const {
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  // Each id costs at least one varint byte; a hostile count must die here,
  // not in the allocator below.
  AIC_CHECK_MSG(count <= r.remaining(),
                "whole-file page count " << count << " exceeds payload size");
  std::vector<PageId> ids(count);
  PageId last = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    last += r.varint();
    ids[i] = last;
  }
  const std::uint64_t delta_len = r.varint();
  ByteSpan delta = r.raw(delta_len);
  AIC_CHECK_MSG(r.done(), "trailing bytes in whole-file payload");

  Bytes source;
  source.reserve(prev.page_count() * kPageSize);
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  Bytes target = codec_.decode(source, delta);
  AIC_CHECK(target.size() == count * kPageSize);

  mem::Snapshot out;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.put_page(ids[i],
                 ByteSpan(target.data() + i * kPageSize, kPageSize));
  }
  return out;
}

}  // namespace aic::delta
