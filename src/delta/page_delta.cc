#include "delta/page_delta.h"

#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "common/units.h"
#include "delta/rolling_hash.h"

namespace aic::delta {
namespace {

constexpr std::uint8_t kKindRaw = 0;
constexpr std::uint8_t kKindDelta = 1;
constexpr std::uint8_t kKindSame = 2;
constexpr std::uint8_t kKindCDelta = 3;

void merge_codec_stats(CodecStats& acc, const CodecStats& st) {
  acc.work_units += st.work_units;
  acc.copy_ops += st.copy_ops;
  acc.add_ops += st.add_ops;
}

}  // namespace

MoveIndex::MoveIndex(const mem::Snapshot& prev) {
  by_content_.reserve(prev.page_count());
  // page_ids() is ascending and emplace keeps the first insert, so a
  // content collision always resolves to the lowest id — deterministic
  // regardless of how compress() later shards the dirty set.
  for (mem::PageId id : prev.page_ids())
    by_content_.emplace(fnv1a64(prev.page_bytes(id)), id);
}

std::optional<mem::PageId> MoveIndex::find(ByteSpan bytes,
                                           const mem::Snapshot& prev) const {
  if (by_content_.empty()) return std::nullopt;
  auto it = by_content_.find(fnv1a64(bytes));
  if (it == by_content_.end()) return std::nullopt;
  ByteSpan cand = prev.page_bytes(it->second);
  if (std::memcmp(cand.data(), bytes.data(), kPageSize) != 0)
    return std::nullopt;
  return it->second;
}

PageAlignedCompressor::PageAlignedCompressor(XDelta3Config per_page,
                                             bool correcting)
    : codec_(per_page), correcting_(correcting) {}

MoveIndex PageAlignedCompressor::move_index(const mem::Snapshot& prev) const {
  return correcting_ ? MoveIndex(prev) : MoveIndex();
}

void PageAlignedCompressor::encode_page(const DirtyPage& page,
                                        const mem::Snapshot& prev,
                                        const MoveIndex& moves, ByteWriter& w,
                                        DeltaResult& acc) const {
  AIC_CHECK(page.bytes.size() == kPageSize);
  w.varint(page.id);
  acc.stats.input_bytes += kPageSize;
  const bool has_prev = prev.contains(page.id);
  if (has_prev) {
    ByteSpan prev_bytes = prev.page_bytes(page.id);
    acc.stats.source_bytes += kPageSize;
    // Fast path: conservatively write-protected pages are often rewritten
    // with identical content; one memcmp replaces the whole codec pass and
    // the record is just id + kind. Charged as one page of work (the
    // compare scan); a failed compare's partial scan is folded into the
    // encode cost below.
    if (std::memcmp(prev_bytes.data(), page.bytes.data(), kPageSize) == 0) {
      w.u8(kKindSame);
      acc.stats.work_units += kPageSize;
      ++acc.pages_same;
      return;
    }
  }
  if (correcting_) {
    // Whole-page move: this exact content lived at another id in the
    // previous checkpoint (memmove of page-aligned regions). The record
    // degenerates to a single COPY over that source — ~15 bytes where the
    // greedy coder, which only ever differences a page against itself,
    // would emit a 4 KiB raw record.
    if (auto src = moves.find(page.bytes, prev); src && *src != page.id) {
      CodecStats st;
      Bytes delta = ccodec_.encode(prev.page_bytes(*src), page.bytes, &st);
      merge_codec_stats(acc.stats, st);
      w.u8(kKindCDelta);
      w.varint(*src);
      w.varint(delta.size());
      w.raw(delta);
      ++acc.pages_delta;
      ++acc.pages_moved;
      return;
    }
    if (has_prev) {
      CodecStats st;
      Bytes delta = ccodec_.encode(prev.page_bytes(page.id), page.bytes, &st);
      merge_codec_stats(acc.stats, st);
      if (delta.size() < kPageSize) {
        w.u8(kKindCDelta);
        w.varint(page.id);
        w.varint(delta.size());
        w.raw(delta);
        ++acc.pages_delta;
        return;
      }
      // Delta expanded (dissimilar page): fall through to raw.
    }
  } else if (has_prev) {
    CodecStats st;
    Bytes delta = codec_.encode(prev.page_bytes(page.id), page.bytes, &st);
    merge_codec_stats(acc.stats, st);
    if (delta.size() < kPageSize) {
      w.u8(kKindDelta);
      w.varint(delta.size());
      w.raw(delta);
      ++acc.pages_delta;
      return;
    }
    // Delta expanded (dissimilar page): fall through to raw.
  }
  w.u8(kKindRaw);
  w.varint(kPageSize);
  w.raw(page.bytes);
  acc.stats.work_units += kPageSize;
  ++acc.pages_raw;
}

DeltaResult PageAlignedCompressor::compress(
    const std::vector<DirtyPage>& dirty, const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  // Worst case is every page raw plus small headers; reserving the dirty-set
  // size up front kills the repeated ByteWriter reallocation on big sets.
  result.payload.reserve(dirty.size() * (kPageSize + 16) + 10);
  ByteWriter w(result.payload);
  w.varint(dirty.size());
  const MoveIndex moves = move_index(prev);
  for (const DirtyPage& page : dirty) encode_page(page, prev, moves, w, result);
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot PageAlignedCompressor::decompress(
    ByteSpan payload, const mem::Snapshot& prev) const {
  mem::Snapshot out;
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageId id = r.varint();
    const std::uint8_t kind = r.u8();
    if (kind == kKindSame) {
      AIC_CHECK_MSG(prev.contains(id),
                    "same page " << id << " missing from previous snapshot");
      out.put_page(id, prev.page_bytes(id));
      continue;
    }
    PageId src = id;
    if (kind == kKindCDelta) src = r.varint();
    const std::uint64_t len = r.varint();
    ByteSpan body = r.raw(len);
    if (kind == kKindRaw) {
      AIC_CHECK_MSG(body.size() == kPageSize,
                    "raw page " << id << " body is " << body.size()
                                << " bytes, expected " << kPageSize);
      out.put_page(id, body);
    } else if (kind == kKindDelta) {
      AIC_CHECK_MSG(prev.contains(id),
                    "delta page " << id << " missing from previous snapshot");
      Bytes page = codec_.decode(prev.page_bytes(id), body);
      AIC_CHECK(page.size() == kPageSize);
      out.put_page(id, page);
    } else if (kind == kKindCDelta) {
      AIC_CHECK_MSG(prev.contains(src), "cdelta page "
                                            << id << " source page " << src
                                            << " missing from previous "
                                               "snapshot");
      Bytes page = ccodec_.decode(prev.page_bytes(src), body);
      AIC_CHECK(page.size() == kPageSize);
      out.put_page(id, page);
    } else {
      AIC_CHECK_MSG(false, "bad page kind " << int(kind));
    }
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in page-delta payload");
  return out;
}

void PageAlignedCompressor::decompress_in_place(ByteSpan payload,
                                                mem::Snapshot& state) const {
  struct Rec {
    PageId id;
    std::uint8_t kind;
    PageId src;     // cdelta only; == id for in-frame deltas
    ByteSpan body;  // raw/delta/cdelta instruction bytes (into payload)
  };
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  // Each record costs at least two bytes (id varint + kind); a hostile
  // count must die here, not in the vector allocation below.
  AIC_CHECK_MSG(count <= r.remaining() / 2,
                "page-delta record count " << count
                                           << " exceeds payload size");
  std::vector<Rec> recs;
  recs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Rec rec;
    rec.id = r.varint();
    rec.kind = r.u8();
    rec.src = rec.id;
    if (rec.kind == kKindSame) {
      recs.push_back(rec);
      continue;
    }
    AIC_CHECK_MSG(rec.kind == kKindRaw || rec.kind == kKindDelta ||
                      rec.kind == kKindCDelta,
                  "bad page kind " << int(rec.kind));
    if (rec.kind == kKindCDelta) rec.src = r.varint();
    rec.body = r.raw(r.varint());
    recs.push_back(rec);
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in page-delta payload");

  // Pass 1: index writers and the last cross-frame reader of every source
  // page. A frame whose old content is still needed by a later move record
  // must be stashed before it is overwritten — and can be dropped the
  // moment its last reader has run.
  std::unordered_map<PageId, std::size_t> last_reader;
  std::unordered_map<PageId, std::size_t> writer;
  writer.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto [it, inserted] = writer.emplace(recs[i].id, i);
    AIC_CHECK_MSG(inserted, "page " << recs[i].id
                                    << " appears twice in one payload");
    if (recs[i].kind == kKindCDelta && recs[i].src != recs[i].id) {
      // `state` is pristine here, so this is the same "source must exist in
      // the previous image" rule decompress() enforces — checked now because
      // by the time pass 2 reaches the reader, an earlier record may have
      // legitimately created a page with that id.
      AIC_CHECK_MSG(state.contains(recs[i].src),
                    "cdelta page " << recs[i].id << " source page "
                                   << recs[i].src
                                   << " missing from restart image");
      last_reader[recs[i].src] = i;
    }
  }

  // Pass 2: apply in stream order, mutating frames where they sit. Extra
  // memory is one transient decoded page (kinds raw aside) plus whatever
  // mover sources are live in the stash at that instant.
  std::unordered_map<PageId, Bytes> stash;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Rec& rec = recs[i];
    if (auto lr = last_reader.find(rec.id);
        lr != last_reader.end() && lr->second > i && !stash.contains(rec.id) &&
        state.contains(rec.id)) {
      ByteSpan old = state.page_bytes(rec.id);
      stash.emplace(rec.id, Bytes(old.begin(), old.end()));
    }
    switch (rec.kind) {
      case kKindSame:
        AIC_CHECK_MSG(state.contains(rec.id),
                      "same page " << rec.id
                                   << " missing from restart image");
        break;
      case kKindRaw:
        AIC_CHECK_MSG(rec.body.size() == kPageSize,
                      "raw page " << rec.id << " body is " << rec.body.size()
                                  << " bytes, expected " << kPageSize);
        state.put_page(rec.id, rec.body);
        break;
      case kKindDelta: {
        AIC_CHECK_MSG(state.contains(rec.id),
                      "delta page " << rec.id
                                    << " missing from restart image");
        Bytes page = codec_.decode(state.page_bytes(rec.id), rec.body);
        AIC_CHECK(page.size() == kPageSize);
        state.put_page(rec.id, page);
        break;
      }
      case kKindCDelta: {
        if (rec.src == rec.id) {
          AIC_CHECK_MSG(state.contains(rec.id),
                        "cdelta page " << rec.id
                                       << " missing from restart image");
          // The payoff case: the correcting stream rewrites the frame where
          // it sits — no decoded copy at all.
          ccodec_.apply_in_place(state.mutable_page_bytes(rec.id), rec.body);
          break;
        }
        ByteSpan source;
        if (auto st = stash.find(rec.src); st != stash.end()) {
          source = ByteSpan(st->second);
        } else {
          AIC_CHECK_MSG(state.contains(rec.src),
                        "cdelta page " << rec.id << " source page " << rec.src
                                       << " missing from restart image");
          source = state.page_bytes(rec.src);
        }
        Bytes page = ccodec_.decode(source, rec.body);
        AIC_CHECK(page.size() == kPageSize);
        state.put_page(rec.id, page);
        if (auto lr = last_reader.find(rec.src);
            lr != last_reader.end() && lr->second == i)
          stash.erase(rec.src);
        break;
      }
    }
  }
}

WholeFileCompressor::WholeFileCompressor(XDelta3Config config)
    : codec_(config) {}

DeltaResult WholeFileCompressor::compress(const std::vector<DirtyPage>& dirty,
                                          const mem::Snapshot& prev) const {
  DeltaResult result;
  result.pages_total = dirty.size();
  result.pages_delta = dirty.size();

  // Source: all pages of the previous checkpoint, concatenated in id order.
  Bytes source;
  source.reserve(prev.page_count() * kPageSize);
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  // Target: the dirty pages, concatenated in the given order.
  Bytes target;
  target.reserve(dirty.size() * kPageSize);
  for (const DirtyPage& page : dirty) {
    AIC_CHECK(page.bytes.size() == kPageSize);
    target.insert(target.end(), page.bytes.begin(), page.bytes.end());
  }

  ByteWriter w(result.payload);
  w.varint(dirty.size());
  PageId last = 0;
  for (const DirtyPage& page : dirty) {
    // Ids are stored as deltas from the previous id (ascending input).
    AIC_CHECK_MSG(page.id >= last, "dirty pages must be id-sorted");
    w.varint(page.id - last);
    last = page.id;
  }
  CodecStats st;
  Bytes delta = codec_.encode(source, target, &st);
  w.varint(delta.size());
  w.raw(delta);
  result.stats = st;
  result.stats.input_bytes = target.size();
  result.stats.output_bytes = result.payload.size();
  return result;
}

mem::Snapshot WholeFileCompressor::decompress(ByteSpan payload,
                                              const mem::Snapshot& prev) const {
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  // Each id costs at least one varint byte; a hostile count must die here,
  // not in the allocator below.
  AIC_CHECK_MSG(count <= r.remaining(),
                "whole-file page count " << count << " exceeds payload size");
  std::vector<PageId> ids(count);
  PageId last = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    last += r.varint();
    ids[i] = last;
  }
  const std::uint64_t delta_len = r.varint();
  ByteSpan delta = r.raw(delta_len);
  AIC_CHECK_MSG(r.done(), "trailing bytes in whole-file payload");

  Bytes source;
  source.reserve(prev.page_count() * kPageSize);
  for (PageId id : prev.page_ids()) {
    ByteSpan b = prev.page_bytes(id);
    source.insert(source.end(), b.begin(), b.end());
  }
  Bytes target = codec_.decode(source, delta);
  AIC_CHECK(target.size() == count * kPageSize);

  mem::Snapshot out;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.put_page(ids[i],
                 ByteSpan(target.data() + i * kPageSize, kPageSize));
  }
  return out;
}

}  // namespace aic::delta
