// One-pass "correcting" differencing coder with in-place reconstruction.
//
// CorrectingDeltaCodec implements the Ajtai/Burns/Fagin/Long one-pass,
// constant-extra-space differencing family [JACM 2002]:
//
//   * Karp–Rabin fingerprints (mod 2^61-1, base 263) over a fixed seed
//     window index the source at a short stride, and the TARGET scan
//     rolls the same fingerprint one byte at a time — so moves of
//     arbitrary alignment are found (the greedy coder only matches runs
//     long enough to contain a whole aligned block). Candidates are
//     byte-verified, so fingerprint collisions cost time, never
//     correctness.
//   * The fingerprint table is a single-slot, keep-first open table whose
//     size is chosen from the input length (clamped to [2^8, 2^20]
//     slots): constant extra space independent of how the scan goes.
//   * The "correction" step: when a verified match surfaces mid-scan, it
//     is extended BACKWARD over the pending literal run, retroactively
//     replacing already-deferred literal bytes with the cheaper copy —
//     the one-pass equivalent of the corrections pass in the paper.
//
// The emitted stream (delta format v3) carries explicit target offsets
// per instruction and is ordered for in-place application using the
// Burns/Long/Stockmeyer construction: copy instructions are
// topologically sorted on write-after-read dependencies (a copy that
// reads a region another copy overwrites must run first), cycles are
// broken by demoting one copy of the cycle to a literal, and literals —
// which read nothing — run last. decode() rebuilds out-of-place like
// every other DeltaCodec; apply_in_place() rebuilds the target directly
// inside the buffer holding the source, which is what lets
// RestartEngine restore a chain in roughly half the peak memory.
//
// Wire format (after the shared varint source_size, varint target_size
// header):
//   0x02 COPY  varint tgt_off, varint src_off, varint len
//   0x03 ADD   varint tgt_off, varint len, raw bytes
// Instructions cover the target exactly once; the stream order IS the
// in-place execution order.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "delta/delta_codec.h"

namespace aic::delta {

struct CorrectingConfig {
  /// Fingerprint window. Matches shorter than this are invisible; larger
  /// seeds mean fewer false candidates but miss shorter moved chunks.
  std::size_t seed_len = 16;
  /// Distance between fingerprinted source offsets; 0 means seed_len
  /// (non-overlapping windows). The TARGET is always rolled one byte at
  /// a time, so moves of arbitrary alignment are still found — a stride
  /// only raises the minimum detectable run to seed_len + stride - 1
  /// while cutting source hashing cost by the stride factor.
  std::size_t source_stride = 0;
  /// Fingerprint-table sizing bounds (log2 slots). The table is sized to
  /// hold the fingerprint count at <= 50% load within these bounds.
  unsigned table_bits_min = 8;
  unsigned table_bits_max = 20;
};

class CorrectingDeltaCodec final : public DeltaCodec {
 public:
  explicit CorrectingDeltaCodec(CorrectingConfig config = {});

  std::string name() const override { return "correcting"; }

  Bytes encode(ByteSpan source, ByteSpan target,
               CodecStats* stats = nullptr) const override;

  Bytes decode(ByteSpan source, ByteSpan delta,
               CodecStats* stats = nullptr) const override;

  /// Applies `delta` to `buffer` in place: on entry the buffer holds the
  /// source image, on return it holds the target. The buffer is resized
  /// (grown before, shrunk after) when source and target lengths differ.
  /// Throws CheckError on malformed input, like decode().
  void apply_in_place(Bytes& buffer, ByteSpan delta,
                      CodecStats* stats = nullptr) const;

  /// Fixed-size in-place variant for page frames: source and target must
  /// both be exactly buffer.size() bytes (the page path's case).
  void apply_in_place(std::span<std::uint8_t> buffer, ByteSpan delta,
                      CodecStats* stats = nullptr) const;

  const CorrectingConfig& config() const { return config_; }

  /// Seed-config used by the page-aligned path: a shorter seed pays off
  /// inside 4 KiB frames where moved chunks are small.
  static CorrectingConfig page_config() { return {.seed_len = 12}; }

 private:
  CorrectingConfig config_;
};

}  // namespace aic::delta
