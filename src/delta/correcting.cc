#include "delta/correcting.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "delta/rolling_hash.h"

namespace aic::delta {
namespace {

// v3 instruction opcodes. 0x00/0x01 are the v2 (xdelta3-style) ADD/COPY;
// the v3 stream uses fresh opcodes so a v2 parser can never silently
// misread a v3 payload as its own.
constexpr std::uint8_t kOpCopy = 0x02;
constexpr std::uint8_t kOpAdd = 0x03;

struct Op {
  bool is_copy = false;
  std::uint64_t tgt_off = 0;
  std::uint64_t src_off = 0;  // copies only
  std::uint64_t len = 0;
  ByteSpan add_bytes;  // ADD only; view into the delta buffer
};

// Fibonacci-multiplicative slot mix: the KR digest's low bits alone are
// not uniform enough for direct masking.
std::size_t slot_of(std::uint64_t digest, unsigned bits) {
  return std::size_t((digest * 0x9E3779B97F4A7C15ULL) >> (64 - bits));
}

unsigned table_bits_for(std::size_t fingerprints,
                        const CorrectingConfig& cfg) {
  unsigned bits = cfg.table_bits_min;
  while (bits < cfg.table_bits_max &&
         (std::size_t(1) << bits) < fingerprints * 2) {
    ++bits;
  }
  return bits;
}

// Table entry: digest tag (high 32 bits) | source offset + 1 (low 32
// bits, 0 = empty slot). The tag rejects nearly all false candidates
// before the byte-level verify touches the source.
std::uint64_t entry_of(std::uint64_t digest, std::size_t offset) {
  return ((digest & 0xFFFFFFFFu) << 32) | std::uint64_t(offset + 1);
}

struct ParsedDelta {
  std::uint64_t source_size = 0;
  std::uint64_t target_size = 0;
  std::vector<Op> ops;  // stream order == in-place execution order
  std::uint64_t copy_ops = 0;
  std::uint64_t add_ops = 0;
};

// Parses and fully validates a v3 stream BEFORE any output allocation:
// every instruction is bounds-checked against the declared sizes and the
// set of target intervals must partition [0, target_size) exactly.
// Hostile (truncated / bit-flipped) payloads surface as CheckError here.
ParsedDelta parse_delta(ByteSpan delta) {
  ByteReader r(delta);
  ParsedDelta p;
  p.source_size = r.varint();
  p.target_size = r.varint();
  while (!r.done()) {
    Op op;
    const std::uint8_t code = r.u8();
    if (code == kOpCopy) {
      op.is_copy = true;
      op.tgt_off = r.varint();
      op.src_off = r.varint();
      op.len = r.varint();
      AIC_CHECK_MSG(op.len != 0 && op.len <= p.source_size &&
                        op.src_off <= p.source_size - op.len,
                    "correcting delta: COPY reads outside source");
      ++p.copy_ops;
    } else if (code == kOpAdd) {
      op.tgt_off = r.varint();
      op.len = r.varint();
      AIC_CHECK_MSG(op.len != 0 && op.len <= r.remaining(),
                    "correcting delta: ADD length exceeds payload");
      op.add_bytes = r.raw(std::size_t(op.len));
      ++p.add_ops;
    } else {
      AIC_CHECK_MSG(false, "correcting delta: unknown instruction");
    }
    AIC_CHECK_MSG(op.len <= p.target_size &&
                      op.tgt_off <= p.target_size - op.len,
                  "correcting delta: instruction writes outside target");
    p.ops.push_back(op);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  intervals.reserve(p.ops.size());
  for (const Op& op : p.ops) intervals.emplace_back(op.tgt_off, op.len);
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t expect = 0;
  for (const auto& [off, len] : intervals) {
    AIC_CHECK_MSG(off == expect, "correcting delta: target coverage gap "
                                 "or overlap");
    expect += len;
  }
  AIC_CHECK_MSG(expect == p.target_size,
                "correcting delta: coverage does not span target");
  return p;
}

// Executes a parsed (already validated) stream over distinct source and
// output buffers. Stream order is irrelevant here — reads never alias
// writes across buffers.
void apply_out_of_place(const ParsedDelta& p, ByteSpan source,
                        std::uint8_t* out) {
  for (const Op& op : p.ops) {
    if (op.is_copy) {
      copy_no_overlap(out + op.tgt_off, source.data() + op.src_off,
                      std::size_t(op.len));
    } else {
      copy_no_overlap(out + op.tgt_off, op.add_bytes.data(),
                      std::size_t(op.len));
    }
  }
}

// Executes the stream over one buffer holding the source image. The
// encoder guarantees stream order is a safe schedule (copies
// topologically sorted on write-after-read dependencies, literals last);
// memmove covers a single copy's own self-overlap.
void apply_ops_in_place(const ParsedDelta& p, std::uint8_t* buf) {
  for (const Op& op : p.ops) {
    if (op.is_copy) {
      std::memmove(buf + op.tgt_off, buf + op.src_off, std::size_t(op.len));
    } else {
      copy_no_overlap(buf + op.tgt_off, op.add_bytes.data(),
                      std::size_t(op.len));
    }
  }
}

void fill_apply_stats(const ParsedDelta& p, std::size_t delta_size,
                      CodecStats* stats) {
  if (!stats) return;
  *stats = CodecStats{};
  stats->input_bytes = p.target_size;
  stats->source_bytes = p.source_size;
  stats->output_bytes = delta_size;
  stats->work_units = p.target_size;
  stats->copy_ops = p.copy_ops;
  stats->add_ops = p.add_ops;
}

// Burns/Long/Stockmeyer in-place schedule. `copies` arrive in target
// order (write intervals disjoint, ascending). Copy B must execute
// before copy A whenever A's write interval overlaps B's read interval —
// otherwise A destroys bytes B still needs. Kahn's algorithm over those
// edges yields the schedule; when a cycle remains, the SHORTEST
// unscheduled copy is demoted to a literal (its bytes are taken from the
// target, which the encoder has), removing its read edges and letting
// the remainder make progress — shortest-first keeps the ratio cost of
// a cycle at the small side of the conflict (a half-buffer rotation
// demotes the smaller half, not the larger). Because write intervals
// partition the copied part of the target, total edge count is
// O(copies + target_size / seed_len) — near-linear, so encode latency
// stays flat.
void order_for_in_place(std::vector<Op>& copies,
                        std::vector<Op>& demoted_literals,
                        ByteSpan target) {
  const std::size_t n = copies.size();
  if (n == 0) return;
  // out_range[b] = indices of copies whose write overlaps b's read.
  std::vector<std::pair<std::size_t, std::size_t>> out_range(n);
  std::vector<std::uint32_t> in_degree(n, 0);
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint64_t read_begin = copies[b].src_off;
    const std::uint64_t read_end = read_begin + copies[b].len;
    // First copy whose write interval ends after read_begin.
    std::size_t lo =
        std::size_t(std::partition_point(
                        copies.begin(), copies.end(),
                        [&](const Op& a) {
                          return a.tgt_off + a.len <= read_begin;
                        }) -
                    copies.begin());
    // First copy whose write interval starts at/after read_end.
    std::size_t hi =
        std::size_t(std::partition_point(copies.begin(), copies.end(),
                                         [&](const Op& a) {
                                           return a.tgt_off < read_end;
                                         }) -
                    copies.begin());
    out_range[b] = {lo, hi};
    for (std::size_t a = lo; a < hi; ++a) {
      if (a != b) ++in_degree[a];
    }
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(i);
  }
  std::vector<bool> done(n, false);
  std::vector<Op> scheduled;
  scheduled.reserve(n);
  // Demotion order: shortest copy first (index breaks ties), so a cycle
  // costs as few literal bytes as possible.
  std::vector<std::size_t> by_len(n);
  for (std::size_t i = 0; i < n; ++i) by_len[i] = i;
  std::sort(by_len.begin(), by_len.end(),
            [&](std::size_t a, std::size_t b) {
              return copies[a].len != copies[b].len
                         ? copies[a].len < copies[b].len
                         : a < b;
            });
  std::size_t resolved = 0;
  std::size_t cycle_probe = 0;  // next position in by_len to consider
  while (resolved < n) {
    std::size_t b;
    if (!ready.empty()) {
      b = ready.top();
      ready.pop();
      scheduled.push_back(copies[b]);
    } else {
      // Cycle: demote the shortest unresolved copy to a literal.
      while (done[by_len[cycle_probe]]) ++cycle_probe;
      b = by_len[cycle_probe];
      Op lit;
      lit.tgt_off = copies[b].tgt_off;
      lit.len = copies[b].len;
      lit.add_bytes = target.subspan(std::size_t(lit.tgt_off),
                                     std::size_t(lit.len));
      demoted_literals.push_back(lit);
    }
    done[b] = true;
    ++resolved;
    const auto [lo, hi] = out_range[b];
    for (std::size_t a = lo; a < hi; ++a) {
      if (a != b && !done[a] && --in_degree[a] == 0) ready.push(a);
    }
  }
  copies = std::move(scheduled);
}

}  // namespace

CorrectingDeltaCodec::CorrectingDeltaCodec(CorrectingConfig config)
    : config_(config) {
  AIC_CHECK(config_.seed_len >= 4);
  AIC_CHECK(config_.table_bits_min >= 1 &&
            config_.table_bits_min <= config_.table_bits_max &&
            config_.table_bits_max <= 30);
}

Bytes CorrectingDeltaCodec::encode(ByteSpan source, ByteSpan target,
                                   CodecStats* stats) const {
  const std::size_t seed = config_.seed_len;
  CodecStats local;
  local.input_bytes = target.size();
  local.source_bytes = source.size();

  // Fingerprint the source at `stride` spacing into a single-slot
  // keep-first table: lowest offset wins, so matching is deterministic
  // and biased toward the front of the source. Fresh (non-rolling)
  // window hashes cost one multiply per source byte total — half the
  // rolling cost — and at stride == seed the table load factor stays
  // low enough that collisions are rare.
  const std::size_t stride =
      config_.source_stride ? config_.source_stride : seed;
  std::vector<std::uint64_t> table;
  unsigned bits = 0;
  if (source.size() >= seed) {
    AIC_CHECK_MSG(source.size() < 0xFFFFFFFFu,
                  "correcting codec: source too large");
    const std::size_t fingerprints = (source.size() - seed) / stride + 1;
    bits = table_bits_for(fingerprints, config_);
    table.assign(std::size_t(1) << bits, 0);
    for (std::size_t i = 0; i + seed <= source.size(); i += stride) {
      const std::uint64_t digest =
          KarpRabinHash::digest_of(source.data() + i, seed);
      std::uint64_t& slot = table[slot_of(digest, bits)];
      if (slot == 0) slot = entry_of(digest, i);
    }
    local.work_units += source.size();
  }

  // One pass over the target. Literal bytes are deferred (held as the
  // pending run [lit_start, t)) so that a match found later can correct
  // them: a verified match back-extends over the pending run, turning
  // already-scanned literal bytes into part of the cheaper copy.
  std::vector<Op> copies;
  std::vector<Op> literals;
  std::size_t lit_start = 0;
  if (!table.empty() && target.size() >= seed) {
    KarpRabinHash th(target.data(), seed);
    std::size_t t = 0;
    while (t + seed <= target.size()) {
      const std::uint64_t digest = th.digest();
      const std::uint64_t entry = table[slot_of(digest, bits)];
      bool matched = false;
      if (entry != 0 && (entry >> 32) == (digest & 0xFFFFFFFFu)) {
        const std::size_t s = std::size_t(entry & 0xFFFFFFFFu) - 1;
        local.work_units += seed;
        if (std::memcmp(source.data() + s, target.data() + t, seed) == 0) {
          std::size_t bt = t, bs = s;
          while (bt > lit_start && bs > 0 &&
                 source[bs - 1] == target[bt - 1]) {
            --bt;
            --bs;
          }
          std::size_t ft = t + seed, fs = s + seed;
          while (ft < target.size() && fs < source.size() &&
                 source[fs] == target[ft]) {
            ++ft;
            ++fs;
          }
          local.work_units += (t - bt) + (ft - (t + seed));
          if (bt > lit_start) {
            Op lit;
            lit.tgt_off = lit_start;
            lit.len = bt - lit_start;
            lit.add_bytes = target.subspan(lit_start, bt - lit_start);
            literals.push_back(lit);
          }
          Op copy;
          copy.is_copy = true;
          copy.tgt_off = bt;
          copy.src_off = bs;
          copy.len = ft - bt;
          copies.push_back(copy);
          lit_start = ft;
          t = ft;
          if (t + seed <= target.size()) {
            th = KarpRabinHash(target.data() + t, seed);
          }
          matched = true;
        }
      }
      if (!matched) {
        if (t + seed == target.size()) break;
        th.roll(target[t], target[t + seed]);
        ++t;
        ++local.work_units;
      }
    }
  }
  if (lit_start < target.size()) {
    Op lit;
    lit.tgt_off = lit_start;
    lit.len = target.size() - lit_start;
    lit.add_bytes = target.subspan(lit_start);
    literals.push_back(lit);
  }

  // Schedule for in-place application; demoted cycle members join the
  // literal set. Literals run last (they read nothing), sorted by target
  // offset for a canonical byte stream.
  order_for_in_place(copies, literals, target);
  std::sort(literals.begin(), literals.end(),
            [](const Op& a, const Op& b) { return a.tgt_off < b.tgt_off; });

  Bytes out;
  ByteWriter w(out);
  w.varint(source.size());
  w.varint(target.size());
  for (const Op& op : copies) {
    w.u8(kOpCopy);
    w.varint(op.tgt_off);
    w.varint(op.src_off);
    w.varint(op.len);
    ++local.copy_ops;
  }
  for (const Op& op : literals) {
    w.u8(kOpAdd);
    w.varint(op.tgt_off);
    w.varint(op.len);
    w.raw(op.add_bytes);
    ++local.add_ops;
  }
  local.output_bytes = out.size();
  local.work_units += out.size();
  if (stats) *stats = local;
  return out;
}

Bytes CorrectingDeltaCodec::decode(ByteSpan source, ByteSpan delta,
                                   CodecStats* stats) const {
  const ParsedDelta p = parse_delta(delta);
  AIC_CHECK_MSG(p.source_size == source.size(),
                "correcting delta: source size mismatch");
  Bytes out(std::size_t(p.target_size));
  apply_out_of_place(p, source, out.data());
  fill_apply_stats(p, delta.size(), stats);
  return out;
}

void CorrectingDeltaCodec::apply_in_place(Bytes& buffer, ByteSpan delta,
                                          CodecStats* stats) const {
  const ParsedDelta p = parse_delta(delta);
  AIC_CHECK_MSG(p.source_size == buffer.size(),
                "correcting delta: source size mismatch");
  if (p.target_size > buffer.size()) {
    buffer.resize(std::size_t(p.target_size));
  }
  apply_ops_in_place(p, buffer.data());
  buffer.resize(std::size_t(p.target_size));
  fill_apply_stats(p, delta.size(), stats);
}

void CorrectingDeltaCodec::apply_in_place(std::span<std::uint8_t> buffer,
                                          ByteSpan delta,
                                          CodecStats* stats) const {
  const ParsedDelta p = parse_delta(delta);
  AIC_CHECK_MSG(p.source_size == buffer.size() &&
                    p.target_size == buffer.size(),
                "correcting delta: fixed-frame size mismatch");
  apply_ops_in_place(p, buffer.data());
  fill_apply_stats(p, delta.size(), stats);
}

}  // namespace aic::delta
