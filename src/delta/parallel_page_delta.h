// Sharded multi-threaded page-delta compression pipeline.
//
// The paper's decider can only pick short work spans when the delta latency
// dl is small (Section III: dl enters c2/c3 directly), and on a multicore
// node the serial PageAlignedCompressor leaves every core but one idle in
// that exact hot path. ParallelPageCompressor partitions the dirty-page
// list into contiguous shards, encodes each shard on its own thread into a
// reusable per-shard scratch buffer, merges the per-thread CodecStats, and
// stitches the shard streams back in page-id order.
//
// Determinism invariant: the merged payload is byte-identical to
// PageAlignedCompressor::compress on the same input, for any worker count
// (the shards reuse PageAlignedCompressor::encode_page, and contiguous
// shards concatenated in order reproduce the serial record stream). Stats
// totals are likewise identical — per-page contributions are summed, and
// uint64 addition is associative. Tests assert both.
//
// Buffer reuse: the per-shard scratch buffers and the thread pool live for
// the compressor's lifetime, so steady-state checkpoints allocate only
// codec-internal scratch, not per-page payload buffers. Consequently
// compress() is NOT const and a single instance must not be used from two
// threads at once (the checkpointing core owns its compressor).
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "delta/page_delta.h"

namespace aic::obs {
class Counter;
class Histogram;
struct Hub;
}  // namespace aic::obs

namespace aic::delta {

class ParallelPageCompressor {
 public:
  struct Config {
    XDelta3Config page_codec = PageAlignedCompressor::page_config();
    /// Encode with the one-pass correcting coder (cdelta records +
    /// whole-page move detection) instead of the greedy per-page coder.
    /// The byte-identity invariant holds in both modes: the MoveIndex is
    /// built once from `prev` before sharding, so every shard sees the
    /// same move candidates as a serial encode would.
    bool correcting = false;
    /// Encoding threads (including the calling thread); 0 = auto
    /// (ThreadPool::default_workers(), i.e. hardware_concurrency() - 1 —
    /// the paper's "all cores but the application's" checkpointing cores).
    /// 1 encodes inline with no pool at all.
    unsigned workers = 0;
    /// Dirty sets smaller than workers * this encode inline: shard dispatch
    /// overhead would dominate a handful of 4 KiB pages.
    std::size_t min_shard_pages = 8;
    /// Optional observability hub: per-shard wall-clock spans and
    /// bytes-in/out counters. nullptr = disabled.
    obs::Hub* obs = nullptr;
  };

  ParallelPageCompressor() : ParallelPageCompressor(Config{}) {}
  explicit ParallelPageCompressor(Config config);

  /// Same contract as PageAlignedCompressor::compress; output is
  /// byte-identical to it. Not thread-safe per instance (reuses the shard
  /// scratch buffers).
  DeltaResult compress(const std::vector<DirtyPage>& dirty,
                       const mem::Snapshot& prev);

  /// Decoding is cheap and stays serial.
  mem::Snapshot decompress(ByteSpan payload, const mem::Snapshot& prev) const {
    return serial_.decompress(payload, prev);
  }

  /// The underlying serial compressor (shared per-page encoder + decoder);
  /// what RestartEngine replays with.
  const PageAlignedCompressor& serial() const { return serial_; }

  unsigned workers() const { return workers_; }
  bool correcting() const { return serial_.correcting(); }

 private:
  /// Folds one compress() outcome into the metrics (no-op when obs is
  /// off); `shards` is how many shard spans the call emitted.
  void record_compress(const DeltaResult& result, std::size_t shards);

  Config config_;
  unsigned workers_;  // resolved (config 0 -> default_workers())
  // Metric handles resolved at construction; null when obs is off.
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_pages_delta_ = nullptr;
  obs::Counter* m_pages_raw_ = nullptr;
  obs::Counter* m_pages_same_ = nullptr;
  obs::Counter* m_shards_ = nullptr;
  obs::Histogram* m_shard_pages_ = nullptr;
  PageAlignedCompressor serial_;
  /// Created on the first compress() that actually shards, then reused for
  /// every later checkpoint; small simulations never pay the thread spawn.
  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<Bytes> shard_buffers_;  // scratch, capacity kept across calls
};

}  // namespace aic::delta
