// Whole-buffer delta codec interface and shared types.
//
// A DeltaCodec encodes a `target` buffer as a delta against a `source`
// buffer; decoding the delta with the same source reproduces the target
// byte-for-byte. Two implementations ship:
//   * XDelta3Codec  — rsync-style block matching with COPY/ADD instructions
//                     (the from-scratch stand-in for the Xdelta3 library).
//   * XorDeltaCodec — XOR + zero-run-length baseline, as in Plank's
//                     "compressed differences" [19].
//
// Codecs also report `work_units` — a deterministic count of bytes touched
// (hashing, matching, copying) that the simulation layer converts into
// delta latency via a calibrated throughput, so experiments are
// reproducible regardless of host speed. Real wall-clock is measured
// separately by the micro-benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace aic::delta {

/// Accounting of one encode/decode call.
struct CodecStats {
  std::uint64_t input_bytes = 0;   // target size
  std::uint64_t source_bytes = 0;  // source size
  std::uint64_t output_bytes = 0;  // encoded delta size
  std::uint64_t work_units = 0;    // deterministic effort proxy (bytes)
  std::uint64_t copy_ops = 0;
  std::uint64_t add_ops = 0;

  /// compressed/uncompressed; 1.0 means no gain (paper's "compression
  /// ratio", lower is better).
  double ratio() const {
    return input_bytes ? double(output_bytes) / double(input_bytes) : 1.0;
  }
};

class DeltaCodec {
 public:
  virtual ~DeltaCodec() = default;

  virtual std::string name() const = 0;

  /// Encodes target as a delta against source. `stats`, if non-null, is
  /// overwritten with this call's accounting.
  virtual Bytes encode(ByteSpan source, ByteSpan target,
                       CodecStats* stats = nullptr) const = 0;

  /// Inverse of encode: reproduces target from source + delta.
  virtual Bytes decode(ByteSpan source, ByteSpan delta,
                       CodecStats* stats = nullptr) const = 0;
};

}  // namespace aic::delta
