#include "delta/parallel_page_delta.h"

#include <algorithm>
#include <exception>

#include "common/check.h"
#include "common/units.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::delta {

namespace {
namespace on = obs::names;
}  // namespace

ParallelPageCompressor::ParallelPageCompressor(Config config)
    : config_(config),
      workers_(config.workers == 0 ? common::ThreadPool::default_workers()
                                   : config.workers),
      serial_(config.page_codec, config.correcting) {
  if (obs::Hub* hub = config_.obs) {
    obs::MetricsRegistry& m = hub->metrics;
    m_bytes_in_ = m.counter(on::kDeltaBytesIn);
    m_bytes_out_ = m.counter(on::kDeltaBytesOut);
    m_pages_delta_ = m.counter(on::kDeltaPagesDelta);
    m_pages_raw_ = m.counter(on::kDeltaPagesRaw);
    m_pages_same_ = m.counter(on::kDeltaPagesSame);
    m_shards_ = m.counter(on::kDeltaShards);
    m_shard_pages_ = m.histogram(
        on::kDeltaShardPages, obs::Histogram::exponential_buckets(1, 4.0, 12));
  }
}

void ParallelPageCompressor::record_compress(const DeltaResult& result,
                                             std::size_t shards) {
  if (config_.obs == nullptr) return;
  m_bytes_in_->add(result.stats.input_bytes);
  m_bytes_out_->add(result.payload.size());
  m_pages_delta_->add(result.pages_delta);
  m_pages_raw_->add(result.pages_raw);
  m_pages_same_->add(result.pages_same);
  m_shards_->add(shards);
}

DeltaResult ParallelPageCompressor::compress(
    const std::vector<DirtyPage>& dirty, const mem::Snapshot& prev) {
  const std::size_t n = dirty.size();
  const std::size_t min_pages = std::max<std::size_t>(config_.min_shard_pages, 1);
  // One shard per worker unless the set is too small to feed them all.
  const std::size_t shards =
      std::min<std::size_t>(workers_, std::max<std::size_t>(n / min_pages, 1));
  if (shards <= 1) {
    // Serial fast path — still one (track 0) shard span, so a trace of a
    // single-core run shows its compression work like any other.
    if (obs::Hub* hub = config_.obs) {
      const double t0 = hub->trace.wall_seconds();
      DeltaResult result = serial_.compress(dirty, prev);
      hub->trace.span(obs::TimeDomain::kWall, on::kCatDelta, on::kEvShard, t0,
                      hub->trace.wall_seconds(), 0,
                      {{"pages", double(n)},
                       {"bytes_out", double(result.payload.size())}});
      m_shard_pages_->observe(double(n));
      record_compress(result, 1);
      return result;
    }
    return serial_.compress(dirty, prev);
  }

  if (!pool_) pool_ = std::make_unique<common::ThreadPool>(workers_ - 1);
  if (shard_buffers_.size() < shards) shard_buffers_.resize(shards);

  // Built once, shared read-only by every shard: move candidates are a
  // function of `prev` alone, which is what keeps parallel output
  // byte-identical to serial in correcting mode. Empty (and free) in
  // greedy mode.
  const MoveIndex moves = serial_.move_index(prev);

  // Contiguous balanced partition: shard s gets [begin(s), begin(s+1)).
  const std::size_t base = n / shards, rem = n % shards;
  const auto begin_of = [&](std::size_t s) {
    return s * base + std::min(s, rem);
  };

  std::vector<DeltaResult> accs(shards);
  std::vector<std::exception_ptr> errors(shards);
  const auto encode_shard = [&](std::size_t s) {
    Bytes& buf = shard_buffers_[s];
    buf.clear();  // keeps capacity: the buffer-pool reuse across checkpoints
    const std::size_t lo = begin_of(s), hi = begin_of(s + 1);
    buf.reserve((hi - lo) * (kPageSize + 16));
    ByteWriter w(buf);
    obs::Hub* hub = config_.obs;
    const double t0 = hub ? hub->trace.wall_seconds() : 0.0;
    try {
      for (std::size_t i = lo; i < hi; ++i)
        serial_.encode_page(dirty[i], prev, moves, w, accs[s]);
    } catch (...) {
      errors[s] = std::current_exception();
    }
    if (hub != nullptr) {
      hub->trace.span(obs::TimeDomain::kWall, on::kCatDelta, on::kEvShard, t0,
                      hub->trace.wall_seconds(), std::uint32_t(s),
                      {{"pages", double(hi - lo)},
                       {"bytes_out", double(buf.size())}});
      m_shard_pages_->observe(double(hi - lo));
    }
  };

  // Shards 1..S-1 go to the pool; the calling thread (one of the modeled
  // checkpointing cores) encodes shard 0 itself instead of idling.
  for (std::size_t s = 1; s < shards; ++s)
    pool_->run([&encode_shard, s] { encode_shard(s); });
  encode_shard(0);
  pool_->wait_idle();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Stitch: header + shard streams in page order reproduce the serial
  // record stream exactly.
  DeltaResult result;
  result.pages_total = n;
  std::size_t total = 10;  // varint header upper bound
  for (std::size_t s = 0; s < shards; ++s) total += shard_buffers_[s].size();
  result.payload.reserve(total);
  ByteWriter w(result.payload);
  w.varint(n);
  for (std::size_t s = 0; s < shards; ++s) {
    w.raw(shard_buffers_[s]);
    const DeltaResult& a = accs[s];
    result.stats.input_bytes += a.stats.input_bytes;
    result.stats.source_bytes += a.stats.source_bytes;
    result.stats.work_units += a.stats.work_units;
    result.stats.copy_ops += a.stats.copy_ops;
    result.stats.add_ops += a.stats.add_ops;
    result.pages_delta += a.pages_delta;
    result.pages_raw += a.pages_raw;
    result.pages_same += a.pages_same;
    result.pages_moved += a.pages_moved;
  }
  result.stats.output_bytes = result.payload.size();
  record_compress(result, shards);
  return result;
}

}  // namespace aic::delta
