// From-scratch rsync-style delta coder (the Xdelta3 stand-in).
//
// Encoding walks the target with a rolling weak hash over `block_size`
// windows, looks candidates up in a block index of the source, confirms
// with byte comparison, and extends confirmed matches forward (past the
// block) and backward (into pending literal bytes). Output is a compact
// varint instruction stream:
//
//   header:  varint source_size, varint target_size
//   ops:     0x00 ADD  <varint len> <len raw bytes>
//            0x01 COPY <varint source_offset> <varint len>
//
// Decoding replays the instructions; total reconstructed length must equal
// the header's target_size (checked).
#pragma once

#include <cstddef>

#include "delta/delta_codec.h"

namespace aic::delta {

struct XDelta3Config {
  /// Matching granularity. Smaller finds more matches but hashes more
  /// blocks; the page-aligned compressor uses a small block (pages are only
  /// 4 KiB), the whole-file codec a larger one, mirroring xdelta3 defaults.
  std::size_t block_size = 64;
  /// Cap on candidate offsets probed per weak-hash bucket (guards against
  /// adversarial inputs with many identical blocks).
  std::size_t max_probes = 16;
  /// Emitting a COPY shorter than this costs more than the literal bytes;
  /// matches below it are folded into ADDs.
  std::size_t min_match = 16;
};

class XDelta3Codec final : public DeltaCodec {
 public:
  explicit XDelta3Codec(XDelta3Config config = {});

  std::string name() const override { return "xdelta3"; }

  Bytes encode(ByteSpan source, ByteSpan target,
               CodecStats* stats = nullptr) const override;
  Bytes decode(ByteSpan source, ByteSpan delta,
               CodecStats* stats = nullptr) const override;

  const XDelta3Config& config() const { return config_; }

 private:
  XDelta3Config config_;
};

}  // namespace aic::delta
