// XOR + zero-run-length delta baseline.
//
// The simple "compressed differences" scheme of Plank et al. [19]: XOR the
// target with the source (source shorter than target is zero-extended) and
// run-length-encode the zero runs. It is much cheaper than block matching
// but only exploits byte-identical positions, not shifted content — the
// contrast the paper draws when it says AIC "can afford more aggressive
// compression".
//
// Format: varint source_size, varint target_size, then runs:
//   0x00 <varint len>              — len XOR-zero bytes (target == source)
//   0x01 <varint len> <len bytes>  — len literal XOR bytes
#pragma once

#include "delta/delta_codec.h"

namespace aic::delta {

class XorDeltaCodec final : public DeltaCodec {
 public:
  /// Zero runs shorter than this are folded into literals (a run record
  /// costs ~2 bytes).
  explicit XorDeltaCodec(std::size_t min_zero_run = 4)
      : min_zero_run_(min_zero_run) {}

  std::string name() const override { return "xor-rle"; }

  Bytes encode(ByteSpan source, ByteSpan target,
               CodecStats* stats = nullptr) const override;
  Bytes decode(ByteSpan source, ByteSpan delta,
               CodecStats* stats = nullptr) const override;

 private:
  std::size_t min_zero_run_;
};

}  // namespace aic::delta
