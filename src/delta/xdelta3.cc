#include "delta/xdelta3.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "delta/rolling_hash.h"

namespace aic::delta {
namespace {

constexpr std::uint8_t kOpAdd = 0x00;
constexpr std::uint8_t kOpCopy = 0x01;

/// Weak-hash index of block-aligned source offsets.
class BlockIndex {
 public:
  BlockIndex(ByteSpan source, std::size_t block_size) {
    if (source.size() < block_size) return;
    const std::size_t n_blocks = source.size() / block_size;
    buckets_.reserve(n_blocks * 2);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t off = b * block_size;
      const std::uint32_t h =
          RollingHash(source.data() + off, block_size).digest();
      buckets_[h].push_back(off);
    }
  }

  const std::vector<std::size_t>* lookup(std::uint32_t weak) const {
    auto it = buckets_.find(weak);
    return it == buckets_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> buckets_;
};

struct Match {
  std::size_t src_start = 0;  // source offset of the full (back-extended) match
  std::size_t back = 0;       // bytes the match reaches left of the scan pos
  std::size_t fwd = 0;        // bytes matched at/after the scan pos
  std::size_t total() const { return back + fwd; }
};

void emit_add(ByteWriter& w, ByteSpan target, std::size_t start,
              std::size_t len, CodecStats& st) {
  if (len == 0) return;
  w.u8(kOpAdd);
  w.varint(len);
  w.raw(target.subspan(start, len));
  ++st.add_ops;
}

void emit_copy(ByteWriter& w, std::size_t src_off, std::size_t len,
               CodecStats& st) {
  w.u8(kOpCopy);
  w.varint(src_off);
  w.varint(len);
  ++st.copy_ops;
}

}  // namespace

XDelta3Codec::XDelta3Codec(XDelta3Config config) : config_(config) {
  AIC_CHECK(config_.block_size >= 4);
  AIC_CHECK(config_.max_probes >= 1);
  AIC_CHECK(config_.min_match >= 1);
}

Bytes XDelta3Codec::encode(ByteSpan source, ByteSpan target,
                           CodecStats* stats) const {
  CodecStats st;
  st.input_bytes = target.size();
  st.source_bytes = source.size();

  Bytes out;
  out.reserve(target.size() / 8 + 32);
  ByteWriter w(out);
  w.varint(source.size());
  w.varint(target.size());

  const std::size_t bs = config_.block_size;
  BlockIndex index(source, bs);
  st.work_units += source.size();  // block hashing pass over the source

  std::size_t add_start = 0;  // first target byte not yet covered by any op

  if (target.size() >= bs && source.size() >= bs) {
    std::size_t pos = 0;  // scan position == rolling window start
    RollingHash rh(target.data(), bs);
    while (pos + bs <= target.size()) {
      const auto* bucket = index.lookup(rh.digest());
      Match best;
      if (bucket) {
        std::size_t probes = 0;
        for (std::size_t cand : *bucket) {
          if (++probes > config_.max_probes) break;
          st.work_units += bs;
          if (std::memcmp(source.data() + cand, target.data() + pos, bs) != 0)
            continue;
          Match m;
          m.fwd = bs;
          while (cand + m.fwd < source.size() &&
                 pos + m.fwd < target.size() &&
                 source[cand + m.fwd] == target[pos + m.fwd]) {
            ++m.fwd;
          }
          m.back = 0;
          while (m.back < cand && pos - m.back > add_start &&
                 source[cand - m.back - 1] == target[pos - m.back - 1]) {
            ++m.back;
          }
          m.src_start = cand - m.back;
          st.work_units += (m.fwd - bs) + m.back;
          if (m.total() > best.total()) best = m;
        }
      }
      if (best.total() >= config_.min_match) {
        const std::size_t match_tgt_start = pos - best.back;
        emit_add(w, target, add_start, match_tgt_start - add_start, st);
        emit_copy(w, best.src_start, best.total(), st);
        pos += best.fwd;
        add_start = pos;
        if (pos + bs <= target.size()) {
          rh = RollingHash(target.data() + pos, bs);
          st.work_units += bs;
        }
      } else {
        if (pos + bs < target.size()) rh.roll(target[pos], target[pos + bs]);
        ++pos;
        ++st.work_units;
      }
    }
  }

  emit_add(w, target, add_start, target.size() - add_start, st);
  st.output_bytes = out.size();
  if (stats) *stats = st;
  return out;
}

Bytes XDelta3Codec::decode(ByteSpan source, ByteSpan delta,
                           CodecStats* stats) const {
  CodecStats st;
  ByteReader r(delta);
  const std::uint64_t source_size = r.varint();
  const std::uint64_t target_size = r.varint();
  AIC_CHECK_MSG(source_size == source.size(),
                "delta was made against a different source");
  Bytes out;
  out.reserve(target_size);
  while (!r.done()) {
    const std::uint8_t op = r.u8();
    if (op == kOpAdd) {
      const std::uint64_t len = r.varint();
      ByteSpan data = r.raw(len);
      out.insert(out.end(), data.begin(), data.end());
      ++st.add_ops;
      st.work_units += len;
    } else if (op == kOpCopy) {
      const std::uint64_t off = r.varint();
      const std::uint64_t len = r.varint();
      AIC_CHECK_MSG(off + len <= source.size(), "copy past source end");
      out.insert(out.end(), source.begin() + off, source.begin() + off + len);
      ++st.copy_ops;
      st.work_units += len;
    } else {
      AIC_CHECK_MSG(false, "bad delta opcode " << int(op));
    }
  }
  AIC_CHECK_MSG(out.size() == target_size, "decoded size mismatch");
  st.input_bytes = out.size();
  st.source_bytes = source.size();
  st.output_bytes = delta.size();
  if (stats) *stats = st;
  return out;
}

}  // namespace aic::delta
