#include "delta/rolling_hash.h"

#include "common/check.h"

namespace aic::delta {

RollingHash::RollingHash(const std::uint8_t* data, std::size_t len)
    : len_(len) {
  AIC_CHECK(len >= 1);
  for (std::size_t i = 0; i < len; ++i) {
    a_ += data[i];
    b_ += std::uint32_t(len - i) * data[i];
  }
}

void RollingHash::roll(std::uint8_t outgoing, std::uint8_t incoming) {
  a_ += std::uint32_t(incoming) - std::uint32_t(outgoing);
  b_ += a_ - std::uint32_t(len_) * std::uint32_t(outgoing);
}

std::uint64_t fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace aic::delta
