// Rolling (weak) and strong hashes for rsync-style delta compression.
//
// The weak hash is the classic Adler-style two-component checksum from the
// rsync algorithm [Tridgell 2000]: it can be rolled one byte at a time over
// the target stream in O(1). Candidate matches found via the weak hash are
// confirmed with a direct byte comparison, so hash quality affects only
// speed, never correctness.
//
// KarpRabinHash is the modular-arithmetic variant used by the
// Ajtai/Burns/Fagin/Long one-pass differencing family [JACM 2002]: a
// polynomial fingerprint over the Mersenne prime 2^61-1 with base 263.
// It rolls in O(1) like the Adler checksum but its 61-bit digests have far
// better mixing, which is what lets the correcting coder key a small
// single-slot fingerprint table directly off the digest without drowning
// in collisions. Like the weak hash, every candidate is byte-verified.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace aic::delta {

/// rsync weak rolling checksum over a fixed-size window.
class RollingHash {
 public:
  /// Initializes over data[0, len). len must be >= 1.
  RollingHash(const std::uint8_t* data, std::size_t len);

  /// Rolls the window one byte: removes `outgoing`, appends `incoming`.
  void roll(std::uint8_t outgoing, std::uint8_t incoming);

  std::uint32_t digest() const { return (b_ << 16) | (a_ & 0xFFFF); }
  std::size_t window() const { return len_; }

  /// One-shot convenience.
  static std::uint32_t of(ByteSpan data) {
    return RollingHash(data.data(), data.size()).digest();
  }

 private:
  std::uint32_t a_ = 0;  // sum of bytes (mod 2^16 at digest time)
  std::uint32_t b_ = 0;  // weighted sum
  std::size_t len_ = 0;
};

/// Karp–Rabin polynomial rolling fingerprint modulo the Mersenne prime
/// 2^61-1, base 263. Digests are in [0, 2^61-1); rolling one byte is O(1)
/// using the precomputed leading-coefficient power base^(window-1).
/// Fully inline: init and roll sit on the correcting coder's per-byte
/// hot path.
class KarpRabinHash {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;
  static constexpr std::uint64_t kBase = 263;

  /// (a * b) mod 2^61-1 via 128-bit product and Mersenne folding.
  static std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
    const unsigned __int128 prod = (unsigned __int128)a * b;
    const std::uint64_t lo = std::uint64_t(prod) & kPrime;
    const std::uint64_t hi = std::uint64_t(prod >> 61);
    const std::uint64_t sum = lo + hi;
    return sum >= kPrime ? sum - kPrime : sum;
  }

  static std::uint64_t addmod(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t sum = a + b;  // both < 2^61: no 64-bit overflow
    return sum >= kPrime ? sum - kPrime : sum;
  }

  /// Initializes over data[0, len). len must be >= 1.
  KarpRabinHash(const std::uint8_t* data, std::size_t len) : len_(len) {
    AIC_CHECK(len >= 1);
    for (std::size_t i = 0; i < len; ++i) {
      h_ = addmod(mulmod(h_, kBase), data[i]);
      if (i + 1 < len) shift_ = mulmod(shift_, kBase);
    }
  }

  /// Rolls the window one byte: removes `outgoing`, appends `incoming`.
  void roll(std::uint8_t outgoing, std::uint8_t incoming) {
    // Drop outgoing's leading-coefficient contribution, shift, append.
    const std::uint64_t drop = mulmod(outgoing, shift_);
    h_ = addmod(h_, kPrime - drop);
    h_ = addmod(mulmod(h_, kBase), incoming);
  }

  std::uint64_t digest() const { return h_; }
  std::size_t window() const { return len_; }

  /// One-shot digest without the rolling setup (skips the base^(len-1)
  /// precompute), for table builds that never roll. Four bytes fold
  /// into one Horner group exactly in 64-bit arithmetic (263^4 and the
  /// group value are both < 2^33), so only one modular multiply is paid
  /// per four bytes — same polynomial, same digest as the per-byte
  /// form.
  static std::uint64_t digest_of(const std::uint8_t* data,
                                 std::size_t len) {
    constexpr std::uint64_t kBase4 = kBase * kBase * kBase * kBase;
    std::uint64_t h = 0;
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const std::uint64_t group =
          ((std::uint64_t(data[i]) * kBase + data[i + 1]) * kBase +
           data[i + 2]) *
              kBase +
          data[i + 3];
      h = addmod(mulmod(h, kBase4), group);
    }
    for (; i < len; ++i) h = addmod(mulmod(h, kBase), data[i]);
    return h;
  }

  /// One-shot convenience.
  static std::uint64_t of(ByteSpan data) {
    return digest_of(data.data(), data.size());
  }

 private:
  std::uint64_t h_ = 0;      // polynomial fingerprint mod kPrime
  std::uint64_t shift_ = 1;  // kBase^(len-1) mod kPrime
  std::size_t len_ = 0;
};

/// FNV-1a 64-bit hash; used where a cheap non-rolling strong-ish hash is
/// handy (e.g. content fingerprints in tests and stats).
std::uint64_t fnv1a64(ByteSpan data);

}  // namespace aic::delta
