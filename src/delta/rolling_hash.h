// Rolling (weak) and strong hashes for rsync-style delta compression.
//
// The weak hash is the classic Adler-style two-component checksum from the
// rsync algorithm [Tridgell 2000]: it can be rolled one byte at a time over
// the target stream in O(1). Candidate matches found via the weak hash are
// confirmed with a direct byte comparison, so hash quality affects only
// speed, never correctness.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace aic::delta {

/// rsync weak rolling checksum over a fixed-size window.
class RollingHash {
 public:
  /// Initializes over data[0, len). len must be >= 1.
  RollingHash(const std::uint8_t* data, std::size_t len);

  /// Rolls the window one byte: removes `outgoing`, appends `incoming`.
  void roll(std::uint8_t outgoing, std::uint8_t incoming);

  std::uint32_t digest() const { return (b_ << 16) | (a_ & 0xFFFF); }
  std::size_t window() const { return len_; }

  /// One-shot convenience.
  static std::uint32_t of(ByteSpan data) {
    return RollingHash(data.data(), data.size()).digest();
  }

 private:
  std::uint32_t a_ = 0;  // sum of bytes (mod 2^16 at digest time)
  std::uint32_t b_ = 0;  // weighted sum
  std::size_t len_ = 0;
};

/// FNV-1a 64-bit hash; used where a cheap non-rolling strong-ish hash is
/// handy (e.g. content fingerprints in tests and stats).
std::uint64_t fnv1a64(ByteSpan data);

}  // namespace aic::delta
