#include "ckpt/checkpoint_file.h"

#include "common/check.h"
#include "common/units.h"

namespace aic::ckpt {
namespace {

// "AICCKPT1" little-endian.
constexpr std::uint64_t kMagic = 0x31544B4343494141ULL;

}  // namespace

const char* to_string(CheckpointKind kind) {
  switch (kind) {
    case CheckpointKind::kFull:
      return "full";
    case CheckpointKind::kIncremental:
      return "incremental";
    case CheckpointKind::kIncrementalDelta:
      return "incremental-delta";
  }
  return "?";
}

Bytes CheckpointFile::serialize() const {
  Bytes out;
  out.reserve(payload.size() + cpu_state.size() + 64);
  ByteWriter w(out);
  w.u64(kMagic);
  w.u8(std::uint8_t(kind));
  w.varint(sequence);
  w.f64(app_time);
  w.varint(cpu_state.size());
  w.raw(cpu_state);
  w.varint(freed_pages.size());
  PageId last = 0;
  for (PageId id : freed_pages) {
    AIC_CHECK_MSG(id >= last, "freed pages must be id-sorted");
    w.varint(id - last);
    last = id;
  }
  w.varint(payload.size());
  w.raw(payload);
  return out;
}

CheckpointFile CheckpointFile::parse(ByteSpan data) {
  ByteReader r(data);
  AIC_CHECK_MSG(r.u64() == kMagic, "bad checkpoint magic");
  CheckpointFile f;
  const std::uint8_t kind = r.u8();
  AIC_CHECK_MSG(kind <= std::uint8_t(CheckpointKind::kIncrementalDelta),
                "bad checkpoint kind " << int(kind));
  f.kind = CheckpointKind(kind);
  f.sequence = r.varint();
  f.app_time = r.f64();
  const std::uint64_t cpu_len = r.varint();
  ByteSpan cpu = r.raw(cpu_len);
  f.cpu_state.assign(cpu.begin(), cpu.end());
  const std::uint64_t freed = r.varint();
  PageId last = 0;
  f.freed_pages.reserve(freed);
  for (std::uint64_t i = 0; i < freed; ++i) {
    last += r.varint();
    f.freed_pages.push_back(last);
  }
  const std::uint64_t payload_len = r.varint();
  ByteSpan payload = r.raw(payload_len);
  f.payload.assign(payload.begin(), payload.end());
  AIC_CHECK_MSG(r.done(), "trailing bytes after checkpoint");
  return f;
}

std::uint64_t CheckpointFile::serialized_size() const {
  // Exact would require varint width math; serialize() is cheap relative to
  // page payloads, so measure precisely via a scratch buffer only when the
  // caller asks. Here: compute exactly with a writer over a small buffer
  // for the header and add payload sizes.
  Bytes scratch;
  ByteWriter w(scratch);
  w.u64(kMagic);
  w.u8(std::uint8_t(kind));
  w.varint(sequence);
  w.f64(app_time);
  w.varint(cpu_state.size());
  w.varint(freed_pages.size());
  PageId last = 0;
  for (PageId id : freed_pages) {
    w.varint(id - last);
    last = id;
  }
  w.varint(payload.size());
  return scratch.size() + cpu_state.size() + payload.size();
}

Bytes encode_raw_pages(const std::vector<std::pair<PageId, ByteSpan>>& pages) {
  Bytes out;
  out.reserve(pages.size() * (kPageSize + 4) + 8);
  ByteWriter w(out);
  w.varint(pages.size());
  for (const auto& [id, bytes] : pages) {
    AIC_CHECK(bytes.size() == kPageSize);
    w.varint(id);
    w.raw(bytes);
  }
  return out;
}

std::vector<std::pair<PageId, Bytes>> decode_raw_pages(ByteSpan payload) {
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  std::vector<std::pair<PageId, Bytes>> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageId id = r.varint();
    ByteSpan bytes = r.raw(kPageSize);
    out.emplace_back(id, Bytes(bytes.begin(), bytes.end()));
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in raw-page payload");
  return out;
}

}  // namespace aic::ckpt
