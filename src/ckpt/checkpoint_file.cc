#include "ckpt/checkpoint_file.h"

#include "common/check.h"
#include "common/crc32c.h"
#include "common/units.h"

namespace aic::ckpt {
namespace {

// "AICCKPT1" / "AICCKPT2" / "AICCKPT3" little-endian: seven magic bytes
// plus an ASCII version digit in the top byte.
constexpr std::uint64_t kMagicV1 = 0x31544B4343494141ULL;
constexpr std::uint64_t kMagicV2 = 0x32544B4343494141ULL;
constexpr std::uint64_t kMagicV3 = 0x33544B4343494141ULL;
constexpr std::uint64_t kMagicPrefixMask = 0x00FFFFFFFFFFFFFFULL;
constexpr std::uint64_t kMagicPrefix = kMagicV1 & kMagicPrefixMask;

// v2/v3 prefix: u64 magic + u32 body checksum.
constexpr std::size_t kV2HeaderSize = 12;

/// Record checksum. v2 covers only the body (bytes 12..end) — frozen, every
/// stored v2 record computed it that way. v3 additionally covers the magic,
/// closing the v2 gap where a single bit flip in the version digit turned a
/// record into a "valid" one of another version (the CRC field itself stays
/// uncovered: a flip there mismatches by construction).
std::uint32_t record_crc(ByteSpan data, bool cover_magic) {
  std::uint32_t st = kCrc32cInit;
  if (cover_magic) st = crc32c_update(st, data.first(8));
  st = crc32c_update(st, data.subspan(kV2HeaderSize));
  return crc32c_finalize(st);
}

/// Reads a length/count field and proves it can be backed by the bytes
/// still in the stream (`per_item` ≥ serialized bytes per counted item)
/// before the caller allocates or reads anything — a hostile 2^60 length
/// must die here, not in an allocator or a span overrun.
std::uint64_t bounded_varint(ByteReader& r, const char* field,
                             std::uint64_t per_item = 1) {
  const std::size_t at = r.pos();
  const std::uint64_t v = r.varint();
  AIC_CHECK_MSG(per_item == 0 || v <= r.remaining() / per_item,
                "checkpoint " << field << " = " << v << " at offset " << at
                              << " exceeds the " << r.remaining()
                              << " bytes remaining");
  return v;
}

}  // namespace

const char* to_string(CheckpointKind kind) {
  switch (kind) {
    case CheckpointKind::kFull:
      return "full";
    case CheckpointKind::kIncremental:
      return "incremental";
    case CheckpointKind::kIncrementalDelta:
      return "incremental-delta";
    case CheckpointKind::kIncrementalCorrecting:
      return "incremental-correcting";
  }
  return "?";
}

Bytes CheckpointFile::serialize() const {
  Bytes out;
  out.reserve(payload.size() + cpu_state.size() + 64);
  ByteWriter w(out);
  // Lowest version that can carry the kind: correcting records need the
  // v3 magic; everything else stays byte-identical to the v2 writer.
  w.u64(kind == CheckpointKind::kIncrementalCorrecting ? kMagicV3
                                                       : kMagicV2);
  w.u32(0);  // checksum placeholder, patched below
  w.u8(std::uint8_t(kind));
  w.varint(sequence);
  w.f64(app_time);
  w.varint(cpu_state.size());
  w.raw(cpu_state);
  w.varint(freed_pages.size());
  PageId last = 0;
  for (PageId id : freed_pages) {
    AIC_CHECK_MSG(id >= last, "freed pages must be id-sorted");
    w.varint(id - last);
    last = id;
  }
  w.varint(payload.size());
  w.raw(payload);

  const std::uint32_t crc = record_crc(
      out, kind == CheckpointKind::kIncrementalCorrecting);
  for (int i = 0; i < 4; ++i) out[8 + i] = std::uint8_t(crc >> (8 * i));
  return out;
}

CheckpointFile CheckpointFile::parse(ByteSpan data) {
  ByteReader r(data);
  const std::uint64_t magic = r.u64();
  CheckpointFile f;
  const char version_digit = char(magic >> 56);
  if ((magic & kMagicPrefixMask) == kMagicPrefix && version_digit > '3' &&
      version_digit <= '9') {
    // Recognizably ours, but a version this build does not speak — a
    // future format, not corruption; tools surface this distinctly. A
    // non-digit top byte is plain corruption and falls through to the
    // bad-magic check instead.
    throw UnsupportedFormatError(
        "checkpoint format version '" + std::string(1, version_digit) +
        "' at offset 7 is newer than this build understands (reads v1-v" +
        std::to_string(kCurrentVersion) + ")");
  }
  if (magic == kMagicV2 || magic == kMagicV3) {
    f.version = magic == kMagicV3 ? kVersionV3 : kVersionV2;
    const std::uint32_t stored = r.u32();
    const std::uint32_t computed = record_crc(data, magic == kMagicV3);
    if (stored != computed) {
      // Best-effort peek at the (untrusted) sequence so the diagnostic can
      // say which chain position is corrupt; every read is bounds-checked.
      std::string claimed;
      try {
        ByteReader peek(data.subspan(kV2HeaderSize));
        (void)peek.u8();  // kind
        claimed = " (record claims sequence " +
                  std::to_string(peek.varint()) + ")";
      } catch (const CheckError&) {
      }
      AIC_CHECK_MSG(stored == computed,
                    "checkpoint body checksum mismatch at offset 8: stored "
                    "crc32c="
                        << stored << ", computed " << computed
                        << " over bytes [" << kV2HeaderSize << ", "
                        << data.size() << ")" << claimed);
    }
  } else {
    AIC_CHECK_MSG(magic == kMagicV1, "bad checkpoint magic at offset 0");
    f.version = kVersionV1;
  }
  std::size_t at = r.pos();
  const std::uint8_t kind = r.u8();
  // Correcting records are legal only under the v3 magic — a v1/v2
  // record claiming kind 3 is corrupt, not futuristic.
  const std::uint8_t max_kind =
      f.version >= kVersionV3
          ? std::uint8_t(CheckpointKind::kIncrementalCorrecting)
          : std::uint8_t(CheckpointKind::kIncrementalDelta);
  AIC_CHECK_MSG(kind <= max_kind, "bad checkpoint kind "
                                      << int(kind) << " at offset " << at
                                      << " for format v" << int(f.version));
  f.kind = CheckpointKind(kind);
  f.sequence = r.varint();
  f.app_time = r.f64();
  const std::uint64_t cpu_len = bounded_varint(r, "cpu_state length");
  ByteSpan cpu = r.raw(cpu_len);
  f.cpu_state.assign(cpu.begin(), cpu.end());
  const std::uint64_t freed = bounded_varint(r, "freed-page count");
  PageId last = 0;
  f.freed_pages.reserve(freed);
  for (std::uint64_t i = 0; i < freed; ++i) {
    at = r.pos();
    const std::uint64_t step = r.varint();
    AIC_CHECK_MSG(step <= ~PageId{0} - last,
                  "freed-page id overflow at offset " << at);
    last += step;
    f.freed_pages.push_back(last);
  }
  const std::uint64_t payload_len = bounded_varint(r, "payload length");
  ByteSpan payload = r.raw(payload_len);
  f.payload.assign(payload.begin(), payload.end());
  AIC_CHECK_MSG(r.done(), "trailing bytes after checkpoint at offset "
                              << r.pos() << " (record claims to end there)");
  return f;
}

std::uint64_t CheckpointFile::serialized_size() const {
  // Exact would require varint width math; serialize() is cheap relative to
  // page payloads, so measure precisely via a scratch buffer only when the
  // caller asks. Here: compute exactly with a writer over a small buffer
  // for the header and add payload sizes.
  Bytes scratch;
  ByteWriter w(scratch);
  w.u64(kind == CheckpointKind::kIncrementalCorrecting ? kMagicV3
                                                       : kMagicV2);
  w.u32(0);
  w.u8(std::uint8_t(kind));
  w.varint(sequence);
  w.f64(app_time);
  w.varint(cpu_state.size());
  w.varint(freed_pages.size());
  PageId last = 0;
  for (PageId id : freed_pages) {
    w.varint(id - last);
    last = id;
  }
  w.varint(payload.size());
  return scratch.size() + cpu_state.size() + payload.size();
}

Bytes encode_raw_pages(const std::vector<std::pair<PageId, ByteSpan>>& pages) {
  Bytes out;
  out.reserve(pages.size() * (kPageSize + 4) + 8);
  ByteWriter w(out);
  w.varint(pages.size());
  for (const auto& [id, bytes] : pages) {
    AIC_CHECK(bytes.size() == kPageSize);
    w.varint(id);
    w.raw(bytes);
  }
  return out;
}

std::vector<std::pair<PageId, Bytes>> decode_raw_pages(ByteSpan payload) {
  ByteReader r(payload);
  const std::uint64_t count = r.varint();
  AIC_CHECK_MSG(count <= r.remaining() / kPageSize,
                "raw-page count " << count << " exceeds payload size");
  std::vector<std::pair<PageId, Bytes>> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const PageId id = r.varint();
    ByteSpan bytes = r.raw(kPageSize);
    out.emplace_back(id, Bytes(bytes.begin(), bytes.end()));
  }
  AIC_CHECK_MSG(r.done(), "trailing bytes in raw-page payload");
  return out;
}

}  // namespace aic::ckpt
