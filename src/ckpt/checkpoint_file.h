// Checkpoint file format (the BLCR context-file stand-in).
//
// A checkpoint file carries: a small uncompressed "CPU state" blob (the
// paper notes CPU states / process linkage / fds are a minor fraction and
// are not delta-compressed), the list of pages freed since the previous
// checkpoint, and the page payload in one of three forms:
//
//   kFull                  — every live page, raw.
//   kIncremental           — dirty pages only, raw.
//   kIncrementalDelta      — dirty pages, page-aligned delta against the
//                            previous checkpoint (delta/
//                            PageAlignedCompressor payload; decoding needs
//                            the accumulated previous state).
//   kIncrementalCorrecting — like kIncrementalDelta, but pages may carry
//                            correcting-coder (delta format v3) records,
//                            including whole-page-move records that
//                            reference a *different* previous page. Files
//                            of this kind serialize with the "AICCKPT3"
//                            magic so a pre-v3 reader rejects them up
//                            front instead of choking mid-payload.
//
// Restart needs the last full checkpoint plus *all* incremental checkpoints
// after it (Section II.A); RestartEngine replays exactly that. One silently
// corrupted record therefore poisons every restore that replays through it,
// which is why v2 carries integrity metadata and verify/ChainVerifier
// exists.
//
// Serialized layout v2 (little-endian, varints per common/bytes.h):
//   u64 magic "AICCKPT2"
//   u32 crc32c over the body (everything after this field)
//   body:
//     u8 kind | varint sequence | f64 app_time
//     varint cpu_state_len | cpu_state bytes
//     varint freed_count | freed page ids (ascending, delta-coded varints)
//     varint payload_len | payload bytes
//
// v1 ("AICCKPT1") is the same body with no checksum field; parse() still
// accepts it (reading old checkpoint stores). v3 ("AICCKPT3") is the v2
// layout — same CRC placement, same body fields — and exists to version
// the payload: the kIncrementalCorrecting kind (and with it
// delta-format-v3 page records) is legal only under the v3 magic.
// serialize() emits v2 for every pre-existing kind, so chains that never
// use the correcting coder are byte-identical to what older builds wrote.
// The CRC-32C (common/crc32c.h) covers every body byte — and, in v3, the
// magic as well, closing the v2 gap where a single bit flip in the version
// digit could turn a record into a "valid" one of another version — so any
// bit flip, truncation inside the body, or torn write is detected before
// the record's contents are believed; parse() reports the byte offset at
// which corruption was detected in the CheckError message.
//
// A record whose magic starts "AICCKPT" but carries a version digit this
// build does not understand throws UnsupportedFormatError (a CheckError
// subclass), so tools can distinguish "from the future" from "corrupt".
//
// parse() is hardened against hostile input: every length/count field is
// bounds-checked against the bytes actually remaining before any
// allocation or read, so truncated or oversized-length records throw
// CheckError instead of over-reading or over-allocating.
//
// Invariants fsck (verify/chain_verifier.h) enforces across a *chain* of
// these records — beyond the per-record checks parse() does — are listed in
// that header: chain starts full, sequences contiguous, freed pages
// resolvable, payloads decodable by replay.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "mem/address_space.h"

namespace aic::ckpt {

using mem::PageId;

enum class CheckpointKind : std::uint8_t {
  kFull = 0,
  kIncremental = 1,
  kIncrementalDelta = 2,
  kIncrementalCorrecting = 3,
};

const char* to_string(CheckpointKind kind);

/// Thrown by CheckpointFile::parse() for a record with a well-formed
/// "AICCKPT" magic whose version digit is newer than this build — a
/// future-format record, as opposed to a corrupt one.
class UnsupportedFormatError : public CheckError {
 public:
  using CheckError::CheckError;
};

struct CheckpointFile {
  /// On-disk format version this record was parsed from (or will be
  /// written as; serialize() picks the lowest version that can carry the
  /// record's kind).
  static constexpr std::uint8_t kVersionV1 = 1;  // no checksum
  static constexpr std::uint8_t kVersionV2 = 2;  // CRC-32C over the body
  static constexpr std::uint8_t kVersionV3 = 3;  // + correcting records
  static constexpr std::uint8_t kCurrentVersion = kVersionV3;

  CheckpointKind kind = CheckpointKind::kFull;
  /// Monotone sequence number within a chain; full checkpoints restart
  /// nothing — the sequence keeps increasing across the whole job.
  std::uint64_t sequence = 0;
  /// Virtual application time at capture (seconds).
  double app_time = 0.0;
  /// Opaque processor/process state (registers, fds, ...) — small, raw.
  Bytes cpu_state;
  /// Pages freed since the previous checkpoint (empty for kFull).
  std::vector<PageId> freed_pages;
  /// Page payload; interpretation depends on `kind` (see header comment).
  Bytes payload;
  /// Format version observed by parse(); kCurrentVersion for records built
  /// in memory.
  std::uint8_t version = kCurrentVersion;

  /// Serializes to the on-disk byte layout (checksummed; v3 for
  /// correcting records, v2 for everything else).
  Bytes serialize() const;
  /// Parses a serialized checkpoint (v1-v3); throws CheckError naming
  /// the offending byte offset on any corruption or hostile length field,
  /// and UnsupportedFormatError for a well-formed future-version magic.
  static CheckpointFile parse(ByteSpan data);

  /// Total serialized size without building the buffer (used for bandwidth
  /// accounting before the bytes are materialized remotely).
  std::uint64_t serialized_size() const;
};

/// Raw-page payload helpers shared by full and plain-incremental files:
///   varint page_count, then per page: varint id, kPageSize raw bytes.
Bytes encode_raw_pages(const std::vector<std::pair<PageId, ByteSpan>>& pages);
std::vector<std::pair<PageId, Bytes>> decode_raw_pages(ByteSpan payload);

}  // namespace aic::ckpt
