// Checkpoint file format (the BLCR context-file stand-in).
//
// A checkpoint file carries: a small uncompressed "CPU state" blob (the
// paper notes CPU states / process linkage / fds are a minor fraction and
// are not delta-compressed), the list of pages freed since the previous
// checkpoint, and the page payload in one of three forms:
//
//   kFull             — every live page, raw.
//   kIncremental      — dirty pages only, raw.
//   kIncrementalDelta — dirty pages, page-aligned delta against the
//                       previous checkpoint (delta/PageAlignedCompressor
//                       payload; decoding needs the accumulated previous
//                       state).
//
// Restart needs the last full checkpoint plus *all* incremental checkpoints
// after it (Section II.A); RestartEngine replays exactly that.
//
// Serialized layout (little-endian, varints per common/bytes.h):
//   u64 magic "AICCKPT1" | u8 kind | varint sequence | f64 app_time
//   varint cpu_state_len | cpu_state bytes
//   varint freed_count | freed page ids (ascending, delta-coded)
//   varint payload_len | payload bytes
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "mem/address_space.h"

namespace aic::ckpt {

using mem::PageId;

enum class CheckpointKind : std::uint8_t {
  kFull = 0,
  kIncremental = 1,
  kIncrementalDelta = 2,
};

const char* to_string(CheckpointKind kind);

struct CheckpointFile {
  CheckpointKind kind = CheckpointKind::kFull;
  /// Monotone sequence number within a chain; full checkpoints restart
  /// nothing — the sequence keeps increasing across the whole job.
  std::uint64_t sequence = 0;
  /// Virtual application time at capture (seconds).
  double app_time = 0.0;
  /// Opaque processor/process state (registers, fds, ...) — small, raw.
  Bytes cpu_state;
  /// Pages freed since the previous checkpoint (empty for kFull).
  std::vector<PageId> freed_pages;
  /// Page payload; interpretation depends on `kind` (see header comment).
  Bytes payload;

  /// Serializes to the on-disk byte layout.
  Bytes serialize() const;
  /// Parses a serialized checkpoint; throws CheckError on corruption.
  static CheckpointFile parse(ByteSpan data);

  /// Total serialized size without building the buffer (used for bandwidth
  /// accounting before the bytes are materialized remotely).
  std::uint64_t serialized_size() const;
};

/// Raw-page payload helpers shared by full and plain-incremental files:
///   varint page_count, then per page: varint id, kPageSize raw bytes.
Bytes encode_raw_pages(const std::vector<std::pair<PageId, ByteSpan>>& pages);
std::vector<std::pair<PageId, Bytes>> decode_raw_pages(ByteSpan payload);

}  // namespace aic::ckpt
