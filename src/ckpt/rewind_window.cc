#include "ckpt/rewind_window.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aic::ckpt {

namespace {
constexpr std::size_t kNone = std::size_t(-1);
}  // namespace

RewindWindow::RewindWindow(std::size_t budget) : budget_(budget) {
  AIC_CHECK_MSG(budget == 0 || budget >= 2,
                "rewind budget must be 0 (disabled) or >= 2, got " << budget);
}

std::optional<RewindWindow::Entry> RewindWindow::admit(std::uint64_t sequence,
                                                       double time,
                                                       std::uint64_t bytes) {
  if (budget_ == 0) return std::nullopt;
  AIC_CHECK_MSG(time + 1e-9 >= last_arrival_,
                "rewind admit out of order: " << time << " after "
                                             << last_arrival_);
  delta_max_ = std::max(delta_max_, time - last_arrival_);
  last_arrival_ = std::max(last_arrival_, time);
  live_.push_back(Entry{sequence, time, bytes, false, 0.0});
  if (live_.size() <= budget_) return std::nullopt;

  std::optional<Entry> victim = g_ == 0.0 ? era_init() : steady_evict();
  AIC_CHECK_MSG(victim.has_value(), "rewind window failed to pick a victim");
  AIC_CHECK(live_.size() == budget_);
  ++discards_;
  return victim;
}

void RewindWindow::rebase_era() {
  const double t0 = live_.back().time;
  g_ = t0 / double(budget_);
  // Walk the stored arrivals (excluding the newest) oldest to newest and
  // let each claim the largest grid multiple at or below its own time,
  // capped at (k-1)*g AND at one step above the previous claim. The
  // consecutive-run cap matters: if a claim could skip a multiple, the
  // next era would inherit two adjacent odd positions with no even
  // between them, and merging both tears a 3-cell hole the bound cannot
  // absorb. Capping keeps every anchor's time >= its position while the
  // designated positions form a gap-free run 1..m.
  long long prev_m = 0;
  const long long cap_m = (long long)(budget_) - 1;
  for (std::size_t i = 0; i + 1 < live_.size(); ++i) {
    Entry& e = live_[i];
    e.grid = false;
    e.pos = 0.0;
    // Positions are tracked as integer grid multiples and multiplied out
    // once — accumulating prev + g in floating point can drift a final
    // ulp below k*g and let one claim too many through, leaving the
    // window with no loose entry to evict.
    long long m = (long long)(std::floor(e.time / g_ + 1e-9));
    m = std::min(m, std::min(cap_m, prev_m + 1));
    if (m <= prev_m) continue;
    e.grid = true;
    e.pos = g_ * double(m);
    prev_m = m;
  }
  live_.back().grid = false;
  live_.back().pos = 0.0;
  merge_queue_.clear();
  for (const Entry& e : live_) {
    if (!e.grid) continue;
    if (std::llround(e.pos / g_) % 2 != 0) merge_queue_.push_back(e.pos);
  }
  next_commit_ = g_ * double(next_even_above(prev_m));
}

std::optional<RewindWindow::Entry> RewindWindow::era_init() {
  if (live_.back().time <= 0.0) {
    // Every arrival so far sits at time zero — no horizon to divide yet.
    // Shed the oldest and try again at the next admit.
    return evict_oldest_loose();
  }
  rebase_era();
  std::optional<Entry> victim = evict_oldest_loose();
  normalize();
  return victim;
}

std::optional<RewindWindow::Entry> RewindWindow::steady_evict() {
  // In steady operation the horizon tracks the era (t stays within ~2k*g
  // before a flip doubles g). A horizon beyond 4k*g means an arrival jump
  // the doubling ladder cannot chase — and such a jump leaves a
  // delta_max of at least half the new horizon in the bound's slack
  // term, so re-deriving the grid from scratch is safe. This also keeps
  // pos/g_ small, so the parity arithmetic below stays exact.
  if (live_.back().time > 4.0 * double(budget_) * g_) {
    rebase_era();
    normalize();
  }
  // Graduation: the oldest non-grid arrival at or past the commit
  // frontier becomes a grid checkpoint.
  std::size_t idx = kNone;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (!live_[i].grid && live_[i].time + 1e-9 >= next_commit_) {
      idx = i;
      break;
    }
  }
  if (idx == kNone) return evict_oldest_loose();  // frontier not reached

  std::size_t grid_count = 0;
  double coverage = 0.0;
  for (const Entry& le : live_) {
    if (!le.grid) continue;
    ++grid_count;
    coverage = std::max(coverage, le.pos);
  }

  // Two commit regimes. Below grid capacity (k-1 anchors) — after an
  // under-designated init, a rebase, or a rollback — the ladder must
  // densify first: commits land on EVERY multiple of g (frontier advances
  // by g) so the trailing stretch never exceeds ~g before capacity is
  // reached. At capacity the classic doubling cadence applies: commits
  // land on even multiples, the frontier advances by 2g, and each commit
  // pairs with a merge. Positions snap DOWN to the arrival's own grid
  // cell — after a drought the frontier jumps forward instead of
  // committing positions far behind the arrival that claims them.
  Entry& e = live_[idx];
  const bool fill = grid_count + 1 <= budget_ - 1;
  const long long cov_m = std::llround(coverage / g_);
  long long m;
  if (fill) {
    m = (long long)(std::floor(e.time / g_ + 1e-9));
    m = std::max(m, cov_m + 1);
  } else {
    m = 2 * (long long)(std::floor(e.time / (2.0 * g_) + 1e-9));
    m = std::max(m, next_even_above(cov_m));
  }
  const double p = g_ * double(m);
  e.grid = true;
  e.pos = p;
  if (m % 2 != 0) merge_queue_.push_back(p);
  next_commit_ = grid_count + 1 < budget_ - 1
                     ? g_ * double(m + 1)
                     : g_ * double(next_even_above(m));

  std::optional<Entry> victim;
  if (!fill) {
    // The grid is over capacity: merge away an odd multiple. A non-empty
    // queue is guaranteed here — normalize() ran after the last eviction,
    // and it only leaves an empty queue when no grid checkpoints remain
    // at all. Among the queued candidates, evict the one whose removal
    // merges the smallest span: in the healthy steady state that is the
    // oldest cell (the classic in-order merge), but after a rebase or a
    // rollback the oldest anchor can sit several multiples above the
    // origin with nothing below it, where evicting it would tear a hole
    // far wider than 2g. The era recursion is order-free — it only needs
    // every odd multiple gone before the flip.
    AIC_CHECK_MSG(!merge_queue_.empty(),
                  "grid over capacity with an empty merge queue");
    std::size_t best_q = kNone;
    std::size_t best_v = kNone;
    double best_damage = 0.0;
    for (std::size_t q = 0; q < merge_queue_.size(); ++q) {
      std::size_t v = kNone;
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i].grid && live_[i].pos == merge_queue_[q]) {
          v = i;
          break;
        }
      }
      AIC_CHECK_MSG(v != kNone, "merge candidate at pos " << merge_queue_[q]
                                                          << " not live");
      AIC_CHECK(v + 1 < live_.size());  // the newest entry is never queued
      const double prev_time = v == 0 ? 0.0 : live_[v - 1].time;
      const double damage = live_[v + 1].time - prev_time;
      if (best_q == kNone || damage < best_damage) {
        best_q = q;
        best_v = v;
        best_damage = damage;
      }
    }
    merge_queue_.erase(merge_queue_.begin() + std::ptrdiff_t(best_q));
    victim = evict_at(best_v);
  } else {
    // Below capacity (the init pass under-designated, or a rollback
    // dropped anchors): let the commit grow the grid back toward k-1 and
    // shed a loose entry from the dense edge instead.
    victim = evict_oldest_loose();
  }
  normalize();
  return victim;
}

void RewindWindow::normalize() {
  for (;;) {
    if (!merge_queue_.empty()) return;
    double coverage = 0.0;
    bool any_grid = false;
    for (const Entry& e : live_) {
      if (!e.grid) continue;
      any_grid = true;
      coverage = std::max(coverage, e.pos);
    }
    if (!any_grid) return;
    // Era flip: every surviving position is an even multiple of g_ (the
    // odd ones were merged away), i.e. an integer multiple of 2*g_.
    g_ *= 2.0;
    for (const Entry& e : live_) {
      if (!e.grid) continue;
      const double m = e.pos / g_;
      AIC_CHECK_MSG(std::abs(m - std::round(m)) < 1e-6,
                    "grid pos " << e.pos << " not aligned to era " << g_);
      if (std::llround(m) % 2 != 0) merge_queue_.push_back(e.pos);
    }
    next_commit_ = g_ * double(next_even_above(std::llround(coverage / g_)));
  }
}

std::optional<RewindWindow::Entry> RewindWindow::evict_at(std::size_t idx) {
  AIC_CHECK(idx < live_.size());
  Entry out = live_[idx];
  live_.erase(live_.begin() + std::ptrdiff_t(idx));
  return out;
}

std::optional<RewindWindow::Entry> RewindWindow::evict_oldest_loose() {
  for (std::size_t i = 0; i + 1 < live_.size(); ++i) {
    if (!live_[i].grid) return evict_at(i);
  }
  AIC_CHECK_MSG(false, "no evictable checkpoint in the rewind window");
  return std::nullopt;
}

long long RewindWindow::next_even_above(long long m) {
  return m % 2 == 0 ? m + 2 : m + 1;
}

void RewindWindow::drop_newer_than(std::uint64_t sequence) {
  if (budget_ == 0) return;
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [&](const Entry& e) {
                               return e.sequence > sequence;
                             }),
              live_.end());
  merge_queue_.clear();
  double coverage = 0.0;
  for (const Entry& e : live_) {
    if (!e.grid) continue;
    coverage = std::max(coverage, e.pos);
    if (std::llround(e.pos / g_) % 2 != 0) merge_queue_.push_back(e.pos);
  }
  // The dropped entries may include fresh grid commits; pull the frontier
  // back to just past the surviving coverage so the re-trodden stretch of
  // application time graduates again. The next graduation lands one step
  // above coverage — the fill/steady regime split in steady_evict() then
  // re-densifies the re-trodden span before resuming the 2g cadence.
  if (g_ > 0.0) {
    next_commit_ = g_ * double(std::llround(coverage / g_) + 1);
  }
  last_arrival_ = live_.empty() ? 0.0 : live_.back().time;
}

std::vector<std::uint64_t> RewindWindow::live_sequences() const {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(live_.size());
  for (const Entry& e : live_) seqs.push_back(e.sequence);
  return seqs;
}

std::uint64_t RewindWindow::live_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& e : live_) total += e.bytes;
  return total;
}

double RewindWindow::max_gap(double now) const {
  double prev = 0.0;
  double worst = 0.0;
  for (const Entry& e : live_) {
    worst = std::max(worst, e.time - prev);
    prev = e.time;
  }
  return std::max(worst, now - prev);
}

double RewindWindow::bound_factor(std::size_t budget) {
  AIC_CHECK(budget >= 2);
  return 2.0 + 2.0 / double(budget);
}

double RewindWindow::slack_factor(std::size_t budget) {
  AIC_CHECK(budget >= 2);
  return double((budget + 1) / 2 + 3);
}

double RewindWindow::gap_bound(double now) const {
  AIC_CHECK(budget_ >= 2);
  return bound_factor(budget_) * now / double(budget_ + 1) +
         slack_factor(budget_) * delta_max_;
}

}  // namespace aic::ckpt
