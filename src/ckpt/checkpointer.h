// Checkpoint capture: full, plain-incremental, and delta-compressed
// incremental checkpoints over a mem::AddressSpace, plus the restart
// replay engine.
//
// CheckpointChain is the stateful façade the controllers use. It tracks
// the accumulated previous-checkpoint state (needed both to delta-compress
// hot pages and to compute the freed-page list), forces a periodic full
// checkpoint to bound the restart chain, and reports per-checkpoint size /
// work accounting (the `ds` and `dl`-work inputs to the AIC predictor).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/checkpoint_file.h"
#include "ckpt/rewind_window.h"
#include "delta/page_delta.h"
#include "delta/parallel_page_delta.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"

namespace aic::ckpt {

/// Accounting for one captured checkpoint.
struct CaptureStats {
  CheckpointKind kind = CheckpointKind::kFull;
  std::uint64_t pages_written = 0;
  std::uint64_t freed_pages = 0;
  /// Uncompressed checkpoint content (pages + cpu state), i.e. what an
  /// incremental checkpoint without delta compression would write.
  std::uint64_t uncompressed_bytes = 0;
  /// Serialized file size (after delta compression if applied) == `ds`
  /// plus headers.
  std::uint64_t file_bytes = 0;
  /// Deterministic compression effort (delta/CodecStats::work_units); the
  /// simulation layer converts this to delta latency `dl`.
  std::uint64_t delta_work_units = 0;
  std::uint64_t pages_delta = 0;
  std::uint64_t pages_raw = 0;
  /// Dirty pages bit-identical to their previous version, skipped by the
  /// compressor's memcmp fast path (zero payload bytes).
  std::uint64_t pages_same = 0;
  /// Pages encoded against a different previous page (whole-page moves;
  /// correcting mode only).
  std::uint64_t pages_moved = 0;
};

/// Stateless capture primitives.
class Checkpointer {
 public:
  /// Captures every live page, raw.
  static CheckpointFile take_full(const mem::AddressSpace& space,
                                  ByteSpan cpu_state, std::uint64_t sequence,
                                  double app_time, CaptureStats* stats);

  /// Captures the current dirty pages raw. `prev_live` is the live-page set
  /// at the previous checkpoint (to derive freed pages).
  static CheckpointFile take_incremental(const mem::AddressSpace& space,
                                         ByteSpan cpu_state,
                                         std::uint64_t sequence,
                                         double app_time,
                                         const std::vector<PageId>& prev_live,
                                         CaptureStats* stats);

  /// Captures dirty pages delta-compressed against `prev` (the accumulated
  /// state as of the previous checkpoint) with the page-aligned compressor.
  static CheckpointFile take_incremental_delta(
      const mem::AddressSpace& space, ByteSpan cpu_state,
      std::uint64_t sequence, double app_time,
      const std::vector<PageId>& prev_live, const mem::Snapshot& prev,
      const delta::PageAlignedCompressor& compressor, CaptureStats* stats);

  /// Same, through the sharded multi-threaded pipeline (byte-identical
  /// output; non-const because the compressor reuses its shard buffers).
  static CheckpointFile take_incremental_delta(
      const mem::AddressSpace& space, ByteSpan cpu_state,
      std::uint64_t sequence, double app_time,
      const std::vector<PageId>& prev_live, const mem::Snapshot& prev,
      delta::ParallelPageCompressor& compressor, CaptureStats* stats);
};

/// Replays a restart chain: one full checkpoint followed by its incremental
/// successors, in sequence order.
class RestartEngine {
 public:
  struct Restored {
    mem::Snapshot memory;
    Bytes cpu_state;
    double app_time = 0.0;
    std::uint64_t sequence = 0;
  };

  /// How delta files are folded into the accumulated image.
  enum class Mode {
    /// Burns/Long/Stockmeyer reconstruction: each delta payload is applied
    /// directly onto the page frames of the accumulated image (the buffer
    /// holding the previous state IS the buffer being rebuilt), so peak
    /// memory is one image plus transient scratch — roughly half the
    /// out-of-place peak. The default; output is byte-exact against
    /// kOutOfPlace (tested).
    kInPlace,
    /// Decode each delta into a second snapshot, then overlay — the
    /// pre-v3 behavior, kept as the differential-testing reference.
    kOutOfPlace,
  };

  /// `chain` must start with a kFull file; later files must have strictly
  /// increasing sequence numbers. Delta files are decoded against the
  /// accumulated state, mirroring capture.
  static Restored restore(const std::vector<CheckpointFile>& chain,
                          const delta::PageAlignedCompressor& compressor,
                          Mode mode = Mode::kInPlace);
};

/// Stateful chain manager: owns the accumulated previous-checkpoint state,
/// decides full-vs-incremental, and keeps the replay chain.
class CheckpointChain {
 public:
  struct Config {
    /// Take a fresh full checkpoint after this many incrementals (bounds
    /// restart cost); 0 means "only the first checkpoint is full".
    std::uint32_t full_period = 0;
    /// Delta-compress incrementals (Xdelta3-PA). When false, incrementals
    /// are written raw — the "incremental checkpointing without delta
    /// compression" ablation point.
    bool delta_compress = true;
    /// Use the one-pass correcting coder (cdelta records, checkpoint format
    /// v3, whole-page move detection) for delta incrementals instead of the
    /// greedy per-page coder. Ignored when delta_compress is false.
    bool correcting = false;
    delta::XDelta3Config page_codec = delta::PageAlignedCompressor::page_config();
    /// Delta-compression worker threads (the paper's dedicated
    /// checkpointing cores). 0 = auto (hardware_concurrency() - 1);
    /// 1 = serial. Output is byte-identical at any setting.
    unsigned compress_workers = 0;
    /// Optional observability hub, shared with the compression pipeline:
    /// per-checkpoint counters plus per-shard spans. nullptr = disabled.
    obs::Hub* obs = nullptr;
    /// Bounded-regret retention: keep at most this many live checkpoints,
    /// pruning per the RewindWindow discard schedule (worst-case rewind
    /// gap within the competitive bound). 0 disables retention — the chain
    /// keeps every file, the pre-existing behavior. When a pruned file's
    /// successor is not a full checkpoint it is re-anchored (rewritten as
    /// a full) first, so every surviving checkpoint stays restorable.
    /// Unsupported in combination with truncate_before_last_full().
    std::size_t rewind_budget = 0;
  };

  /// Accounting for one retention prune (see Config::rewind_budget).
  struct PruneEvent {
    std::uint64_t victim_sequence = 0;
    /// Serialized size of the discarded file.
    std::uint64_t victim_bytes = 0;
    /// Set when the victim's successor was rewritten as a full checkpoint
    /// to keep the chain restorable across the gap.
    std::optional<std::uint64_t> reanchored_sequence;
    /// Successor growth from re-anchoring (bytes after minus before);
    /// 0 when no re-anchor happened.
    std::int64_t reanchor_growth = 0;
  };

  CheckpointChain() : CheckpointChain(Config{}) {}
  explicit CheckpointChain(Config config);

  /// Captures the next checkpoint of `space`. The caller must protect_all()
  /// afterwards to start the next interval's dirty tracking (the chain does
  /// not do it, so callers control the exact protocol timing).
  CaptureStats capture(const mem::AddressSpace& space, ByteSpan cpu_state,
                       double app_time);

  /// True if the next capture will be a full checkpoint (first capture, or
  /// the periodic-full schedule is due). Lets asynchronous callers know
  /// whether to snapshot every live page or only the dirty set.
  bool next_capture_is_full() const;

  /// Capture from pre-copied page images instead of the live space — the
  /// entry point for the concurrent checkpointing core, which must work
  /// from a stable copy while the application keeps mutating. `pages`
  /// holds the dirty pages' images (every live page when
  /// next_capture_is_full()); `live_now` is the live-page set at snapshot
  /// time (freed pages are derived from it).
  CaptureStats capture_pages(const mem::Snapshot& pages,
                             const std::vector<PageId>& live_now,
                             ByteSpan cpu_state, double app_time);

  /// Restores the latest state from the retained chain (in place by
  /// default; see RestartEngine::Mode).
  RestartEngine::Restored restore(
      RestartEngine::Mode mode = RestartEngine::Mode::kInPlace) const;

  /// Restores the state as of the retained checkpoint with this sequence
  /// number (replaying from the latest full at or before it). With a
  /// rewind window active, every sequence in rewind().live_sequences() is
  /// a valid target.
  RestartEngine::Restored restore_at(
      std::uint64_t sequence,
      RestartEngine::Mode mode = RestartEngine::Mode::kInPlace) const;

  /// Accumulated state as of the last checkpoint (what the next delta is
  /// compressed against).
  const mem::Snapshot& last_state() const { return accumulated_; }

  std::uint64_t checkpoints_taken() const { return next_sequence_; }
  const std::vector<CheckpointFile>& files() const { return files_; }

  /// Drops files preceding the most recent full checkpoint (they are no
  /// longer needed for restart). Returns bytes reclaimed.
  std::uint64_t truncate_before_last_full();

  /// Failure rollback: discards checkpoints with sequence > `sequence`
  /// (taken after the restore point, now invalid) and rewinds the
  /// accumulated state so the next delta compresses against the restore
  /// point. The remaining chain must still contain a full checkpoint at or
  /// before `sequence`.
  void rollback_to(std::uint64_t sequence);

  /// Total serialized bytes of the files needed to restore the latest
  /// state (last full + successors) — what a recovery must read.
  std::uint64_t restart_chain_bytes() const;

  /// The retention window (inactive when Config::rewind_budget == 0).
  const RewindWindow& rewind() const { return rewind_; }
  /// The most recent retention prune, if any capture has evicted yet.
  const std::optional<PruneEvent>& last_prune() const { return last_prune_; }

 private:
  /// Bumps the ckpt.* counters for one captured checkpoint (no-op when
  /// obs is off).
  void record_capture(const CaptureStats& stats);
  /// Admits the just-captured file into the rewind window and prunes the
  /// eviction it returns, if any. Called at the end of every capture.
  void admit_to_rewind();
  /// Discards the retained file with this sequence, re-anchoring its
  /// successor as a full checkpoint first when needed.
  void prune_sequence(std::uint64_t victim_sequence);

  Config config_;
  delta::ParallelPageCompressor compressor_;
  std::vector<CheckpointFile> files_;
  mem::Snapshot accumulated_;
  std::vector<PageId> last_live_;
  std::uint64_t next_sequence_ = 0;
  std::uint32_t incrementals_since_full_ = 0;
  RewindWindow rewind_;
  std::optional<PruneEvent> last_prune_;
};

}  // namespace aic::ckpt
