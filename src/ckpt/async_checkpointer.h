// The concurrent checkpointing core, for real: a dedicated worker thread
// that delta-compresses and "ships" checkpoints while the application
// thread keeps computing — the mechanism Section II.C's idle-core study
// motivates and Fig. 9's Delta Compressor / Remote Checkpointer boxes
// describe (realized there with taskset; here with std::thread).
//
// Protocol per checkpoint:
//   1. (application thread, blocking — the c1 halt) submit(): snapshots the
//      dirty pages and CPU state, clears dirty tracking, enqueues the job.
//   2. (checkpointing core) the worker delta-compresses the job against the
//      accumulated previous state, appends the file to the chain, and
//      invokes the completion callback with the capture accounting.
//
// The application thread never touches pages the worker is reading: the
// submit step's Snapshot::capture of the dirty pages is the ONE data copy
// charged as the paper's c1 halt; the snapshot is then moved (not
// re-copied) into the job, so nothing else in submit scales with the dirty
// set. Jobs are processed FIFO; one job in flight at a time mirrors the
// paper's protocol ("no L1 until the last L3 has finished" is the caller's
// policy via busy()), but within a job the chain's compressor shards the
// dirty pages across Config::chain.compress_workers threads — the
// dedicated checkpointing cores of Section II.C.
//
// Thread-safety: submit/busy/drain/restore may be called from the
// application thread; the completion callback runs on the worker thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "ckpt/checkpointer.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"
#include "storage/multilevel_store.h"

namespace aic::ckpt {

/// Completion notice for one asynchronous checkpoint. A checkpoint has two
/// observable milestones on the checkpointing core: "compressed" (the delta
/// landed in the chain — on_complete) and, when a store is attached,
/// "landed" (the L2/L3 drains committed — on_landed, with the drain
/// durations in `placement`).
struct AsyncResult {
  std::uint64_t sequence = 0;
  double app_time = 0.0;
  CaptureStats stats;
  /// Wall-clock nanoseconds the worker spent compressing (real, host-
  /// dependent; the simulation layer uses deterministic work units).
  std::uint64_t compress_ns = 0;
  /// False in on_complete notifications (compressed only), true in
  /// on_landed notifications (drains committed at L2/L3).
  bool landed = false;
  /// Virtual-time placement durations; meaningful only when landed.
  storage::PlacementTimes placement;
};

class AsyncCheckpointer {
 public:
  using Completion = std::function<void(const AsyncResult&)>;

  struct Config {
    CheckpointChain::Config chain;
    /// Invoked on the worker thread after each checkpoint is compressed
    /// into the chain (the paper's "delta compressor done" milestone).
    Completion on_complete;
    /// Optional multi-level store: after compressing, the worker drains
    /// the new checkpoint file to L2/L3 through the store's transfer
    /// engine (virtual time, run to commit). Only the worker thread may
    /// touch the store while the AsyncCheckpointer is alive.
    storage::MultiLevelStore* store = nullptr;
    /// Invoked on the worker thread after the drains commit (landed=true).
    Completion on_landed;
  };

  explicit AsyncCheckpointer(Config config);
  ~AsyncCheckpointer();

  AsyncCheckpointer(const AsyncCheckpointer&) = delete;
  AsyncCheckpointer& operator=(const AsyncCheckpointer&) = delete;

  /// The blocking L1 step: copies the dirty pages (or every live page for
  /// the first/full checkpoints) plus freed-page bookkeeping, re-arms
  /// dirty tracking, and enqueues the compression job. Returns the job's
  /// sequence number.
  std::uint64_t submit(mem::AddressSpace& space, ByteSpan cpu_state,
                       double app_time);

  /// True while any job is queued or compressing (the checkpointing core
  /// is occupied).
  bool busy() const;

  /// Blocks until all submitted jobs have landed in the chain.
  void drain();

  /// Restores the latest landed state (drains first so the result reflects
  /// every submitted checkpoint).
  RestartEngine::Restored restore();

  /// Checkpoints landed so far.
  std::uint64_t completed() const;

 private:
  struct Job {
    std::uint64_t sequence;
    double app_time;
    Bytes cpu_state;
    mem::Snapshot pages;              // dirty (or full) page images
    std::vector<mem::PageId> live;    // live set at submit time
    bool full = false;
    /// Wall seconds the blocking capture took (the c1 halt), measured in
    /// submit(); feeds the checkpoint's causal chain. 0 without a hub.
    double capture_s = 0.0;
  };

  void worker_loop();
  /// Runs one job; on CheckError dumps a flight-recorder postmortem
  /// through the hub (when one is attached) and rethrows.
  void process(Job job);
  void process_job(Job& job, obs::Hub* hub);

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t completed_ = 0;

  // Chain state, owned by the worker after construction (the application
  // thread only reaches it via drain()+restore()).
  CheckpointChain chain_;
  std::vector<mem::PageId> last_live_;

  // Observability handles (config_.chain.obs; null when disabled). The
  // capture histogram is touched from the application thread, the compress
  // one from the worker — both are lock-free atomics.
  obs::Histogram* m_capture_s_ = nullptr;
  obs::Histogram* m_compress_s_ = nullptr;

  std::thread worker_;
};

}  // namespace aic::ckpt
