#include "ckpt/async_checkpointer.h"

#include "common/check.h"
#include "obs/clock.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace aic::ckpt {

namespace {
namespace on = obs::names;
}  // namespace

AsyncCheckpointer::AsyncCheckpointer(Config config)
    : config_(std::move(config)),
      chain_(config_.chain),
      worker_([this] { worker_loop(); }) {
  // Safe to resolve after worker_ starts: the worker only reads these
  // inside process(), which a submit() (sequenced after this constructor)
  // must release through the queue mutex first.
  if (obs::Hub* hub = config_.chain.obs) {
    m_capture_s_ = hub->metrics.histogram(
        on::kCkptCaptureSeconds,
        obs::Histogram::exponential_buckets(1e-6, 4.0, 16));
    m_compress_s_ = hub->metrics.histogram(
        on::kCkptCompressSeconds,
        obs::Histogram::exponential_buckets(1e-6, 4.0, 16));
  }
}

AsyncCheckpointer::~AsyncCheckpointer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::uint64_t AsyncCheckpointer::submit(mem::AddressSpace& space,
                                        ByteSpan cpu_state, double app_time) {
  // Reading the chain's full-or-incremental decision is safe here: the
  // schedule state only changes inside process(), and submit callers
  // serialize with the worker through the queue (the decision for THIS job
  // depends only on how many jobs precede it, which we know).
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t sequence = next_sequence_++;
  // Full-vs-incremental is a pure function of the sequence number under
  // the chain's schedule (fulls at multiples of full_period + 1), so the
  // submitter can decide what to snapshot without racing the worker.
  const std::uint32_t period = config_.chain.full_period;
  const bool full =
      period == 0 ? sequence == 0 : sequence % (period + 1) == 0;
  lock.unlock();

  // The blocking L1 step: this page-image capture is the one data copy the
  // paper charges as c1 — everything after it (compression, shipping) runs
  // on the checkpointing core. The snapshot and live-set are then MOVED
  // into the job; only the caller-owned cpu_state span must be copied.
  obs::Hub* hub = config_.chain.obs;
  const double cap0 = hub ? hub->trace.wall_seconds() : 0.0;
  mem::Snapshot pages =
      full ? mem::Snapshot::capture(space)
           : mem::Snapshot::capture_pages(space, space.dirty_pages());
  std::vector<mem::PageId> live = space.live_pages();
  space.protect_all();  // next interval's dirty tracking starts now
  if (hub != nullptr) {
    const double cap1 = hub->trace.wall_seconds();
    hub->trace.span(obs::TimeDomain::kWall, on::kCatCkpt, on::kEvCapture,
                    cap0, cap1, 0,
                    {{"seq", double(sequence)}, {"full", full ? 1.0 : 0.0}});
    m_capture_s_->observe(cap1 - cap0);
  }

  double capture_s = 0.0;
  if (hub != nullptr) capture_s = hub->trace.wall_seconds() - cap0;

  Job job{.sequence = sequence,
          .app_time = app_time,
          .cpu_state = Bytes(cpu_state.begin(), cpu_state.end()),
          .pages = std::move(pages),
          .live = std::move(live),
          .full = full,
          .capture_s = capture_s};
  lock.lock();
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_all();
  return sequence;
}

bool AsyncCheckpointer::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_ || !queue_.empty();
}

void AsyncCheckpointer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

RestartEngine::Restored AsyncCheckpointer::restore() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return chain_.restore();
}

std::uint64_t AsyncCheckpointer::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void AsyncCheckpointer::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    process(std::move(job));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = false;
      ++completed_;
    }
    cv_.notify_all();
  }
}

void AsyncCheckpointer::process(Job job) {
  obs::Hub* hub = config_.chain.obs;
  try {
    process_job(job, hub);
  } catch (const CheckError& e) {
    // The worker thread has no caller to propagate to — the rethrow below
    // reaches std::terminate. Leave a postmortem first (flight_recorder.h)
    // so the failed run is diagnosable from its artifact.
    if (hub != nullptr) {
      hub->trace.instant(obs::TimeDomain::kWall, on::kCatCkpt, on::kEvError,
                         hub->trace.wall_seconds(), 0,
                         {{"seq", double(job.sequence)}});
      hub->dump_postmortem("async-checkpointer", e.what());
    }
    throw;
  }
}

void AsyncCheckpointer::process_job(Job& job, obs::Hub* hub) {
  const std::uint64_t t0 = obs::wall_now_ns();
  const double c0 = hub ? hub->trace.wall_seconds() : 0.0;
  CaptureStats stats;
  CheckpointFile file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = chain_.capture_pages(job.pages, job.live, job.cpu_state,
                                 job.app_time);
    if (config_.store != nullptr) file = chain_.files().back();
  }
  AsyncResult result;
  result.sequence = job.sequence;
  result.app_time = job.app_time;
  result.stats = stats;
  result.compress_ns = obs::wall_now_ns() - t0;
  if (hub != nullptr) {
    const double c1 = hub->trace.wall_seconds();
    hub->trace.span(obs::TimeDomain::kWall, on::kCatCkpt, on::kEvCompress,
                    c0, c1, 0,
                    {{"seq", double(job.sequence)},
                     {"file_bytes", double(stats.file_bytes)}});
    m_compress_s_->observe(c1 - c0);
  }
  if (config_.on_complete) config_.on_complete(result);
  if (config_.store != nullptr) {
    // The "remote checkpointer" half of the core: drain the file to L2/L3
    // through the store's transfer engine. Runs outside the lock so the
    // application thread can keep submitting while chunks are in flight.
    const double v0 = config_.store->xfer().now();
    result.placement = config_.store->put_checkpoint(file);
    result.landed = true;
    if (hub != nullptr) {
      hub->trace.span(obs::TimeDomain::kVirtual, on::kCatCkpt, on::kEvLand,
                      v0, config_.store->xfer().now(), 0,
                      {{"seq", double(job.sequence)},
                       {"raid_s", result.placement.raid},
                       {"remote_s", result.placement.remote}});
    }
    if (config_.on_landed) config_.on_landed(result);
  }
  if (hub != nullptr) {
    if (obs::Telemetry* tel = hub->telemetry()) {
      // One causal chain per checkpoint. Capture and compress are wall
      // seconds, the drain is virtual seconds — mixed clock domains, so
      // the total is the segment sum (close_total), not a timestamp delta.
      obs::CausalLog& log = tel->causal();
      const double compress_s = double(result.compress_ns) * 1e-9;
      const double drain_s =
          result.landed ? result.placement.raid + result.placement.remote
                        : 0.0;
      const std::uint64_t cid =
          log.open("seq" + std::to_string(job.sequence), 0, job.app_time);
      log.add(cid, obs::CausalSegment::kCapture, job.capture_s);
      log.add(cid, obs::CausalSegment::kCompress, compress_s);
      log.add(cid, obs::CausalSegment::kInFlight, drain_s);
      log.close_total(cid, job.capture_s + compress_s + drain_s, false);
    }
  }
}

}  // namespace aic::ckpt
