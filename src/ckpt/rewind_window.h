// Bounded-regret checkpoint retention (the Bringmann et al. direction from
// PAPERS.md): keep at most k live checkpoints out of an online stream of
// arrivals and choose which one to discard so that the worst-case *rewind
// gap* — the longest stretch of application time not covered by any
// retained checkpoint — stays within a constant factor of the best possible
// k-subset in hindsight (whose max gap is at least T/(k+1) at horizon T).
//
// The schedule is a granularity ladder ("era" scheme). Once the buffer
// first overflows at horizon T0, time is divided into a grid of step
// g = T0/k and the stored checkpoints nearest the grid points are
// designated *grid* checkpoints. As the horizon grows, a commit frontier
// advances over even multiples of g: each time an arrival crosses the
// frontier it graduates to a grid checkpoint and the oldest odd multiple of
// g is discarded (a merge of two adjacent grid cells into one). When every
// odd multiple is gone the grid spacing has doubled — the era flips to
// granularity 2g and the process repeats. Between graduations the newest
// non-grid checkpoint replaces its predecessor (self-replacement), so the
// recent edge always stays dense and the newest checkpoint is never
// discarded.
//
// Guarantee (proved by the era recursion, exercised by the property suite
// in tests/rewind_property_test.cc): for every prefix of every arrival
// sequence, at horizon T
//
//     max_gap(T) <= C_k * T/(k+1) + S_k * delta_max,
//
// where delta_max is the largest inter-arrival spacing seen so far
// (including the virtual arrival at t = 0), C_k = 2 + 2/k, and
// S_k = ceil(k/2) + 3. Both corrections account for the matched-arrival
// variant implemented here: grid positions are claimed by stored arrivals
// (not placed freely), so a commit-frontier jump across a quiet stretch
// can skip grid cells. The 2/k term covers the extra era step 2g a merge
// hole can span beyond the ideal schedule's two cells (late in an era
// g ~ T/(2k)). The ceil(k/2) slack covers the pending merge cells of an
// era — each of the up-to-ceil(k/2) queued odd multiples can carry one
// skipped span, itself bounded by a single inter-arrival gap, and
// compounded skips concentrate into the hole a late forced merge opens.
// The constants are certified empirically: a 34k-trial sweep (six arrival
// families, k in {2..14}, rollback stress) puts the worst observed slack
// at ~0.65*k with >= 19% margin to S_k.
//
// Against the hindsight optimum T/(k+1) this is a competitive ratio of C_k
// plus an additive arrival-jitter term. Naive policies break the bound:
// "always discard the oldest" degrades to max_gap ~ T, ratio k+1 (the
// mutation check in the property suite rejects it for every k >= 3; at
// k = 2 the bound C_2 = 3 is vacuously wide).
//
// The window tracks (sequence, time, bytes) only — the CheckpointChain owns
// the payloads and acts on the returned eviction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace aic::ckpt {

class RewindWindow {
 public:
  struct Entry {
    std::uint64_t sequence = 0;
    /// Application-time stamp of the checkpoint (monotone across admits).
    double time = 0.0;
    /// Stored size, carried for the owner's reclamation accounting.
    std::uint64_t bytes = 0;
    /// Grid checkpoints anchor the era ladder; non-grid entries are the
    /// dense recent edge eligible for self-replacement.
    bool grid = false;
    /// Ideal grid position (a multiple of the era granularity; <= time).
    double pos = 0.0;
  };

  /// budget = 0 disables the window (admit never stores or evicts);
  /// otherwise budget >= 2 is required — with a single slot no schedule
  /// can retain both an anchor and the newest checkpoint.
  explicit RewindWindow(std::size_t budget = 0);

  /// Records a new checkpoint and returns the entry to discard, if the
  /// budget is exceeded. `time` must be >= every previously admitted time.
  /// The newest checkpoint is never the victim.
  std::optional<Entry> admit(std::uint64_t sequence, double time,
                             std::uint64_t bytes = 0);

  /// Forgets entries newer than `sequence` — pairs with
  /// CheckpointChain::rollback_to after a failure recovery.
  void drop_newer_than(std::uint64_t sequence);

  bool active() const { return budget_ > 0; }
  std::size_t budget() const { return budget_; }
  std::size_t size() const { return live_.size(); }
  const std::vector<Entry>& live() const { return live_; }
  std::vector<std::uint64_t> live_sequences() const;
  std::uint64_t live_bytes() const;
  /// Total evictions returned by admit() so far.
  std::uint64_t discards() const { return discards_; }
  /// Largest inter-arrival spacing observed (incl. the virtual t=0 point).
  double delta_max() const { return delta_max_; }

  /// Longest uncovered stretch over [0, now]: gaps between consecutive
  /// retained times plus the leading [0, first] and trailing [last, now]
  /// segments.
  double max_gap(double now) const;
  /// The competitive-ratio constant C_k of the schedule.
  static double bound_factor(std::size_t budget);
  /// The jitter-slack constant S_k = ceil(k/2) + 3.
  static double slack_factor(std::size_t budget);
  /// The certified envelope C_k * now/(k+1) + S_k * delta_max.
  double gap_bound(double now) const;

 private:
  /// Re-derives the grid from the current horizon: g = t/k, each stored
  /// arrival claims the largest unclaimed multiple at or below its time.
  /// Used at the first overflow and when a horizon jump outruns the era.
  void rebase_era();
  /// First overflow: establish the era grid from the current horizon.
  std::optional<Entry> era_init();
  /// Steady state: graduate across the commit frontier and merge, or
  /// self-replace on the dense edge.
  std::optional<Entry> steady_evict();
  /// Doubles the granularity until the merge queue is non-empty (or no
  /// grid checkpoints remain).
  void normalize();
  std::optional<Entry> evict_at(std::size_t idx);
  /// Oldest non-grid entry that is not the newest checkpoint. The grid
  /// population never exceeds budget-1, so one always exists when the
  /// buffer is over budget.
  std::optional<Entry> evict_oldest_loose();
  static long long next_even_above(long long m);

  std::size_t budget_;
  std::vector<Entry> live_;  // ascending in time
  /// Era granularity; 0 until the first overflow establishes the grid.
  double g_ = 0.0;
  /// Next even multiple of g_ at which an arrival graduates to the grid.
  double next_commit_ = 0.0;
  /// Grid positions (odd multiples of g_) pending discard, ascending.
  std::vector<double> merge_queue_;
  double last_arrival_ = 0.0;
  double delta_max_ = 0.0;
  std::uint64_t discards_ = 0;
};

}  // namespace aic::ckpt
