#include "ckpt/checkpointer.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::ckpt {
namespace {

std::vector<PageId> freed_since(const std::vector<PageId>& prev_live,
                                const mem::AddressSpace& space) {
  std::vector<PageId> freed;
  for (PageId id : prev_live) {
    if (!space.contains(id)) freed.push_back(id);
  }
  return freed;  // prev_live is sorted, so freed is sorted
}

std::vector<std::pair<PageId, ByteSpan>> page_views(
    const mem::AddressSpace& space, const std::vector<PageId>& ids) {
  std::vector<std::pair<PageId, ByteSpan>> out;
  out.reserve(ids.size());
  for (PageId id : ids) out.emplace_back(id, space.page_bytes(id));
  return out;
}

}  // namespace

CheckpointFile Checkpointer::take_full(const mem::AddressSpace& space,
                                       ByteSpan cpu_state,
                                       std::uint64_t sequence, double app_time,
                                       CaptureStats* stats) {
  CheckpointFile f;
  f.kind = CheckpointKind::kFull;
  f.sequence = sequence;
  f.app_time = app_time;
  f.cpu_state.assign(cpu_state.begin(), cpu_state.end());
  const auto live = space.live_pages();
  f.payload = encode_raw_pages(page_views(space, live));
  if (stats) {
    *stats = CaptureStats{};
    stats->kind = f.kind;
    stats->pages_written = live.size();
    stats->pages_raw = live.size();
    stats->uncompressed_bytes = live.size() * kPageSize + cpu_state.size();
    stats->file_bytes = f.serialized_size();
  }
  return f;
}

CheckpointFile Checkpointer::take_incremental(
    const mem::AddressSpace& space, ByteSpan cpu_state, std::uint64_t sequence,
    double app_time, const std::vector<PageId>& prev_live,
    CaptureStats* stats) {
  CheckpointFile f;
  f.kind = CheckpointKind::kIncremental;
  f.sequence = sequence;
  f.app_time = app_time;
  f.cpu_state.assign(cpu_state.begin(), cpu_state.end());
  f.freed_pages = freed_since(prev_live, space);
  const auto dirty = space.dirty_pages();
  f.payload = encode_raw_pages(page_views(space, dirty));
  if (stats) {
    *stats = CaptureStats{};
    stats->kind = f.kind;
    stats->pages_written = dirty.size();
    stats->pages_raw = dirty.size();
    stats->freed_pages = f.freed_pages.size();
    stats->uncompressed_bytes = dirty.size() * kPageSize + cpu_state.size();
    stats->file_bytes = f.serialized_size();
  }
  return f;
}

namespace {

/// Shared body of the two take_incremental_delta overloads: `compressor` is
/// either the serial PageAlignedCompressor or the sharded pipeline — their
/// outputs are byte-identical, so the checkpoint file is too.
template <typename Compressor>
CheckpointFile take_incremental_delta_with(
    const mem::AddressSpace& space, ByteSpan cpu_state, std::uint64_t sequence,
    double app_time, const std::vector<PageId>& prev_live,
    const mem::Snapshot& prev, Compressor& compressor, CaptureStats* stats) {
  CheckpointFile f;
  // The kind follows the compressor's mode: correcting payloads carry
  // cdelta records and need the v3 file magic.
  f.kind = compressor.correcting() ? CheckpointKind::kIncrementalCorrecting
                                   : CheckpointKind::kIncrementalDelta;
  f.sequence = sequence;
  f.app_time = app_time;
  f.cpu_state.assign(cpu_state.begin(), cpu_state.end());
  f.freed_pages = freed_since(prev_live, space);

  const auto dirty_ids = space.dirty_pages();
  std::vector<delta::DirtyPage> dirty;
  dirty.reserve(dirty_ids.size());
  for (PageId id : dirty_ids) dirty.push_back({id, space.page_bytes(id)});
  delta::DeltaResult res = compressor.compress(dirty, prev);
  f.payload = std::move(res.payload);

  if (stats) {
    *stats = CaptureStats{};
    stats->kind = f.kind;
    stats->pages_written = dirty_ids.size();
    stats->freed_pages = f.freed_pages.size();
    stats->uncompressed_bytes = dirty_ids.size() * kPageSize + cpu_state.size();
    stats->file_bytes = f.serialized_size();
    stats->delta_work_units = res.stats.work_units;
    stats->pages_delta = res.pages_delta;
    stats->pages_raw = res.pages_raw;
    stats->pages_same = res.pages_same;
    stats->pages_moved = res.pages_moved;
  }
  return f;
}

}  // namespace

CheckpointFile Checkpointer::take_incremental_delta(
    const mem::AddressSpace& space, ByteSpan cpu_state, std::uint64_t sequence,
    double app_time, const std::vector<PageId>& prev_live,
    const mem::Snapshot& prev, const delta::PageAlignedCompressor& compressor,
    CaptureStats* stats) {
  return take_incremental_delta_with(space, cpu_state, sequence, app_time,
                                     prev_live, prev, compressor, stats);
}

CheckpointFile Checkpointer::take_incremental_delta(
    const mem::AddressSpace& space, ByteSpan cpu_state, std::uint64_t sequence,
    double app_time, const std::vector<PageId>& prev_live,
    const mem::Snapshot& prev, delta::ParallelPageCompressor& compressor,
    CaptureStats* stats) {
  return take_incremental_delta_with(space, cpu_state, sequence, app_time,
                                     prev_live, prev, compressor, stats);
}

RestartEngine::Restored RestartEngine::restore(
    const std::vector<CheckpointFile>& chain,
    const delta::PageAlignedCompressor& compressor, Mode mode) {
  AIC_CHECK_MSG(!chain.empty(), "empty restart chain");
  AIC_CHECK_MSG(chain.front().kind == CheckpointKind::kFull,
                "restart chain must begin with a full checkpoint, got "
                    << to_string(chain.front().kind) << " sequence "
                    << chain.front().sequence);
  Restored out;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const CheckpointFile& f : chain) {
    AIC_CHECK_MSG(first || f.sequence > prev_seq,
                  "restart chain sequences must increase: sequence "
                      << f.sequence << " follows " << prev_seq);
    // Captures number checkpoints consecutively, so a sequence jump inside
    // a chain means an incremental is missing — the delta after the gap
    // would silently decode against the wrong accumulated state.
    AIC_CHECK_MSG(first || f.sequence == prev_seq + 1,
                  "restart chain is missing checkpoint(s): sequence "
                      << f.sequence << " follows " << prev_seq);
    first = false;
    prev_seq = f.sequence;

    try {
      switch (f.kind) {
        case CheckpointKind::kFull: {
          out.memory = mem::Snapshot();
          for (auto& [id, bytes] : decode_raw_pages(f.payload))
            out.memory.put_page(id, bytes);
          break;
        }
        case CheckpointKind::kIncremental: {
          for (PageId id : f.freed_pages) out.memory.erase_page(id);
          for (auto& [id, bytes] : decode_raw_pages(f.payload))
            out.memory.put_page(id, bytes);
          break;
        }
        case CheckpointKind::kIncrementalDelta:
        case CheckpointKind::kIncrementalCorrecting: {
          // Deltas reference page versions as of the previous checkpoint,
          // which is exactly the accumulated state before this file — apply
          // the payload first, then the frees (a moved page's source may be
          // freed in the same checkpoint). The two kinds differ only in
          // which record kinds the payload may contain; the decoder
          // dispatches per record either way.
          if (mode == Mode::kInPlace) {
            compressor.decompress_in_place(f.payload, out.memory);
            for (PageId id : f.freed_pages) out.memory.erase_page(id);
          } else {
            mem::Snapshot pages = compressor.decompress(f.payload, out.memory);
            for (PageId id : f.freed_pages) out.memory.erase_page(id);
            pages.overlay_onto(out.memory);
          }
          break;
        }
      }
    } catch (const CheckError& e) {
      throw CheckError("restoring sequence " + std::to_string(f.sequence) +
                       " (" + to_string(f.kind) + "): " + e.what());
    }
    out.cpu_state = f.cpu_state;
    out.app_time = f.app_time;
    out.sequence = f.sequence;
  }
  return out;
}

CheckpointChain::CheckpointChain(Config config)
    : config_(config),
      compressor_(delta::ParallelPageCompressor::Config{
          .page_codec = config.page_codec,
          .correcting = config.correcting,
          .workers = config.compress_workers,
          .obs = config.obs}),
      rewind_(config.rewind_budget) {}

void CheckpointChain::record_capture(const CaptureStats& stats) {
  obs::Hub* hub = config_.obs;
  if (hub == nullptr) return;
  namespace on = obs::names;
  obs::MetricsRegistry& m = hub->metrics;
  m.counter(on::kCkptCheckpoints)->add();
  if (stats.kind == CheckpointKind::kFull) m.counter(on::kCkptFulls)->add();
  m.counter(on::kCkptPagesWritten)->add(stats.pages_written);
  m.counter(on::kCkptUncompressedBytes)->add(stats.uncompressed_bytes);
  m.counter(on::kCkptFileBytes)->add(stats.file_bytes);
}

bool CheckpointChain::next_capture_is_full() const {
  return files_.empty() || (config_.full_period > 0 &&
                            incrementals_since_full_ >= config_.full_period);
}

CaptureStats CheckpointChain::capture_pages(const mem::Snapshot& pages,
                                            const std::vector<PageId>& live_now,
                                            ByteSpan cpu_state,
                                            double app_time) {
  CaptureStats stats{};
  CheckpointFile file;
  file.sequence = next_sequence_;
  file.app_time = app_time;
  file.cpu_state.assign(cpu_state.begin(), cpu_state.end());

  // Freed pages: live at the previous checkpoint, gone now.
  for (PageId id : last_live_) {
    if (!std::binary_search(live_now.begin(), live_now.end(), id))
      file.freed_pages.push_back(id);
  }

  const auto page_ids = pages.page_ids();
  if (next_capture_is_full()) {
    AIC_CHECK_MSG(page_ids.size() == live_now.size(),
                  "full capture needs every live page snapshotted");
    file.kind = CheckpointKind::kFull;
    file.freed_pages.clear();
    std::vector<std::pair<PageId, ByteSpan>> views;
    views.reserve(page_ids.size());
    for (PageId id : page_ids) views.emplace_back(id, pages.page_bytes(id));
    file.payload = encode_raw_pages(views);
    stats.kind = file.kind;
    stats.pages_written = page_ids.size();
    stats.pages_raw = page_ids.size();
    stats.uncompressed_bytes = page_ids.size() * kPageSize + cpu_state.size();
    incrementals_since_full_ = 0;
  } else if (config_.delta_compress) {
    file.kind = compressor_.correcting()
                    ? CheckpointKind::kIncrementalCorrecting
                    : CheckpointKind::kIncrementalDelta;
    std::vector<delta::DirtyPage> dirty;
    dirty.reserve(page_ids.size());
    for (PageId id : page_ids) dirty.push_back({id, pages.page_bytes(id)});
    delta::DeltaResult res = compressor_.compress(dirty, accumulated_);
    file.payload = std::move(res.payload);
    stats.kind = file.kind;
    stats.pages_written = page_ids.size();
    stats.freed_pages = file.freed_pages.size();
    stats.uncompressed_bytes = page_ids.size() * kPageSize + cpu_state.size();
    stats.delta_work_units = res.stats.work_units;
    stats.pages_delta = res.pages_delta;
    stats.pages_raw = res.pages_raw;
    stats.pages_same = res.pages_same;
    stats.pages_moved = res.pages_moved;
    ++incrementals_since_full_;
  } else {
    file.kind = CheckpointKind::kIncremental;
    std::vector<std::pair<PageId, ByteSpan>> views;
    views.reserve(page_ids.size());
    for (PageId id : page_ids) views.emplace_back(id, pages.page_bytes(id));
    file.payload = encode_raw_pages(views);
    stats.kind = file.kind;
    stats.pages_written = page_ids.size();
    stats.pages_raw = page_ids.size();
    stats.freed_pages = file.freed_pages.size();
    stats.uncompressed_bytes = page_ids.size() * kPageSize + cpu_state.size();
    ++incrementals_since_full_;
  }
  stats.file_bytes = file.serialized_size();
  ++next_sequence_;

  if (file.kind == CheckpointKind::kFull) {
    accumulated_ = mem::Snapshot();
  } else {
    for (PageId id : file.freed_pages) accumulated_.erase_page(id);
  }
  pages.overlay_onto(accumulated_);
  last_live_ = live_now;
  files_.push_back(std::move(file));
  record_capture(stats);
  admit_to_rewind();
  return stats;
}

CaptureStats CheckpointChain::capture(const mem::AddressSpace& space,
                                      ByteSpan cpu_state, double app_time) {
  CaptureStats stats;
  const bool want_full =
      files_.empty() || (config_.full_period > 0 &&
                         incrementals_since_full_ >= config_.full_period);
  CheckpointFile file;
  if (want_full) {
    file = Checkpointer::take_full(space, cpu_state, next_sequence_, app_time,
                                   &stats);
    incrementals_since_full_ = 0;
  } else if (config_.delta_compress) {
    file = Checkpointer::take_incremental_delta(
        space, cpu_state, next_sequence_, app_time, last_live_, accumulated_,
        compressor_, &stats);
    ++incrementals_since_full_;
  } else {
    file = Checkpointer::take_incremental(space, cpu_state, next_sequence_,
                                          app_time, last_live_, &stats);
    ++incrementals_since_full_;
  }
  ++next_sequence_;

  // Fold this checkpoint into the accumulated state so the *next* delta has
  // the right source pages.
  for (PageId id : file.freed_pages) accumulated_.erase_page(id);
  if (file.kind == CheckpointKind::kFull) {
    accumulated_ = mem::Snapshot();
    for (auto& [id, bytes] : decode_raw_pages(file.payload))
      accumulated_.put_page(id, bytes);
  } else {
    // Dirty pages are in `space` right now — cheaper to copy from the live
    // space than to re-decode the payload.
    for (PageId id : space.dirty_pages())
      accumulated_.put_page(id, space.page_bytes(id));
  }
  last_live_ = space.live_pages();
  files_.push_back(std::move(file));
  record_capture(stats);
  admit_to_rewind();
  return stats;
}

void CheckpointChain::admit_to_rewind() {
  if (!rewind_.active()) return;
  const CheckpointFile& f = files_.back();
  std::optional<RewindWindow::Entry> victim =
      rewind_.admit(f.sequence, f.app_time, f.serialized_size());
  if (victim.has_value()) prune_sequence(victim->sequence);
}

void CheckpointChain::prune_sequence(std::uint64_t victim_sequence) {
  std::size_t idx = files_.size();
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].sequence == victim_sequence) {
      idx = i;
      break;
    }
  }
  // Tolerate a victim the chain no longer holds (the caller truncated or
  // rolled back under the window); the window's own accounting is already
  // updated.
  if (idx == files_.size()) return;
  AIC_CHECK_MSG(idx + 1 < files_.size(),
                "rewind window must never evict the newest checkpoint");

  PruneEvent ev;
  ev.victim_sequence = victim_sequence;
  ev.victim_bytes = files_[idx].serialized_size();

  CheckpointFile& succ = files_[idx + 1];
  if (succ.kind != CheckpointKind::kFull) {
    // The successor's deltas decode against state that includes the
    // victim, so rebuild that state BEFORE the victim goes away: replay
    // [latest full <= successor .. successor] and rewrite the successor as
    // a full checkpoint. By induction every earlier prune left a full
    // right after its gap, so the replay slice is always contiguous.
    std::size_t start = idx + 2;
    while (start > 0 && files_[start - 1].kind != CheckpointKind::kFull)
      --start;
    AIC_CHECK_MSG(start > 0, "pruned chain lost its full checkpoint");
    const std::int64_t before = std::int64_t(succ.serialized_size());
    std::vector<CheckpointFile> slice(files_.begin() + (start - 1),
                                      files_.begin() + (idx + 2));
    RestartEngine::Restored restored =
        RestartEngine::restore(slice, compressor_.serial());
    std::vector<std::pair<PageId, ByteSpan>> views;
    const auto ids = restored.memory.page_ids();
    views.reserve(ids.size());
    for (PageId id : ids) views.emplace_back(id, restored.memory.page_bytes(id));
    succ.kind = CheckpointKind::kFull;
    succ.payload = encode_raw_pages(views);
    succ.freed_pages.clear();
    ev.reanchored_sequence = succ.sequence;
    ev.reanchor_growth = std::int64_t(succ.serialized_size()) - before;
  }
  files_.erase(files_.begin() + std::ptrdiff_t(idx));

  // A re-anchor may have planted a fresh full closer to the tail; recount
  // so the periodic-full cadence restarts from it.
  incrementals_since_full_ = 0;
  for (auto it = files_.rbegin();
       it != files_.rend() && it->kind != CheckpointKind::kFull; ++it)
    ++incrementals_since_full_;

  if (config_.obs != nullptr) {
    namespace on = obs::names;
    obs::MetricsRegistry& m = config_.obs->metrics;
    m.counter(on::kCkptPrunes)->add();
    m.counter(on::kCkptPruneBytes)->add(ev.victim_bytes);
    if (ev.reanchored_sequence.has_value())
      m.counter(on::kCkptReanchors)->add();
  }
  last_prune_ = ev;
}

RestartEngine::Restored CheckpointChain::restore(
    RestartEngine::Mode mode) const {
  AIC_CHECK_MSG(!files_.empty(), "no checkpoints to restore");
  return restore_at(files_.back().sequence, mode);
}

RestartEngine::Restored CheckpointChain::restore_at(
    std::uint64_t sequence, RestartEngine::Mode mode) const {
  std::size_t end = 0;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].sequence == sequence) {
      end = i + 1;
      break;
    }
  }
  AIC_CHECK_MSG(end > 0, "no retained checkpoint with sequence " << sequence);
  // Find the latest full checkpoint at or before the target and replay
  // from there.
  std::size_t start = end;
  while (start > 0 && files_[start - 1].kind != CheckpointKind::kFull) --start;
  AIC_CHECK_MSG(start > 0, "chain has no full checkpoint");
  std::vector<CheckpointFile> chain(files_.begin() + (start - 1),
                                    files_.begin() + std::ptrdiff_t(end));
  return RestartEngine::restore(chain, compressor_.serial(), mode);
}

void CheckpointChain::rollback_to(std::uint64_t sequence) {
  while (!files_.empty() && files_.back().sequence > sequence)
    files_.pop_back();
  AIC_CHECK_MSG(!files_.empty(), "rollback removed every checkpoint");
  // Rewind derived state to the restore point.
  auto restored = restore();
  accumulated_ = std::move(restored.memory);
  last_live_ = accumulated_.page_ids();
  next_sequence_ = files_.back().sequence + 1;
  incrementals_since_full_ = 0;
  for (auto it = files_.rbegin();
       it != files_.rend() && it->kind != CheckpointKind::kFull; ++it)
    ++incrementals_since_full_;
  rewind_.drop_newer_than(sequence);
}

std::uint64_t CheckpointChain::restart_chain_bytes() const {
  std::uint64_t total = 0;
  std::size_t start = files_.size();
  while (start > 0 && files_[start - 1].kind != CheckpointKind::kFull) --start;
  if (start == 0) return 0;
  for (std::size_t i = start - 1; i < files_.size(); ++i)
    total += files_[i].serialized_size();
  return total;
}

std::uint64_t CheckpointChain::truncate_before_last_full() {
  std::size_t start = files_.size();
  while (start > 0 && files_[start - 1].kind != CheckpointKind::kFull) --start;
  if (start <= 1) return 0;  // nothing before the last full (or no full yet)
  std::uint64_t reclaimed = 0;
  for (std::size_t i = 0; i + 1 < start; ++i)
    reclaimed += files_[i].serialized_size();
  files_.erase(files_.begin(), files_.begin() + (start - 1));
  return reclaimed;
}

}  // namespace aic::ckpt
