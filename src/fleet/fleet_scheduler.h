// FleetScheduler — a multi-tenant checkpoint service over one shared
// drain channel, simulated as a sharded discrete-event core.
//
// The fleet hosts hundreds to thousands of concurrent jobs (a LANL
// candidate mix from workload::lanl_fleet_jobs). Each job runs its own
// lightweight AIC loop — an EWMA drain-time predictor, a Young/Daly-style
// interval decider w* = sqrt(2 * T_drain / lambda), and a chain-lite
// full-every-N capture cadence — and drains its checkpoints through one
// xfer::TransferScheduler whose chunk pricing enforces the per-tenant QoS
// contracts (fleet::QosPolicy). An AdmissionController bounds the
// aggregate steady-state drain demand; per-job Poisson failure processes
// (sim::JobFailureProcess) strike individual jobs mid-drain.
//
// Sharded virtual time, byte-deterministic under any shard count:
//
//   time advances in fixed rounds of quantum_s. Each round runs three
//   phases —
//     1. admission (serial): jobs arriving in the round are offered to the
//        admission controller in (arrival, job_id) order;
//     2. shard passes (parallel, one shard per worker): each shard
//        simulates its jobs' local timelines through the round — work
//        progress, captures, failures, restarts — touching nothing shared,
//        and emits timestamped Action records;
//     3. merge + apply (serial): all shards' actions are merged sorted by
//        (time, job_id, seq) and applied to the shared transfer engine in
//        that order, then the engine runs to the round boundary.
//   Drain completions are delivered back to jobs only at the boundary
//   (one-quantum staleness), so cross-job coupling through the shared
//   channel is independent of how jobs were partitioned into shards: for
//   a fixed seed, every counter, every virtual timestamp, and the
//   timeline digest are byte-identical at 1, 2, or any number of shards.
//
// The digest (FNV-1a over the applied action stream and every commit) is
// the determinism witness tests and benches compare across shard counts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ckpt/rewind_window.h"
#include "fleet/admission.h"
#include "fleet/qos_policy.h"
#include "fleet/tenant.h"
#include "sim/fleet_failures.h"
#include "workload/lanl_trace.h"
#include "xfer/scheduler.h"

namespace aic::obs {
class CausalLog;
class Counter;
class Gauge;
class Histogram;
struct Hub;
class Telemetry;
}  // namespace aic::obs

namespace aic::fleet {

struct FleetConfig {
  /// Shard count of the simulation core. Affects wall-clock parallelism
  /// only — results are byte-identical for any value >= 1.
  int shards = 1;
  /// Round quantum (virtual seconds): the granularity at which drain
  /// completions feed back into job deciders.
  double quantum_s = 5.0;
  std::uint64_t seed = 1;

  /// The shared drain channel (registered as level 3).
  double bandwidth_bps = 1.0e9;
  double latency_s = 1.0e-3;
  std::size_t chunk_bytes = 1 << 20;

  /// Per-job failure rate (all levels, failures/second) and restart
  /// downtime after a strike.
  double lambda_total = 1.0e-3;
  double restart_s = 10.0;
  /// Local capture bandwidth: a capture of B bytes pauses the job for
  /// B / capture_bps seconds.
  double capture_bps = 4.0e9;
  /// Clamp on each job's decided checkpoint interval.
  double min_interval_s = 30.0;
  double max_interval_s = 3600.0;
  /// Chain-lite cadence: a full checkpoint every `full_every` captures
  /// (the first capture is always full).
  int full_every = 8;
  /// EWMA smoothing of the observed drain time feeding the decider.
  double ewma_alpha = 0.3;
  /// Safety horizon: the fleet stops at this virtual time even if jobs
  /// remain (a report of a truncated run says so via finished()).
  double max_virtual_s = 86400.0;

  /// Per-job live-checkpoint budget (k): every commit is admitted to a
  /// ckpt::RewindWindow whose era-ladder discard schedule bounds the
  /// worst-case rewind gap while the fleet's retained bytes stay O(k) per
  /// job — the knob that lets a 10k-job fleet hold bounded storage.
  /// 0 disables retention accounting (every commit is kept forever).
  std::size_t rewind_budget = 0;

  /// Admission head-room policy. capacity_bps, lambda_total, and the
  /// interval clamp are overwritten from the fleet fields above so the
  /// controller's demand model matches the per-job deciders.
  AdmissionConfig admission;

  obs::Hub* obs = nullptr;
};

/// Per-job accounting (also the per-job slice tests pin across shard
/// counts).
struct JobStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t fulls = 0;
  std::uint64_t commits = 0;
  std::uint64_t failures = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t resumes = 0;
  std::uint64_t aborts = 0;
  std::uint64_t net2_bytes = 0;
  std::uint64_t committed_bytes = 0;
  /// Elastic reconfigurations applied going forward (reverts after a
  /// failure rewind are not counted; re-treading re-fires and re-counts).
  std::uint64_t resizes = 0;
  double rework_s = 0.0;
  double tts_sum_s = 0.0;
  double start_time = -1.0;
  double finish_time = -1.0;
};

struct FleetReport {
  double elapsed_s = 0.0;
  bool complete = false;  // every job reached a terminal state
  std::uint64_t jobs = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;  // offers that went through the queue
  std::uint64_t rejected = 0;
  std::uint64_t finished = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t commits = 0;
  std::uint64_t failures = 0;
  std::uint64_t net2_bytes = 0;
  std::uint64_t committed_bytes = 0;
  double rework_s = 0.0;
  /// Aggregate goodput: committed checkpoint bytes / elapsed.
  double goodput_bps = 0.0;
  /// Time-to-safe (capture -> commit) distribution, virtual seconds.
  double tts_mean_s = 0.0;
  double tts_p50_s = 0.0;
  double tts_p99_s = 0.0;
  /// Elastic reconfigurations applied (forward) across all jobs.
  std::uint64_t resizes = 0;
  /// Rewind-window retention (zeros when rewind_budget == 0): fleet-wide
  /// discards and retained bytes, and the worst per-job rewind gap with
  /// its certified envelope at the final horizon.
  std::uint64_t rewind_discards = 0;
  std::uint64_t rewind_live_bytes = 0;
  double rewind_max_gap_s = 0.0;
  double rewind_gap_bound_s = 0.0;
  /// Determinism witness (see header comment).
  std::uint64_t digest = 0;
  std::map<std::uint64_t, TenantStats> tenants;
};

class FleetScheduler {
 public:
  FleetScheduler(FleetConfig config, std::vector<workload::FleetJobSpec> jobs,
                 QosPolicy policy);

  /// Runs the fleet to completion (or to max_virtual_s).
  void run();

  double now() const { return now_; }
  /// True when every job reached a terminal state (finished + drains
  /// landed, or rejected).
  bool finished() const;
  std::uint64_t digest() const { return digest_; }
  const JobStats& job_stats(std::uint64_t job_id) const;
  const AdmissionController& admission() const { return admission_; }

  FleetReport report() const;

 private:
  enum class ActionKind : std::uint8_t {
    kCapture = 0,
    kFailure,
    kResume,
    kFinish,
    kResize,
  };
  struct Action {
    double time = 0.0;
    std::uint64_t job = 0;
    std::uint32_t seq = 0;  // per-job emission order within the round
    ActionKind kind = ActionKind::kCapture;
    std::uint64_t bytes = 0;    // kCapture: drain size
    std::uint64_t ckpt = 0;     // kCapture: checkpoint sequence number
    bool full = false;          // kCapture: full vs delta
    int fail_level = 0;         // kFailure: 1..3
    double factor = 1.0;        // kResize: new width / base width
  };
  struct JobState {
    JobState(workload::FleetJobSpec s, sim::JobFailureProcess f)
        : spec(std::move(s)), failures(std::move(f)) {}

    workload::FleetJobSpec spec;
    sim::JobFailureProcess failures;
    bool active = false;
    bool finished = false;
    bool released = false;
    double progress = 0.0;       // work executed (virtual seconds)
    double safe_progress = 0.0;  // covered by the last committed ckpt
    double busy_until = 0.0;     // capture pause or restart downtime
    failure::FailureEvent next_failure;
    double next_ckpt = 0.0;
    bool force_full = false;  // aborted drain: redo as a full checkpoint
    std::uint64_t ckpt_seq = 0;
    // The (at most one) outstanding drain. drain_id is written by the
    // serial apply phase; the job's shard-local view is drain_outstanding,
    // refreshed at round boundaries (one-quantum staleness by design).
    bool drain_outstanding = false;
    bool drain_interrupted = false;  // resume due at busy_until
    xfer::TransferId drain_id = 0;
    double drain_capture_time = 0.0;
    double drain_progress = 0.0;  // progress the pending capture covers
    double pred_drain_s = 1.0;    // EWMA drain-time prediction
    /// Elastic width: how many of spec.resizes the job's progress has
    /// crossed. A pure function of progress (re-derived in job_round), so
    /// a failure rewind below a boundary reverts the width and
    /// re-treading re-fires it deterministically.
    std::size_t resizes_applied = 0;
    /// Bounded-regret retention over this job's committed checkpoints.
    ckpt::RewindWindow rewind;
    /// Arrival -> activation wait, charged to the admission-queue segment
    /// of the job's first causal chain (then zeroed).
    double admission_wait_s = 0.0;
    std::uint32_t round_seq = 0;
    JobStats stats;
  };

  std::uint64_t delta_bytes(const JobState& j) const;
  double w_star(const JobState& j) const;
  /// Current width factor of the job (1.0 before any resize applies).
  double size_factor(const JobState& j) const;
  /// Re-derives resizes_applied from progress, rebuilding the failure
  /// stream and re-planning next_ckpt on every transition (both
  /// directions); emits one kResize action per forward step and per
  /// revert so the serial phase re-prices admission.
  void sync_width(JobState& j, double at, std::vector<Action>& out) const;
  void activate(const workload::FleetJobSpec& spec, double start);
  void admit_arrivals(double t1);
  void job_round(JobState& j, double t0, double t1,
                 std::vector<Action>& out) const;
  void apply_actions(const std::vector<Action>& merged);
  void boundary(double t1);
  void mix(std::uint64_t v);
  void export_metrics(const FleetReport& r) const;
  /// The hub's causal log when telemetry is enabled; nullptr otherwise.
  obs::CausalLog* causal_log() const;
  /// End-of-round telemetry (serial phase): refreshes the live per-tenant
  /// and goodput gauges from the incremental aggregates, then ticks the
  /// hub's Telemetry (sampler + SLO rules) at the round boundary. Pure
  /// reader of deterministic state — the digest is unaffected.
  void round_telemetry(double t1);

  FleetConfig config_;
  QosPolicy policy_;
  AdmissionController admission_;
  xfer::TransferScheduler sched_;
  /// Staging sink that counts instead of storing (fleet drains are
  /// size-only; see TransferScheduler::submit_sized).
  std::unique_ptr<xfer::ChunkSink> sink_;
  std::vector<JobState> jobs_;
  std::map<std::uint64_t, std::size_t> index_;  // job_id -> jobs_ index
  /// Arrival order (indices into the ctor's spec vector, sorted by
  /// (arrival_s, job_id)); next_arrival_ points at the first unoffered.
  std::vector<workload::FleetJobSpec> pending_;
  std::size_t next_arrival_ = 0;
  double now_ = 0.0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t queued_offers_ = 0;
  std::uint64_t finished_jobs_ = 0;
  std::uint64_t rejected_jobs_ = 0;
  std::vector<double> tts_samples_;
  std::map<std::uint64_t, std::vector<double>> tenant_tts_;
  std::map<std::uint64_t, std::uint64_t> tenant_rejected_;
  // Live-telemetry state (only populated when obs is non-null): handles
  // and running sums the round-boundary gauge refresh reads, so a tick is
  // O(tenants), never O(jobs).
  struct TenantObs {
    obs::Gauge* goodput = nullptr;
    obs::Gauge* net2 = nullptr;
    obs::Gauge* commits = nullptr;
    obs::Gauge* finished = nullptr;
    obs::Histogram* tts = nullptr;
    std::uint64_t commits_n = 0;
    std::uint64_t net2_bytes = 0;
    std::uint64_t committed_bytes = 0;
    std::uint64_t jobs_finished = 0;
  };
  TenantObs& tenant_obs(std::uint64_t tenant);
  std::map<std::uint64_t, TenantObs> tenant_obs_;
  std::uint64_t committed_bytes_total_ = 0;
  // Serial-phase metric handles (null when obs is null).
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_queued_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_net2_ = nullptr;
  obs::Counter* m_resizes_ = nullptr;
  obs::Histogram* m_tts_ = nullptr;
  obs::Gauge* g_goodput_ = nullptr;
};

}  // namespace aic::fleet
