#include "fleet/fleet_scheduler.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace aic::fleet {
namespace on = obs::names;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int kDrainLevel = 3;

/// Staging sink that only tracks sizes: fleet drains are synthetic
/// (submit_sized), so "storing" a checkpoint is accounting, not bytes.
class CountingSink final : public xfer::ChunkSink {
 public:
  void stage(const std::string& key, std::uint64_t offset,
             ByteSpan chunk) override {
    auto& staged = staged_[key];
    staged = std::max(staged, offset + chunk.size());
  }
  std::uint64_t staged_bytes(const std::string& key) const override {
    auto it = staged_.find(key);
    return it == staged_.end() ? 0 : it->second;
  }
  void commit(const std::string& key) override { staged_.erase(key); }
  void discard(const std::string& key) override { staged_.erase(key); }

 private:
  std::map<std::string, std::uint64_t> staged_;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  const std::size_t idx = std::min(
      v.size() - 1, std::size_t(q * double(v.size())));
  std::nth_element(v.begin(), v.begin() + std::ptrdiff_t(idx), v.end());
  return v[idx];
}

}  // namespace

FleetScheduler::FleetScheduler(FleetConfig config,
                               std::vector<workload::FleetJobSpec> jobs,
                               QosPolicy policy)
    : config_(config),
      policy_(std::move(policy)),
      admission_([&config] {
        AdmissionConfig a = config.admission;
        // The controller's demand model must agree with the per-job
        // deciders: same channel, same failure rate, same interval clamp.
        a.capacity_bps = config.bandwidth_bps;
        a.lambda_total = config.lambda_total;
        a.min_interval_s = config.min_interval_s;
        a.max_interval_s = config.max_interval_s;
        return a;
      }()),
      sched_([&config] {
        xfer::TransferScheduler::Config c;
        c.chunk_bytes = config.chunk_bytes;
        c.obs = config.obs;
        return c;
      }()),
      sink_(std::make_unique<CountingSink>()) {
  AIC_CHECK_MSG(config_.shards >= 1,
                "shard count must be >= 1, got " << config_.shards);
  AIC_CHECK_MSG(config_.quantum_s > 0.0,
                "round quantum must be positive, got " << config_.quantum_s);
  AIC_CHECK_MSG(config_.lambda_total > 0.0, "fleet lambda must be positive");
  AIC_CHECK_MSG(config_.capture_bps > 0.0,
                "capture bandwidth must be positive");
  AIC_CHECK_MSG(config_.full_every >= 1, "full_every must be >= 1");
  AIC_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1], got " << config_.ewma_alpha);
  sched_.add_level(kDrainLevel,
                   {config_.bandwidth_bps, config_.latency_s}, sink_.get());
  // Installs the tenant table; a reservation set that oversubscribes the
  // channel throws xfer::ReservationError here, before any job runs.
  policy_.apply(sched_, kDrainLevel);

  pending_ = std::move(jobs);
  std::sort(pending_.begin(), pending_.end(),
            [](const workload::FleetJobSpec& a,
               const workload::FleetJobSpec& b) {
              return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                                : a.job_id < b.job_id;
            });
  for (const auto& spec : pending_) {
    AIC_CHECK_MSG(spec.job_id != 0, "fleet job ids must be nonzero");
    AIC_CHECK_MSG(spec.work_s > 0.0,
                  "job " << spec.job_id << " has no work");
    AIC_CHECK_MSG(spec.footprint_bytes > 0,
                  "job " << spec.job_id << " has an empty footprint");
    double prev_at = 0.0;
    for (const auto& rs : spec.resizes) {
      AIC_CHECK_MSG(std::isfinite(rs.factor) && rs.factor > 0.0,
                    "job " << spec.job_id << " resize factor must be positive,"
                           << " got " << rs.factor);
      AIC_CHECK_MSG(rs.at_progress > prev_at,
                    "job " << spec.job_id
                           << " resizes must be strictly ascending in "
                              "at_progress");
      prev_at = rs.at_progress;
    }
  }

  if (config_.obs) {
    auto& m = config_.obs->metrics;
    m_admitted_ = m.counter(on::kFleetJobsAdmitted);
    m_queued_ = m.counter(on::kFleetJobsQueued);
    m_rejected_ = m.counter(on::kFleetJobsRejected);
    m_finished_ = m.counter(on::kFleetJobsFinished);
    m_checkpoints_ = m.counter(on::kFleetCheckpoints);
    m_commits_ = m.counter(on::kFleetCommits);
    m_failures_ = m.counter(on::kFleetFailures);
    m_net2_ = m.counter(on::kFleetNet2Bytes);
    m_resizes_ = m.counter(on::kFleetResizes);
    m_tts_ = m.histogram(on::kFleetTimeToSafeSeconds,
                         obs::Histogram::exponential_buckets(0.1, 2.0, 16));
    g_goodput_ = m.gauge(on::kFleetGoodputBps);
    admission_.set_obs(config_.obs);
  }
}

obs::CausalLog* FleetScheduler::causal_log() const {
  if (config_.obs == nullptr) return nullptr;
  obs::Telemetry* t = config_.obs->telemetry();
  return t == nullptr ? nullptr : &t->causal();
}

FleetScheduler::TenantObs& FleetScheduler::tenant_obs(std::uint64_t tenant) {
  auto it = tenant_obs_.find(tenant);
  if (it == tenant_obs_.end()) {
    auto& m = config_.obs->metrics;
    TenantObs t;
    t.goodput = m.gauge(on::tenant_metric(tenant, on::kTenantGoodputBps));
    t.net2 = m.gauge(on::tenant_metric(tenant, on::kTenantNet2Bytes));
    t.commits = m.gauge(on::tenant_metric(tenant, on::kTenantCommits));
    t.finished = m.gauge(on::tenant_metric(tenant, on::kTenantJobsFinished));
    t.tts = m.histogram(
        on::tenant_metric(tenant, on::kTenantTimeToSafeSeconds),
        obs::Histogram::exponential_buckets(0.1, 2.0, 16));
    it = tenant_obs_.emplace(tenant, t).first;
  }
  return it->second;
}

double FleetScheduler::size_factor(const JobState& j) const {
  return j.resizes_applied == 0
             ? 1.0
             : j.spec.resizes[j.resizes_applied - 1].factor;
}

std::uint64_t FleetScheduler::delta_bytes(const JobState& j) const {
  return std::max<std::uint64_t>(
      1, std::uint64_t(double(j.spec.footprint_bytes) *
                       j.spec.dirty_fraction * size_factor(j)));
}

double FleetScheduler::w_star(const JobState& j) const {
  // Width scales the failure exposure: more nodes, proportionally more
  // strikes — the interval tightens as sqrt(1/factor) on a grow.
  return std::clamp(
      std::sqrt(2.0 * j.pred_drain_s /
                (config_.lambda_total * size_factor(j))),
      config_.min_interval_s, config_.max_interval_s);
}

void FleetScheduler::sync_width(JobState& j, double at,
                                std::vector<Action>& out) const {
  const auto& rs = j.spec.resizes;
  std::size_t applied = 0;
  while (applied < rs.size() && j.progress >= rs[applied].at_progress - 1e-9) {
    ++applied;
  }
  if (applied == j.resizes_applied) return;
  while (j.resizes_applied != applied) {
    if (j.resizes_applied < applied) {
      ++j.resizes_applied;
      ++j.stats.resizes;
    } else {
      // A failure rewound progress below the boundary: the width reverts;
      // re-treading the boundary re-fires the resize.
      --j.resizes_applied;
    }
    out.push_back({at, j.spec.job_id, j.round_seq++, ActionKind::kResize, 0,
                   0, false, 0, size_factor(j)});
  }
  // The stream of strikes is a pure function of (seed, job, width epoch):
  // identical re-treads see identical failures regardless of sharding.
  j.failures = sim::JobFailureProcess(
      failure::FailureSpec::from_total(config_.lambda_total * size_factor(j)),
      config_.seed ^ (0x9E3779B97F4A7C15ULL * std::uint64_t(j.resizes_applied)),
      j.spec.job_id);
  j.next_failure = j.failures.next_after(at);
  // Re-plan the work span at the new width immediately — the post-resize
  // exposure and delta size make the previous schedule stale.
  j.next_ckpt = at + w_star(j);
}

void FleetScheduler::mix(std::uint64_t v) {
  digest_ ^= v;
  digest_ *= 0x100000001b3ULL;  // FNV-1a prime
}

void FleetScheduler::activate(const workload::FleetJobSpec& spec,
                              double start) {
  AIC_CHECK_MSG(index_.count(spec.job_id) == 0,
                "duplicate fleet job id " << spec.job_id);
  jobs_.emplace_back(
      spec, sim::JobFailureProcess(
                failure::FailureSpec::from_total(config_.lambda_total),
                config_.seed, spec.job_id));
  JobState& j = jobs_.back();
  j.active = true;
  j.rewind = ckpt::RewindWindow(config_.rewind_budget);
  j.admission_wait_s = std::max(0.0, start - spec.arrival_s);
  j.stats.start_time = start;
  j.next_failure = j.failures.next_after(start);
  // Initial drain prediction: the delta alone at full channel bandwidth —
  // optimistic on a contended fleet; the EWMA corrects within a few
  // commits.
  j.pred_drain_s = config_.latency_s +
                   double(delta_bytes(j)) / config_.bandwidth_bps;
  j.next_ckpt = start + w_star(j);
  index_[spec.job_id] = jobs_.size() - 1;
  if (m_admitted_) m_admitted_->add();
  if (config_.obs) {
    config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                               on::kEvAdmit, start,
                               std::uint32_t(spec.tenant),
                               {{"job", double(spec.job_id)}});
  }
}

void FleetScheduler::admit_arrivals(double t1) {
  while (next_arrival_ < pending_.size() &&
         pending_[next_arrival_].arrival_s < t1) {
    const workload::FleetJobSpec& spec = pending_[next_arrival_];
    const AdmissionDecision d = admission_.offer(spec);
    switch (d) {
      case AdmissionDecision::kAdmitted:
        activate(spec, spec.arrival_s);
        break;
      case AdmissionDecision::kQueued:
        ++queued_offers_;
        if (m_queued_) m_queued_->add();
        if (config_.obs) {
          config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                                     on::kEvQueue, spec.arrival_s,
                                     std::uint32_t(spec.tenant),
                                     {{"job", double(spec.job_id)}});
        }
        break;
      case AdmissionDecision::kRejected:
        ++rejected_jobs_;
        ++tenant_rejected_[spec.tenant];
        if (m_rejected_) m_rejected_->add();
        if (config_.obs) {
          config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                                     on::kEvReject, spec.arrival_s,
                                     std::uint32_t(spec.tenant),
                                     {{"job", double(spec.job_id)}});
        }
        break;
    }
    ++next_arrival_;
  }
}

void FleetScheduler::job_round(JobState& j, double t0, double t1,
                               std::vector<Action>& out) const {
  j.round_seq = 0;
  if (!j.active || j.finished) return;
  double cursor = std::max(t0, j.stats.start_time);
  if (cursor >= t1) return;

  // A resume owed from a restart that ended exactly on (or before) the
  // round boundary: the busy-end event fell outside the previous round's
  // half-open window, so it is honored here.
  if (j.drain_interrupted && j.busy_until <= cursor) {
    out.push_back({cursor, j.spec.job_id, j.round_seq++,
                   ActionKind::kResume, 0, 0, false, 0});
    j.drain_interrupted = false;
  }

  while (cursor < t1) {
    const bool busy = j.busy_until > cursor;
    const double e_busy = busy ? j.busy_until : kInf;
    const double e_fail = j.next_failure.time;
    const double e_work = busy ? kInf : cursor + (j.spec.work_s - j.progress);
    const double e_ckpt = (!busy && !j.drain_outstanding)
                              ? std::max(j.next_ckpt, cursor)
                              : kInf;
    // Next elastic boundary, mapped from progress-space to the timeline
    // (work advances 1:1 with time while not busy). Legs stop AT the
    // boundary, so progress never silently overshoots a pending resize.
    const double e_resize =
        (!busy && j.resizes_applied < j.spec.resizes.size())
            ? cursor +
                  std::max(0.0, j.spec.resizes[j.resizes_applied].at_progress -
                                    j.progress)
            : kInf;
    double t = std::min(std::min(std::min(e_busy, e_fail),
                                 std::min(e_work, e_ckpt)),
                        e_resize);
    if (t > t1) t = t1;
    if (!busy) j.progress += t - cursor;
    cursor = t;
    if (cursor >= t1) break;

    if (e_busy <= t) {
      // Restart downtime (or a capture pause) ended; a drain interrupted
      // by the failure resumes now.
      if (j.drain_interrupted) {
        out.push_back({cursor, j.spec.job_id, j.round_seq++,
                       ActionKind::kResume, 0, 0, false, 0});
        j.drain_interrupted = false;
      }
      continue;
    }
    if (e_fail <= t) {
      const int level = j.next_failure.level;
      ++j.stats.failures;
      j.stats.rework_s += std::max(0.0, j.progress - j.safe_progress);
      // Deterministic re-execution: the job rewinds to its last *safe*
      // (committed) state. An in-flight drain still covers a valid future
      // state of the recompute, so it keeps draining (level 1) or resumes
      // after the restart (level >= 2 loses the node's streams).
      j.progress = std::min(j.progress, j.safe_progress);
      j.busy_until = cursor + config_.restart_s;
      if (level >= 2 && j.drain_outstanding) j.drain_interrupted = true;
      out.push_back({cursor, j.spec.job_id, j.round_seq++,
                     ActionKind::kFailure, 0, 0, false, level});
      j.next_failure = j.failures.next_after(cursor);
      // The rewind may have crossed back below an elastic boundary; if so
      // the width (and with it the failure stream just drawn) reverts.
      sync_width(j, cursor, out);
      continue;
    }
    if (e_work <= t) {
      j.finished = true;
      j.stats.finish_time = cursor;
      out.push_back({cursor, j.spec.job_id, j.round_seq++,
                     ActionKind::kFinish, 0, 0, false, 0});
      break;
    }
    if (e_resize <= t) {
      sync_width(j, cursor, out);
      continue;
    }
    // Capture: pause for the copy, hand the bytes to the drain engine.
    const bool full =
        j.force_full || j.ckpt_seq % std::uint64_t(config_.full_every) == 0;
    const std::uint64_t bytes =
        full ? std::max<std::uint64_t>(
                   1, std::uint64_t(double(j.spec.footprint_bytes) *
                                    size_factor(j)))
             : delta_bytes(j);
    j.force_full = false;
    j.drain_outstanding = true;
    j.drain_interrupted = false;
    j.drain_capture_time = cursor;
    j.drain_progress = j.progress;
    ++j.ckpt_seq;
    ++j.stats.checkpoints;
    if (full) ++j.stats.fulls;
    j.busy_until = cursor + double(bytes) / config_.capture_bps;
    out.push_back({cursor, j.spec.job_id, j.round_seq++,
                   ActionKind::kCapture, bytes, j.ckpt_seq, full, 0});
  }
}

void FleetScheduler::apply_actions(const std::vector<Action>& merged) {
  for (const Action& a : merged) {
    mix(std::bit_cast<std::uint64_t>(a.time));
    mix(a.job);
    mix((std::uint64_t(a.seq) << 8) | std::uint64_t(a.kind));
    mix(a.bytes);
    if (a.kind == ActionKind::kResize) {
      mix(std::bit_cast<std::uint64_t>(a.factor));
    }
    sched_.run_until(a.time);
    JobState& j = jobs_[index_.at(a.job)];
    switch (a.kind) {
      case ActionKind::kCapture: {
        std::string key = "j";
        key += std::to_string(a.job);
        key += "/c";
        key += std::to_string(a.ckpt);
        std::uint64_t cid = 0;
        if (obs::CausalLog* log = causal_log()) {
          // One causal chain per checkpoint, opened at capture start; the
          // drain engine adds the queue/wire/backoff/stall segments and
          // closes the chain at commit (or abort), so total == time-to-safe.
          cid = log->open(key, j.spec.tenant, a.time);
          log->add(cid, obs::CausalSegment::kCapture,
                   double(a.bytes) / config_.capture_bps);
          if (j.admission_wait_s > 0.0) {
            // Arrival -> activation wait, charged once to the job's first
            // chain: that checkpoint is the first state made safe, so the
            // admission queue genuinely delayed it.
            log->add(cid, obs::CausalSegment::kAdmissionQueue,
                     j.admission_wait_s);
            j.admission_wait_s = 0.0;
          }
        }
        j.drain_id = sched_.submit_sized(kDrainLevel, std::move(key), a.bytes,
                                         j.spec.tenant);
        if (cid != 0) sched_.annotate(j.drain_id, cid);
        if (m_checkpoints_) m_checkpoints_->add();
        break;
      }
      case ActionKind::kFailure:
        if (m_failures_) m_failures_->add();
        if (config_.obs) {
          config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                                     on::kEvFailure, a.time,
                                     std::uint32_t(j.spec.tenant),
                                     {{"job", double(a.job)},
                                      {"level", double(a.fail_level)}});
        }
        if (a.fail_level >= 2 && j.drain_id != 0) {
          if (sched_.interrupt(j.drain_id)) ++j.stats.interrupts;
        }
        break;
      case ActionKind::kResume:
        if (j.drain_id != 0 && sched_.resume(j.drain_id)) ++j.stats.resumes;
        break;
      case ActionKind::kFinish:
        if (config_.obs) {
          config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                                     on::kEvJobFinish, a.time,
                                     std::uint32_t(j.spec.tenant),
                                     {{"job", double(a.job)}});
        }
        break;
      case ActionKind::kResize:
        // Re-price the job's reserved drain demand at its new width — the
        // fix for the head-room leak a grown job's release used to cause.
        admission_.resize(j.spec, a.factor);
        if (m_resizes_) m_resizes_->add();
        if (config_.obs) {
          config_.obs->trace.instant(obs::TimeDomain::kVirtual, on::kCatFleet,
                                     on::kEvResize, a.time,
                                     std::uint32_t(j.spec.tenant),
                                     {{"job", double(a.job)},
                                      {"factor", a.factor}});
        }
        break;
    }
  }
}

void FleetScheduler::boundary(double t1) {
  for (JobState& j : jobs_) {
    if (!j.active || j.drain_id == 0) continue;
    const xfer::TransferRecord& rec = sched_.record(j.drain_id);
    if (rec.state == xfer::TransferState::kCommitted) {
      const double tts = rec.commit_time - j.drain_capture_time;
      const double observed = rec.commit_time - rec.submit_time;
      j.pred_drain_s = config_.ewma_alpha * observed +
                       (1.0 - config_.ewma_alpha) * j.pred_drain_s;
      j.safe_progress = std::max(j.safe_progress, j.drain_progress);
      // Retention: the committed checkpoint enters the job's rewind
      // window; overflow picks the era-ladder victim, whose bytes leave
      // the fleet's retained-storage account (digest-covered so a
      // retention divergence breaks shard-determinism loudly). Recovery
      // only ever rewinds to the NEWEST commit (safe_progress), which the
      // schedule never discards.
      if (j.rewind.active()) {
        const auto victim =
            j.rewind.admit(j.ckpt_seq, rec.commit_time, rec.total_bytes);
        if (victim) {
          mix(victim->sequence);
          mix(victim->bytes);
        }
      }
      ++j.stats.commits;
      j.stats.committed_bytes += rec.total_bytes;
      j.stats.net2_bytes += rec.stats.bytes_acked + rec.stats.bytes_wasted;
      j.stats.tts_sum_s += tts;
      tts_samples_.push_back(tts);
      tenant_tts_[j.spec.tenant].push_back(tts);
      mix(std::bit_cast<std::uint64_t>(rec.commit_time));
      mix(j.spec.job_id);
      if (m_commits_) m_commits_->add();
      if (m_net2_) {
        m_net2_->add(rec.stats.bytes_acked + rec.stats.bytes_wasted);
      }
      if (m_tts_) m_tts_->observe(tts);
      if (config_.obs) {
        TenantObs& t = tenant_obs(j.spec.tenant);
        ++t.commits_n;
        t.net2_bytes += rec.stats.bytes_acked + rec.stats.bytes_wasted;
        t.committed_bytes += rec.total_bytes;
        t.tts->observe(tts);
        committed_bytes_total_ += rec.total_bytes;
      }
      sched_.discard(j.drain_id);
      j.drain_id = 0;
      j.drain_outstanding = false;
      j.drain_interrupted = false;
      if (!j.finished) j.next_ckpt = t1 + w_star(j);
    } else if (rec.state == xfer::TransferState::kAborted) {
      ++j.stats.aborts;
      j.stats.net2_bytes += rec.stats.bytes_acked + rec.stats.bytes_wasted;
      if (m_net2_) {
        m_net2_->add(rec.stats.bytes_acked + rec.stats.bytes_wasted);
      }
      if (config_.obs) {
        tenant_obs(j.spec.tenant).net2_bytes +=
            rec.stats.bytes_acked + rec.stats.bytes_wasted;
      }
      sched_.discard(j.drain_id);
      j.drain_id = 0;
      j.drain_outstanding = false;
      j.drain_interrupted = false;
      // The staged partial is gone; the next capture must be
      // self-contained.
      j.force_full = true;
      if (!j.finished) j.next_ckpt = t1;
    }
  }
  for (JobState& j : jobs_) {
    if (j.active && j.finished && !j.released && j.drain_id == 0) {
      j.released = true;
      ++finished_jobs_;
      admission_.release(j.spec);
      if (m_finished_) m_finished_->add();
      if (config_.obs) ++tenant_obs(j.spec.tenant).jobs_finished;
    }
  }
  for (const workload::FleetJobSpec& spec : admission_.drain_queue()) {
    activate(spec, t1);
  }
}

void FleetScheduler::round_telemetry(double t1) {
  if (config_.obs == nullptr) return;
  if (t1 > 0.0) g_goodput_->set(double(committed_bytes_total_) / t1);
  for (auto& [tenant, t] : tenant_obs_) {
    if (t1 > 0.0) t.goodput->set(double(t.committed_bytes) / t1);
    t.net2->set(double(t.net2_bytes));
    t.commits->set(double(t.commits_n));
    t.finished->set(double(t.jobs_finished));
  }
  if (obs::Telemetry* tel = config_.obs->telemetry()) tel->tick(t1);
}

void FleetScheduler::run() {
  const std::size_t shards = std::size_t(config_.shards);
  std::unique_ptr<common::ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<common::ThreadPool>(unsigned(shards));
  }
  std::vector<std::vector<Action>> shard_actions(shards);
  std::vector<Action> merged;
  while (!finished() && now_ < config_.max_virtual_s) {
    const double t0 = now_;
    const double t1 = t0 + config_.quantum_s;
    admit_arrivals(t1);

    for (auto& v : shard_actions) v.clear();
    if (pool) {
      for (std::size_t s = 0; s < shards; ++s) {
        pool->run([this, s, shards, t0, t1, &shard_actions] {
          for (std::size_t i = s; i < jobs_.size(); i += shards) {
            job_round(jobs_[i], t0, t1, shard_actions[s]);
          }
        });
      }
      pool->wait_idle();
    } else {
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        job_round(jobs_[i], t0, t1, shard_actions[0]);
      }
    }

    merged.clear();
    for (const auto& v : shard_actions) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Action& a, const Action& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.job != b.job) return a.job < b.job;
                return a.seq < b.seq;
              });
    apply_actions(merged);
    sched_.run_until(t1);
    boundary(t1);
    round_telemetry(t1);
    now_ = t1;
  }
  if (config_.obs) export_metrics(report());
}

bool FleetScheduler::finished() const {
  return next_arrival_ >= pending_.size() && admission_.queued() == 0 &&
         finished_jobs_ == jobs_.size();
}

const JobStats& FleetScheduler::job_stats(std::uint64_t job_id) const {
  auto it = index_.find(job_id);
  AIC_CHECK_MSG(it != index_.end(), "unknown fleet job " << job_id);
  return jobs_[it->second].stats;
}

FleetReport FleetScheduler::report() const {
  FleetReport r;
  r.elapsed_s = now_;
  r.complete = finished();
  r.jobs = pending_.size();
  r.admitted = admission_.admitted_total();
  r.queued = queued_offers_;
  r.rejected = rejected_jobs_;
  r.finished = finished_jobs_;
  r.digest = digest_;

  for (const auto& spec : pending_) {
    ++r.tenants[spec.tenant].jobs;
  }
  for (const auto& [tenant, n] : tenant_rejected_) {
    r.tenants[tenant].jobs_rejected = n;
  }
  for (const JobState& j : jobs_) {
    TenantStats& t = r.tenants[j.spec.tenant];
    ++t.jobs_admitted;
    t.jobs_finished += j.released ? 1 : 0;
    t.checkpoints += j.stats.checkpoints;
    t.commits += j.stats.commits;
    t.failures += j.stats.failures;
    t.net2_bytes += j.stats.net2_bytes;
    t.committed_bytes += j.stats.committed_bytes;
    t.rework_s += j.stats.rework_s;
    t.tts_sum_s += j.stats.tts_sum_s;
    r.checkpoints += j.stats.checkpoints;
    r.commits += j.stats.commits;
    r.failures += j.stats.failures;
    r.net2_bytes += j.stats.net2_bytes;
    r.committed_bytes += j.stats.committed_bytes;
    r.rework_s += j.stats.rework_s;
    r.resizes += j.stats.resizes;
    if (j.rewind.active()) {
      r.rewind_discards += j.rewind.discards();
      r.rewind_live_bytes += j.rewind.live_bytes();
      if (j.rewind.size() > 0) {
        r.rewind_max_gap_s = std::max(r.rewind_max_gap_s,
                                      j.rewind.max_gap(now_));
        r.rewind_gap_bound_s = std::max(r.rewind_gap_bound_s,
                                        j.rewind.gap_bound(now_));
      }
    }
  }
  if (r.elapsed_s > 0.0) {
    r.goodput_bps = double(r.committed_bytes) / r.elapsed_s;
    for (auto& [tenant, t] : r.tenants) {
      t.goodput_bps = double(t.committed_bytes) / r.elapsed_s;
    }
  }
  if (!tts_samples_.empty()) {
    double sum = 0.0;
    for (const double s : tts_samples_) sum += s;
    r.tts_mean_s = sum / double(tts_samples_.size());
    r.tts_p50_s = percentile(tts_samples_, 0.50);
    r.tts_p99_s = percentile(tts_samples_, 0.99);
  }
  for (const auto& [tenant, samples] : tenant_tts_) {
    r.tenants[tenant].tts_p99_s = percentile(samples, 0.99);
  }
  return r;
}

void FleetScheduler::export_metrics(const FleetReport& r) const {
  auto& m = config_.obs->metrics;
  m.gauge(on::kFleetGoodputBps)->set(r.goodput_bps);
  m.gauge(on::kFleetReworkSeconds)->set(r.rework_s);
  if (config_.rewind_budget > 0) {
    m.gauge(on::kFleetRewindLiveBytes)->set(double(r.rewind_live_bytes));
    m.gauge(on::kFleetRewindDiscards)->set(double(r.rewind_discards));
    m.gauge(on::kFleetRewindMaxGapSeconds)->set(r.rewind_max_gap_s);
    m.gauge(on::kFleetRewindGapBoundSeconds)->set(r.rewind_gap_bound_s);
  }
  for (const auto& [tenant, t] : r.tenants) {
    m.gauge(on::tenant_metric(tenant, on::kTenantGoodputBps))
        ->set(t.goodput_bps);
    m.gauge(on::tenant_metric(tenant, on::kTenantNet2Bytes))
        ->set(double(t.net2_bytes));
    m.gauge(on::tenant_metric(tenant, on::kTenantCommits))
        ->set(double(t.commits));
    m.gauge(on::tenant_metric(tenant, on::kTenantJobsFinished))
        ->set(double(t.jobs_finished));
    m.gauge(on::tenant_metric(tenant, on::kTenantTimeToSafeP99))
        ->set(t.tts_p99_s);
  }
}

}  // namespace aic::fleet
