#include "fleet/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::fleet {
namespace on = obs::names;

const char* to_string(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmitted:
      return "admitted";
    case AdmissionDecision::kQueued:
      return "queued";
    case AdmissionDecision::kRejected:
      return "rejected";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  AIC_CHECK_MSG(std::isfinite(config.capacity_bps) && config.capacity_bps > 0.0,
                "admission capacity must be positive, got "
                    << config.capacity_bps);
  AIC_CHECK_MSG(
      config.target_utilization > 0.0 && config.target_utilization <= 1.0,
      "target utilization must be in (0, 1], got "
          << config.target_utilization);
  AIC_CHECK_MSG(config.lambda_total > 0.0,
                "admission lambda must be positive, got "
                    << config.lambda_total);
  AIC_CHECK_MSG(config.min_interval_s > 0.0 &&
                    config.max_interval_s >= config.min_interval_s,
                "bad interval clamp [" << config.min_interval_s << ", "
                                       << config.max_interval_s << "]");
}

double AdmissionController::demand_bps(
    const workload::FleetJobSpec& job) const {
  return demand_bps(job, 1.0);
}

double AdmissionController::demand_bps(const workload::FleetJobSpec& job,
                                       double factor) const {
  const double delta_bytes = std::max(
      1.0, double(job.footprint_bytes) * job.dirty_fraction * factor);
  const double drain_s = delta_bytes / config_.capacity_bps;
  const double w_star =
      std::clamp(std::sqrt(2.0 * drain_s / (config_.lambda_total * factor)),
                 config_.min_interval_s, config_.max_interval_s);
  return delta_bytes / w_star;
}

double AdmissionController::width_factor(std::uint64_t job_id) const {
  auto it = factors_.find(job_id);
  return it == factors_.end() ? 1.0 : it->second;
}

void AdmissionController::resize(const workload::FleetJobSpec& job,
                                 double factor) {
  AIC_CHECK_MSG(std::isfinite(factor) && factor > 0.0,
                "resize factor must be positive, got " << factor);
  const double previous = width_factor(job.job_id);
  admitted_demand_bps_ =
      std::max(0.0, admitted_demand_bps_ + demand_bps(job, factor) -
                        demand_bps(job, previous));
  if (factor == 1.0) {
    factors_.erase(job.job_id);
  } else {
    factors_[job.job_id] = factor;
  }
  update_gauges();
}

void AdmissionController::set_obs(obs::Hub* hub) {
  if (hub == nullptr) {
    g_demand_ = g_budget_ = g_queue_ = nullptr;
    return;
  }
  g_demand_ = hub->metrics.gauge(on::kFleetAdmissionDemandBps);
  g_budget_ = hub->metrics.gauge(on::kFleetAdmissionBudgetBps);
  g_queue_ = hub->metrics.gauge(on::kFleetAdmissionQueueDepth);
  update_gauges();
}

void AdmissionController::update_gauges() {
  if (g_demand_ == nullptr) return;
  g_demand_->set(admitted_demand_bps_);
  g_budget_->set(budget_bps());
  g_queue_->set(double(queue_.size()));
}

bool AdmissionController::fits(double demand) const {
  return admitted_demand_bps_ + demand <= budget_bps();
}

AdmissionDecision AdmissionController::offer(
    const workload::FleetJobSpec& job) {
  const double demand = demand_bps(job);
  // A job whose demand exceeds the whole budget can never be admitted;
  // queueing it would wedge the FIFO forever. Reject it outright.
  if (demand > budget_bps()) {
    ++rejected_total_;
    return AdmissionDecision::kRejected;
  }
  // Admission is strictly FIFO across the queue: a new offer may not jump
  // ahead of jobs already waiting.
  if (queue_.empty() && fits(demand)) {
    admitted_demand_bps_ += demand;
    ++admitted_total_;
    update_gauges();
    return AdmissionDecision::kAdmitted;
  }
  if (queue_.size() < config_.queue_capacity) {
    queue_.push_back(job);
    ++queued_total_;
    update_gauges();
    return AdmissionDecision::kQueued;
  }
  ++rejected_total_;
  return AdmissionDecision::kRejected;
}

void AdmissionController::release(const workload::FleetJobSpec& job) {
  const double factor = width_factor(job.job_id);
  factors_.erase(job.job_id);
  admitted_demand_bps_ =
      std::max(0.0, admitted_demand_bps_ - demand_bps(job, factor));
  update_gauges();
}

std::vector<workload::FleetJobSpec> AdmissionController::drain_queue() {
  std::vector<workload::FleetJobSpec> promoted;
  while (!queue_.empty()) {
    const double demand = demand_bps(queue_.front());
    if (!fits(demand)) break;
    admitted_demand_bps_ += demand;
    ++admitted_total_;
    promoted.push_back(queue_.front());
    queue_.pop_front();
  }
  if (!promoted.empty()) update_gauges();
  return promoted;
}

}  // namespace aic::fleet
