// Tenant identity and per-tenant accounting for the fleet service.
//
// A tenant is a paying customer of the multi-tenant checkpoint fleet: it
// owns a slice of the job population and a QoS contract on the shared
// drain channel (xfer::TenantQos — a hard bandwidth reservation and/or a
// weight in the best-effort residual pool). TenantStats is the per-tenant
// cut of everything the fleet measures; FleetScheduler fills one per
// tenant and mirrors the fields into obs metrics under
// `fleet.tenant.<id>.*` (obs::names::tenant_metric).
#pragma once

#include <cstdint>
#include <string>

#include "xfer/transfer.h"

namespace aic::fleet {

struct Tenant {
  std::uint64_t id = 0;
  std::string name;
  xfer::TenantQos qos;
};

struct TenantStats {
  std::uint64_t jobs = 0;           // jobs offered (admitted + queued + rejected)
  std::uint64_t jobs_admitted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_finished = 0;
  std::uint64_t checkpoints = 0;    // captures taken
  std::uint64_t commits = 0;        // drains landed safe
  std::uint64_t failures = 0;
  /// Bytes this tenant's drains put on the shared channel (acked + wasted)
  /// — the tenant's share of the fleet's NET² overhead.
  std::uint64_t net2_bytes = 0;
  /// Committed checkpoint bytes (the numerator of goodput).
  std::uint64_t committed_bytes = 0;
  /// Work lost to failure rewinds (virtual seconds).
  double rework_s = 0.0;
  /// Time-to-safe (capture -> commit) distribution, virtual seconds.
  double tts_sum_s = 0.0;
  double tts_p99_s = 0.0;
  /// Committed bytes / fleet elapsed time.
  double goodput_bps = 0.0;
};

}  // namespace aic::fleet
