#include "fleet/qos_policy.h"

#include <cmath>

#include "common/check.h"

namespace aic::fleet {

void QosPolicy::set(Tenant tenant) {
  AIC_CHECK_MSG(std::isfinite(tenant.qos.weight) && tenant.qos.weight > 0.0,
                "tenant " << tenant.id << " weight must be positive, got "
                          << tenant.qos.weight);
  AIC_CHECK_MSG(
      std::isfinite(tenant.qos.reserved_bps) && tenant.qos.reserved_bps >= 0.0,
      "tenant " << tenant.id << " reservation must be non-negative, got "
                << tenant.qos.reserved_bps);
  tenants_[tenant.id] = std::move(tenant);
}

xfer::TenantQos QosPolicy::qos_for(std::uint64_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? xfer::TenantQos{} : it->second.qos;
}

double QosPolicy::reserved_total_bps() const {
  double total = 0.0;
  for (const auto& [id, t] : tenants_) total += t.qos.reserved_bps;
  return total;
}

void QosPolicy::apply(xfer::TransferScheduler& sched, int level) const {
  for (const auto& [id, t] : tenants_) {
    sched.set_tenant_qos(level, id, t.qos);
  }
}

}  // namespace aic::fleet
