// QosPolicy — the fleet's tenant QoS table, validated and applied as one
// unit to the transfer engine.
//
// The policy is declarative: register every tenant with its contract, then
// apply() installs the table on a TransferScheduler level. Validation is
// two-stage — set() rejects malformed single entries (CheckError), and
// apply() surfaces the transfer engine's aggregate check (ReservationError
// when the reservations oversubscribe the channel) *before* any job has
// drained, so a misconfigured fleet fails at startup rather than starving
// tenants at runtime.
#pragma once

#include <cstdint>
#include <map>

#include "fleet/tenant.h"
#include "xfer/scheduler.h"

namespace aic::fleet {

class QosPolicy {
 public:
  /// Registers (or replaces) a tenant. Weight must be positive and finite,
  /// the reservation non-negative and finite (CheckError otherwise).
  void set(Tenant tenant);

  /// The tenant's contract; unregistered tenants are best-effort
  /// weight-1.0 (the transfer engine's default).
  xfer::TenantQos qos_for(std::uint64_t tenant) const;

  const std::map<std::uint64_t, Tenant>& tenants() const { return tenants_; }

  /// Sum of all hard reservations (bps).
  double reserved_total_bps() const;

  /// Installs every registered tenant on `level` of `sched`. Propagates
  /// xfer::ReservationError when the aggregate oversubscribes the
  /// channel; entries applied before the failing one remain installed, so
  /// callers should treat the scheduler as poisoned on throw.
  void apply(xfer::TransferScheduler& sched, int level) const;

 private:
  std::map<std::uint64_t, Tenant> tenants_;
};

}  // namespace aic::fleet
