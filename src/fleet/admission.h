// AdmissionController — bounds the fleet's aggregate drain demand.
//
// Every admitted job imposes a steady-state load on the shared L2/L3
// channel: roughly one delta checkpoint of `footprint * dirty_fraction`
// bytes per optimal interval w*. The controller estimates that demand per
// job (demand_bps) with the same Young/Daly-style w* the per-job decider
// converges to, and admits a job only while
//
//     sum(admitted demand) + demand(job) <= target_utilization * capacity
//
// — the head-room guard that keeps the channel out of the congestion
// regime where every tenant's NET² blows up together. Jobs that do not
// fit are queued FIFO (up to queue_capacity) and promoted as admitted
// jobs finish; past the queue bound they are rejected outright. Both
// outcomes are first-class (AdmissionDecision), not errors: a fleet at
// capacity is operating correctly.
//
// Determinism: decisions depend only on the offer sequence — no clocks,
// no randomness — so a fleet replays byte-identically under any shard
// count as long as offers arrive in a deterministic order (FleetScheduler
// offers at round boundaries, sorted by arrival then job id).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "workload/lanl_trace.h"

namespace aic::obs {
class Gauge;
struct Hub;
}  // namespace aic::obs

namespace aic::fleet {

struct AdmissionConfig {
  /// Drain-channel capacity the fleet shares (bps).
  double capacity_bps = 1.0e9;
  /// Fraction of capacity the steady-state demand may fill; the rest is
  /// head-room for drain bursts and retry traffic.
  double target_utilization = 0.7;
  /// FIFO backlog bound; offers past it are rejected.
  std::size_t queue_capacity = 64;
  /// Per-job failure rate (all levels) used in the w* demand estimate.
  double lambda_total = 1.0e-3;
  /// Clamp on the estimated checkpoint interval (seconds).
  double min_interval_s = 30.0;
  double max_interval_s = 3600.0;
};

enum class AdmissionDecision : std::uint8_t {
  kAdmitted = 0,
  kQueued,
  kRejected,
};

const char* to_string(AdmissionDecision d);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Estimated steady-state drain demand of one job (bps): one delta of
  /// footprint * dirty_fraction bytes per estimated interval w*, where
  /// w* = sqrt(2 * drain_time / lambda) clamped to the config's interval
  /// bounds (drain_time estimated at full channel bandwidth — optimistic,
  /// hence the utilization head-room).
  double demand_bps(const workload::FleetJobSpec& job) const;

  /// Demand of the job running at `factor` times its base width: the delta
  /// scales with the footprint and the failure exposure scales the interval
  /// (lambda * factor in w*).
  double demand_bps(const workload::FleetJobSpec& job, double factor) const;

  /// Offers a job for admission. kAdmitted reserves its demand
  /// immediately; kQueued parks it (promote via drain_queue()); kRejected
  /// drops it — the queue is full, or the job's demand alone exceeds the
  /// budget and could never be admitted.
  AdmissionDecision offer(const workload::FleetJobSpec& job);

  /// Re-prices an admitted job after an elastic reconfiguration to
  /// `factor` times its base width: the reserved demand moves by the
  /// difference between the new-width and previous-width estimates, and
  /// release() will subtract the *current*-width demand — without this a
  /// grown job's release leaks reserved head-room forever (and a shrunk
  /// job's release over-frees it).
  void resize(const workload::FleetJobSpec& job, double factor);

  /// Releases a finished (or evicted) admitted job's demand at its
  /// current width.
  void release(const workload::FleetJobSpec& job);

  /// Promotes queued jobs FIFO while their demand fits, returning the
  /// newly admitted specs in queue order. Strict FIFO: promotion stops at
  /// the first job that does not fit, even if a later, smaller one would
  /// (no starvation of large jobs).
  std::vector<workload::FleetJobSpec> drain_queue();

  double admitted_demand_bps() const { return admitted_demand_bps_; }
  /// Current width factor of a (resized) job; 1.0 if never resized.
  double width_factor(std::uint64_t job_id) const;
  double budget_bps() const {
    return config_.capacity_bps * config_.target_utilization;
  }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t admitted_total() const { return admitted_total_; }
  std::uint64_t queued_total() const { return queued_total_; }
  std::uint64_t rejected_total() const { return rejected_total_; }

  const AdmissionConfig& config() const { return config_; }

  /// Attaches live head-room gauges (fleet.admission.*) to `hub`: reserved
  /// demand, the utilization budget, and the FIFO depth, refreshed on every
  /// offer / resize / release / promotion. nullptr detaches.
  void set_obs(obs::Hub* hub);

 private:
  bool fits(double demand) const;
  void update_gauges();

  AdmissionConfig config_;
  double admitted_demand_bps_ = 0.0;
  /// job_id -> current width factor for jobs resized off their base
  /// width; erased on release (absent means 1.0).
  std::map<std::uint64_t, double> factors_;
  std::deque<workload::FleetJobSpec> queue_;
  std::uint64_t admitted_total_ = 0;
  std::uint64_t queued_total_ = 0;
  std::uint64_t rejected_total_ = 0;
  obs::Gauge* g_demand_ = nullptr;
  obs::Gauge* g_budget_ = nullptr;
  obs::Gauge* g_queue_ = nullptr;
};

}  // namespace aic::fleet
