// Umbrella header for the AIC library — adaptive incremental checkpointing
// via delta compression for networked multicore systems (reproduction of
// Jangjaimon & Tzeng, IPDPS 2013).
//
// Layers, bottom-up:
//   common/     deterministic RNG, byte streams, statistics, linear algebra
//   mem/        simulated process address space with write-protection
//               dirty tracking (the BLCR/mprotect substitute)
//   delta/      rsync-style delta coding (Xdelta3 stand-in), page-aligned
//               Xdelta3-PA, XOR+RLE baseline
//   ckpt/       checkpoint file format, full/incremental capture, restart
//               replay, chain management with failure rollback
//   xfer/       chunked transfer engine: simulated channels (bandwidth
//               sharing, injectable faults), retry/backoff state machine,
//               staged atomic commits, interrupt/resume of drains
//   storage/    local disk / RAID-5 partner group / remote store models,
//               glued to the transfer engine by MultiLevelStore
//   failure/    per-level exponential failure processes
//   model/      Markov interval models (L1L3, L2L3, L1L2L3), the Moody
//               baseline, NET^2, optimizers (grid + Newton–Raphson)
//   predictor/  JD/DI metrics, hot-page sampling, stepwise regression +
//               online gradient descent
//   workload/   synthetic SPEC CPU2006 memory-mutation kernels
//   control/    the AIC / SIC / Moody experiment runners (Eq. (1) NET^2)
//   sim/        Monte-Carlo chain validation and full-stack failure
//               injection with byte-exact recovery verification
//   trace/      LANL-style usage logs and the idle-core candidate study
//   verify/     checkpoint-chain integrity verification (the aic_fsck
//               engine): typed diagnostics over structural + replay
//               invariants
#pragma once

#include "ckpt/async_checkpointer.h"
#include "ckpt/checkpoint_file.h"
#include "ckpt/checkpointer.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32c.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "control/coordinated.h"
#include "control/cost_model.h"
#include "control/experiment.h"
#include "delta/delta_codec.h"
#include "delta/page_delta.h"
#include "delta/rolling_hash.h"
#include "delta/xdelta3.h"
#include "delta/xor_delta.h"
#include "failure/failure.h"
#include "mem/address_space.h"
#include "mem/snapshot.h"
#include "model/exp_math.h"
#include "model/interval_models.h"
#include "model/markov_chain.h"
#include "model/moody.h"
#include "model/optimizer.h"
#include "model/system_profile.h"
#include "predictor/features.h"
#include "predictor/hot_page_sampler.h"
#include "predictor/metrics.h"
#include "predictor/predictor.h"
#include "predictor/regression.h"
#include "sim/chain_sim.h"
#include "sim/failure_sim.h"
#include "storage/multilevel_store.h"
#include "storage/storage.h"
#include "trace/lanl_trace.h"
#include "verify/chain_verifier.h"
#include "workload/workload.h"
#include "xfer/channel.h"
#include "xfer/scheduler.h"
#include "xfer/staged_sink.h"
#include "xfer/stats.h"
#include "xfer/transfer.h"
