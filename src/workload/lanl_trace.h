// Reusable LANL candidate-job generator (extracted from the Table 1 bench).
//
// Two consumers share this module:
//   * bench/table1_lanl_candidates reproduces Table 1's candidate
//     fractions per system and scheduler policy (run_candidate_study);
//   * bench/fleet_scale and the fleet service (src/fleet/) draw a
//     realistic multi-tenant job mix from the same synthetic logs
//     (lanl_fleet_jobs): only *candidate* jobs — the ones whose every
//     process keeps an idle core for concurrent checkpointing — become
//     fleet tenants' jobs, with footprints, durations, and arrival times
//     derived deterministically from the trace.
//
// Everything here is a pure function of its config (seeded); two calls
// with equal configs return byte-identical results on any host.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/lanl_trace.h"

namespace aic::workload {

/// Candidate fractions for one system under both scheduler policies — the
/// per-row computation of the Table 1 bench, reusable.
struct CandidateStudy {
  trace::SystemConfig system;
  trace::CandidateStats packed;
  trace::CandidateStats rectified;
};

/// Runs the synthetic-log candidate analysis for `system_id` over `days`
/// of arrivals under both the packed and the rectified scheduler.
CandidateStudy run_candidate_study(int system_id, double days,
                                   std::uint64_t seed = 42);

/// One job of a fleet mix: a LANL candidate job rescaled to the fleet's
/// virtual timeline, tagged with the tenant that owns it.
struct FleetJobSpec {
  std::uint64_t job_id = 0;
  /// Owning tenant, in [0, FleetMixConfig::tenants).
  std::uint32_t tenant = 0;
  /// Arrival on the fleet's virtual clock (seconds).
  double arrival_s = 0.0;
  /// Base work the job must execute (virtual seconds).
  double work_s = 0.0;
  /// Checkpointed footprint (bytes), derived from the job's process count.
  std::uint64_t footprint_bytes = 0;
  /// Mean fraction of the footprint dirtied per checkpoint interval.
  double dirty_fraction = 0.1;
  /// Source-trace provenance: LANL system and process count.
  int system_id = 0;
  int processes = 1;
  /// One elastic reconfiguration: when the job's executed work reaches
  /// `at_progress` (virtual seconds, strictly ascending across the list),
  /// its width becomes `factor` × the base — footprint, delta size, and
  /// failure exposure all scale with it. A failure rewind below the
  /// boundary reverts the width; re-treading re-fires it, exactly like
  /// workload::ElasticWorkload.
  struct Resize {
    double at_progress = 0.0;
    double factor = 1.0;
  };
  std::vector<Resize> resizes;
};

struct FleetMixConfig {
  /// Exact number of jobs to emit. The generator cycles the five LANL
  /// systems' candidate populations (fresh seeds per cycle) until filled.
  std::size_t jobs = 100;
  /// Tenants to spread the jobs over (round-robin in trace order).
  std::uint32_t tenants = 4;
  std::uint64_t seed = 1;
  /// Arrivals are spread over [0, arrival_horizon_s) preserving the
  /// trace's relative submit order.
  double arrival_horizon_s = 120.0;
  /// Job work: trace runtime * work_scale, clamped to [min_work_s,
  /// max_work_s] — LANL runtimes are hours-to-days, a fleet bench wants
  /// minutes of virtual time.
  double work_scale = 0.01;
  double min_work_s = 30.0;
  double max_work_s = 600.0;
  /// Footprint: pages per process, jittered ±50% per job.
  std::uint64_t pages_per_process = 2048;
  /// Mean per-interval dirty fraction (lognormal-jittered per job).
  double mean_dirty_fraction = 0.10;
};

/// Deterministic fleet job mix drawn from the LANL candidate population.
/// Jobs are sorted by (arrival_s, job_id); job ids are dense from 1.
std::vector<FleetJobSpec> lanl_fleet_jobs(const FleetMixConfig& config);

}  // namespace aic::workload
