// Synthetic SPEC CPU2006 stand-ins (Section V: bzip2, sjeng, libquantum,
// milc, lbm, sphinx3).
//
// AIC never inspects the computation itself — only the page-level write
// behaviour: how many pages an interval dirties, which ones, how much of
// each page changes, and how those statistics drift over program phases.
// Each synthetic workload reproduces the characteristics the paper reports
// for its benchmark (Table 3 compression ratios / delta latencies, the
// Fig. 2 latency/size swings, and the footprint class), scaled down from
// 1 GiB so experiments run in seconds.
//
// Determinism and restartability: every mutation is a pure function of
// (seed, tick index). Execution advances in fixed ticks; the only mutable
// progress state is the executed virtual time, which rides in the
// checkpoint's CPU-state blob. After a restore, replaying from the stored
// progress over the restored address space reproduces exactly the
// trajectory the original process would have taken — the property the
// restart tests assert.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "mem/address_space.h"

namespace aic::workload {

/// How a dirtied page is mutated.
enum class MutationStyle {
  kSparseEdit,   // overwrite a small random slice (delta-friendly)
  kDenseRandom,  // rewrite the page with random bytes (incompressible)
  kCounter,      // bump a few counters (tiny, highly compressible delta)
  kStream,       // structured numeric stream: mostly new values, some zeros
  kRevert,       // rewrite the page to its canonical content (plus a small
                 // slowly-evolving epoch overlay) — models iterative codes
                 // whose state returns near a consolidated form between
                 // compute bursts; this is what produces Fig. 2's deep
                 // delta-size valleys
};

/// One program phase; phases cycle for the whole run.
struct PhaseSpec {
  double duration = 10.0;             // seconds
  double dirty_pages_per_sec = 50.0;  // page dirtying rate
  double ws_fraction = 0.5;           // working-set size / footprint
  double ws_offset = 0.0;             // working-set start / footprint
  MutationStyle style = MutationStyle::kSparseEdit;
  double edit_fraction = 0.05;        // page fraction for kSparseEdit
  double alloc_pages_per_sec = 0.0;   // heap growth rate
  double free_pages_per_sec = 0.0;    // page release rate
  /// Page selection: false = skewed random over the working set;
  /// true = deterministic sweep (guarantees full coverage — used by
  /// revert/consolidation phases so every perturbed page gets restored).
  bool sweep = false;
  /// Seconds per canonical-content epoch for kRevert (the canonical state
  /// itself drifts slowly at this period).
  double revert_epoch = 60.0;
};

struct WorkloadProfile {
  std::string name;
  double base_time = 100.0;        // paper Table 3 base execution time
  std::uint64_t footprint_pages = 4096;  // initial footprint
  std::vector<PhaseSpec> phases;
  std::uint64_t seed = 1;
  /// Shifts the phase schedule in time — used to stagger the ranks of a
  /// coordinated (MPI) job, whose processes do not hit their cheap
  /// checkpointing moments together.
  double phase_shift = 0.0;
};

/// A running application instance over an AddressSpace.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;
  virtual double base_time() const = 0;

  /// Allocates and fills the initial footprint. Call once on a fresh space.
  virtual void initialize(mem::AddressSpace& space) = 0;

  /// Executes `dt` seconds of application work, mutating `space`.
  virtual void step(mem::AddressSpace& space, double dt) = 0;

  /// Virtual seconds of base work completed so far.
  virtual double progress() const = 0;
  bool finished() const { return progress() >= base_time(); }

  /// Progress counters for the checkpoint's CPU-state blob.
  virtual Bytes cpu_state() const = 0;
  /// Rewinds progress to a checkpointed state (memory comes from the
  /// restored address space, not from here).
  virtual void restore_cpu_state(ByteSpan state) = 0;
};

/// Phase-driven synthetic workload; see file comment for semantics.
class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(WorkloadProfile profile);

  const std::string& name() const override { return profile_.name; }
  double base_time() const override { return profile_.base_time; }
  const WorkloadProfile& profile() const { return profile_; }

  void initialize(mem::AddressSpace& space) override;
  void step(mem::AddressSpace& space, double dt) override;
  double progress() const override { return progress_; }

  Bytes cpu_state() const override;
  void restore_cpu_state(ByteSpan state) override;

  /// Tick granularity (seconds); mutations are batched per tick.
  static constexpr double kTick = 0.1;

 private:
  /// Applies tick `k`'s mutations.
  void run_tick(mem::AddressSpace& space, std::uint64_t k);
  const PhaseSpec& phase_at(double t) const;

  WorkloadProfile profile_;
  double cycle_length_ = 0.0;
  double progress_ = 0.0;
};

/// The six paper benchmarks. `scale` multiplies footprints and page rates
/// together (1.0 ~ 16-64 MiB class footprints; the paper's 1 GiB would be
/// scale ~ 16-64).
enum class SpecBenchmark { kBzip2, kSjeng, kLibquantum, kMilc, kLbm, kSphinx3 };

const char* to_string(SpecBenchmark b);
const std::vector<SpecBenchmark>& all_benchmarks();

WorkloadProfile spec_profile(SpecBenchmark benchmark, double scale = 1.0);
std::unique_ptr<SyntheticWorkload> make_spec_workload(SpecBenchmark benchmark,
                                                      double scale = 1.0);

}  // namespace aic::workload
