#include "workload/workload.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace aic::workload {
namespace {

/// Stateless per-tick RNG: every tick derives an independent stream from
/// (seed, tick), making mutations a pure function of progress.
Rng tick_rng(std::uint64_t seed, std::uint64_t tick) {
  std::uint64_t s = seed ^ (tick * 0x9E3779B97F4A7C15ULL);
  (void)splitmix64(s);
  return Rng(splitmix64(s));
}

/// Events (page mutations, allocations) per tick for a fractional rate:
/// floor(rate*(k+1)*tick) - floor(rate*k*tick) — deterministic and sums to
/// rate * elapsed.
std::uint64_t events_in_tick(double rate_per_sec, std::uint64_t k,
                             double tick) {
  const double a = rate_per_sec * double(k) * tick;
  const double b = rate_per_sec * double(k + 1) * tick;
  return std::uint64_t(std::floor(b)) - std::uint64_t(std::floor(a));
}

struct MutationContext {
  std::uint64_t seed;
  double tick_time;
};

/// Canonical base content of a page: the state iterative codes start from
/// and consolidate back to. initialize() fills every page with it, and
/// MutationStyle::kRevert restores it (plus a slowly-drifting overlay) —
/// so a checkpoint taken at a consolidation boundary differences almost to
/// nothing against one taken at an earlier boundary.
void fill_canonical(std::span<std::uint8_t> b, std::uint64_t seed,
                    mem::PageId id) {
  std::uint64_t s1 = seed ^ (id * 0xA24BAED4963EE407ULL);
  Rng base(splitmix64(s1));
  for (std::size_t i = 0; i + 8 <= b.size(); i += 8) {
    const std::uint64_t word = base() & 0x00FFFFFFFFFFFFFFULL;
    std::memcpy(b.data() + i, &word, 8);
  }
}

void mutate_page(mem::AddressSpace& space, mem::PageId id,
                 const PhaseSpec& phase, const MutationContext& ctx,
                 Rng& rng) {
  switch (phase.style) {
    case MutationStyle::kSparseEdit: {
      const std::size_t len = std::max<std::size_t>(
          1, std::size_t(phase.edit_fraction * double(kPageSize)));
      const std::size_t off = rng.uniform_u64(kPageSize - len + 1);
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (std::size_t i = 0; i < len; ++i)
          b[off + i] = std::uint8_t(rng());
      });
      break;
    }
    case MutationStyle::kDenseRandom:
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (auto& x : b) x = std::uint8_t(rng());
      });
      break;
    case MutationStyle::kCounter:
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        // Bump a handful of 8-byte counters in place.
        for (int c = 0; c < 4; ++c) {
          const std::size_t off = 8 * rng.uniform_u64(kPageSize / 8);
          std::uint64_t v;
          std::memcpy(&v, b.data() + off, 8);
          v += 1 + rng.uniform_u64(16);
          std::memcpy(b.data() + off, &v, 8);
        }
      });
      break;
    case MutationStyle::kStream:
      // Numeric stencil sweep: most bytes become new values, but low-order
      // structure (interleaved zero bytes from small-magnitude doubles)
      // keeps a little compressibility — ratio lands near 0.8-0.9.
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (std::size_t i = 0; i + 8 <= b.size(); i += 8) {
          const std::uint64_t word = rng();
          std::uint64_t masked = word & 0x00FFFFFFFFFFFF00ULL;
          std::memcpy(b.data() + i, &masked, 8);
        }
      });
      break;
    case MutationStyle::kRevert: {
      // Consolidation: the page returns to its canonical content — a fixed
      // per-page base pattern plus a sparse overlay that drifts once per
      // revert_epoch. Checkpoints taken after a consolidation sweep see
      // near-identical pages and compress to almost nothing; checkpoints
      // taken mid-burst see scratch state (Fig. 2's swings).
      const std::uint64_t epoch =
          std::uint64_t(ctx.tick_time / std::max(phase.revert_epoch, 1e-6));
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        fill_canonical(b, ctx.seed, id);
        std::uint64_t s2 = ctx.seed ^ (id * 0xD6E8FEB86659FD93ULL) ^
                           ((epoch + 1) * 0x9E3779B97F4A7C15ULL);
        Rng overlay(splitmix64(s2));
        // The overlay lands as a few contiguous slices (fields updated in
        // place), not scattered single bytes — scattered edits would
        // defeat block-based delta matching and misrepresent what a real
        // consolidated page looks like.
        const std::size_t edit_bytes = std::max<std::size_t>(
            8, std::size_t(phase.edit_fraction * double(kPageSize)));
        const std::size_t slices =
            std::max<std::size_t>(1, std::min<std::size_t>(4, edit_bytes / 64));
        const std::size_t slice_len = edit_bytes / slices;
        for (std::size_t sl = 0; sl < slices; ++sl) {
          const std::size_t off =
              overlay.uniform_u64(kPageSize - slice_len + 1);
          for (std::size_t i = 0; i < slice_len; ++i)
            b[off + i] = std::uint8_t(overlay());
        }
      });
      break;
    }
  }
}

}  // namespace

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile)
    : profile_(std::move(profile)) {
  AIC_CHECK_MSG(!profile_.phases.empty(), "workload needs at least one phase");
  AIC_CHECK(profile_.base_time > 0.0);
  AIC_CHECK(profile_.footprint_pages >= 16);
  for (const PhaseSpec& p : profile_.phases) {
    AIC_CHECK(p.duration > 0.0);
    AIC_CHECK(p.ws_fraction > 0.0 && p.ws_fraction <= 1.0);
    AIC_CHECK(p.ws_offset >= 0.0 && p.ws_offset < 1.0);
    AIC_CHECK(p.edit_fraction > 0.0 && p.edit_fraction <= 1.0);
    cycle_length_ += p.duration;
  }
}

const PhaseSpec& SyntheticWorkload::phase_at(double t) const {
  double pos = std::fmod(t, cycle_length_);
  for (const PhaseSpec& p : profile_.phases) {
    if (pos < p.duration) return p;
    pos -= p.duration;
  }
  return profile_.phases.back();
}

void SyntheticWorkload::initialize(mem::AddressSpace& space) {
  AIC_CHECK_MSG(space.page_count() == 0, "initialize needs a fresh space");
  space.allocate_range(0, profile_.footprint_pages);
  for (mem::PageId id = 0; id < profile_.footprint_pages; ++id) {
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      fill_canonical(b, profile_.seed, id);
    });
  }
}

void SyntheticWorkload::step(mem::AddressSpace& space, double dt) {
  AIC_CHECK(dt >= 0.0);
  const double end = std::min(progress_ + dt, base_time());
  // A tick's mutations are applied atomically when the tick *completes*.
  // Run every tick whose end lies in (progress_, end]; partial ticks wait
  // for a later step.
  std::uint64_t k = std::uint64_t(progress_ / kTick + 1e-9);
  for (;; ++k) {
    const double tick_end = double(k + 1) * kTick;
    if (tick_end > end + 1e-9) break;
    if (tick_end > progress_ + 1e-9) run_tick(space, k);
  }
  progress_ = end;
}

void SyntheticWorkload::run_tick(mem::AddressSpace& space, std::uint64_t k) {
  const double t = double(k) * kTick + profile_.phase_shift;
  const PhaseSpec& phase = phase_at(t);
  Rng rng = tick_rng(profile_.seed, k);
  const MutationContext ctx{profile_.seed, t};

  const std::uint64_t fp = profile_.footprint_pages;
  const auto ws_pages = std::max<std::uint64_t>(
      1, std::uint64_t(phase.ws_fraction * double(fp)));
  const auto ws_start = std::uint64_t(phase.ws_offset * double(fp));

  const std::uint64_t touches =
      events_in_tick(phase.dirty_pages_per_sec, k, kTick);
  // For sweep phases, the event counter continues across ticks so the
  // working set is covered end to end (full-coverage consolidation).
  const std::uint64_t sweep_base = std::uint64_t(
      std::floor(phase.dirty_pages_per_sec * double(k) * kTick));
  for (std::uint64_t i = 0; i < touches; ++i) {
    mem::PageId id;
    if (phase.sweep) {
      id = (ws_start + (sweep_base + i) % ws_pages) % fp;
    } else {
      id = (ws_start + rng.zipf_like(ws_pages, 0.999)) % fp;
    }
    if (!space.contains(id)) space.allocate(id);
    mutate_page(space, id, phase, ctx, rng);
  }

  const std::uint64_t allocs =
      events_in_tick(phase.alloc_pages_per_sec, k, kTick);
  PhaseSpec heap_phase = phase;
  heap_phase.style = MutationStyle::kSparseEdit;
  heap_phase.edit_fraction = 0.25;
  for (std::uint64_t i = 0; i < allocs; ++i) {
    // Heap region beyond the base footprint, bounded to 2x footprint.
    mem::PageId id = fp + rng.uniform_u64(fp);
    if (!space.contains(id)) {
      space.allocate(id);
      mutate_page(space, id, heap_phase, ctx, rng);
    }
  }

  const std::uint64_t frees =
      events_in_tick(phase.free_pages_per_sec, k, kTick);
  for (std::uint64_t i = 0; i < frees; ++i) {
    mem::PageId id = fp + rng.uniform_u64(fp);
    if (space.contains(id)) space.free_page(id);
  }
}

Bytes SyntheticWorkload::cpu_state() const {
  Bytes out;
  ByteWriter w(out);
  w.f64(progress_);
  return out;
}

void SyntheticWorkload::restore_cpu_state(ByteSpan state) {
  ByteReader r(state);
  progress_ = r.f64();
  AIC_CHECK(r.done());
  AIC_CHECK(progress_ >= 0.0 && progress_ <= base_time() + 1e-9);
}

const char* to_string(SpecBenchmark b) {
  switch (b) {
    case SpecBenchmark::kBzip2:
      return "bzip2";
    case SpecBenchmark::kSjeng:
      return "sjeng";
    case SpecBenchmark::kLibquantum:
      return "libquantum";
    case SpecBenchmark::kMilc:
      return "milc";
    case SpecBenchmark::kLbm:
      return "lbm";
    case SpecBenchmark::kSphinx3:
      return "sphinx3";
  }
  return "?";
}

const std::vector<SpecBenchmark>& all_benchmarks() {
  static const std::vector<SpecBenchmark> all = {
      SpecBenchmark::kBzip2, SpecBenchmark::kSjeng,
      SpecBenchmark::kLibquantum, SpecBenchmark::kMilc,
      SpecBenchmark::kLbm, SpecBenchmark::kSphinx3};
  return all;
}

WorkloadProfile spec_profile(SpecBenchmark benchmark, double scale) {
  AIC_CHECK(scale > 0.0);
  WorkloadProfile p;
  p.name = to_string(benchmark);
  auto pages = [&](double base) {
    return std::max<std::uint64_t>(64, std::uint64_t(base * scale));
  };
  auto rate = [&](double base) { return base * scale; };

  // All six benchmarks use the same footprint class (the paper: each fits
  // in 1 GiB, "processor-memory intensive"); they differ in write rate,
  // working-set shape, per-page mutation style, and phase structure. The
  // rates are tuned so a ~10 s interval delta-compresses to the paper's
  // relative sizes (sphinx3 tiny ... milc/lbm huge, barely compressible).
  p.footprint_pages = pages(8192);

  switch (benchmark) {
    case SpecBenchmark::kBzip2:
      // Block compressor: a burst fills a block buffer with compressed
      // output (scratch), emitting consolidates it back to canonical form;
      // a second burst works a different region that never consolidates.
      // Alloc/free churn models block-buffer turnover (Scenario 1).
      p.base_time = 152.0;
      p.seed = 0xB21;
      p.phases = {
          {.duration = 4.0, .dirty_pages_per_sec = rate(55.0),
           .ws_fraction = 0.06, .ws_offset = 0.0,
           .style = MutationStyle::kDenseRandom, .edit_fraction = 1.0,
           .alloc_pages_per_sec = rate(2.0)},
          {.duration = 3.0, .dirty_pages_per_sec = rate(170.0),
           .ws_fraction = 0.06, .ws_offset = 0.0,
           .style = MutationStyle::kRevert, .edit_fraction = 0.05,
           .free_pages_per_sec = rate(2.0), .sweep = true,
           .revert_epoch = 45.0},
          {.duration = 4.0, .dirty_pages_per_sec = rate(40.0),
           .ws_fraction = 0.08, .ws_offset = 0.55,
           .style = MutationStyle::kDenseRandom, .edit_fraction = 1.0},
      };
      break;
    case SpecBenchmark::kSjeng:
      // Game-tree search: long bursts of random transposition-table writes
      // followed by a consolidation sweep (table aging/clearing) that
      // restores most of the region — the paper's poster child for wide
      // delta swings (95% drop between the 32nd and 35th second, Fig. 2).
      p.base_time = 661.0;
      p.seed = 0x53E;
      p.phases = {
          {.duration = 22.0, .dirty_pages_per_sec = rate(120.0),
           .ws_fraction = 0.6, .ws_offset = 0.2,
           .style = MutationStyle::kSparseEdit, .edit_fraction = 0.35},
          {.duration = 11.0, .dirty_pages_per_sec = rate(1800.0),
           .ws_fraction = 0.6, .ws_offset = 0.2,
           .style = MutationStyle::kRevert, .edit_fraction = 0.04,
           .sweep = true, .revert_epoch = 99.0},
      };
      break;
    case SpecBenchmark::kLibquantum:
      // Quantum register simulation: gate sweeps perturb amplitude arrays,
      // periodic renormalization consolidates a portion of them.
      p.base_time = 846.0;
      p.seed = 0x117;
      p.phases = {
          {.duration = 15.0, .dirty_pages_per_sec = rate(60.0),
           .ws_fraction = 0.35, .ws_offset = 0.0,
           .style = MutationStyle::kSparseEdit, .edit_fraction = 0.25},
          {.duration = 8.0, .dirty_pages_per_sec = rate(360.0),
           .ws_fraction = 0.35, .ws_offset = 0.0,
           .style = MutationStyle::kRevert, .edit_fraction = 0.08,
           .sweep = true, .revert_epoch = 69.0},
      };
      break;
    case SpecBenchmark::kMilc:
      // Lattice QCD: conjugate-gradient bursts scribble over most of the
      // field arrays; the accepted configuration is written back at the
      // end of each trajectory. Big deltas, poor compressibility in the
      // bursts — and the largest adaptive win in the paper (Fig. 11).
      p.base_time = 527.0;
      p.seed = 0x3317;
      p.phases = {
          {.duration = 18.0, .dirty_pages_per_sec = rate(180.0),
           .ws_fraction = 0.8, .ws_offset = 0.0,
           .style = MutationStyle::kDenseRandom, .edit_fraction = 1.0},
          {.duration = 6.0, .dirty_pages_per_sec = rate(1100.0),
           .ws_fraction = 0.8, .ws_offset = 0.0,
           .style = MutationStyle::kRevert, .edit_fraction = 0.06,
           .sweep = true, .revert_epoch = 72.0},
      };
      break;
    case SpecBenchmark::kLbm:
      // Lattice-Boltzmann: streaming stencil over nearly the whole
      // footprint — the worst case for delta compression (ratio ~0.9).
      // The end-of-iteration write-back still consolidates with a hefty
      // per-page residual, so the swing exists but is shallower.
      p.base_time = 462.0;
      p.seed = 0x1B;
      p.phases = {
          {.duration = 20.0, .dirty_pages_per_sec = rate(200.0),
           .ws_fraction = 0.95, .ws_offset = 0.0,
           .style = MutationStyle::kStream, .edit_fraction = 1.0},
          {.duration = 6.0, .dirty_pages_per_sec = rate(1300.0),
           .ws_fraction = 0.95, .ws_offset = 0.0,
           .style = MutationStyle::kRevert, .edit_fraction = 0.22,
           .sweep = true, .revert_epoch = 156.0},
      };
      break;
    case SpecBenchmark::kSphinx3:
      // Speech decoding: tiny active working set, counter-style updates —
      // deltas in the tens-of-kilobytes class (half-MB at the paper's
      // 1 GiB scale), latencies far below a second.
      p.base_time = 749.0;
      p.seed = 0x5F1;
      p.phases = {
          {.duration = 12.0, .dirty_pages_per_sec = rate(6.0),
           .ws_fraction = 0.02, .ws_offset = 0.0,
           .style = MutationStyle::kCounter, .edit_fraction = 0.02},
          {.duration = 8.0, .dirty_pages_per_sec = rate(4.0),
           .ws_fraction = 0.012, .ws_offset = 0.03,
           .style = MutationStyle::kSparseEdit, .edit_fraction = 0.03},
      };
      break;
  }
  return p;
}

std::unique_ptr<SyntheticWorkload> make_spec_workload(SpecBenchmark benchmark,
                                                      double scale) {
  return std::make_unique<SyntheticWorkload>(spec_profile(benchmark, scale));
}

}  // namespace aic::workload
