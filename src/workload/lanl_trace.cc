#include "workload/lanl_trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"

namespace aic::workload {

CandidateStudy run_candidate_study(int system_id, double days,
                                   std::uint64_t seed) {
  CandidateStudy study;
  study.system = trace::system_by_id(system_id);

  trace::TraceConfig packed_cfg;
  packed_cfg.days = days;
  packed_cfg.seed = seed;
  packed_cfg.policy = trace::SchedulerPolicy::kPacked;
  trace::TraceConfig rect_cfg = packed_cfg;
  rect_cfg.policy = trace::SchedulerPolicy::kRectified;

  study.packed = trace::analyze_candidates(
      trace::generate_log(study.system, packed_cfg), study.system);
  study.rectified = trace::analyze_candidates(
      trace::generate_log(study.system, rect_cfg), study.system);
  return study;
}

std::vector<FleetJobSpec> lanl_fleet_jobs(const FleetMixConfig& config) {
  AIC_CHECK_MSG(config.jobs > 0, "fleet mix needs at least one job");
  AIC_CHECK_MSG(config.tenants > 0, "fleet mix needs at least one tenant");
  AIC_CHECK(config.arrival_horizon_s > 0.0);
  AIC_CHECK(config.work_scale > 0.0);
  AIC_CHECK(config.min_work_s > 0.0 &&
            config.max_work_s >= config.min_work_s);
  AIC_CHECK(config.pages_per_process > 0);
  AIC_CHECK(config.mean_dirty_fraction > 0.0 &&
            config.mean_dirty_fraction <= 1.0);

  // Harvest candidate jobs from the five systems' rectified logs, cycling
  // with fresh per-cycle seeds until the mix is filled. The rectified
  // policy is the one the paper proposes for hosting AIC, and it yields
  // candidates on every system (the packed scheduler starves System 20).
  struct Raw {
    double submit = 0.0;
    double runtime = 0.0;
    int processes = 1;
    int system_id = 0;
  };
  std::vector<Raw> raws;
  raws.reserve(config.jobs);
  const auto systems = trace::table1_systems();
  // Short windows keep harvesting cheap; candidates accumulate per cycle.
  constexpr double kHarvestDays = 3.0;
  for (std::uint64_t cycle = 0; raws.size() < config.jobs; ++cycle) {
    AIC_CHECK_MSG(cycle < 1000,
                  "LANL harvest stalled: no candidate jobs after "
                      << cycle << " cycles");
    for (const trace::SystemConfig& sys : systems) {
      if (raws.size() >= config.jobs) break;
      trace::TraceConfig tc;
      tc.days = kHarvestDays;
      tc.policy = trace::SchedulerPolicy::kRectified;
      tc.seed = config.seed + cycle * 0x9E3779B9ULL;
      const auto log = trace::generate_log(sys, tc);
      const auto flags = trace::candidate_flags(log, sys);
      for (std::size_t i = 0; i < log.size() && raws.size() < config.jobs;
           ++i) {
        if (!flags[i]) continue;
        Raw raw;
        raw.submit = log[i].submit_time + cycle * kHarvestDays * 86400.0;
        raw.runtime = log[i].runtime();
        raw.processes = log[i].process_count();
        raw.system_id = sys.system_id;
        raws.push_back(raw);
      }
    }
  }

  // Rescale submit order onto the fleet's arrival horizon and derive the
  // per-job shape parameters from a job-indexed RNG (independent of how
  // the harvest was chunked).
  double max_submit = 0.0;
  for (const Raw& raw : raws) max_submit = std::max(max_submit, raw.submit);

  std::vector<FleetJobSpec> jobs;
  jobs.reserve(raws.size());
  std::uint64_t id = 1;
  for (const Raw& raw : raws) {
    std::uint64_t mix = config.seed ^ (id * 0x2545F4914F6CDD1DULL);
    Rng rng(splitmix64(mix));
    FleetJobSpec job;
    job.job_id = id;
    job.tenant = std::uint32_t((id - 1) % config.tenants);
    job.arrival_s = max_submit > 0.0
                        ? raw.submit / max_submit * config.arrival_horizon_s
                        : 0.0;
    job.work_s = std::clamp(raw.runtime * config.work_scale,
                            config.min_work_s, config.max_work_s);
    const double pages_jitter = rng.uniform(0.5, 1.5);
    job.footprint_bytes =
        std::max<std::uint64_t>(1, std::uint64_t(double(raw.processes) *
                                                 double(config.pages_per_process) *
                                                 pages_jitter)) *
        kPageSize;
    // Lognormal-ish jitter around the mean, clamped into (0, 1].
    const double dirty =
        config.mean_dirty_fraction * std::exp(rng.normal(0.0, 0.35));
    job.dirty_fraction = std::clamp(dirty, 0.005, 1.0);
    job.system_id = raw.system_id;
    job.processes = raw.processes;
    jobs.push_back(job);
    ++id;
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const FleetJobSpec& a, const FleetJobSpec& b) {
              if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
              return a.job_id < b.job_id;
            });
  return jobs;
}

}  // namespace aic::workload
