#include "workload/elastic.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace aic::workload {
namespace {

/// Independent deterministic stream for resize `segment`'s migration (and
/// the segment's mutation seed): everything a reconfiguration does to the
/// space is a pure function of (base seed, segment index).
std::uint64_t segment_seed(std::uint64_t base_seed, std::size_t segment) {
  std::uint64_t s = base_seed ^ (std::uint64_t(segment) * 0xBF58476D1CE4E5B9ULL);
  return splitmix64(s);
}

}  // namespace

ElasticWorkload::ElasticWorkload(ElasticProfile profile)
    : profile_(std::move(profile)) {
  AIC_CHECK_MSG(profile_.base_cores >= 1, "elastic job needs >= 1 core");
  AIC_CHECK(profile_.migrate_fraction >= 0.0 &&
            profile_.migrate_fraction <= 1.0);
  double prev = 0.0;
  for (const ResizeEvent& ev : profile_.resizes) {
    AIC_CHECK_MSG(ev.at_progress > prev,
                  "resize events must be strictly ascending in progress");
    AIC_CHECK_MSG(ev.cores >= 1, "resize to zero cores");
    prev = ev.at_progress;
  }
  rebuild_inner(0.0);
}

WorkloadProfile ElasticWorkload::scaled_profile(const ElasticProfile& profile,
                                                std::size_t segment) {
  AIC_CHECK(segment <= profile.resizes.size());
  const std::uint64_t cores =
      segment == 0 ? profile.base_cores : profile.resizes[segment - 1].cores;
  const double f = double(cores) / double(profile.base_cores);
  WorkloadProfile p = profile.base;
  p.footprint_pages = std::max<std::uint64_t>(
      64, std::uint64_t(std::llround(double(p.footprint_pages) * f)));
  for (PhaseSpec& phase : p.phases) {
    phase.dirty_pages_per_sec *= f;
    phase.alloc_pages_per_sec *= f;
    phase.free_pages_per_sec *= f;
  }
  // Decorrelate the per-tick mutation streams across segments — a resized
  // job does not touch the same page sequence it would have at the old
  // width, which is exactly the statistics shift the predictor must chase.
  if (segment > 0) p.seed = segment_seed(profile.base.seed, segment);
  return p;
}

std::uint64_t ElasticWorkload::cores() const {
  return applied_ == 0 ? profile_.base_cores
                       : profile_.resizes[applied_ - 1].cores;
}

std::uint64_t ElasticWorkload::footprint_pages() const {
  return inner_->profile().footprint_pages;
}

double ElasticWorkload::scale_factor() const {
  return double(cores()) / double(profile_.base_cores);
}

void ElasticWorkload::rebuild_inner(double progress) {
  inner_ = std::make_unique<SyntheticWorkload>(
      scaled_profile(profile_, applied_));
  if (progress > 0.0) {
    Bytes blob;
    ByteWriter w(blob);
    w.f64(progress);
    inner_->restore_cpu_state(blob);
  }
}

void ElasticWorkload::initialize(mem::AddressSpace& space) {
  inner_->initialize(space);
}

void ElasticWorkload::step(mem::AddressSpace& space, double dt) {
  AIC_CHECK(dt >= 0.0);
  const double end = std::min(inner_->progress() + dt, base_time());
  for (;;) {
    // Fire every resize the current progress has reached — including one
    // sitting exactly at the restore point that a rolled-back run is about
    // to re-tread.
    if (applied_ < profile_.resizes.size() &&
        profile_.resizes[applied_].at_progress <=
            inner_->progress() + 1e-12) {
      apply_resize(space);
      continue;
    }
    const double cur = inner_->progress();
    if (cur + 1e-12 >= end) break;
    double target = end;
    if (applied_ < profile_.resizes.size())
      target = std::min(target, profile_.resizes[applied_].at_progress);
    inner_->step(space, target - cur);
  }
}

void ElasticWorkload::apply_resize(mem::AddressSpace& space) {
  const ResizeEvent& ev = profile_.resizes[applied_];
  MigrationStats stats;
  stats.cores_before = cores();
  stats.cores_after = ev.cores;

  const std::uint64_t old_fp = inner_->profile().footprint_pages;
  const double progress = inner_->progress();
  ++applied_;
  rebuild_inner(progress);
  const std::uint64_t new_fp = inner_->profile().footprint_pages;

  Rng rng(segment_seed(profile_.base.seed, applied_) ^
          0x94D049BB133111EBULL);
  if (new_fp > old_fp) {
    // Growth: the redistributed state spreads into fresh pages, filled
    // deterministically (the data existed on the old nodes; its content
    // here is part of the synthetic state like initialize()'s).
    for (mem::PageId id = old_fp; id < new_fp; ++id) {
      if (space.contains(id)) continue;
      space.allocate(id);
      ++stats.pages_allocated;
      space.mutate(id, [&](std::span<std::uint8_t> b) {
        for (std::size_t i = 0; i + 8 <= b.size(); i += 8) {
          const std::uint64_t word = rng() & 0x00FFFFFFFFFFFFFFULL;
          std::memcpy(b.data() + i, &word, 8);
        }
      });
    }
  } else if (new_fp < old_fp) {
    // Shrink: surviving state is packed into [0, new_fp); everything
    // beyond it (old data tail and the old heap region) is released.
    for (mem::PageId id : space.live_pages()) {
      if (id < new_fp) continue;
      space.free_page(id);
      ++stats.pages_freed;
    }
  }
  // The repacking burst: redistribution rewrites slices of the retained
  // pages, dirtying a migrate_fraction share of the new footprint.
  const std::uint64_t touches =
      std::uint64_t(profile_.migrate_fraction * double(new_fp));
  for (std::uint64_t i = 0; i < touches; ++i) {
    const mem::PageId id = rng.uniform_u64(new_fp);
    if (!space.contains(id)) {
      space.allocate(id);
      ++stats.pages_allocated;
    }
    space.mutate(id, [&](std::span<std::uint8_t> b) {
      const std::size_t len = 256;
      const std::size_t off = rng.uniform_u64(b.size() - len + 1);
      for (std::size_t j = 0; j < len; ++j)
        b[off + j] = std::uint8_t(rng());
    });
    ++stats.pages_rewritten;
  }
  last_migration_ = stats;
}

Bytes ElasticWorkload::cpu_state() const { return inner_->cpu_state(); }

void ElasticWorkload::restore_cpu_state(ByteSpan state) {
  ByteReader r(state);
  const double progress = r.f64();
  AIC_CHECK(r.done());
  AIC_CHECK(progress >= 0.0 && progress <= base_time() + 1e-9);
  // Re-derive the segment from progress alone: a checkpoint at progress p
  // always has every resize with at_progress <= p applied to its memory
  // image (step() fires them before returning).
  applied_ = 0;
  while (applied_ < profile_.resizes.size() &&
         profile_.resizes[applied_].at_progress <= progress + 1e-12)
    ++applied_;
  rebuild_inner(progress);
  last_migration_.reset();
}

}  // namespace aic::workload
