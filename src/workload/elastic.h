// Elastic (malleable) jobs — the Raghavendra & Vadhiyar direction from
// PAPERS.md: an application that grows or shrinks its core allocation
// mid-run. AIC's inputs all move when that happens: the footprint is
// redistributed (weak scaling: pages ∝ cores), the page-dirtying rates
// scale with the compute throughput, and the migration itself dirties a
// burst of pages as state is repacked across the new node set — so the
// dirty-page statistics the predictor feeds on shift measurably at every
// reconfiguration.
//
// ElasticWorkload composes a SyntheticWorkload per core-count segment.
// Resizes are keyed on *progress* (executed virtual seconds), and every
// migration mutation is a pure function of (seed, resize index), so the
// restart property of workload.h carries over verbatim: restore a
// checkpoint, replay from its stored progress, and the trajectory —
// including re-fired resizes — is byte-identical to the original run.
// A resize fires as soon as progress reaches its threshold; a checkpoint
// taken at progress p therefore always captures every resize with
// at_progress <= p already applied, and restore_cpu_state re-derives the
// applied count from p alone.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "workload/workload.h"

namespace aic::workload {

/// One reconfiguration: when progress reaches `at_progress`, the job's
/// allocation becomes `cores`.
struct ResizeEvent {
  double at_progress = 0.0;
  std::uint64_t cores = 0;
};

struct ElasticProfile {
  /// Rates and footprint as calibrated at `base_cores`.
  WorkloadProfile base;
  std::uint64_t base_cores = 4;
  /// Strictly ascending in at_progress; cores >= 1.
  std::vector<ResizeEvent> resizes;
  /// Fraction of the post-resize footprint rewritten by the migration
  /// burst (state repacking across the new node set).
  double migrate_fraction = 0.25;
};

class ElasticWorkload final : public Workload {
 public:
  /// What one resize did to the address space (deterministic).
  struct MigrationStats {
    std::uint64_t cores_before = 0;
    std::uint64_t cores_after = 0;
    std::uint64_t pages_allocated = 0;
    std::uint64_t pages_freed = 0;
    std::uint64_t pages_rewritten = 0;
  };

  explicit ElasticWorkload(ElasticProfile profile);

  const std::string& name() const override { return profile_.base.name; }
  double base_time() const override { return profile_.base.base_time; }

  void initialize(mem::AddressSpace& space) override;
  void step(mem::AddressSpace& space, double dt) override;
  double progress() const override { return inner_->progress(); }

  Bytes cpu_state() const override;
  void restore_cpu_state(ByteSpan state) override;

  /// Current core allocation (base_cores until the first resize fires).
  std::uint64_t cores() const;
  /// Resizes applied so far (re-derived from progress on restore).
  std::size_t applied_resizes() const { return applied_; }
  /// Footprint of the current segment (pages ∝ cores).
  std::uint64_t footprint_pages() const;
  /// cores / base_cores of the current segment — what the simulator
  /// applies to lambda, bandwidth share, and cost coefficients.
  double scale_factor() const;
  const ElasticProfile& profile() const { return profile_; }
  /// Stats of the most recent migration, if any resize fired yet.
  const std::optional<MigrationStats>& last_migration() const {
    return last_migration_;
  }

  /// The per-segment profile: footprint and page rates scaled by
  /// cores/base_cores, seed decorrelated per segment.
  static WorkloadProfile scaled_profile(const ElasticProfile& profile,
                                        std::size_t segment);

 private:
  /// Applies resize `applied_` to the space (allocation, frees, and the
  /// migration rewrite burst) and swaps in the next segment's workload.
  void apply_resize(mem::AddressSpace& space);
  /// Builds the segment-`applied_` inner workload at `progress`.
  void rebuild_inner(double progress);

  ElasticProfile profile_;
  std::unique_ptr<SyntheticWorkload> inner_;
  std::size_t applied_ = 0;
  std::optional<MigrationStats> last_migration_;
};

}  // namespace aic::workload
