// Noise-aware comparison of two bench records (the aic_benchdiff engine).
//
// A naive "did the median move more than X%" check flags noise as
// regression and hides real regressions inside noisy metrics. Instead,
// each paired metric is judged on a bootstrap confidence interval: both
// sample sets are resampled with replacement (deterministically — seeded
// aic::Rng, so CI runs are reproducible), the relative change of the
// resampled medians is collected, and the verdict uses the 95% interval of
// the *badness* (relative change signed so that positive always means
// "worse", regardless of the metric's direction):
//
//   regression   — the whole interval sits above +threshold
//   improvement  — the whole interval sits below -threshold
//   neutral      — anything else (including "too noisy to tell")
//
// Single-sample metrics degenerate to a point comparison against the
// threshold, which is exactly the right behaviour for deterministic
// quantities like NET^2 values or compression ratios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/bench_record.h"

namespace aic::obs {

struct DiffOptions {
  /// Relative change considered meaningful (0.10 = 10%).
  double threshold = 0.10;
  /// Bootstrap resampling rounds per metric (higher = tighter CI estimate).
  int bootstrap_iterations = 500;
  std::uint64_t seed = 42;
};

enum class DiffVerdict : std::uint8_t {
  kNeutral = 0,
  kRegression,
  kImprovement,
  kOnlyBaseline,  // metric disappeared from the current run
  kOnlyCurrent,   // metric is new in the current run
};

const char* to_string(DiffVerdict v);

struct MetricDiff {
  std::string name;
  std::string unit;
  bool higher_is_better = false;
  DiffVerdict verdict = DiffVerdict::kNeutral;
  double baseline_median = 0.0;
  double current_median = 0.0;
  /// (current - baseline) / |baseline|, sign as measured.
  double rel_change = 0.0;
  /// 95% bootstrap CI of the badness (positive = worse).
  double badness_lo = 0.0;
  double badness_hi = 0.0;
  std::size_t baseline_samples = 0;
  std::size_t current_samples = 0;
};

struct RecordDiff {
  std::string target;
  /// True when build provenance differs (compiler/build type/sanitizer) —
  /// the numbers are printed but should be read with suspicion.
  bool provenance_mismatch = false;
  std::vector<MetricDiff> metrics;  // current-record order, then baseline-only
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t neutral = 0;

  bool has_regression() const { return regressions > 0; }
};

/// Pairs metrics by name and judges each pair. Unpaired metrics are
/// reported as kOnlyBaseline/kOnlyCurrent and never count as regressions.
RecordDiff diff_records(const BenchRecord& baseline,
                        const BenchRecord& current,
                        const DiffOptions& opt = {});

}  // namespace aic::obs
