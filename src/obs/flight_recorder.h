// Failure flight recorder: the last N trace events + final metric values,
// dumped as postmortem.json when a run dies.
//
// TraceLog is capacity-bounded from the *front* — once full it drops new
// events, because for timeline export the beginning of a run matters as
// much as the end. A crash investigation needs the opposite: the most
// recent events, however long the run was. The FlightRecorder is a small
// ring buffer that taps every TraceLog event (including the ones the log
// itself drops past capacity), so the tail of the flight is always
// available. On failure — a CheckError/TransferError caught at a subsystem
// boundary (AsyncCheckpointer's worker, the failure simulator) or an
// uncaught exception reaching std::terminate via the installable hook —
// it writes postmortem.json: the failure reason and detail, the recent
// events oldest-to-newest, and a final metrics snapshot. A failed run
// leaves a diagnosable artifact instead of a stack trace.
//
// Schema "aic-postmortem-v1":
//
//   {
//     "schema": "aic-postmortem-v1",
//     "reason": "failure-sim",
//     "detail": "transfer of ckpt-000000 to level 3 aborted at ...",
//     "events_total": 1234,        // recorded over the whole flight
//     "events": [{"domain": "virtual", "cat": "xfer", "name": "abort",
//                 "phase": "instant", "t": 12.5, "dur": 0, "track": 3,
//                 "args": {"offset": 65536, "attempts": 4}}, ...],
//     "slo_events": [{"rule": "tts-p99", "kind": "breach", "t": 40.0,
//                     "value": 0.61, "burn_short": 2.5,
//                     "burn_long": 1.1}, ...],   // record_slo ring
//     "metrics": { ... obs::metrics_to_json snapshot ... }
//   }
//
// Event strings are the TraceLog contract's static literals, so holding
// TraceEvent copies in the ring is safe for the program's lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/slo.h"
#include "obs/trace.h"

namespace aic::obs {

inline constexpr const char kPostmortemSchema[] = "aic-postmortem-v1";

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;
  /// Retained tail of SLO events (record_slo), a separate smaller ring —
  /// SLO state changes are rare next to trace events and must not be
  /// evicted by a burst of chunk spans.
  static constexpr std::size_t kSloCapacity = 64;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Appends one event, evicting the oldest once `capacity` is reached.
  /// Same hot-path shape as TraceLog::push: one mutex, no allocation after
  /// the ring fills.
  void record(const TraceEvent& e);

  /// The retained tail, oldest -> newest.
  std::vector<TraceEvent> recent() const;
  /// Events seen over the whole flight (>= recent().size()).
  std::uint64_t total_recorded() const;

  /// Appends one SLO event to the dedicated ring (fed by Telemetry::tick);
  /// the postmortem's "slo_events" section is this ring, oldest -> newest.
  void record_slo(const SloEvent& e);
  std::vector<SloEvent> recent_slo() const;
  std::uint64_t total_slo_recorded() const;

  /// Metrics source embedded in the postmortem (may be nullptr: the dump
  /// then has an empty metrics object).
  void set_metrics(const MetricsRegistry* metrics);
  void set_dump_path(std::string path);
  const std::string& dump_path() const { return dump_path_; }

  std::string postmortem_json(std::string_view reason,
                              std::string_view detail) const;
  /// Writes postmortem_json to dump_path(); false on I/O failure. Safe to
  /// call from a terminate handler (no exceptions escape).
  bool dump(std::string_view reason, std::string_view detail) const noexcept;

  /// Routes std::terminate through `recorder` (dump, then chain to the
  /// previously installed handler). Pass the recorder that should own the
  /// postmortem; uninstall restores the previous handler.
  static void install_terminate_hook(FlightRecorder* recorder);
  static void uninstall_terminate_hook();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // overwrite cursor once the ring is full
  std::uint64_t total_ = 0;
  std::vector<SloEvent> slo_ring_;
  std::size_t slo_next_ = 0;
  std::uint64_t slo_total_ = 0;
  const MetricsRegistry* metrics_ = nullptr;
  std::string dump_path_ = "postmortem.json";
};

}  // namespace aic::obs
