// Declarative SLO rules over the telemetry time-series: thresholds plus
// multi-window burn-rate alerting.
//
// A rule binds one series to a comparison, in the textual grammar
//
//   <rule-name>: <series> <op> <threshold> [budget <frac>] [burn <S>/<L> x<F>]
//
//   tts-p99:  fleet.time_to_safe_seconds.p99 < 0.5
//   goodput:  fleet.tenant.0.goodput_bps >= 9e7 budget 0.05 burn 60/600 x2
//
// with op one of < <= > >=. The threshold alone defines "good": a sample
// violating the comparison is a *breach* (edge-triggered kBreach/kRecover
// events on the newest sample). The optional burn clause adds the
// SRE-style error-budget view: `budget f` allows a fraction f of samples
// to be bad (default 0.01); over a window W the burn rate is
//
//   burn(W) = bad_fraction(W) / budget
//
// — 1.0 means the budget is being consumed exactly at its sustainable
// pace, x means x times too fast. The alert fires (kBurnAlert) only while
// BOTH the short and the long window burn at >= F: the short window makes
// the alert fast to clear when the incident ends, the long window keeps a
// brief blip from paging at all. kBurnClear marks the edge back down.
//
// Evaluation is a pure read of the TimeseriesStore — deterministic, no
// clocks — so an SLO engine attached to the fleet scheduler provably
// cannot perturb its timeline. Events are retained in a bounded ring and
// also fan out to the flight recorder and trace log via obs::Telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.h"

namespace aic::obs {

enum class SloComparison : std::uint8_t { kLt = 0, kLe, kGt, kGe };

const char* to_string(SloComparison c);

struct SloRule {
  std::string name;
  std::string series;
  SloComparison cmp = SloComparison::kLt;
  double threshold = 0.0;
  /// Fraction of samples allowed to violate the threshold (error budget).
  double error_budget = 0.01;
  /// Burn-rate windows (seconds); 0 disables burn alerting for this rule.
  double short_window_s = 0.0;
  double long_window_s = 0.0;
  /// Alert while burn(short) and burn(long) are both >= this factor.
  double burn_factor = 1.0;

  bool burn_enabled() const { return long_window_s > 0.0; }
  /// True when `value` satisfies the comparison (is "good").
  bool good(double value) const;
};

/// Parses the rule grammar above; throws aic::CheckError naming the defect
/// on malformed input.
SloRule parse_slo_rule(std::string_view text);
/// Round-trippable textual form (parse_slo_rule(to_string(r)) == r).
std::string to_string(const SloRule& r);

struct SloEvent {
  enum class Kind : std::uint8_t {
    kBreach = 0,   // newest sample turned bad
    kRecover,      // newest sample turned good again
    kBurnAlert,    // both burn windows crossed the factor
    kBurnClear,    // burn alert condition ended
  };
  std::string rule;
  Kind kind = Kind::kBreach;
  double t = 0.0;
  double value = 0.0;  // newest sample at the time of the event
  double burn_short = 0.0;
  double burn_long = 0.0;
};

const char* to_string(SloEvent::Kind k);

/// Point-in-time verdict per rule (for dashboards and postmortems).
struct SloStatus {
  std::string rule;
  std::string series;
  bool evaluated = false;  // series had at least one sample
  bool breached = false;
  bool burning = false;
  double value = 0.0;
  double threshold = 0.0;
  SloComparison cmp = SloComparison::kLt;
  double burn_short = 0.0;
  double burn_long = 0.0;
  std::uint64_t breaches = 0;     // kBreach edges so far
  std::uint64_t burn_alerts = 0;  // kBurnAlert edges so far
};

class SloEngine {
 public:
  static constexpr std::size_t kDefaultEventCapacity = 1024;

  explicit SloEngine(std::size_t event_capacity = kDefaultEventCapacity);

  void add_rule(SloRule rule);
  void add_rule(std::string_view text) { add_rule(parse_slo_rule(text)); }
  std::size_t rule_count() const { return rules_.size(); }
  std::vector<SloRule> rules() const;

  /// Evaluates every rule against the store at virtual time now_s and
  /// returns the newly emitted (edge-triggered) events. Rules whose series
  /// is absent or empty are skipped (evaluated = false in status()).
  std::vector<SloEvent> evaluate(const TimeseriesStore& store, double now_s);

  std::vector<SloStatus> status() const;
  /// Retained events, oldest -> newest (bounded ring).
  std::vector<SloEvent> events() const;
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  struct RuleState {
    SloRule rule;
    bool evaluated = false;
    bool breached = false;
    bool burning = false;
    double value = 0.0;
    double burn_short = 0.0;
    double burn_long = 0.0;
    std::uint64_t breaches = 0;
    std::uint64_t burn_alerts = 0;
  };

  /// bad_fraction over [now - window, now] divided by the budget.
  static double burn_rate(const Series& s, const SloRule& r, double now_s,
                          double window_s);
  void retain(SloEvent e);

  const std::size_t event_capacity_;
  std::vector<RuleState> rules_;
  std::vector<SloEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace aic::obs
