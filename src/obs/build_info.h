// Host/build provenance for machine-readable result files.
//
// A benchmark number is only comparable to another run when we know what
// produced it: two results from different compilers, sanitizer legs, or
// commits must never be silently diffed as if they were the same machine
// state. BuildInfo captures that provenance once per process — git commit
// (read from the source tree's .git at runtime, so no reconfigure is
// needed after a commit), compiler, CMake build type, the AIC_SANITIZE
// matrix leg, and the host's hardware concurrency — and every
// BENCH_<target>.json embeds it (bench_record.h). tools/aic_benchdiff
// prints a provenance warning when the two sides disagree.
#pragma once

#include <string>

namespace aic::obs {

struct BuildInfo {
  std::string git_sha;     // HEAD commit hash; "unknown" outside a checkout
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string sanitizer;   // AIC_SANITIZE leg ("" = plain build)
  int nproc = 0;           // std::thread::hardware_concurrency()

  /// True when two builds' numbers are comparable without caveats.
  bool comparable_to(const BuildInfo& other) const {
    return compiler == other.compiler && build_type == other.build_type &&
           sanitizer == other.sanitizer;
  }
};

/// Build metadata of the running binary. The git hash is resolved from the
/// source tree recorded at configure time (.git/HEAD, following one level
/// of symbolic ref, then packed-refs); every other field is compiled in.
BuildInfo current_build_info();

}  // namespace aic::obs
