// Lock-cheap metrics for the AIC pipeline: counters, gauges, and
// fixed-bucket histograms behind a snapshot-able registry.
//
// Contract (the overhead-guard test and bench/micro_obs hold the library to
// it):
//
//   * the hot path — Counter::add, Gauge::set, Histogram::observe — is a
//     handful of relaxed atomic operations: no locks, no allocation, no
//     system calls. Instruments resolve their handles once (registry
//     lookup under a mutex, off the hot path) and then only touch atomics;
//   * disabled observability is near-free: every instrumented component
//     takes an obs::Hub* that defaults to nullptr, and a null hub means
//     one branch per site — no handles are resolved, the registry stays
//     empty, and nothing allocates;
//   * snapshot() is safe against concurrent writers (relaxed reads of the
//     atomics; counters are monotone so a snapshot is a consistent-enough
//     cut for reporting).
//
// Handles returned by the registry are stable for the registry's lifetime
// (node-based map ownership), so instruments may cache raw pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace aic::obs {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous reading.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations x <= bounds[i]
/// (bounds ascending), plus one overflow bucket. Bucket layout is frozen at
/// creation so observe() is an index computation plus relaxed increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Count of bucket i (i in [0, bounds().size()]; last = overflow).
  std::uint64_t bucket_count(std::size_t i) const;

  /// `n` equal-width buckets spanning [lo, hi].
  static std::vector<double> linear_buckets(double lo, double hi, int n);
  /// `n` buckets with upper bounds start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 int n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, with bucket-interpolated quantiles
/// for reports.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count ? sum / double(count) : 0.0; }
  /// Linear interpolation inside the bucket containing quantile q in [0,1];
  /// overflow-bucket mass reports the last finite bound.
  double quantile(double q) const;
};

/// Point-in-time copy of every instrument in a registry. Field names are
/// the exporters' schema (export.h) — treat them as a stable format.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by name; 0 when absent (reports tolerate partial runs).
  std::uint64_t counter_or_zero(std::string_view name) const;
  /// Gauge value by name; fallback when absent.
  double gauge_or(std::string_view name, double fallback) const;
};

/// Named instrument registry. get-or-create methods are mutex-protected
/// (instruments resolve handles once, at attach time); the instruments
/// themselves are wait-free afterwards.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Returns the existing histogram when `name` is already registered (the
  /// first creator's bucket layout wins).
  Histogram* histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  bool empty() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      AIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      AIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      AIC_GUARDED_BY(mutex_);
};

}  // namespace aic::obs
