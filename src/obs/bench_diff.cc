#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace aic::obs {
namespace {

/// Relative change with positive = worse. The denominator falls back to
/// |current| when the baseline median is exactly zero (a 0 -> x move is a
/// 100% change, not a division blow-up), and to "no change" when both are
/// zero.
double badness_of(double baseline_median, double current_median,
                  bool higher_is_better) {
  double denom = std::abs(baseline_median);
  if (denom == 0.0) denom = std::abs(current_median);
  if (denom == 0.0) return 0.0;
  const double rel = (current_median - baseline_median) / denom;
  return higher_is_better ? -rel : rel;
}

double resampled_median(const std::vector<double>& xs, Rng& rng,
                        std::vector<double>& scratch) {
  scratch.clear();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    scratch.push_back(xs[rng.uniform_u64(xs.size())]);
  }
  return percentile_of(scratch, 0.5);
}

MetricDiff judge(const BenchMetric& baseline, const BenchMetric& current,
                 const DiffOptions& opt, Rng& rng) {
  MetricDiff d;
  d.name = current.name;
  d.unit = current.unit;
  d.higher_is_better = current.higher_is_better;
  d.baseline_samples = baseline.samples.size();
  d.current_samples = current.samples.size();
  d.baseline_median = baseline.median();
  d.current_median = current.median();

  double denom = std::abs(d.baseline_median);
  if (denom == 0.0) denom = std::abs(d.current_median);
  d.rel_change =
      denom == 0.0 ? 0.0 : (d.current_median - d.baseline_median) / denom;

  const double point = badness_of(d.baseline_median, d.current_median,
                                  current.higher_is_better);
  if (baseline.samples.size() < 2 && current.samples.size() < 2) {
    // No repetition on either side: nothing to bootstrap, the point
    // estimate is the whole story.
    d.badness_lo = d.badness_hi = point;
  } else {
    std::vector<double> boot;
    boot.reserve(std::size_t(std::max(opt.bootstrap_iterations, 1)));
    std::vector<double> scratch;
    for (int i = 0; i < std::max(opt.bootstrap_iterations, 1); ++i) {
      const double bm = resampled_median(baseline.samples, rng, scratch);
      const double cm = resampled_median(current.samples, rng, scratch);
      boot.push_back(badness_of(bm, cm, current.higher_is_better));
    }
    d.badness_lo = percentile_of(boot, 0.025);
    d.badness_hi = percentile_of(boot, 0.975);
  }

  if (d.badness_lo > opt.threshold) {
    d.verdict = DiffVerdict::kRegression;
  } else if (d.badness_hi < -opt.threshold) {
    d.verdict = DiffVerdict::kImprovement;
  } else {
    d.verdict = DiffVerdict::kNeutral;
  }
  return d;
}

}  // namespace

const char* to_string(DiffVerdict v) {
  switch (v) {
    case DiffVerdict::kNeutral:
      return "neutral";
    case DiffVerdict::kRegression:
      return "REGRESSION";
    case DiffVerdict::kImprovement:
      return "improvement";
    case DiffVerdict::kOnlyBaseline:
      return "only-baseline";
    case DiffVerdict::kOnlyCurrent:
      return "only-current";
  }
  return "?";
}

RecordDiff diff_records(const BenchRecord& baseline, const BenchRecord& current,
                        const DiffOptions& opt) {
  AIC_CHECK_MSG(opt.threshold >= 0.0, "diff threshold must be >= 0");
  RecordDiff out;
  out.target = current.target;
  out.provenance_mismatch = !baseline.build.comparable_to(current.build);

  Rng rng(opt.seed);
  for (const BenchMetric& cur : current.metrics) {
    const BenchMetric* base = baseline.find(cur.name);
    if (base == nullptr) {
      MetricDiff d;
      d.name = cur.name;
      d.unit = cur.unit;
      d.higher_is_better = cur.higher_is_better;
      d.verdict = DiffVerdict::kOnlyCurrent;
      d.current_median = cur.median();
      d.current_samples = cur.samples.size();
      out.metrics.push_back(std::move(d));
      continue;
    }
    out.metrics.push_back(judge(*base, cur, opt, rng));
  }
  for (const BenchMetric& base : baseline.metrics) {
    if (current.find(base.name) != nullptr) continue;
    MetricDiff d;
    d.name = base.name;
    d.unit = base.unit;
    d.higher_is_better = base.higher_is_better;
    d.verdict = DiffVerdict::kOnlyBaseline;
    d.baseline_median = base.median();
    d.baseline_samples = base.samples.size();
    out.metrics.push_back(std::move(d));
  }

  for (const MetricDiff& d : out.metrics) {
    switch (d.verdict) {
      case DiffVerdict::kRegression:
        ++out.regressions;
        break;
      case DiffVerdict::kImprovement:
        ++out.improvements;
        break;
      case DiffVerdict::kNeutral:
        ++out.neutral;
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace aic::obs
