#include "obs/causal.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace aic::obs {

const char* to_string(CausalSegment s) {
  switch (s) {
    case CausalSegment::kCapture:
      return "capture";
    case CausalSegment::kCompress:
      return "compress";
    case CausalSegment::kAdmissionQueue:
      return "admission-queue";
    case CausalSegment::kDrainQueue:
      return "drain-queue";
    case CausalSegment::kInFlight:
      return "in-flight";
    case CausalSegment::kBackoff:
      return "backoff";
    case CausalSegment::kStalled:
      return "stalled";
  }
  return "?";
}

double CausalChain::accounted() const {
  double sum = 0.0;
  for (const double s : seg) sum += s;
  return sum;
}

double CausalChain::unattributed() const {
  return std::max(0.0, total_s - accounted());
}

CausalSegment CausalChain::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < seg.size(); ++i) {
    if (seg[i] > seg[best]) best = i;
  }
  return CausalSegment(best);
}

CausalLog::CausalLog() : CausalLog(Config{}) {}

CausalLog::CausalLog(Config config) : config_(config) {
  AIC_CHECK_MSG(config_.ring_capacity >= 1, "causal ring capacity >= 1");
  AIC_CHECK_MSG(config_.top_k >= 1, "causal top_k must be >= 1");
  ring_.reserve(config_.ring_capacity);
}

std::uint64_t CausalLog::open(std::string label, std::uint64_t tenant,
                              double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  CausalChain c;
  c.id = id;
  c.label = std::move(label);
  c.tenant = tenant;
  c.open_t = t;
  open_.emplace(id, std::move(c));
  return id;
}

void CausalLog::add(std::uint64_t id, CausalSegment s, double seconds) {
  if (id == 0 || seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.seg[std::size_t(s)] += seconds;
}

void CausalLog::finish(std::uint64_t id, double total_s, bool aborted) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  CausalChain c = std::move(it->second);
  open_.erase(it);
  c.closed = true;
  c.aborted = aborted;
  c.total_s = std::max(0.0, total_s);
  ++closed_total_;
  if (!aborted) {
    // Keep top_ sorted slowest-first; insert then trim.
    auto pos = std::upper_bound(top_.begin(), top_.end(), c,
                                [](const CausalChain& a,
                                   const CausalChain& b) {
                                  return a.total_s > b.total_s;
                                });
    top_.insert(pos, c);
    if (top_.size() > config_.top_k) top_.resize(config_.top_k);
  }
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(c));
  } else {
    ring_[next_] = std::move(c);
    next_ = (next_ + 1) % config_.ring_capacity;
  }
}

void CausalLog::close_total(std::uint64_t id, double total_s, bool aborted) {
  if (id == 0) return;
  finish(id, total_s, aborted);
}

void CausalLog::close_at(std::uint64_t id, double t_now, bool aborted) {
  if (id == 0) return;
  double total = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_.find(id);
    if (it == open_.end()) return;
    total = t_now - it->second.open_t;
  }
  finish(id, total, aborted);
}

std::vector<CausalChain> CausalLog::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CausalChain> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<CausalChain> CausalLog::slowest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return top_;
}

std::uint64_t CausalLog::opened() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_ - 1;
}

std::uint64_t CausalLog::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_total_;
}

std::size_t CausalLog::open_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

}  // namespace aic::obs
