#include "obs/slo.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/json.h"

namespace aic::obs {

const char* to_string(SloComparison c) {
  switch (c) {
    case SloComparison::kLt:
      return "<";
    case SloComparison::kLe:
      return "<=";
    case SloComparison::kGt:
      return ">";
    case SloComparison::kGe:
      return ">=";
  }
  return "?";
}

const char* to_string(SloEvent::Kind k) {
  switch (k) {
    case SloEvent::Kind::kBreach:
      return "breach";
    case SloEvent::Kind::kRecover:
      return "recover";
    case SloEvent::Kind::kBurnAlert:
      return "burn-alert";
    case SloEvent::Kind::kBurnClear:
      return "burn-clear";
  }
  return "?";
}

bool SloRule::good(double value) const {
  switch (cmp) {
    case SloComparison::kLt:
      return value < threshold;
    case SloComparison::kLe:
      return value <= threshold;
    case SloComparison::kGt:
      return value > threshold;
    case SloComparison::kGe:
      return value >= threshold;
  }
  return false;
}

namespace {

double parse_double(const std::string& tok, std::string_view what,
                    std::string_view text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  AIC_CHECK_MSG(used == tok.size() && std::isfinite(v),
                "SLO rule '" << text << "': bad " << what << " '" << tok
                             << "'");
  return v;
}

}  // namespace

SloRule parse_slo_rule(std::string_view text) {
  std::istringstream in{std::string(text)};
  SloRule r;
  std::string tok;

  AIC_CHECK_MSG(in >> tok && tok.size() > 1 && tok.back() == ':',
                "SLO rule '" << text << "': expected '<name>:' first");
  r.name = tok.substr(0, tok.size() - 1);
  AIC_CHECK_MSG(in >> r.series,
                "SLO rule '" << text << "': missing series name");

  AIC_CHECK_MSG(in >> tok, "SLO rule '" << text << "': missing comparison");
  if (tok == "<") {
    r.cmp = SloComparison::kLt;
  } else if (tok == "<=") {
    r.cmp = SloComparison::kLe;
  } else if (tok == ">") {
    r.cmp = SloComparison::kGt;
  } else if (tok == ">=") {
    r.cmp = SloComparison::kGe;
  } else {
    AIC_CHECK_MSG(false, "SLO rule '" << text << "': bad comparison '" << tok
                                      << "' (want < <= > >=)");
  }

  AIC_CHECK_MSG(in >> tok, "SLO rule '" << text << "': missing threshold");
  r.threshold = parse_double(tok, "threshold", text);

  while (in >> tok) {
    if (tok == "budget") {
      AIC_CHECK_MSG(in >> tok, "SLO rule '" << text
                                            << "': budget needs a fraction");
      r.error_budget = parse_double(tok, "budget", text);
      AIC_CHECK_MSG(r.error_budget > 0.0 && r.error_budget <= 1.0,
                    "SLO rule '" << text << "': budget must be in (0, 1]");
    } else if (tok == "burn") {
      AIC_CHECK_MSG(in >> tok,
                    "SLO rule '" << text << "': burn needs '<short>/<long>'");
      const std::size_t slash = tok.find('/');
      AIC_CHECK_MSG(slash != std::string::npos && slash > 0 &&
                        slash + 1 < tok.size(),
                    "SLO rule '" << text << "': burn windows must be "
                                 << "'<short>/<long>', got '" << tok << "'");
      r.short_window_s = parse_double(tok.substr(0, slash), "burn short "
                                      "window", text);
      r.long_window_s =
          parse_double(tok.substr(slash + 1), "burn long window", text);
      AIC_CHECK_MSG(r.short_window_s > 0.0 &&
                        r.long_window_s >= r.short_window_s,
                    "SLO rule '" << text
                                 << "': burn windows must satisfy "
                                    "0 < short <= long");
      AIC_CHECK_MSG(in >> tok && tok.size() > 1 && tok.front() == 'x',
                    "SLO rule '" << text << "': burn needs 'x<factor>'");
      r.burn_factor = parse_double(tok.substr(1), "burn factor", text);
      AIC_CHECK_MSG(r.burn_factor > 0.0,
                    "SLO rule '" << text << "': burn factor must be > 0");
    } else {
      AIC_CHECK_MSG(false,
                    "SLO rule '" << text << "': unknown clause '" << tok
                                 << "' (want budget|burn)");
    }
  }
  return r;
}

std::string to_string(const SloRule& r) {
  std::ostringstream os;
  os << r.name << ": " << r.series << " " << to_string(r.cmp) << " "
     << json_number(r.threshold) << " budget " << json_number(r.error_budget);
  if (r.burn_enabled()) {
    os << " burn " << json_number(r.short_window_s) << "/"
       << json_number(r.long_window_s) << " x" << json_number(r.burn_factor);
  }
  return os.str();
}

SloEngine::SloEngine(std::size_t event_capacity)
    : event_capacity_(event_capacity) {
  AIC_CHECK_MSG(event_capacity_ >= 1, "SLO event capacity must be >= 1");
  ring_.reserve(event_capacity_);
}

void SloEngine::add_rule(SloRule rule) {
  AIC_CHECK_MSG(!rule.name.empty() && !rule.series.empty(),
                "SLO rule needs a name and a series");
  for (const RuleState& s : rules_) {
    AIC_CHECK_MSG(s.rule.name != rule.name,
                  "duplicate SLO rule '" << rule.name << "'");
  }
  rules_.push_back(RuleState{std::move(rule), false, false, false, 0.0, 0.0,
                             0.0, 0, 0});
}

std::vector<SloRule> SloEngine::rules() const {
  std::vector<SloRule> out;
  out.reserve(rules_.size());
  for (const RuleState& s : rules_) out.push_back(s.rule);
  return out;
}

double SloEngine::burn_rate(const Series& s, const SloRule& r, double now_s,
                            double window_s) {
  std::size_t n = 0, bad = 0;
  for (const SamplePoint& p : s.points_in(now_s - window_s, now_s)) {
    ++n;
    bad += r.good(p.v) ? 0 : 1;
  }
  if (n == 0) return 0.0;
  return (double(bad) / double(n)) / r.error_budget;
}

void SloEngine::retain(SloEvent e) {
  if (ring_.size() < event_capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % event_capacity_;
  }
  ++total_events_;
}

std::vector<SloEvent> SloEngine::evaluate(const TimeseriesStore& store,
                                          double now_s) {
  ++evaluations_;
  std::vector<SloEvent> out;
  for (RuleState& st : rules_) {
    const Series* s = store.find(st.rule.series);
    if (s == nullptr || s->empty()) {
      st.evaluated = false;
      continue;
    }
    st.evaluated = true;
    st.value = s->last().v;
    const bool breached = !st.rule.good(st.value);
    if (st.rule.burn_enabled()) {
      st.burn_short = burn_rate(*s, st.rule, now_s, st.rule.short_window_s);
      st.burn_long = burn_rate(*s, st.rule, now_s, st.rule.long_window_s);
    }
    const bool burning =
        st.rule.burn_enabled() && st.burn_short >= st.rule.burn_factor &&
        st.burn_long >= st.rule.burn_factor;

    if (breached != st.breached) {
      st.breached = breached;
      if (breached) ++st.breaches;
      out.push_back({st.rule.name,
                     breached ? SloEvent::Kind::kBreach
                              : SloEvent::Kind::kRecover,
                     now_s, st.value, st.burn_short, st.burn_long});
    }
    if (burning != st.burning) {
      st.burning = burning;
      if (burning) ++st.burn_alerts;
      out.push_back({st.rule.name,
                     burning ? SloEvent::Kind::kBurnAlert
                             : SloEvent::Kind::kBurnClear,
                     now_s, st.value, st.burn_short, st.burn_long});
    }
  }
  for (const SloEvent& e : out) retain(e);
  return out;
}

std::vector<SloStatus> SloEngine::status() const {
  std::vector<SloStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& st : rules_) {
    SloStatus s;
    s.rule = st.rule.name;
    s.series = st.rule.series;
    s.evaluated = st.evaluated;
    s.breached = st.breached;
    s.burning = st.burning;
    s.value = st.value;
    s.threshold = st.rule.threshold;
    s.cmp = st.rule.cmp;
    s.burn_short = st.burn_short;
    s.burn_long = st.burn_long;
    s.breaches = st.breaches;
    s.burn_alerts = st.burn_alerts;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<SloEvent> SloEngine::events() const {
  std::vector<SloEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace aic::obs
