// The library's single gateway to host clocks.
//
// Everything in src/ that wants a wall-clock reading goes through
// wall_now_ns(); scripts/lint.sh forbids direct std::chrono::*_clock::now()
// calls outside src/obs/. Two reasons:
//
//   * determinism discipline — virtual-time results (simulators, models,
//     transfer engine) must never silently depend on a host clock, and a
//     single choke point makes that auditable;
//   * tracing — the TraceLog records both wall-clock spans (real compression
//     work on the checkpointing core) and virtual-time spans (simulated
//     drains, intervals), and both need a well-defined origin.
//
// The clock is monotonic (steady_clock): observability timestamps must
// never run backwards even if the host's civil time is adjusted.
#pragma once

#include <cstdint>

namespace aic::obs {

/// Monotonic host time in nanoseconds since an unspecified epoch.
std::uint64_t wall_now_ns();

/// Seconds elapsed since `origin_ns` (a prior wall_now_ns() reading).
double wall_seconds_since(std::uint64_t origin_ns);

}  // namespace aic::obs
