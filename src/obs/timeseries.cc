#include "obs/timeseries.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace aic::obs {

Series::Series(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {
  AIC_CHECK_MSG(capacity_ >= 1, "series '" << name_ << "' needs capacity");
  ring_.reserve(capacity_);
}

void Series::push(double t, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.empty()) {
    const SamplePoint& newest =
        ring_[(next_ + ring_.size() - 1) % ring_.size()];
    AIC_CHECK_MSG(t >= newest.t, "series '" << name_
                                            << "' time went backwards: "
                                            << newest.t << " -> " << t);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back({t, v});
  } else {
    ring_[next_] = {t, v};
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Series::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t Series::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

SamplePoint Series::last() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AIC_CHECK_MSG(!ring_.empty(), "series '" << name_ << "' is empty");
  return ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

std::vector<SamplePoint> Series::points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SamplePoint> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SamplePoint> Series::points_in(double from_t, double to_t) const {
  std::vector<SamplePoint> out;
  for (const SamplePoint& p : points()) {
    if (p.t >= from_t && p.t <= to_t) out.push_back(p);
  }
  return out;
}

TimeseriesStore::TimeseriesStore(std::size_t capacity_per_series)
    : capacity_(capacity_per_series) {
  AIC_CHECK_MSG(capacity_ >= 1, "per-series capacity must be >= 1");
}

Series& TimeseriesStore::series(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      std::make_unique<Series>(std::string(name), capacity_))
             .first;
  }
  return *it->second;
}

const Series* TimeseriesStore::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TimeseriesStore::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::size_t TimeseriesStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

Sampler::Sampler(const MetricsRegistry* metrics, TimeseriesStore* out)
    : Sampler(metrics, out, Config{}) {}

Sampler::Sampler(const MetricsRegistry* metrics, TimeseriesStore* out,
                 Config config)
    : metrics_(metrics), out_(out), config_(config) {
  AIC_CHECK_MSG(metrics_ != nullptr, "sampler needs a metrics registry");
  AIC_CHECK_MSG(out_ != nullptr, "sampler needs a timeseries store");
  AIC_CHECK(config_.min_interval_s >= 0.0);
}

std::size_t Sampler::sample(double now_s) {
  if (have_prev_) {
    AIC_CHECK_MSG(now_s >= prev_t_, "sampler time went backwards: "
                                        << prev_t_ << " -> " << now_s);
    if (now_s - prev_t_ < config_.min_interval_s) return 0;
  }
  MetricsSnapshot cur = metrics_->snapshot();
  std::size_t pushed = 0;

  for (const auto& [name, v] : cur.gauges) {
    out_->series(name).push(now_s, v);
    ++pushed;
  }

  const double dt = have_prev_ ? now_s - prev_t_ : 0.0;
  if (dt > 0.0) {
    for (const auto& [name, v] : cur.counters) {
      const auto it = prev_.counters.find(name);
      const std::uint64_t prev = it == prev_.counters.end() ? 0 : it->second;
      // A counter below its previous sample means the source restarted;
      // the whole current value accumulated inside this window.
      const std::uint64_t delta = v >= prev ? v - prev : v;
      out_->series(name + ".rate").push(now_s, double(delta) / dt);
      ++pushed;
    }
    for (const auto& [name, h] : cur.histograms) {
      HistogramSnapshot win = h;
      const auto it = prev_.histograms.find(name);
      if (it != prev_.histograms.end() && it->second.count <= h.count &&
          it->second.counts.size() == h.counts.size()) {
        for (std::size_t i = 0; i < win.counts.size(); ++i) {
          win.counts[i] -= it->second.counts[i];
        }
        win.count -= it->second.count;
        win.sum -= it->second.sum;
      }
      out_->series(name + ".rate").push(now_s, double(win.count) / dt);
      ++pushed;
      // Empty window: no observations landed, so there is no quantile to
      // report — fabricating one (a zero, or the lifetime value) would
      // poison the SLO math.
      if (win.count == 0) continue;
      out_->series(name + ".p50").push(now_s, win.quantile(0.50));
      out_->series(name + ".p95").push(now_s, win.quantile(0.95));
      out_->series(name + ".p99").push(now_s, win.quantile(0.99));
      pushed += 3;
    }
  }

  prev_ = std::move(cur);
  prev_t_ = now_s;
  have_prev_ = true;
  ++samples_;
  return pushed;
}

}  // namespace aic::obs
