#include "obs/report.h"

#include <cstring>
#include <iomanip>
#include <set>
#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/names.h"

namespace aic::obs {
namespace {

namespace n = names;

/// Formatting + consumed-name bookkeeping for one render pass. Every
/// metric a section prints is marked consumed; whatever remains is dumped
/// at the end so an instrumentation site can never emit data the report
/// silently hides.
class Renderer {
 public:
  explicit Renderer(const MetricsSnapshot& snap) : snap_(snap) {}

  void section(const char* title) {
    os_ << "\n== " << title << " ==\n";
  }

  void line(const char* label, const std::string& value) {
    os_ << "  " << std::left << std::setw(28) << label << " " << value << "\n";
  }

  void counter(const char* label, const char* name) {
    consumed_.insert(name);
    if (snap_.counters.count(name))
      line(label, std::to_string(snap_.counter_or_zero(name)));
  }

  void gauge(const char* label, const char* name, const char* unit = "") {
    consumed_.insert(name);
    auto it = snap_.gauges.find(name);
    if (it != snap_.gauges.end()) line(label, num(it->second) + unit);
  }

  void histogram(const char* label, const char* name) {
    consumed_.insert(name);
    auto it = snap_.histograms.find(name);
    if (it == snap_.histograms.end()) return;
    const HistogramSnapshot& h = it->second;
    std::ostringstream v;
    v << "n=" << h.count;
    if (h.count > 0) {
      v << "  mean=" << num(h.mean()) << "  p50=" << num(h.quantile(0.5))
        << "  p95=" << num(h.quantile(0.95))
        << "  p99=" << num(h.quantile(0.99));
    }
    line(label, v.str());
  }

  bool consumed(const std::string& name) const {
    return consumed_.count(name) > 0;
  }

  std::ostringstream& os() { return os_; }
  const MetricsSnapshot& snap() const { return snap_; }

  static std::string num(double v) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    return os.str();
  }

 private:
  const MetricsSnapshot& snap_;
  std::set<std::string> consumed_;
  std::ostringstream os_;
};

std::vector<double> w_star_from_events(const std::vector<TraceEvent>& events) {
  std::vector<double> history;
  for (const TraceEvent& e : events) {
    if (std::strcmp(e.category, n::kCatDecider) != 0 ||
        std::strcmp(e.name, n::kEvDecision) != 0) {
      continue;
    }
    for (std::uint8_t i = 0; i < e.arg_count; ++i) {
      if (std::strcmp(e.args[i].key, "w_star") == 0) {
        history.push_back(e.args[i].value);
        break;
      }
    }
  }
  return history;
}

}  // namespace

RunReport RunReport::from_metrics(MetricsSnapshot snap) {
  RunReport r;
  r.metrics = std::move(snap);
  return r;
}

RunReport RunReport::from_hub(const Hub& hub) {
  RunReport r;
  r.metrics = hub.metrics.snapshot();
  const std::vector<TraceEvent> events = hub.trace.snapshot();
  r.w_star_history = w_star_from_events(events);
  r.trace_event_count = events.size();
  r.trace_dropped = hub.trace.dropped();
  return r;
}

RunReport RunReport::from_json(std::string_view metrics_json,
                               std::string_view chrome_trace_json) {
  RunReport r;
  r.metrics = metrics_from_json(metrics_json);
  if (chrome_trace_json.empty()) return r;

  const JsonValue doc = json_parse(chrome_trace_json);
  const JsonValue& events = doc.at("traceEvents");
  AIC_CHECK_MSG(events.is(JsonValue::Kind::kArray),
                "traceEvents must be an array");
  for (const JsonValue& e : events.array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->str == "M") continue;  // metadata, not a sample
    ++r.trace_event_count;
    const JsonValue* cat = e.find("cat");
    const JsonValue* name = e.find("name");
    if (cat == nullptr || name == nullptr) continue;
    if (cat->str != n::kCatDecider || name->str != n::kEvDecision) continue;
    const JsonValue* args = e.find("args");
    if (args == nullptr) continue;
    if (const JsonValue* w = args->find("w_star")) {
      r.w_star_history.push_back(w->as_number());
    }
  }
  return r;
}

std::string RunReport::render() const {
  Renderer r(metrics);
  r.os() << "AIC run report\n";
  r.os() << "  trace events: " << trace_event_count;
  if (trace_dropped > 0) r.os() << " (+" << trace_dropped << " dropped)";
  r.os() << "\n";
  if (metrics.empty()) {
    r.os() << "  (metrics registry is empty — observability was disabled)\n";
    return r.os().str();
  }

  r.section("simulator");
  r.gauge("turnaround", n::kSimTurnaroundSeconds, " s");
  r.gauge("base time", n::kSimBaseSeconds, " s");
  r.gauge("NET^2", n::kSimNet2);
  r.counter("checkpoints", n::kSimCheckpoints);
  r.counter("failures L1", n::kSimFailuresL1);
  r.counter("failures L2", n::kSimFailuresL2);
  r.counter("failures L3", n::kSimFailuresL3);
  r.counter("restores", n::kSimRestores);
  r.counter("drains resumed", n::kSimDrainsResumed);

  r.section("decider");
  r.counter("evaluations", n::kDeciderEvaluations);
  r.counter("takes", n::kDeciderTakes);
  r.counter("boundary/grid picks", n::kDeciderBoundaryPicks);
  r.histogram("newton iterations", n::kDeciderNewtonIters);
  r.histogram("w_L* (s)", n::kDeciderWStar);
  if (!w_star_history.empty()) {
    std::ostringstream h;
    // A long run can make thousands of decisions; the tail is what the
    // operator tunes against, so print the most recent values.
    constexpr std::size_t kMaxShown = 16;
    const std::size_t shown =
        w_star_history.size() < kMaxShown ? w_star_history.size() : kMaxShown;
    if (shown < w_star_history.size()) h << "... ";
    for (std::size_t i = w_star_history.size() - shown;
         i < w_star_history.size(); ++i) {
      if (i > w_star_history.size() - shown) h << " ";
      h << Renderer::num(w_star_history[i]);
    }
    r.line("w_L* history (last)", h.str());
  }

  r.section("predictor");
  r.counter("observations", n::kPredictorObservations);
  r.histogram("c1 relative error", n::kPredictorC1RelErr);
  r.histogram("dl relative error", n::kPredictorDlRelErr);
  r.histogram("ds relative error", n::kPredictorDsRelErr);

  r.section("checkpointing");
  r.counter("checkpoints", n::kCkptCheckpoints);
  r.counter("full checkpoints", n::kCkptFulls);
  r.counter("pages written", n::kCkptPagesWritten);
  r.counter("uncompressed bytes", n::kCkptUncompressedBytes);
  r.counter("file bytes", n::kCkptFileBytes);
  {
    const std::uint64_t raw =
        metrics.counter_or_zero(n::kCkptUncompressedBytes);
    const std::uint64_t out = metrics.counter_or_zero(n::kCkptFileBytes);
    if (raw > 0 && out > 0)
      r.line("compression ratio", Renderer::num(double(raw) / double(out)));
  }
  r.histogram("capture wall (s)", n::kCkptCaptureSeconds);
  r.histogram("compress wall (s)", n::kCkptCompressSeconds);

  r.section("delta pipeline");
  r.counter("bytes in", n::kDeltaBytesIn);
  r.counter("bytes out", n::kDeltaBytesOut);
  r.counter("pages delta-coded", n::kDeltaPagesDelta);
  r.counter("pages raw", n::kDeltaPagesRaw);
  r.counter("pages identical", n::kDeltaPagesSame);
  r.counter("shards", n::kDeltaShards);
  r.histogram("pages per shard", n::kDeltaShardPages);

  r.section("transfer engine");
  r.counter("chunks sent", n::kXferChunksSent);
  r.counter("chunks failed", n::kXferChunksFailed);
  r.counter("retries", n::kXferRetries);
  r.counter("bytes acked", n::kXferBytesAcked);
  r.counter("bytes wasted", n::kXferBytesWasted);
  r.counter("commits", n::kXferCommits);
  r.counter("aborts", n::kXferAborts);
  r.counter("interrupts", n::kXferInterrupts);
  r.counter("resumes", n::kXferResumes);
  r.histogram("chunk time (s)", n::kXferChunkSeconds);
  r.histogram("backoff wait (s)", n::kXferBackoffSeconds);
  r.gauge("last drain goodput", n::kXferDrainGoodputBps, " B/s");

  // Anything no section above claimed.
  bool other_header = false;
  auto other = [&](const char* kind, const std::string& name,
                   const std::string& value) {
    if (!other_header) {
      r.section("other metrics");
      other_header = true;
    }
    r.os() << "  " << kind << " " << name << " = " << value << "\n";
  };
  for (const auto& [name, v] : metrics.counters) {
    if (!r.consumed(name)) other("counter", name, std::to_string(v));
  }
  for (const auto& [name, v] : metrics.gauges) {
    if (!r.consumed(name)) other("gauge", name, Renderer::num(v));
  }
  for (const auto& [name, h] : metrics.histograms) {
    if (!r.consumed(name)) {
      other("histogram", name,
            "n=" + std::to_string(h.count) +
                (h.count ? " mean=" + Renderer::num(h.mean()) : ""));
    }
  }
  return r.os().str();
}

}  // namespace aic::obs
