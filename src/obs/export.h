// Serialization of observability state: metrics snapshots to JSON/CSV and
// trace logs to Chrome's trace-event format.
//
// The JSON metrics schema is the contract between a run and tools/aic_report
// (metrics_from_json re-reads exactly what metrics_to_json writes):
//
//   { "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "bounds": [..], "counts": [..],
//                                 "count": <n>, "sum": <s> }, ... } }
//
// The CSV flattening is one `kind,name,field,value` row per datum, for
// spreadsheet/plot ingestion without a JSON step. Fields containing a
// comma, double quote, or newline are RFC-4180-quoted (wrapped in double
// quotes, inner quotes doubled), so dynamically named metrics can never
// produce an unparseable row.
//
// metrics_to_prom emits the Prometheus text exposition format (version
// 0.0.4): names are prefixed `aic_` and sanitized to [a-zA-Z0-9_:];
// counters and gauges are one sample each, histograms emit cumulative
// `_bucket{le="..."}` samples plus `_sum`/`_count`. The schema's dynamic
// name families flatten to labels — `fleet.tenant.<id>.<field>` becomes
// `aic_fleet_tenant_<field>{tenant="<id>"}` and `fleet.slo.<rule>.<field>`
// becomes `aic_fleet_slo_<field>{rule="<rule>"}` — so one fleet family is
// one Prometheus metric with a label dimension, not ten thousand metrics.
//
// trace_to_chrome_json emits the Chrome trace-event JSON object format
// ({"traceEvents": [...]}): spans as "X" (complete) events, instants as
// "i", timestamps in microseconds. The two time domains export as two
// "processes" (pid 1 = virtual time, pid 2 = wall clock, named via "M"
// metadata events) so chrome://tracing / Perfetto renders a simulated run
// and its real compression work side by side; an event's track becomes the
// tid lane within its domain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aic::obs {

std::string metrics_to_json(const MetricsSnapshot& snap);
std::string metrics_to_csv(const MetricsSnapshot& snap);
std::string metrics_to_prom(const MetricsSnapshot& snap);

/// Inverse of metrics_to_json; throws aic::CheckError on malformed or
/// schema-violating input.
MetricsSnapshot metrics_from_json(std::string_view json);

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events);
std::string trace_to_chrome_json(const TraceLog& log);

}  // namespace aic::obs
