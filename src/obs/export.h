// Serialization of observability state: metrics snapshots to JSON/CSV and
// trace logs to Chrome's trace-event format.
//
// The JSON metrics schema is the contract between a run and tools/aic_report
// (metrics_from_json re-reads exactly what metrics_to_json writes):
//
//   { "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "bounds": [..], "counts": [..],
//                                 "count": <n>, "sum": <s> }, ... } }
//
// The CSV flattening is one `kind,name,field,value` row per datum, for
// spreadsheet/plot ingestion without a JSON step.
//
// trace_to_chrome_json emits the Chrome trace-event JSON object format
// ({"traceEvents": [...]}): spans as "X" (complete) events, instants as
// "i", timestamps in microseconds. The two time domains export as two
// "processes" (pid 1 = virtual time, pid 2 = wall clock, named via "M"
// metadata events) so chrome://tracing / Perfetto renders a simulated run
// and its real compression work side by side; an event's track becomes the
// tid lane within its domain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aic::obs {

std::string metrics_to_json(const MetricsSnapshot& snap);
std::string metrics_to_csv(const MetricsSnapshot& snap);

/// Inverse of metrics_to_json; throws aic::CheckError on malformed or
/// schema-violating input.
MetricsSnapshot metrics_from_json(std::string_view json);

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events);
std::string trace_to_chrome_json(const TraceLog& log);

}  // namespace aic::obs
