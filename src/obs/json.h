// Minimal JSON value model, writer helpers, and recursive-descent parser.
//
// The observability exporters emit JSON (metrics snapshots, Chrome-trace
// event streams) and tools/aic_report reads those same files back; the
// container bakes in no JSON dependency, so this module implements the
// subset the exporters need end to end: objects, arrays, strings (with
// \uXXXX escapes), finite numbers, booleans, and null. Parse errors throw
// aic::CheckError naming the byte offset, mirroring the checkpoint-format
// parsers' hostile-input discipline — aic_report must fail loudly on a
// truncated or hand-edited file, never misreport a run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aic::obs {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (duplicate keys: first wins in
  /// find()).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Kind k) const { return kind == k; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Member lookup that throws CheckError when absent (for required
  /// schema fields).
  const JsonValue& at(std::string_view key) const;
  /// number for kNumber, else the CheckError path (strict schema reads).
  double as_number() const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws aic::CheckError on malformed input.
JsonValue json_parse(std::string_view text);

/// Escapes a string for embedding between double quotes in JSON output.
std::string json_escape(std::string_view s);

/// Formats a double as JSON: shortest round-trip representation; non-finite
/// values are rejected with CheckError (JSON has no Inf/NaN).
std::string json_number(double v);

}  // namespace aic::obs
