#include "obs/export.h"

#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace aic::obs {
namespace {

void append_counter_map(std::ostringstream& os,
                        const std::map<std::string, std::uint64_t>& m) {
  bool first = true;
  for (const auto& [name, v] : m) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << v;
  }
}

void append_number_array(std::ostringstream& os,
                         const std::vector<double>& xs) {
  os << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ",";
    os << json_number(xs[i]);
  }
  os << "]";
}

/// RFC 4180: a field containing a comma, quote, CR, or LF is wrapped in
/// double quotes with inner quotes doubled; anything else passes through.
std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Prometheus metric-name sanitization: [a-zA-Z0-9_:] with the aic_
/// prefix; every other byte becomes '_'.
std::string prom_name(std::string_view name) {
  std::string out = "aic_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string prom_label_value(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Flattens the schema's dynamic name families to label form:
/// fleet.tenant.<id>.<field> -> (fleet.tenant.<field>, {tenant="<id>"}) and
/// fleet.slo.<rule>.<field> -> (fleet.slo.<field>, {rule="<rule>"}).
/// Returns false for plain (label-free) names.
bool prom_split_labels(const std::string& name, std::string* family,
                       std::string* labels) {
  constexpr std::string_view kTenant = "fleet.tenant.";
  constexpr std::string_view kSlo = "fleet.slo.";
  if (name.size() > kTenant.size() &&
      name.compare(0, kTenant.size(), kTenant) == 0) {
    const std::string rest = name.substr(kTenant.size());
    const std::size_t dot = rest.find('.');
    if (dot != std::string::npos && dot > 0 &&
        rest.find_first_not_of("0123456789") == dot) {
      *family = std::string(kTenant) + rest.substr(dot + 1);
      *labels = "{tenant=\"" + rest.substr(0, dot) + "\"}";
      return true;
    }
  }
  if (name.size() > kSlo.size() && name.compare(0, kSlo.size(), kSlo) == 0) {
    const std::string rest = name.substr(kSlo.size());
    // Rule names may contain dots; the field is the final component.
    const std::size_t dot = rest.rfind('.');
    if (dot != std::string::npos && dot > 0 && dot + 1 < rest.size()) {
      *family = std::string(kSlo) + rest.substr(dot + 1);
      *labels = "{rule=\"" + prom_label_value(rest.substr(0, dot)) + "\"}";
      return true;
    }
  }
  return false;
}

struct PromSample {
  std::string suffix;  // "", "_bucket", "_sum", "_count"
  std::string labels;  // "", "{k=\"v\"}", or "{k=\"v\",le=\"...\"}"
  std::string value;   // preformatted
};

/// family name -> (type, samples); insertion-ordered so one family's
/// samples stay contiguous as the exposition format requires.
class PromFamilies {
 public:
  void add_scalar(const std::string& name, const char* type,
                  std::string value) {
    std::string family = name;
    std::string labels;
    prom_split_labels(name, &family, &labels);
    family_of(family, type)
        .samples.push_back({"", std::move(labels), std::move(value)});
  }

  void add_histogram(const std::string& name, const HistogramSnapshot& h) {
    std::string family = name;
    std::string labels;
    prom_split_labels(name, &family, &labels);
    Family& f = family_of(family, "histogram");
    // The labels string ends in '}' when present; `le` joins inside it.
    const std::string head =
        labels.empty() ? "{le=\""
                       : labels.substr(0, labels.size() - 1) + ",le=\"";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? json_number(h.bounds[i]) : "+Inf";
      f.samples.push_back(
          {"_bucket", head + le + "\"}", std::to_string(cumulative)});
    }
    f.samples.push_back({"_sum", labels, json_number(h.sum)});
    f.samples.push_back({"_count", labels, std::to_string(h.count)});
  }

  void emit(std::ostringstream& os) const {
    for (const auto& f : families_) {
      const std::string name = prom_name(f.family);
      os << "# TYPE " << name << " " << f.type << "\n";
      for (const PromSample& s : f.samples) {
        os << name << s.suffix << s.labels << " " << s.value << "\n";
      }
    }
  }

 private:
  struct Family {
    std::string family;
    const char* type;
    std::vector<PromSample> samples;
  };

  Family& family_of(const std::string& family, const char* type) {
    auto it = index_.find(family);
    if (it == index_.end()) {
      it = index_.emplace(family, families_.size()).first;
      families_.push_back({family, type, {}});
    }
    return families_[it->second];
  }

  std::vector<Family> families_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\":{";
  append_counter_map(os, snap.counters);
  os << "},\"gauges\":{";
  bool first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_number(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"bounds\":";
    append_number_array(os, h.bounds);
    os << ",\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ",";
      os << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
       << "}";
  }
  os << "}}";
  return os.str();
}

std::string metrics_to_csv(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, v] : snap.counters)
    os << "counter," << csv_field(name) << ",value," << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "gauge," << csv_field(name) << ",value," << json_number(v) << "\n";
  for (const auto& [name, h] : snap.histograms) {
    const std::string field = csv_field(name);
    os << "histogram," << field << ",count," << h.count << "\n";
    os << "histogram," << field << ",sum," << json_number(h.sum) << "\n";
    if (h.count > 0) {
      os << "histogram," << field << ",p50," << json_number(h.quantile(0.5))
         << "\n";
      os << "histogram," << field << ",p95," << json_number(h.quantile(0.95))
         << "\n";
      os << "histogram," << field << ",p99," << json_number(h.quantile(0.99))
         << "\n";
    }
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << "histogram," << field << ",le_";
      if (i < h.bounds.size()) {
        os << json_number(h.bounds[i]);
      } else {
        os << "inf";
      }
      os << "," << h.counts[i] << "\n";
    }
  }
  return os.str();
}

std::string metrics_to_prom(const MetricsSnapshot& snap) {
  PromFamilies families;
  for (const auto& [name, v] : snap.counters) {
    families.add_scalar(name, "counter", std::to_string(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    families.add_scalar(name, "gauge", json_number(v));
  }
  for (const auto& [name, h] : snap.histograms) {
    families.add_histogram(name, h);
  }
  std::ostringstream os;
  families.emit(os);
  return os.str();
}

MetricsSnapshot metrics_from_json(std::string_view json) {
  const JsonValue doc = json_parse(json);
  AIC_CHECK_MSG(doc.is(JsonValue::Kind::kObject),
                "metrics JSON root must be an object");
  MetricsSnapshot snap;
  for (const auto& [name, v] : doc.at("counters").object) {
    snap.counters[name] = std::uint64_t(v.as_number());
  }
  for (const auto& [name, v] : doc.at("gauges").object) {
    snap.gauges[name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("histograms").object) {
    HistogramSnapshot h;
    for (const JsonValue& b : v.at("bounds").array)
      h.bounds.push_back(b.as_number());
    for (const JsonValue& c : v.at("counts").array)
      h.counts.push_back(std::uint64_t(c.as_number()));
    AIC_CHECK_MSG(h.counts.size() == h.bounds.size() + 1,
                  "histogram '" << name << "' counts/bounds mismatch");
    h.count = std::uint64_t(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"virtual time (simulated)\"}},";
  os << "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
        "\"args\":{\"name\":\"wall clock (host)\"}}";
  for (const TraceEvent& e : events) {
    const int pid = e.domain == TimeDomain::kVirtual ? 1 : 2;
    os << ",{\"ph\":\""
       << (e.phase == TraceEvent::Phase::kSpan ? "X" : "i") << "\",\"pid\":"
       << pid << ",\"tid\":" << e.track << ",\"cat\":\""
       << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
       << "\",\"ts\":" << json_number(e.start * 1e6);
    if (e.phase == TraceEvent::Phase::kSpan) {
      os << ",\"dur\":" << json_number(e.duration * 1e6);
    } else {
      os << ",\"s\":\"t\"";
    }
    if (e.arg_count > 0) {
      os << ",\"args\":{";
      for (std::uint8_t i = 0; i < e.arg_count; ++i) {
        if (i) os << ",";
        os << "\"" << json_escape(e.args[i].key)
           << "\":" << json_number(e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string trace_to_chrome_json(const TraceLog& log) {
  return trace_to_chrome_json(log.snapshot());
}

}  // namespace aic::obs
