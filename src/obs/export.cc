#include "obs/export.h"

#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace aic::obs {
namespace {

void append_counter_map(std::ostringstream& os,
                        const std::map<std::string, std::uint64_t>& m) {
  bool first = true;
  for (const auto& [name, v] : m) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << v;
  }
}

void append_number_array(std::ostringstream& os,
                         const std::vector<double>& xs) {
  os << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ",";
    os << json_number(xs[i]);
  }
  os << "]";
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\":{";
  append_counter_map(os, snap.counters);
  os << "},\"gauges\":{";
  bool first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_number(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"bounds\":";
    append_number_array(os, h.bounds);
    os << ",\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ",";
      os << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
       << "}";
  }
  os << "}}";
  return os.str();
}

std::string metrics_to_csv(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, v] : snap.counters)
    os << "counter," << name << ",value," << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "gauge," << name << ",value," << json_number(v) << "\n";
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << name << ",count," << h.count << "\n";
    os << "histogram," << name << ",sum," << json_number(h.sum) << "\n";
    if (h.count > 0) {
      os << "histogram," << name << ",p50," << json_number(h.quantile(0.5))
         << "\n";
      os << "histogram," << name << ",p95," << json_number(h.quantile(0.95))
         << "\n";
      os << "histogram," << name << ",p99," << json_number(h.quantile(0.99))
         << "\n";
    }
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << "histogram," << name << ",le_";
      if (i < h.bounds.size()) {
        os << json_number(h.bounds[i]);
      } else {
        os << "inf";
      }
      os << "," << h.counts[i] << "\n";
    }
  }
  return os.str();
}

MetricsSnapshot metrics_from_json(std::string_view json) {
  const JsonValue doc = json_parse(json);
  AIC_CHECK_MSG(doc.is(JsonValue::Kind::kObject),
                "metrics JSON root must be an object");
  MetricsSnapshot snap;
  for (const auto& [name, v] : doc.at("counters").object) {
    snap.counters[name] = std::uint64_t(v.as_number());
  }
  for (const auto& [name, v] : doc.at("gauges").object) {
    snap.gauges[name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("histograms").object) {
    HistogramSnapshot h;
    for (const JsonValue& b : v.at("bounds").array)
      h.bounds.push_back(b.as_number());
    for (const JsonValue& c : v.at("counts").array)
      h.counts.push_back(std::uint64_t(c.as_number()));
    AIC_CHECK_MSG(h.counts.size() == h.bounds.size() + 1,
                  "histogram '" << name << "' counts/bounds mismatch");
    h.count = std::uint64_t(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"virtual time (simulated)\"}},";
  os << "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
        "\"args\":{\"name\":\"wall clock (host)\"}}";
  for (const TraceEvent& e : events) {
    const int pid = e.domain == TimeDomain::kVirtual ? 1 : 2;
    os << ",{\"ph\":\""
       << (e.phase == TraceEvent::Phase::kSpan ? "X" : "i") << "\",\"pid\":"
       << pid << ",\"tid\":" << e.track << ",\"cat\":\""
       << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
       << "\",\"ts\":" << json_number(e.start * 1e6);
    if (e.phase == TraceEvent::Phase::kSpan) {
      os << ",\"dur\":" << json_number(e.duration * 1e6);
    } else {
      os << ",\"s\":\"t\"";
    }
    if (e.arg_count > 0) {
      os << ",\"args\":{";
      for (std::uint8_t i = 0; i < e.arg_count; ++i) {
        if (i) os << ",";
        os << "\"" << json_escape(e.args[i].key)
           << "\":" << json_number(e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string trace_to_chrome_json(const TraceLog& log) {
  return trace_to_chrome_json(log.snapshot());
}

}  // namespace aic::obs
