#include "obs/bench_record.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "obs/json.h"

namespace aic::obs {
namespace {

const std::string& as_string(const JsonValue& v, const char* what) {
  AIC_CHECK_MSG(v.is(JsonValue::Kind::kString), what << " must be a string");
  return v.str;
}

bool as_bool(const JsonValue& v, const char* what) {
  AIC_CHECK_MSG(v.is(JsonValue::Kind::kBool), what << " must be a boolean");
  return v.boolean;
}

void validate(const BenchRecord& rec) {
  AIC_CHECK_MSG(!rec.target.empty(), "bench record target must be non-empty");
  for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
    const BenchMetric& m = rec.metrics[i];
    AIC_CHECK_MSG(!m.name.empty(), "bench metric name must be non-empty");
    AIC_CHECK_MSG(!m.samples.empty(),
                  "bench metric '" << m.name << "' has no samples");
    for (const double s : m.samples) {
      AIC_CHECK_MSG(std::isfinite(s),
                    "bench metric '" << m.name << "' has a non-finite sample");
    }
    for (std::size_t j = i + 1; j < rec.metrics.size(); ++j) {
      AIC_CHECK_MSG(rec.metrics[j].name != m.name,
                    "duplicate bench metric name '" << m.name << "'");
    }
  }
}

}  // namespace

double BenchMetric::median() const { return percentile_of(samples, 0.5); }

double BenchMetric::iqr() const {
  if (samples.size() < 2) return 0.0;
  return percentile_of(samples, 0.75) - percentile_of(samples, 0.25);
}

BenchMetric& BenchRecord::metric(std::string_view name, std::string_view unit,
                                 bool higher_is_better) {
  for (BenchMetric& m : metrics) {
    if (m.name == name) return m;
  }
  BenchMetric m;
  m.name = std::string(name);
  m.unit = std::string(unit);
  m.higher_is_better = higher_is_better;
  metrics.push_back(std::move(m));
  return metrics.back();
}

const BenchMetric* BenchRecord::find(std::string_view name) const {
  for (const BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

BenchRecord make_bench_record(std::string_view target, bool smoke) {
  BenchRecord rec;
  rec.target = std::string(target);
  rec.smoke = smoke;
  rec.build = current_build_info();
  return rec;
}

std::string bench_record_filename(std::string_view target) {
  return "BENCH_" + std::string(target) + ".json";
}

std::string bench_record_to_json(const BenchRecord& rec) {
  validate(rec);
  std::ostringstream os;
  os << "{\"schema\":\"" << kBenchSchema << "\"";
  os << ",\"target\":\"" << json_escape(rec.target) << "\"";
  os << ",\"smoke\":" << (rec.smoke ? "true" : "false");
  os << ",\"build\":{\"git_sha\":\"" << json_escape(rec.build.git_sha)
     << "\",\"compiler\":\"" << json_escape(rec.build.compiler)
     << "\",\"build_type\":\"" << json_escape(rec.build.build_type)
     << "\",\"sanitizer\":\"" << json_escape(rec.build.sanitizer)
     << "\",\"nproc\":" << rec.build.nproc << "}";
  os << ",\"checks\":[";
  for (std::size_t i = 0; i < rec.checks.size(); ++i) {
    if (i) os << ",";
    os << "{\"claim\":\"" << json_escape(rec.checks[i].claim)
       << "\",\"ok\":" << (rec.checks[i].ok ? "true" : "false") << "}";
  }
  os << "],\"metrics\":[";
  for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
    const BenchMetric& m = rec.metrics[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(m.name) << "\",\"unit\":\""
       << json_escape(m.unit) << "\",\"higher_is_better\":"
       << (m.higher_is_better ? "true" : "false") << ",\"params\":{";
    bool first = true;
    for (const auto& [k, v] : m.params) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":" << json_number(v);
    }
    os << "},\"samples\":[";
    for (std::size_t j = 0; j < m.samples.size(); ++j) {
      if (j) os << ",";
      os << json_number(m.samples[j]);
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

BenchRecord bench_record_from_json(std::string_view json) {
  const JsonValue doc = json_parse(json);
  AIC_CHECK_MSG(doc.is(JsonValue::Kind::kObject),
                "bench record root must be an object");
  const std::string& schema = as_string(doc.at("schema"), "schema");
  AIC_CHECK_MSG(schema == kBenchSchema,
                "unsupported bench record schema '" << schema << "' (expected "
                                                    << kBenchSchema << ")");
  BenchRecord rec;
  rec.target = as_string(doc.at("target"), "target");
  rec.smoke = as_bool(doc.at("smoke"), "smoke");

  const JsonValue& build = doc.at("build");
  AIC_CHECK_MSG(build.is(JsonValue::Kind::kObject),
                "build must be an object");
  rec.build.git_sha = as_string(build.at("git_sha"), "build.git_sha");
  rec.build.compiler = as_string(build.at("compiler"), "build.compiler");
  rec.build.build_type = as_string(build.at("build_type"), "build.build_type");
  rec.build.sanitizer = as_string(build.at("sanitizer"), "build.sanitizer");
  rec.build.nproc = int(build.at("nproc").as_number());

  const JsonValue& checks = doc.at("checks");
  AIC_CHECK_MSG(checks.is(JsonValue::Kind::kArray), "checks must be an array");
  for (const JsonValue& c : checks.array) {
    AIC_CHECK_MSG(c.is(JsonValue::Kind::kObject),
                  "each check must be an object");
    BenchCheck check;
    check.claim = as_string(c.at("claim"), "check claim");
    check.ok = as_bool(c.at("ok"), "check ok");
    rec.checks.push_back(std::move(check));
  }

  const JsonValue& metrics = doc.at("metrics");
  AIC_CHECK_MSG(metrics.is(JsonValue::Kind::kArray),
                "metrics must be an array");
  for (const JsonValue& mv : metrics.array) {
    AIC_CHECK_MSG(mv.is(JsonValue::Kind::kObject),
                  "each metric must be an object");
    BenchMetric m;
    m.name = as_string(mv.at("name"), "metric name");
    m.unit = as_string(mv.at("unit"), "metric unit");
    m.higher_is_better =
        as_bool(mv.at("higher_is_better"), "metric higher_is_better");
    const JsonValue& params = mv.at("params");
    AIC_CHECK_MSG(params.is(JsonValue::Kind::kObject),
                  "metric '" << m.name << "' params must be an object");
    for (const auto& [k, v] : params.object) m.params[k] = v.as_number();
    const JsonValue& samples = mv.at("samples");
    AIC_CHECK_MSG(samples.is(JsonValue::Kind::kArray),
                  "metric '" << m.name << "' samples must be an array");
    for (const JsonValue& s : samples.array) m.samples.push_back(s.as_number());
    rec.metrics.push_back(std::move(m));
  }
  validate(rec);
  return rec;
}

}  // namespace aic::obs
