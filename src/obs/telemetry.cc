#include "obs/telemetry.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::obs {
namespace on = names;

Telemetry::Telemetry(Hub& hub, TelemetryConfig config)
    : hub_(hub),
      store_(config.series_capacity),
      sampler_(&hub.metrics, &store_, config.sampler),
      slo_(config.slo_event_capacity),
      causal_(config.causal) {
  m_evaluations_ = hub_.metrics.counter(on::kSloEvaluations);
  m_events_ = hub_.metrics.counter(on::kSloEvents);
  m_breaches_ = hub_.metrics.counter(on::kSloBreaches);
  m_burn_alerts_ = hub_.metrics.counter(on::kSloBurnAlerts);
}

std::vector<SloEvent> Telemetry::tick(double now_s) {
  sampler_.sample(now_s);
  std::vector<SloEvent> events = slo_.evaluate(store_, now_s);
  m_evaluations_->add();
  m_events_->add(events.size());

  for (const SloStatus& st : slo_.status()) {
    if (!st.evaluated) continue;
    auto it = rule_gauges_.find(st.rule);
    if (it == rule_gauges_.end()) {
      RuleGauges g;
      g.ok = hub_.metrics.gauge(on::slo_metric(st.rule, on::kSloRuleOk));
      g.value = hub_.metrics.gauge(on::slo_metric(st.rule, on::kSloRuleValue));
      g.burn_short =
          hub_.metrics.gauge(on::slo_metric(st.rule, on::kSloRuleBurnShort));
      g.burn_long =
          hub_.metrics.gauge(on::slo_metric(st.rule, on::kSloRuleBurnLong));
      it = rule_gauges_.emplace(st.rule, g).first;
    }
    it->second.ok->set(st.breached || st.burning ? 0.0 : 1.0);
    it->second.value->set(st.value);
    it->second.burn_short->set(st.burn_short);
    it->second.burn_long->set(st.burn_long);
  }

  FlightRecorder* flight = hub_.flight();
  for (const SloEvent& e : events) {
    if (e.kind == SloEvent::Kind::kBreach) m_breaches_->add();
    if (e.kind == SloEvent::Kind::kBurnAlert) m_burn_alerts_->add();
    hub_.trace.instant(TimeDomain::kVirtual, on::kCatSlo, to_string(e.kind),
                       e.t, 0,
                       {{"value", e.value},
                        {"burn_short", e.burn_short},
                        {"burn_long", e.burn_long}});
    if (flight) flight->record_slo(e);
  }

  ++ticks_;
  last_tick_s_ = now_s;
  return events;
}

TelemetryDoc Telemetry::doc() const {
  TelemetryDoc d;
  d.now_s = last_tick_s_;
  for (const std::string& name : store_.names()) {
    if (const Series* s = store_.find(name)) d.series[name] = s->points();
  }
  d.rules = slo_.rules();
  d.status = slo_.status();
  d.events = slo_.events();
  d.slowest = causal_.slowest();
  d.recent = causal_.recent();
  return d;
}

namespace {

void append_chain(std::ostringstream& os, const CausalChain& c) {
  os << "{\"label\":\"" << json_escape(c.label) << "\",\"tenant\":" << c.tenant
     << ",\"total_s\":" << json_number(c.total_s)
     << ",\"aborted\":" << (c.aborted ? "true" : "false") << ",\"seg\":{";
  for (std::size_t i = 0; i < kCausalSegmentCount; ++i) {
    if (i) os << ",";
    os << "\"" << to_string(CausalSegment(i))
       << "\":" << json_number(c.seg[i]);
  }
  os << "}}";
}

void append_event(std::ostringstream& os, const SloEvent& e) {
  os << "{\"rule\":\"" << json_escape(e.rule) << "\",\"kind\":\""
     << to_string(e.kind) << "\",\"t\":" << json_number(e.t)
     << ",\"value\":" << json_number(e.value)
     << ",\"burn_short\":" << json_number(e.burn_short)
     << ",\"burn_long\":" << json_number(e.burn_long) << "}";
}

void append_status(std::ostringstream& os, const SloStatus& s) {
  os << "{\"rule\":\"" << json_escape(s.rule) << "\",\"series\":\""
     << json_escape(s.series) << "\",\"evaluated\":"
     << (s.evaluated ? "true" : "false")
     << ",\"breached\":" << (s.breached ? "true" : "false")
     << ",\"burning\":" << (s.burning ? "true" : "false")
     << ",\"value\":" << json_number(s.value)
     << ",\"threshold\":" << json_number(s.threshold) << ",\"cmp\":\""
     << to_string(s.cmp) << "\",\"burn_short\":" << json_number(s.burn_short)
     << ",\"burn_long\":" << json_number(s.burn_long)
     << ",\"breaches\":" << s.breaches << ",\"burn_alerts\":" << s.burn_alerts
     << "}";
}

SloComparison cmp_from(std::string_view s, std::string_view where) {
  if (s == "<") return SloComparison::kLt;
  if (s == "<=") return SloComparison::kLe;
  if (s == ">") return SloComparison::kGt;
  if (s == ">=") return SloComparison::kGe;
  AIC_CHECK_MSG(false, where << ": bad comparison '" << s << "'");
  return SloComparison::kLt;
}

SloEvent::Kind kind_from(std::string_view s) {
  if (s == "breach") return SloEvent::Kind::kBreach;
  if (s == "recover") return SloEvent::Kind::kRecover;
  if (s == "burn-alert") return SloEvent::Kind::kBurnAlert;
  if (s == "burn-clear") return SloEvent::Kind::kBurnClear;
  AIC_CHECK_MSG(false, "telemetry JSON: bad SLO event kind '" << s << "'");
  return SloEvent::Kind::kBreach;
}

std::string require_string(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  AIC_CHECK_MSG(f.is(JsonValue::Kind::kString),
                "telemetry JSON: '" << key << "' must be a string");
  return f.str;
}

bool require_bool(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  AIC_CHECK_MSG(f.is(JsonValue::Kind::kBool),
                "telemetry JSON: '" << key << "' must be a boolean");
  return f.boolean;
}

CausalChain chain_from(const JsonValue& v) {
  CausalChain c;
  c.label = require_string(v, "label");
  c.tenant = std::uint64_t(v.at("tenant").as_number());
  c.total_s = v.at("total_s").as_number();
  c.aborted = require_bool(v, "aborted");
  c.closed = true;
  const JsonValue& seg = v.at("seg");
  for (std::size_t i = 0; i < kCausalSegmentCount; ++i) {
    if (const JsonValue* f = seg.find(to_string(CausalSegment(i)))) {
      c.seg[i] = f->as_number();
    }
  }
  return c;
}

}  // namespace

std::string telemetry_to_json(const TelemetryDoc& doc) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kTelemetrySchema
     << "\",\"now_s\":" << json_number(doc.now_s) << ",\"series\":{";
  bool first = true;
  for (const auto& [name, points] : doc.series) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i) os << ",";
      os << "[" << json_number(points[i].t) << ","
         << json_number(points[i].v) << "]";
    }
    os << "]";
  }
  os << "},\"slo\":{\"rules\":[";
  for (std::size_t i = 0; i < doc.rules.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(to_string(doc.rules[i])) << "\"";
  }
  os << "],\"status\":[";
  for (std::size_t i = 0; i < doc.status.size(); ++i) {
    if (i) os << ",";
    append_status(os, doc.status[i]);
  }
  os << "],\"events\":[";
  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    if (i) os << ",";
    append_event(os, doc.events[i]);
  }
  os << "]},\"chains\":{\"slowest\":[";
  for (std::size_t i = 0; i < doc.slowest.size(); ++i) {
    if (i) os << ",";
    append_chain(os, doc.slowest[i]);
  }
  os << "],\"recent\":[";
  for (std::size_t i = 0; i < doc.recent.size(); ++i) {
    if (i) os << ",";
    append_chain(os, doc.recent[i]);
  }
  os << "]}}";
  return os.str();
}

TelemetryDoc telemetry_from_json(std::string_view json) {
  const JsonValue root = json_parse(json);
  AIC_CHECK_MSG(root.is(JsonValue::Kind::kObject),
                "telemetry JSON root must be an object");
  AIC_CHECK_MSG(require_string(root, "schema") == kTelemetrySchema,
                "telemetry JSON: unknown schema (want " << kTelemetrySchema
                                                        << ")");
  TelemetryDoc doc;
  doc.now_s = root.at("now_s").as_number();
  for (const auto& [name, pts] : root.at("series").object) {
    AIC_CHECK_MSG(pts.is(JsonValue::Kind::kArray),
                  "telemetry JSON: series '" << name << "' must be an array");
    std::vector<SamplePoint>& out = doc.series[name];
    for (const JsonValue& p : pts.array) {
      AIC_CHECK_MSG(p.is(JsonValue::Kind::kArray) && p.array.size() == 2,
                    "telemetry JSON: series '" << name
                                               << "' points must be [t, v]");
      out.push_back({p.array[0].as_number(), p.array[1].as_number()});
    }
  }
  const JsonValue& slo = root.at("slo");
  for (const JsonValue& r : slo.at("rules").array) {
    AIC_CHECK_MSG(r.is(JsonValue::Kind::kString),
                  "telemetry JSON: rules must be strings");
    doc.rules.push_back(parse_slo_rule(r.str));
  }
  for (const JsonValue& v : slo.at("status").array) {
    SloStatus s;
    s.rule = require_string(v, "rule");
    s.series = require_string(v, "series");
    s.evaluated = require_bool(v, "evaluated");
    s.breached = require_bool(v, "breached");
    s.burning = require_bool(v, "burning");
    s.value = v.at("value").as_number();
    s.threshold = v.at("threshold").as_number();
    s.cmp = cmp_from(require_string(v, "cmp"), "telemetry JSON status");
    s.burn_short = v.at("burn_short").as_number();
    s.burn_long = v.at("burn_long").as_number();
    s.breaches = std::uint64_t(v.at("breaches").as_number());
    s.burn_alerts = std::uint64_t(v.at("burn_alerts").as_number());
    doc.status.push_back(std::move(s));
  }
  for (const JsonValue& v : slo.at("events").array) {
    SloEvent e;
    e.rule = require_string(v, "rule");
    e.kind = kind_from(require_string(v, "kind"));
    e.t = v.at("t").as_number();
    e.value = v.at("value").as_number();
    e.burn_short = v.at("burn_short").as_number();
    e.burn_long = v.at("burn_long").as_number();
    doc.events.push_back(std::move(e));
  }
  const JsonValue& chains = root.at("chains");
  for (const JsonValue& v : chains.at("slowest").array) {
    doc.slowest.push_back(chain_from(v));
  }
  for (const JsonValue& v : chains.at("recent").array) {
    doc.recent.push_back(chain_from(v));
  }
  return doc;
}

}  // namespace aic::obs
