#include "obs/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace aic::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    AIC_CHECK_MSG(pos_ == text_.size(),
                  "trailing garbage in JSON at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << what;
    throw CheckError(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail("unexpected character");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += unsigned(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += unsigned(h - 'a') + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += unsigned(h - 'A') + 10;
              } else {
                fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (exporters only emit
            // \u00XX for control bytes; surrogate pairs are rejected).
            if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escape");
            if (code < 0x80) {
              out.push_back(char(code));
            } else if (code < 0x800) {
              out.push_back(char(0xC0 | (code >> 6)));
              out.push_back(char(0x80 | (code & 0x3F)));
            } else {
              out.push_back(char(0xE0 | (code >> 12)));
              out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(char(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      if (std::uint8_t(c) < 0x20) fail("raw control byte in string");
      out.push_back(c);
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // JSON forbids leading zeros ("01"); from_chars would accept them.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(std::uint8_t(text_[pos_ + 1]))) {
      fail("malformed number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(std::uint8_t(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double out = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = out;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  AIC_CHECK_MSG(v != nullptr, "missing JSON member '" << key << "'");
  return *v;
}

double JsonValue::as_number() const {
  AIC_CHECK_MSG(kind == Kind::kNumber, "JSON value is not a number");
  return number;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (std::uint8_t(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", unsigned(c));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  AIC_CHECK_MSG(std::isfinite(v), "JSON cannot represent non-finite numbers");
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  AIC_CHECK(res.ec == std::errc{});
  return std::string(buf.data(), res.ptr);
}

}  // namespace aic::obs
