#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace aic::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  AIC_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  AIC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must ascend");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = std::size_t(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  AIC_CHECK(i <= bounds_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

std::vector<double> Histogram::linear_buckets(double lo, double hi, int n) {
  AIC_CHECK(n >= 1 && hi > lo);
  std::vector<double> bounds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    bounds[std::size_t(i)] = lo + (hi - lo) * double(i + 1) / double(n);
  return bounds;
}

std::vector<double> Histogram::exponential_buckets(double start, double factor,
                                                   int n) {
  AIC_CHECK(n >= 1 && start > 0.0 && factor > 1.0);
  std::vector<double> bounds(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds[std::size_t(i)] = b;
    b *= factor;
  }
  return bounds;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = double(counts[i]);
    if (cum + c >= target && c > 0.0) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      const double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = c > 0.0 ? (target - cum) / c : 0.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return bounds.back();
}

std::uint64_t MetricsSnapshot::counter_or_zero(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge_or(std::string_view name, double fallback) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.counts.size(); ++i)
      hs.counts[i] = h->bucket_count(i);
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

bool MetricsRegistry::empty() const { return size() == 0; }

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace aic::obs
