// Bounded ring-buffer time-series over the metrics registry: the fleet's
// "when did it degrade" layer.
//
// MetricsRegistry answers "what happened in total"; a Series answers "what
// was it at t". The Sampler bridges the two: each sample(now) takes one
// registry snapshot and appends derived points to a TimeseriesStore —
//
//   * counters   -> "<name>.rate"     events (or bytes, ...) per second over
//                   the sampling window, with counter-reset handling: a
//                   value below the previous sample means the process (or
//                   registry) restarted, and the full current value is the
//                   window's delta;
//   * gauges     -> "<name>"          last value wins, sampled as-is;
//   * histograms -> "<name>.p50/.p95/.p99" interpolated quantiles of the
//                   observations that landed *within* the window (delta of
//                   the cumulative bucket counts), plus "<name>.rate"
//                   observations per second. An empty window appends no
//                   quantile points at all — a quiet interval reports
//                   nothing rather than a fabricated zero.
//
// Time is whatever clock the caller passes to sample(): the fleet scheduler
// ticks at round boundaries and the failure simulator at checkpoint
// boundaries, both in *virtual* seconds. Nothing here reads a host clock —
// obs::wall_now_ns stays the library's only gateway and the det-clock lint
// holds.
//
// Storage is bounded: each Series is a ring of `capacity` points (oldest
// evicted first, evictions counted), so a week-long fleet run holds a
// fixed-size telemetry plane no matter how many rounds it ticks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace aic::obs {

struct SamplePoint {
  double t = 0.0;
  double v = 0.0;
};

/// One named series: a bounded ring of (t, v) points, appended in
/// nondecreasing time order. Thread-safe (one mutex per series; the sampler
/// is the only writer in practice, readers are dashboards and SLO rules).
class Series {
 public:
  Series(std::string name, std::size_t capacity);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Appends one point; evicts the oldest once the ring is full. Points
  /// must arrive in nondecreasing t (CheckError otherwise — a time-series
  /// that goes backwards is a clock bug, not data).
  void push(double t, double v);

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  /// Points pushed over the series' whole life (>= size()).
  std::uint64_t total_pushed() const;
  /// Points evicted by the capacity bound.
  std::uint64_t evicted() const;

  /// The newest point; CheckError when empty.
  SamplePoint last() const;
  /// Retained points, oldest -> newest.
  std::vector<SamplePoint> points() const;
  /// Retained points with from_t <= t <= to_t, oldest -> newest.
  std::vector<SamplePoint> points_in(double from_t, double to_t) const;

 private:
  const std::string name_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SamplePoint> ring_;
  std::size_t next_ = 0;  // overwrite cursor once the ring is full
  std::uint64_t total_ = 0;
};

/// Named series registry; get-or-create, stable handles (node ownership),
/// same shape as MetricsRegistry.
class TimeseriesStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TimeseriesStore(std::size_t capacity_per_series = kDefaultCapacity);

  Series& series(std::string_view name);
  /// Lookup without creating; nullptr when absent.
  const Series* find(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

/// Derives time-series points from successive MetricsRegistry snapshots.
/// Single writer by design: call sample() from one place (a round-boundary
/// hook), with nondecreasing timestamps.
class Sampler {
 public:
  struct Config {
    /// Samples closer than this to the previous one are skipped entirely
    /// (returns 0 points) — the throttle for fine-grained tick sources.
    double min_interval_s = 0.0;
  };

  Sampler(const MetricsRegistry* metrics, TimeseriesStore* out);
  Sampler(const MetricsRegistry* metrics, TimeseriesStore* out,
          Config config);

  /// Takes one snapshot at virtual time now_s and appends derived points.
  /// Returns the number of points appended. The first call establishes the
  /// baseline: gauges are recorded, rates and quantiles need a window and
  /// start with the second call.
  std::size_t sample(double now_s);

  std::uint64_t samples() const { return samples_; }

 private:
  const MetricsRegistry* metrics_;
  TimeseriesStore* out_;
  Config config_;
  bool have_prev_ = false;
  double prev_t_ = 0.0;
  MetricsSnapshot prev_;
  std::uint64_t samples_ = 0;
};

}  // namespace aic::obs
