// The observability schema: every metric and trace-event name the AIC
// pipeline emits, in one place.
//
// Instrumentation sites and consumers (RunReport, tools/aic_report, tests)
// both compile against these constants, so the schema cannot silently
// drift between the writer and the reader. Naming convention:
// `<subsystem>.<noun>` for metrics, with `.seconds`/`.bytes`/`.bps`
// suffixes for units; trace events are (category, name) pairs.
#pragma once

#include <cstdint>
#include <string>

namespace aic::obs::names {

// --- ckpt: the checkpointing core (AsyncCheckpointer / CheckpointChain) ---
inline constexpr const char* kCkptCheckpoints = "ckpt.checkpoints";
inline constexpr const char* kCkptFulls = "ckpt.full_checkpoints";
inline constexpr const char* kCkptPagesWritten = "ckpt.pages_written";
inline constexpr const char* kCkptUncompressedBytes =
    "ckpt.uncompressed_bytes";
inline constexpr const char* kCkptFileBytes = "ckpt.file_bytes";
inline constexpr const char* kCkptCaptureSeconds = "ckpt.capture_wall_seconds";
inline constexpr const char* kCkptCompressSeconds =
    "ckpt.compress_wall_seconds";
// Rewind-window retention (Config::rewind_budget > 0).
inline constexpr const char* kCkptPrunes = "ckpt.prunes";
inline constexpr const char* kCkptPruneBytes = "ckpt.prune_bytes";
/// Prunes whose successor had to be rewritten as a full checkpoint.
inline constexpr const char* kCkptReanchors = "ckpt.reanchors";

// --- delta: the parallel page-delta compression pipeline ---
inline constexpr const char* kDeltaBytesIn = "delta.bytes_in";
inline constexpr const char* kDeltaBytesOut = "delta.bytes_out";
inline constexpr const char* kDeltaPagesDelta = "delta.pages_delta";
inline constexpr const char* kDeltaPagesRaw = "delta.pages_raw";
inline constexpr const char* kDeltaPagesSame = "delta.pages_same";
inline constexpr const char* kDeltaShards = "delta.shards";
inline constexpr const char* kDeltaShardPages = "delta.shard_pages";

// --- xfer: the chunked L2/L3 drain engine ---
inline constexpr const char* kXferChunksSent = "xfer.chunks_sent";
inline constexpr const char* kXferChunksFailed = "xfer.chunks_failed";
inline constexpr const char* kXferRetries = "xfer.retries";
inline constexpr const char* kXferBytesAcked = "xfer.bytes_acked";
inline constexpr const char* kXferBytesWasted = "xfer.bytes_wasted";
inline constexpr const char* kXferCommits = "xfer.commits";
inline constexpr const char* kXferAborts = "xfer.aborts";
inline constexpr const char* kXferInterrupts = "xfer.interrupts";
inline constexpr const char* kXferResumes = "xfer.resumes";
inline constexpr const char* kXferChunkSeconds = "xfer.chunk_seconds";
inline constexpr const char* kXferBackoffSeconds = "xfer.backoff_wait_seconds";
/// Goodput of the most recently committed drain (bytes acked / virtual
/// seconds from submit to commit).
inline constexpr const char* kXferDrainGoodputBps = "xfer.drain_goodput_bps";

// --- predictor: predicted-vs-observed residuals (relative error) ---
inline constexpr const char* kPredictorObservations =
    "predictor.observations";
inline constexpr const char* kPredictorC1RelErr = "predictor.c1.rel_err";
inline constexpr const char* kPredictorDlRelErr = "predictor.dl.rel_err";
inline constexpr const char* kPredictorDsRelErr = "predictor.ds.rel_err";

// --- decider: the Newton–Raphson / EVT work-span search ---
inline constexpr const char* kDeciderEvaluations = "decider.evaluations";
inline constexpr const char* kDeciderNewtonIters = "decider.newton_iters";
/// Searches where a boundary or grid point beat the NR stationary point
/// (the EVT fallback path).
inline constexpr const char* kDeciderBoundaryPicks = "decider.boundary_picks";
inline constexpr const char* kDeciderWStar = "decider.w_star";
inline constexpr const char* kDeciderTakes = "decider.takes";

// --- sim: the end-to-end failure simulator ---
inline constexpr const char* kSimFailuresL1 = "sim.failures.l1";
inline constexpr const char* kSimFailuresL2 = "sim.failures.l2";
inline constexpr const char* kSimFailuresL3 = "sim.failures.l3";
inline constexpr const char* kSimRestores = "sim.restores";
inline constexpr const char* kSimDrainsResumed = "sim.drains_resumed";
inline constexpr const char* kSimCheckpoints = "sim.checkpoints";
inline constexpr const char* kSimNet2 = "sim.net2";
inline constexpr const char* kSimTurnaroundSeconds = "sim.turnaround_seconds";
inline constexpr const char* kSimBaseSeconds = "sim.base_seconds";
/// Elastic resizes applied (core-count reconfigurations mid-run).
inline constexpr const char* kSimResizes = "sim.resizes";
/// Decider re-plans triggered by a resize (replan_on_resize).
inline constexpr const char* kSimReplans = "sim.replans";

// --- fleet: the multi-tenant checkpoint service ---
inline constexpr const char* kFleetJobsAdmitted = "fleet.jobs_admitted";
inline constexpr const char* kFleetJobsQueued = "fleet.jobs_queued";
inline constexpr const char* kFleetJobsRejected = "fleet.jobs_rejected";
inline constexpr const char* kFleetJobsFinished = "fleet.jobs_finished";
inline constexpr const char* kFleetCheckpoints = "fleet.checkpoints";
inline constexpr const char* kFleetCommits = "fleet.commits";
inline constexpr const char* kFleetFailures = "fleet.failures";
inline constexpr const char* kFleetReworkSeconds = "fleet.rework_seconds";
/// Aggregate NET² proxy: every byte the fleet's drains put on the shared
/// channel (acked and wasted alike).
inline constexpr const char* kFleetNet2Bytes = "fleet.net2_bytes";
inline constexpr const char* kFleetGoodputBps = "fleet.goodput_bps";
inline constexpr const char* kFleetTimeToSafeSeconds =
    "fleet.time_to_safe_seconds";
// Rewind-window retention across the fleet (bounded per-job storage).
inline constexpr const char* kFleetRewindLiveBytes = "fleet.rewind.live_bytes";
inline constexpr const char* kFleetRewindDiscards = "fleet.rewind.discards";
/// Worst retained rewind gap across jobs vs. its certified envelope.
inline constexpr const char* kFleetRewindMaxGapSeconds =
    "fleet.rewind.max_gap_seconds";
inline constexpr const char* kFleetRewindGapBoundSeconds =
    "fleet.rewind.gap_bound_seconds";
/// Elastic resizes applied across the fleet.
inline constexpr const char* kFleetResizes = "fleet.resizes";

// Admission-controller head-room (live gauges, updated on every offer /
// resize / release / promotion).
inline constexpr const char* kFleetAdmissionDemandBps =
    "fleet.admission.demand_bps";
inline constexpr const char* kFleetAdmissionBudgetBps =
    "fleet.admission.budget_bps";
inline constexpr const char* kFleetAdmissionQueueDepth =
    "fleet.admission.queue_depth";

// --- fleet.slo: the SLO/burn-rate engine (obs/slo.h) ---
inline constexpr const char* kSloEvaluations = "fleet.slo.evaluations";
inline constexpr const char* kSloEvents = "fleet.slo.events";
inline constexpr const char* kSloBreaches = "fleet.slo.breaches";
inline constexpr const char* kSloBurnAlerts = "fleet.slo.burn_alerts";

// Per-rule gauge fields, namespaced under `fleet.slo.<rule>.` by
// slo_metric() below. `ok` is 1 while the rule holds AND is not burning.
inline constexpr const char* kSloRuleOk = "ok";
inline constexpr const char* kSloRuleValue = "value";
inline constexpr const char* kSloRuleBurnShort = "burn_short";
inline constexpr const char* kSloRuleBurnLong = "burn_long";

/// Builds the per-rule SLO metric name `fleet.slo.<rule>.<field>`.
inline std::string slo_metric(const std::string& rule, const char* field) {
  std::string name = "fleet.slo.";
  name += rule;
  name += '.';
  name += field;
  return name;
}

// Per-tenant metric fields, namespaced under `fleet.tenant.<id>.` by
// tenant_metric() below.
inline constexpr const char* kTenantGoodputBps = "goodput_bps";
inline constexpr const char* kTenantNet2Bytes = "net2_bytes";
inline constexpr const char* kTenantCommits = "commits";
inline constexpr const char* kTenantJobsFinished = "jobs_finished";
inline constexpr const char* kTenantTimeToSafeP99 = "time_to_safe_p99_s";
/// Per-tenant time-to-safe histogram (observed at every commit): the
/// source of the per-tenant windowed p99 series the telemetry plane and
/// aic_top render.
inline constexpr const char* kTenantTimeToSafeSeconds =
    "time_to_safe_seconds";

/// Builds the per-tenant metric name `fleet.tenant.<id>.<field>` — the one
/// dynamic corner of the schema; consumers reconstruct names with the same
/// function, so writer and reader still cannot drift.
inline std::string tenant_metric(std::uint64_t tenant, const char* field) {
  std::string name = "fleet.tenant.";
  name += std::to_string(tenant);
  name += '.';
  name += field;
  return name;
}

// --- trace categories ---
inline constexpr const char* kCatCkpt = "ckpt";
inline constexpr const char* kCatDelta = "delta";
inline constexpr const char* kCatXfer = "xfer";
inline constexpr const char* kCatDecider = "decider";
inline constexpr const char* kCatSim = "sim";
inline constexpr const char* kCatFleet = "fleet";
inline constexpr const char* kCatSlo = "slo";

// --- trace event names ---
inline constexpr const char* kEvInterval = "interval";   // ckpt, span
inline constexpr const char* kEvCapture = "capture";     // ckpt, span (wall)
inline constexpr const char* kEvCompress = "compress";   // ckpt, span (wall)
inline constexpr const char* kEvLand = "land";           // ckpt, span
inline constexpr const char* kEvShard = "shard";         // delta, span (wall)
inline constexpr const char* kEvChunk = "chunk";         // xfer, span
inline constexpr const char* kEvBackoff = "backoff";     // xfer, span
inline constexpr const char* kEvCommit = "commit";       // xfer, instant
inline constexpr const char* kEvAbort = "abort";         // xfer, instant
inline constexpr const char* kEvInterrupt = "interrupt"; // xfer, instant
inline constexpr const char* kEvResume = "resume";       // xfer, instant
inline constexpr const char* kEvDecision = "decision";   // decider, instant
inline constexpr const char* kEvFailure = "failure";     // sim/fleet, instant
inline constexpr const char* kEvAdmit = "admit";         // fleet, instant
inline constexpr const char* kEvQueue = "queue";         // fleet, instant
inline constexpr const char* kEvReject = "reject";       // fleet, instant
inline constexpr const char* kEvJobFinish = "job_finish";  // fleet, instant
inline constexpr const char* kEvRestore = "restore";     // sim, span
inline constexpr const char* kEvResize = "resize";       // sim/fleet, instant
inline constexpr const char* kEvReplan = "replan";       // sim/fleet, instant
inline constexpr const char* kEvPrune = "prune";         // ckpt/fleet, instant
inline constexpr const char* kEvReanchor = "reanchor";   // ckpt, instant
/// Error escaping a subsystem boundary (any category, instant) — the last
/// event a flight-recorder postmortem usually holds.
inline constexpr const char* kEvError = "error";

}  // namespace aic::obs::names
