// The observability schema: every metric and trace-event name the AIC
// pipeline emits, in one place.
//
// Instrumentation sites and consumers (RunReport, tools/aic_report, tests)
// both compile against these constants, so the schema cannot silently
// drift between the writer and the reader. Naming convention:
// `<subsystem>.<noun>` for metrics, with `.seconds`/`.bytes`/`.bps`
// suffixes for units; trace events are (category, name) pairs.
#pragma once

namespace aic::obs::names {

// --- ckpt: the checkpointing core (AsyncCheckpointer / CheckpointChain) ---
inline constexpr const char* kCkptCheckpoints = "ckpt.checkpoints";
inline constexpr const char* kCkptFulls = "ckpt.full_checkpoints";
inline constexpr const char* kCkptPagesWritten = "ckpt.pages_written";
inline constexpr const char* kCkptUncompressedBytes =
    "ckpt.uncompressed_bytes";
inline constexpr const char* kCkptFileBytes = "ckpt.file_bytes";
inline constexpr const char* kCkptCaptureSeconds = "ckpt.capture_wall_seconds";
inline constexpr const char* kCkptCompressSeconds =
    "ckpt.compress_wall_seconds";

// --- delta: the parallel page-delta compression pipeline ---
inline constexpr const char* kDeltaBytesIn = "delta.bytes_in";
inline constexpr const char* kDeltaBytesOut = "delta.bytes_out";
inline constexpr const char* kDeltaPagesDelta = "delta.pages_delta";
inline constexpr const char* kDeltaPagesRaw = "delta.pages_raw";
inline constexpr const char* kDeltaPagesSame = "delta.pages_same";
inline constexpr const char* kDeltaShards = "delta.shards";
inline constexpr const char* kDeltaShardPages = "delta.shard_pages";

// --- xfer: the chunked L2/L3 drain engine ---
inline constexpr const char* kXferChunksSent = "xfer.chunks_sent";
inline constexpr const char* kXferChunksFailed = "xfer.chunks_failed";
inline constexpr const char* kXferRetries = "xfer.retries";
inline constexpr const char* kXferBytesAcked = "xfer.bytes_acked";
inline constexpr const char* kXferBytesWasted = "xfer.bytes_wasted";
inline constexpr const char* kXferCommits = "xfer.commits";
inline constexpr const char* kXferAborts = "xfer.aborts";
inline constexpr const char* kXferInterrupts = "xfer.interrupts";
inline constexpr const char* kXferResumes = "xfer.resumes";
inline constexpr const char* kXferChunkSeconds = "xfer.chunk_seconds";
inline constexpr const char* kXferBackoffSeconds = "xfer.backoff_wait_seconds";
/// Goodput of the most recently committed drain (bytes acked / virtual
/// seconds from submit to commit).
inline constexpr const char* kXferDrainGoodputBps = "xfer.drain_goodput_bps";

// --- predictor: predicted-vs-observed residuals (relative error) ---
inline constexpr const char* kPredictorObservations =
    "predictor.observations";
inline constexpr const char* kPredictorC1RelErr = "predictor.c1.rel_err";
inline constexpr const char* kPredictorDlRelErr = "predictor.dl.rel_err";
inline constexpr const char* kPredictorDsRelErr = "predictor.ds.rel_err";

// --- decider: the Newton–Raphson / EVT work-span search ---
inline constexpr const char* kDeciderEvaluations = "decider.evaluations";
inline constexpr const char* kDeciderNewtonIters = "decider.newton_iters";
/// Searches where a boundary or grid point beat the NR stationary point
/// (the EVT fallback path).
inline constexpr const char* kDeciderBoundaryPicks = "decider.boundary_picks";
inline constexpr const char* kDeciderWStar = "decider.w_star";
inline constexpr const char* kDeciderTakes = "decider.takes";

// --- sim: the end-to-end failure simulator ---
inline constexpr const char* kSimFailuresL1 = "sim.failures.l1";
inline constexpr const char* kSimFailuresL2 = "sim.failures.l2";
inline constexpr const char* kSimFailuresL3 = "sim.failures.l3";
inline constexpr const char* kSimRestores = "sim.restores";
inline constexpr const char* kSimDrainsResumed = "sim.drains_resumed";
inline constexpr const char* kSimCheckpoints = "sim.checkpoints";
inline constexpr const char* kSimNet2 = "sim.net2";
inline constexpr const char* kSimTurnaroundSeconds = "sim.turnaround_seconds";
inline constexpr const char* kSimBaseSeconds = "sim.base_seconds";

// --- trace categories ---
inline constexpr const char* kCatCkpt = "ckpt";
inline constexpr const char* kCatDelta = "delta";
inline constexpr const char* kCatXfer = "xfer";
inline constexpr const char* kCatDecider = "decider";
inline constexpr const char* kCatSim = "sim";

// --- trace event names ---
inline constexpr const char* kEvInterval = "interval";   // ckpt, span
inline constexpr const char* kEvCapture = "capture";     // ckpt, span (wall)
inline constexpr const char* kEvCompress = "compress";   // ckpt, span (wall)
inline constexpr const char* kEvLand = "land";           // ckpt, span
inline constexpr const char* kEvShard = "shard";         // delta, span (wall)
inline constexpr const char* kEvChunk = "chunk";         // xfer, span
inline constexpr const char* kEvBackoff = "backoff";     // xfer, span
inline constexpr const char* kEvCommit = "commit";       // xfer, instant
inline constexpr const char* kEvAbort = "abort";         // xfer, instant
inline constexpr const char* kEvInterrupt = "interrupt"; // xfer, instant
inline constexpr const char* kEvResume = "resume";       // xfer, instant
inline constexpr const char* kEvDecision = "decision";   // decider, instant
inline constexpr const char* kEvFailure = "failure";     // sim, instant
inline constexpr const char* kEvRestore = "restore";     // sim, span
/// Error escaping a subsystem boundary (any category, instant) — the last
/// event a flight-recorder postmortem usually holds.
inline constexpr const char* kEvError = "error";

}  // namespace aic::obs::names
