// The assembled telemetry plane: one TimeseriesStore + Sampler + SloEngine
// + CausalLog hanging off an obs::Hub, ticked from a virtual clock.
//
// Enable with Hub::enable_telemetry() (trace.h), then drive tick(now_s)
// from the simulation's own timeline — the fleet scheduler ticks at round
// boundaries, the failure simulator at checkpoint boundaries. Each tick:
//
//   1. samples the hub's MetricsRegistry into the store (timeseries.h);
//   2. evaluates every SLO rule against the store (slo.h);
//   3. publishes the verdicts back as `fleet.slo.<rule>.*` gauges and
//      counters (so SLO health is itself a sampled series), emits one
//      trace instant per event (category "slo"), and forwards events to
//      the flight recorder's SLO ring when one is attached — a mid-drain
//      postmortem then names the SLO state at death.
//
// Everything is a pure *read* of the instrumented run (the SLO gauges land
// in the registry, never in any simulation state), so attaching telemetry
// provably cannot perturb a deterministic timeline — the fleet digest
// tests pin that.
//
// doc() freezes the whole plane into a TelemetryDoc; telemetry_to_json /
// telemetry_from_json round-trip it as schema "aic-telemetry-v1", the
// recorded-run format tools/aic_top renders and replays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/causal.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace aic::obs {

struct Hub;
class Gauge;
class Counter;

inline constexpr const char kTelemetrySchema[] = "aic-telemetry-v1";

struct TelemetryConfig {
  std::size_t series_capacity = TimeseriesStore::kDefaultCapacity;
  Sampler::Config sampler;
  std::size_t slo_event_capacity = SloEngine::kDefaultEventCapacity;
  CausalLog::Config causal;
};

/// The frozen view of a telemetry plane (and the parse result of a
/// recorded run).
struct TelemetryDoc {
  double now_s = 0.0;
  std::map<std::string, std::vector<SamplePoint>> series;
  std::vector<SloRule> rules;
  std::vector<SloStatus> status;
  std::vector<SloEvent> events;
  std::vector<CausalChain> slowest;
  std::vector<CausalChain> recent;
};

std::string telemetry_to_json(const TelemetryDoc& doc);
/// Inverse of telemetry_to_json; throws aic::CheckError on malformed or
/// schema-violating input.
TelemetryDoc telemetry_from_json(std::string_view json);

class Telemetry {
 public:
  Telemetry(Hub& hub, TelemetryConfig config);

  TimeseriesStore& store() { return store_; }
  const TimeseriesStore& store() const { return store_; }
  Sampler& sampler() { return sampler_; }
  SloEngine& slo() { return slo_; }
  const SloEngine& slo() const { return slo_; }
  CausalLog& causal() { return causal_; }
  const CausalLog& causal() const { return causal_; }

  /// One telemetry round at virtual time now_s (see file comment).
  /// Returns the SLO events emitted this tick.
  std::vector<SloEvent> tick(double now_s);

  std::uint64_t ticks() const { return ticks_; }
  double last_tick_s() const { return last_tick_s_; }

  TelemetryDoc doc() const;

 private:
  Hub& hub_;
  TimeseriesStore store_;
  Sampler sampler_;
  SloEngine slo_;
  CausalLog causal_;
  std::uint64_t ticks_ = 0;
  double last_tick_s_ = 0.0;
  Counter* m_evaluations_ = nullptr;
  Counter* m_events_ = nullptr;
  Counter* m_breaches_ = nullptr;
  Counter* m_burn_alerts_ = nullptr;
  /// Per-rule gauge handles (ok, value, burn_short, burn_long), resolved
  /// lazily at first publish and cached.
  struct RuleGauges {
    Gauge* ok = nullptr;
    Gauge* value = nullptr;
    Gauge* burn_short = nullptr;
    Gauge* burn_long = nullptr;
  };
  std::map<std::string, RuleGauges> rule_gauges_;
};

}  // namespace aic::obs
