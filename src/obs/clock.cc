#include "obs/clock.h"

#include <chrono>

namespace aic::obs {

std::uint64_t wall_now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

double wall_seconds_since(std::uint64_t origin_ns) {
  return double(wall_now_ns() - origin_ns) * 1e-9;
}

}  // namespace aic::obs
