// Typed span/instant tracing across the AIC pipeline's two timelines.
//
// The pipeline lives in two kinds of time at once: *wall-clock* time (real
// work on the host — delta compression on the checkpointing cores) and
// *virtual* time (the discrete-event clocks of the transfer engine and the
// failure simulator). A trace event carries its TimeDomain so one run
// exports as a single Chrome-trace file with one "process" lane per domain
// (export.h: trace_to_chrome_json), and a whole simulated run — intervals,
// compression shards, drain chunks, backoffs, failures, restarts —
// renders as a timeline in chrome://tracing or Perfetto.
//
// Event identity is two static strings (category + name) plus a small
// fixed set of numeric args; nothing in an event owns memory, so recording
// is one mutex acquisition and one vector append. Capacity is bounded:
// once `capacity` events are held, further events are counted in dropped()
// instead of growing without limit (a long simulation can emit millions of
// chunk spans).
//
// Virtual-time events pass their simulator timestamps directly; wall-clock
// events use seconds since the log's creation (wall_seconds(), backed by
// obs::wall_now_ns — the library's only host-clock gateway).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace aic::obs {

class FlightRecorder;
class Telemetry;
struct TelemetryConfig;

enum class TimeDomain : std::uint8_t { kVirtual = 0, kWall = 1 };

const char* to_string(TimeDomain d);

/// One key/value annotation; keys must be string literals (or otherwise
/// outlive the log).
struct TraceArg {
  const char* key = "";
  double value = 0.0;
};

struct TraceEvent {
  enum class Phase : std::uint8_t { kSpan = 0, kInstant = 1 };
  static constexpr std::size_t kMaxArgs = 4;

  const char* category = "";  // subsystem: "ckpt", "delta", "xfer", ...
  const char* name = "";      // event type: "interval", "chunk", ...
  Phase phase = Phase::kInstant;
  TimeDomain domain = TimeDomain::kVirtual;
  double start = 0.0;     // seconds in the event's domain
  double duration = 0.0;  // 0 for instants
  /// Export lane within the domain (shard index, transfer level, ...).
  std::uint32_t track = 0;
  std::uint8_t arg_count = 0;
  std::array<TraceArg, kMaxArgs> args{};
};

class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity);

  /// Records a completed span [start_s, end_s] (seconds in `domain`). Args
  /// beyond TraceEvent::kMaxArgs are dropped.
  void span(TimeDomain domain, const char* category, const char* name,
            double start_s, double end_s, std::uint32_t track = 0,
            std::initializer_list<TraceArg> args = {});

  /// Records a point event at time t_s.
  void instant(TimeDomain domain, const char* category, const char* name,
               double t_s, std::uint32_t track = 0,
               std::initializer_list<TraceArg> args = {});

  /// Wall-clock seconds since this log was created — the time base every
  /// kWall event must use so lanes line up in the export.
  double wall_seconds() const { return wall_seconds_since(origin_ns_); }

  /// Copies the events recorded so far (stable order of recording).
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;
  /// Events discarded after the capacity bound was reached.
  std::uint64_t dropped() const;

  /// Forwards every recorded event to `tap` (the failure flight recorder)
  /// BEFORE the capacity check, so the tap keeps seeing the tail of a run
  /// even after this log stops growing. nullptr detaches.
  void set_tap(FlightRecorder* tap) {
    tap_.store(tap, std::memory_order_release);
  }

 private:
  void push(TraceEvent e, std::initializer_list<TraceArg> args);

  const std::uint64_t origin_ns_;
  const std::size_t capacity_;
  std::atomic<FlightRecorder*> tap_{nullptr};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// The observability hub an instrumented component attaches to: one metrics
/// registry plus one trace log, threaded through the pipeline as a single
/// `obs::Hub*` (nullptr = observability disabled, near-zero cost).
struct Hub {
  MetricsRegistry metrics;
  TraceLog trace;

  explicit Hub(std::size_t trace_capacity = TraceLog::kDefaultCapacity);
  ~Hub();
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Attaches a failure flight recorder (flight_recorder.h): a ring of the
  /// last `capacity` trace events — fed even past the TraceLog's own
  /// capacity bound — with final values drawn from `metrics`, dumping to
  /// `dump_path` on failure. Idempotent; returns the recorder.
  FlightRecorder& enable_flight_recorder(
      std::size_t capacity = 256, std::string dump_path = "postmortem.json");

  /// The attached recorder, or nullptr when none was enabled.
  FlightRecorder* flight() const { return flight_.get(); }

  /// Attaches the telemetry plane (telemetry.h): a TimeseriesStore fed by
  /// a Sampler over `metrics`, an SLO engine, and a causal time-to-safe
  /// log, driven by Telemetry::tick from a virtual clock. Idempotent (the
  /// first call's config wins); returns the plane. Enable before
  /// constructing the components that will feed it — instruments resolve
  /// the plane once, at attach time.
  Telemetry& enable_telemetry();
  Telemetry& enable_telemetry(const TelemetryConfig& config);

  /// The attached telemetry plane, or nullptr when none was enabled.
  Telemetry* telemetry() const { return telemetry_.get(); }

  /// Writes the postmortem via the attached recorder; false (and no file)
  /// when no recorder is enabled. Never throws — this runs on failure
  /// paths.
  bool dump_postmortem(std::string_view reason,
                       std::string_view detail) const noexcept;

 private:
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace aic::obs
