// RunReport: the human-readable per-run summary of an instrumented AIC run.
//
// A report is assembled from a MetricsSnapshot (live, from a Hub, or
// re-read from the JSON a previous run exported) plus — optionally — the
// run's trace events, from which it recovers time-ordered history that the
// registry's aggregates cannot hold (the sequence of chosen w_L* values
// from "decider/decision" instants). render() prints the sections the
// bench targets used to hand-roll: simulator outcome, decider behaviour
// with the w_L* history, predictor residual statistics, delta-compression
// totals, transfer-engine totals, and a catch-all dump of any metric no
// section claimed (so new instrumentation is never silently invisible).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aic::obs {

struct RunReport {
  MetricsSnapshot metrics;
  /// Chosen w_L* per decision, in decision order (empty without a trace).
  std::vector<double> w_star_history;
  std::size_t trace_event_count = 0;
  std::uint64_t trace_dropped = 0;

  static RunReport from_metrics(MetricsSnapshot snap);
  /// Snapshot both sides of a live hub; pulls w_L* history from the trace.
  static RunReport from_hub(const Hub& hub);
  /// Rebuild from exported files: `metrics_json` as written by
  /// metrics_to_json, and (optionally, empty to skip) `chrome_trace_json`
  /// as written by trace_to_chrome_json. Throws CheckError on malformed
  /// input.
  static RunReport from_json(std::string_view metrics_json,
                             std::string_view chrome_trace_json = {});

  std::string render() const;
};

}  // namespace aic::obs
