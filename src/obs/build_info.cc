#include "obs/build_info.h"

#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>

// The build system stamps these in (src/CMakeLists.txt); the fallbacks keep
// the file compiling standalone (clang-tidy, IDE passes).
#ifndef AIC_SOURCE_DIR
#define AIC_SOURCE_DIR ""
#endif
#ifndef AIC_SANITIZE_STR
#define AIC_SANITIZE_STR ""
#endif
#ifndef AIC_BUILD_TYPE_STR
#define AIC_BUILD_TYPE_STR ""
#endif

namespace aic::obs {
namespace {

std::string trim(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ' || s.back() == '\t')) {
    s.pop_back();
  }
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return trim(line);
}

bool looks_like_sha(std::string_view s) {
  if (s.size() < 7 || s.size() > 64) return false;
  for (const char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

/// Resolves HEAD from a .git directory without invoking git: a detached
/// HEAD is the hash itself; a symbolic ref ("ref: refs/heads/main") is
/// looked up as a loose ref file, then in packed-refs.
std::string git_head_sha(const std::string& git_dir) {
  const std::string head = read_first_line(git_dir + "/HEAD");
  if (looks_like_sha(head)) return head;
  constexpr std::string_view kRefPrefix = "ref: ";
  if (head.rfind(kRefPrefix, 0) != 0) return "";
  const std::string ref = trim(head.substr(kRefPrefix.size()));
  if (ref.empty() || ref.find("..") != std::string::npos) return "";
  const std::string loose = read_first_line(git_dir + "/" + ref);
  if (looks_like_sha(loose)) return loose;
  std::ifstream packed(git_dir + "/packed-refs", std::ios::binary);
  std::string line;
  while (std::getline(packed, line)) {
    // "<sha> <refname>"; '#' lines are headers, '^' lines peeled tags.
    if (line.empty() || line[0] == '#' || line[0] == '^') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) continue;
    if (trim(line.substr(sp + 1)) != ref) continue;
    const std::string sha = trim(line.substr(0, sp));
    if (looks_like_sha(sha)) return sha;
  }
  return "";
}

std::string compiler_string() {
#if defined(__clang__)
  std::ostringstream os;
  os << "clang " << __clang_major__ << "." << __clang_minor__ << "."
     << __clang_patchlevel__;
  return os.str();
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo current_build_info() {
  BuildInfo info;
  const std::string source_dir = AIC_SOURCE_DIR;
  std::string sha;
  if (!source_dir.empty()) sha = git_head_sha(source_dir + "/.git");
  info.git_sha = sha.empty() ? "unknown" : sha;
  info.compiler = compiler_string();
  info.build_type = AIC_BUILD_TYPE_STR;
  info.sanitizer = AIC_SANITIZE_STR;
  info.nproc = int(std::thread::hardware_concurrency());
  return info;
}

}  // namespace aic::obs
