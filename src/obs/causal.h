// Causal time-to-safe attribution: where did each checkpoint's
// capture -> commit latency actually go?
//
// A CausalChain follows one checkpoint from the instant its capture starts
// to the instant its last chunk acks, accumulating seconds into a fixed
// segment taxonomy:
//
//   kCapture        local copy pause (footprint / capture bandwidth)
//   kCompress       delta/compression work (wall seconds on the host)
//   kAdmissionQueue waiting in the fleet admission queue before the job
//                   could run at all (attributed to the job's first chain)
//   kDrainQueue     submitted but not on the wire (waiting for a chunk
//                   attempt to start)
//   kInFlight       chunk attempts occupying the wire (successful or not)
//   kBackoff        retry backoff waits between failed attempts
//   kStalled        interrupted by a failure, waiting for the restart to
//                   resume the drain
//
// total_s is authoritative (reported by the closer, e.g. commit - capture
// in virtual time); unattributed() is the remainder the segments do not
// explain — in the fleet that is mostly round-boundary staleness (a commit
// is observed only at the next quantum edge). The decomposition is what
// lets a p99 time-to-safe sample be *explained*: the dominant segment
// names the bottleneck (wire vs retries vs stalls), not just the latency.
//
// The producers are TransferScheduler (drain segments, closes the chain at
// commit/abort), FleetScheduler (opens per capture, adds capture +
// admission-queue), and AsyncCheckpointer (capture/compress wall seconds +
// drain; a chain may mix wall and virtual seconds — totals come from the
// closer, not from subtracting clocks). The CausalLog keeps a bounded ring
// of recently closed chains plus the top-k slowest, so a 10k-job run
// retains the interesting tail in O(k) memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace aic::obs {

enum class CausalSegment : std::uint8_t {
  kCapture = 0,
  kCompress,
  kAdmissionQueue,
  kDrainQueue,
  kInFlight,
  kBackoff,
  kStalled,
};

inline constexpr std::size_t kCausalSegmentCount = 7;

const char* to_string(CausalSegment s);

struct CausalChain {
  std::uint64_t id = 0;
  std::string label;  // e.g. the drain key "j<job>/c<ckpt>"
  std::uint64_t tenant = 0;
  double open_t = 0.0;   // clock of the opener (informational)
  double total_s = 0.0;  // authoritative end-to-end latency
  bool closed = false;
  bool aborted = false;
  std::array<double, kCausalSegmentCount> seg{};

  double segment(CausalSegment s) const { return seg[std::size_t(s)]; }
  double accounted() const;
  /// total_s minus the segments' sum (clamped at 0): latency the taxonomy
  /// does not explain (round-boundary staleness, mostly).
  double unattributed() const;
  /// The largest segment — the critical path's head.
  CausalSegment dominant() const;
};

class CausalLog {
 public:
  struct Config {
    /// Recently closed chains retained (ring, oldest evicted).
    std::size_t ring_capacity = 1024;
    /// Slowest closed (non-aborted) chains retained, by total_s.
    std::size_t top_k = 16;
  };

  CausalLog();
  explicit CausalLog(Config config);

  /// Opens a chain; returns its id (never 0).
  std::uint64_t open(std::string label, std::uint64_t tenant, double t);
  /// Accumulates seconds into a segment; unknown ids are ignored (a chain
  /// evicted or never opened — attribution is best-effort by design).
  void add(std::uint64_t id, CausalSegment s, double seconds);
  /// Closes with an explicit end-to-end total.
  void close_total(std::uint64_t id, double total_s, bool aborted = false);
  /// Closes at time t_now on the opener's clock (total = t_now - open_t).
  void close_at(std::uint64_t id, double t_now, bool aborted = false);

  /// Recently closed chains, oldest -> newest.
  std::vector<CausalChain> recent() const;
  /// The top-k slowest closed non-aborted chains, slowest first.
  std::vector<CausalChain> slowest() const;

  std::uint64_t opened() const;
  std::uint64_t closed() const;
  std::size_t open_count() const;

 private:
  void finish(std::uint64_t id, double total_s, bool aborted);

  const Config config_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::uint64_t closed_total_ = 0;
  std::map<std::uint64_t, CausalChain> open_;
  std::vector<CausalChain> ring_;
  std::size_t next_ = 0;
  std::vector<CausalChain> top_;  // sorted slowest-first
};

}  // namespace aic::obs
