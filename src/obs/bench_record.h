// Machine-readable benchmark results: the BENCH_<target>.json schema.
//
// Every bench target (bench/) records its headline numbers — repeated
// samples per named metric, with units, direction, and free-form numeric
// params — plus the build provenance (build_info.h) and the reproduction
// Checker verdicts, and writes one schema-versioned JSON file per target.
// tools/aic_benchdiff loads two such files (or directories of them) and
// decides regression/improvement/neutral per metric (bench_diff.h), which
// is what turns the bench fleet from printed tables into a performance
// trajectory CI can gate on.
//
// Schema "aic-bench-v1":
//
//   {
//     "schema": "aic-bench-v1",
//     "target": "fig11_netsq_benchmarks",
//     "smoke": false,
//     "build": {"git_sha": "...", "compiler": "gcc 13.2.0",
//               "build_type": "RelWithDebInfo", "sanitizer": "",
//               "nproc": 8},
//     "checks": [{"claim": "...", "ok": true}, ...],
//     "metrics": [
//       {"name": "net2.milc.aic", "unit": "net2",
//        "higher_is_better": false,
//        "params": {"workload_scale": 0.25},
//        "samples": [1.31, 1.29, 1.33]}
//     ]
//   }
//
// Metric names are unique within a record and samples are never empty —
// bench_record_from_json enforces both (plus the usual hostile-input
// discipline of the obs JSON parser: every violation throws CheckError).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/build_info.h"

namespace aic::obs {

inline constexpr const char kBenchSchema[] = "aic-bench-v1";

/// One named measurement series. `samples` holds repeated observations of
/// the same quantity (same unit); summaries are median/IQR so a single
/// outlier repetition cannot flip a verdict.
struct BenchMetric {
  std::string name;
  std::string unit;               // "s", "net2", "B/s", "ratio", ...
  bool higher_is_better = false;  // goodput: true; latency/NET^2: false
  std::map<std::string, double> params;  // run parameters, for humans
  std::vector<double> samples;

  double median() const;
  /// Interquartile range (p75 - p25); 0 for a single sample.
  double iqr() const;
};

struct BenchCheck {
  std::string claim;
  bool ok = false;
};

/// One bench target's full result file.
struct BenchRecord {
  std::string target;
  bool smoke = false;
  BuildInfo build;
  std::vector<BenchCheck> checks;
  std::vector<BenchMetric> metrics;  // recording order; names unique

  /// Get-or-create by name (first creator's unit/direction win).
  BenchMetric& metric(std::string_view name, std::string_view unit,
                      bool higher_is_better = false);
  const BenchMetric* find(std::string_view name) const;
};

/// Fresh record stamped with the current build metadata.
BenchRecord make_bench_record(std::string_view target, bool smoke);

/// Canonical result filename for a target: "BENCH_<target>.json".
std::string bench_record_filename(std::string_view target);

/// Serializes to schema aic-bench-v1. Throws CheckError on an invalid
/// record (empty/duplicate metric names, empty sample sets, non-finite
/// samples) so a malformed file can never be written in the first place.
std::string bench_record_to_json(const BenchRecord& rec);

/// Parses and validates a result file. Throws CheckError on malformed
/// JSON, wrong/missing schema tag, or any structural violation.
BenchRecord bench_record_from_json(std::string_view json);

}  // namespace aic::obs
