#include "obs/trace.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/telemetry.h"

namespace aic::obs {

const char* to_string(TimeDomain d) {
  switch (d) {
    case TimeDomain::kVirtual:
      return "virtual";
    case TimeDomain::kWall:
      return "wall";
  }
  return "?";
}

TraceLog::TraceLog(std::size_t capacity)
    : origin_ns_(wall_now_ns()), capacity_(std::max<std::size_t>(capacity, 1)) {}

void TraceLog::push(TraceEvent e, std::initializer_list<TraceArg> args) {
  for (const TraceArg& a : args) {
    if (e.arg_count >= TraceEvent::kMaxArgs) break;
    e.args[e.arg_count++] = a;
  }
  // The flight recorder sees every event, including the ones dropped past
  // this log's capacity — a postmortem needs the newest events, the
  // exported timeline needs the oldest.
  if (FlightRecorder* tap = tap_.load(std::memory_order_acquire)) {
    tap->record(e);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceLog::span(TimeDomain domain, const char* category, const char* name,
                    double start_s, double end_s, std::uint32_t track,
                    std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.phase = TraceEvent::Phase::kSpan;
  e.domain = domain;
  e.start = start_s;
  e.duration = std::max(0.0, end_s - start_s);
  e.track = track;
  push(e, args);
}

void TraceLog::instant(TimeDomain domain, const char* category,
                       const char* name, double t_s, std::uint32_t track,
                       std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.phase = TraceEvent::Phase::kInstant;
  e.domain = domain;
  e.start = t_s;
  e.track = track;
  push(e, args);
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

Hub::Hub(std::size_t trace_capacity) : trace(trace_capacity) {}

Hub::~Hub() {
  // Detach the tap before the recorder is destroyed (members are torn down
  // after this body, in reverse declaration order — trace before flight_
  // would be fine, but a late event from another thread must not race the
  // recorder's destruction).
  trace.set_tap(nullptr);
}

FlightRecorder& Hub::enable_flight_recorder(std::size_t capacity,
                                            std::string dump_path) {
  if (!flight_) {
    flight_ = std::make_unique<FlightRecorder>(capacity);
    flight_->set_metrics(&metrics);
    trace.set_tap(flight_.get());
  }
  flight_->set_dump_path(std::move(dump_path));
  return *flight_;
}

Telemetry& Hub::enable_telemetry() { return enable_telemetry(TelemetryConfig{}); }

Telemetry& Hub::enable_telemetry(const TelemetryConfig& config) {
  if (!telemetry_) telemetry_ = std::make_unique<Telemetry>(*this, config);
  return *telemetry_;
}

bool Hub::dump_postmortem(std::string_view reason,
                          std::string_view detail) const noexcept {
  if (!flight_) return false;
  return flight_->dump(reason, detail);
}

}  // namespace aic::obs
