#include "obs/trace.h"

#include <algorithm>

namespace aic::obs {

const char* to_string(TimeDomain d) {
  switch (d) {
    case TimeDomain::kVirtual:
      return "virtual";
    case TimeDomain::kWall:
      return "wall";
  }
  return "?";
}

TraceLog::TraceLog(std::size_t capacity)
    : origin_ns_(wall_now_ns()), capacity_(std::max<std::size_t>(capacity, 1)) {}

void TraceLog::push(TraceEvent e, std::initializer_list<TraceArg> args) {
  for (const TraceArg& a : args) {
    if (e.arg_count >= TraceEvent::kMaxArgs) break;
    e.args[e.arg_count++] = a;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceLog::span(TimeDomain domain, const char* category, const char* name,
                    double start_s, double end_s, std::uint32_t track,
                    std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.phase = TraceEvent::Phase::kSpan;
  e.domain = domain;
  e.start = start_s;
  e.duration = std::max(0.0, end_s - start_s);
  e.track = track;
  push(e, args);
}

void TraceLog::instant(TimeDomain domain, const char* category,
                       const char* name, double t_s, std::uint32_t track,
                       std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.phase = TraceEvent::Phase::kInstant;
  e.domain = domain;
  e.start = t_s;
  e.track = track;
  push(e, args);
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace aic::obs
