#include "obs/flight_recorder.h"

#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "obs/json.h"

namespace aic::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> FlightRecorder::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void FlightRecorder::record_slo(const SloEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slo_total_;
  if (slo_ring_.size() < kSloCapacity) {
    slo_ring_.push_back(e);
    return;
  }
  slo_ring_[slo_next_] = e;
  slo_next_ = (slo_next_ + 1) % kSloCapacity;
}

std::vector<SloEvent> FlightRecorder::recent_slo() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloEvent> out;
  out.reserve(slo_ring_.size());
  for (std::size_t i = 0; i < slo_ring_.size(); ++i) {
    out.push_back(slo_ring_[(slo_next_ + i) % slo_ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_slo_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slo_total_;
}

void FlightRecorder::set_metrics(const MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::postmortem_json(std::string_view reason,
                                            std::string_view detail) const {
  const std::vector<TraceEvent> events = recent();
  const MetricsRegistry* metrics = nullptr;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics = metrics_;
    total = total_;
  }
  std::ostringstream os;
  os << "{\"schema\":\"" << kPostmortemSchema << "\"";
  os << ",\"reason\":\"" << json_escape(reason) << "\"";
  os << ",\"detail\":\"" << json_escape(detail) << "\"";
  os << ",\"events_total\":" << total;
  os << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) os << ",";
    os << "{\"domain\":\"" << to_string(e.domain) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
       << "\",\"phase\":\""
       << (e.phase == TraceEvent::Phase::kSpan ? "span" : "instant")
       << "\",\"t\":" << json_number(e.start)
       << ",\"dur\":" << json_number(e.duration) << ",\"track\":" << e.track;
    if (e.arg_count > 0) {
      os << ",\"args\":{";
      for (std::uint8_t a = 0; a < e.arg_count; ++a) {
        if (a) os << ",";
        os << "\"" << json_escape(e.args[a].key)
           << "\":" << json_number(e.args[a].value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"slo_events\":[";
  const std::vector<SloEvent> slo_events = recent_slo();
  for (std::size_t i = 0; i < slo_events.size(); ++i) {
    const SloEvent& e = slo_events[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << json_escape(e.rule) << "\",\"kind\":\""
       << to_string(e.kind) << "\",\"t\":" << json_number(e.t)
       << ",\"value\":" << json_number(e.value)
       << ",\"burn_short\":" << json_number(e.burn_short)
       << ",\"burn_long\":" << json_number(e.burn_long) << "}";
  }
  os << "],\"metrics\":"
     << metrics_to_json(metrics != nullptr ? metrics->snapshot()
                                           : MetricsSnapshot{})
     << "}";
  return os.str();
}

bool FlightRecorder::dump(std::string_view reason,
                          std::string_view detail) const noexcept {
  try {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      path = dump_path_;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << postmortem_json(reason, detail);
    return bool(out);
  } catch (...) {  // aic-lint: allow(exc-catch-all): noexcept dump boundary
    return false;
  }
}

namespace {

FlightRecorder* g_flight_recorder = nullptr;
std::terminate_handler g_previous_terminate = nullptr;

void terminate_with_postmortem() {
  if (FlightRecorder* recorder = g_flight_recorder) {
    std::string detail = "(no active exception)";
    if (const std::exception_ptr ep = std::current_exception()) {
      try {
        std::rethrow_exception(ep);
      } catch (const std::exception& e) {
        detail = e.what();
      } catch (...) {  // aic-lint: allow(exc-catch-all): classifying, not hiding
        detail = "(non-standard exception)";
      }
    }
    recorder->dump("uncaught-exception", detail);
  }
  if (g_previous_terminate != nullptr) g_previous_terminate();
  // Terminate handlers must not return; if the chained handler somehow
  // did, end the process with the conventional SIGABRT-like status.
  std::_Exit(134);  // aic-lint: allow(abort-exit): terminate handlers must not return
}

}  // namespace

void FlightRecorder::install_terminate_hook(FlightRecorder* recorder) {
  g_flight_recorder = recorder;
  if (std::get_terminate() != &terminate_with_postmortem) {
    g_previous_terminate = std::set_terminate(&terminate_with_postmortem);
  }
}

void FlightRecorder::uninstall_terminate_hook() {
  g_flight_recorder = nullptr;
  if (std::get_terminate() == &terminate_with_postmortem &&
      g_previous_terminate != nullptr) {
    std::set_terminate(g_previous_terminate);
    g_previous_terminate = nullptr;
  }
}

}  // namespace aic::obs
