// Checkpoint-chain integrity verification (the `aic_fsck` engine).
//
// The restart path needs the last full checkpoint plus *every* incremental
// after it, so one silently corrupted record poisons the whole chain.
// ChainVerifier walks a chain of serialized checkpoint records and checks,
// returning typed diagnostics instead of aborting on the first problem:
//
//   structural invariants
//     I1  every record parses (magic, v2 CRC-32C, bounded length fields);
//     I2  the chain starts with a full checkpoint;
//     I3  sequences strictly increase, with no duplicates;
//     I4  sequences are contiguous — a gap means a missing incremental,
//         after which every delta decodes against the wrong state;
//     I5  kind-vs-position legality: incremental/delta records never open
//         a chain (a mid-chain full legally restarts the replay state);
//     I6  app_time never regresses (warning — it is informational);
//   content invariants (replaying RestartEngine's state transitions)
//     I7  full checkpoints carry no freed-page list;
//     I8  every freed page was live in the accumulated pre-state;
//     I9  raw payloads decode (page count/id/body well-formed);
//     I10 delta payloads decompress against the accumulated previous
//         state — the exact state RestartEngine would hand the codec;
//     I11 v1 records (no checksum) are flagged as a warning so operators
//         know which part of a store predates integrity metadata.
//
// Verification never throws on corrupt input and never mutates anything:
// every injected fault surfaces as a Diagnostic. After a record fails
// I1/I9/I10 the replay state is unknown, so later content checks
// (I8–I10) are suspended and reported as skipped; structural checks
// continue to the end of the chain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/checkpoint_file.h"
#include "delta/page_delta.h"

namespace aic::verify {

enum class Severity : std::uint8_t { kWarning = 0, kError = 1 };

/// Stable machine-readable identity of a finding (the invariant violated).
enum class CheckCode : std::uint8_t {
  kParseError = 0,        // I1: magic / CRC / bounds / truncation
  kBadChainStart,         // I2/I5: chain opens with a non-full record
  kSequenceNotMonotone,   // I3
  kDuplicateSequence,     // I3
  kSequenceGap,           // I4: missing middle incremental
  kPrunedGap,             // I4' (warning): gap closed by a full re-anchor
  kAppTimeRegressed,      // I6 (warning)
  kFreedInFull,           // I7
  kFreedPageUnknown,      // I8
  kPayloadCorrupt,        // I9: raw-page payload undecodable
  kDeltaUndecodable,      // I10: delta payload fails against the pre-state
  kReplaySkipped,         // content checks suspended after earlier fault
  kUncheckedV1,           // I11 (warning): record has no checksum
  /// I1 variant: the record is recognizably an AIC checkpoint but its
  /// format version postdates this build ("AICCKPT4"+). Not corruption —
  /// the store needs a newer reader — so tools surface it distinctly
  /// (aic_fsck exits 2, not 1).
  kUnsupportedVersion,
};

const char* to_string(CheckCode code);

/// True when `filename` names a staged transfer partial (an in-progress
/// xfer drain: "<key>" + xfer::kPartialSuffix). Such files in a chain
/// directory are NOT corruption — they are the resumable leftovers of a
/// drain interrupted mid-chunk and must be excluded from chain
/// verification (fsck reports them as a distinct diagnostic instead).
bool is_partial_transfer_name(std::string_view filename);

struct Diagnostic {
  Severity severity = Severity::kError;
  CheckCode code = CheckCode::kParseError;
  /// Position of the offending record in the chain (0-based).
  std::size_t chain_index = 0;
  /// Sequence number of the offending record; kNoSequence when the record
  /// did not parse far enough to know it.
  static constexpr std::uint64_t kNoSequence = ~std::uint64_t{0};
  std::uint64_t sequence = kNoSequence;
  std::string message;

  /// One-line rendering: "ERROR [delta-undecodable] record 3 seq 7: ...".
  std::string render() const;
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  std::size_t records_checked = 0;
  std::uint64_t bytes_checked = 0;
  /// True when replay reached the end of the chain with no content faults
  /// (structural warnings do not clear it; errors of any kind do).
  bool replay_complete = false;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool ok() const { return error_count() == 0; }
  /// "3 record(s), 9184 bytes: 1 error(s), 0 warning(s)".
  std::string summary() const;
};

class ChainVerifier {
 public:
  struct Options {
    /// Replay payload decoding (I9/I10). Off = structural checks only,
    /// which never touch page bytes (cheap triage mode).
    bool replay = true;
    /// Emit kUncheckedV1 warnings for records without a checksum.
    bool warn_v1 = true;
  };

  ChainVerifier();
  explicit ChainVerifier(Options options);

  /// Verifies already-parsed records (structural + content invariants;
  /// I1 is vacuous here).
  Report verify(const std::vector<ckpt::CheckpointFile>& chain) const;

  /// Verifies serialized records in chain order — the fsck entry point;
  /// parse failures become kParseError diagnostics, never exceptions.
  Report verify_serialized(const std::vector<Bytes>& records) const;

 private:
  Options options_;
  delta::PageAlignedCompressor compressor_;
};

}  // namespace aic::verify
