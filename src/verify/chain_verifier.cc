#include "verify/chain_verifier.h"

#include <optional>
#include <sstream>

#include "common/check.h"
#include "xfer/transfer.h"

namespace aic::verify {
namespace {

using ckpt::CheckpointFile;
using ckpt::CheckpointKind;

/// Shared record-by-record walk used by both verify() entry points. Each
/// record arrives either parsed or as a parse-failure message; the walker
/// keeps checking structure after content faults and keeps collecting
/// diagnostics to the end of the chain.
class Walker {
 public:
  Walker(const ChainVerifier::Options& options,
         const delta::PageAlignedCompressor& compressor, Report& report)
      : options_(options), compressor_(compressor), report_(report) {}

  void step(std::size_t index, const CheckpointFile* f,
            const std::string& parse_error,
            CheckCode parse_code = CheckCode::kParseError) {
    ++report_.records_checked;
    if (f == nullptr) {
      emit(Severity::kError, parse_code, index, Diagnostic::kNoSequence,
           parse_error);
      replay_ok_ = false;
      return;
    }
    structural(index, *f);
    if (options_.replay) content(index, *f);
  }

  void finish() { report_.replay_complete = options_.replay && replay_ok_; }

 private:
  void emit(Severity severity, CheckCode code, std::size_t index,
            std::uint64_t sequence, const std::string& message) {
    report_.diagnostics.push_back(
        Diagnostic{severity, code, index, sequence, message});
  }

  void structural(std::size_t index, const CheckpointFile& f) {
    std::ostringstream os;
    if (first_) {
      if (f.kind != CheckpointKind::kFull) {
        os << "chain starts with a " << to_string(f.kind)
           << " record; restart needs a full checkpoint first";
        emit(Severity::kError, CheckCode::kBadChainStart, index, f.sequence,
             os.str());
        replay_ok_ = false;
      }
    } else if (f.sequence == prev_seq_) {
      os << "sequence " << f.sequence << " duplicates the previous record";
      emit(Severity::kError, CheckCode::kDuplicateSequence, index, f.sequence,
           os.str());
      replay_ok_ = false;
    } else if (f.sequence < prev_seq_) {
      os << "sequence " << f.sequence << " follows " << prev_seq_
         << "; records are out of order";
      emit(Severity::kError, CheckCode::kSequenceNotMonotone, index,
           f.sequence, os.str());
      replay_ok_ = false;
    } else if (f.sequence != prev_seq_ + 1) {
      if (f.kind == CheckpointKind::kFull) {
        // A gap right before a full checkpoint is the rewind window's
        // signature: the prune re-anchored the successor, so the record
        // depends on nothing that was discarded and replay stays sound.
        os << "sequence " << f.sequence << " follows " << prev_seq_ << "; "
           << (f.sequence - prev_seq_ - 1)
           << " checkpoint(s) pruned before this full re-anchor";
        emit(Severity::kWarning, CheckCode::kPrunedGap, index, f.sequence,
             os.str());
      } else {
        os << "sequence " << f.sequence << " follows " << prev_seq_ << "; "
           << (f.sequence - prev_seq_ - 1)
           << " checkpoint(s) missing in between";
        emit(Severity::kError, CheckCode::kSequenceGap, index, f.sequence,
             os.str());
        replay_ok_ = false;
      }
    }
    if (!first_ && f.app_time < prev_app_time_) {
      std::ostringstream ts;
      ts << "app_time " << f.app_time << " regresses below "
         << prev_app_time_;
      emit(Severity::kWarning, CheckCode::kAppTimeRegressed, index,
           f.sequence, ts.str());
    }
    if (options_.warn_v1 && f.version == CheckpointFile::kVersionV1) {
      emit(Severity::kWarning, CheckCode::kUncheckedV1, index, f.sequence,
           "v1 record carries no checksum; corruption here is only "
           "detectable by replay");
    }
    first_ = false;
    prev_seq_ = f.sequence;
    prev_app_time_ = f.app_time;
  }

  void content(std::size_t index, const CheckpointFile& f) {
    // A mid-chain full checkpoint depends on nothing before it, so it
    // re-anchors replay even after earlier faults.
    if (f.kind == CheckpointKind::kFull) {
      if (!f.freed_pages.empty()) {
        std::ostringstream os;
        os << "full checkpoint lists " << f.freed_pages.size()
           << " freed page(s); full records free nothing";
        emit(Severity::kError, CheckCode::kFreedInFull, index, f.sequence,
             os.str());
      }
      try {
        accumulated_ = mem::Snapshot();
        for (auto& [id, bytes] : ckpt::decode_raw_pages(f.payload))
          accumulated_.put_page(id, bytes);
        replay_ok_ = true;
      } catch (const CheckError& e) {
        emit(Severity::kError, CheckCode::kPayloadCorrupt, index, f.sequence,
             std::string("raw-page payload undecodable: ") + e.what());
        replay_ok_ = false;
      }
      return;
    }

    if (!replay_ok_) {
      emit(Severity::kWarning, CheckCode::kReplaySkipped, index, f.sequence,
           "pre-state unknown after an earlier fault; freed-page and "
           "payload checks skipped");
      return;
    }

    for (mem::PageId id : f.freed_pages) {
      if (!accumulated_.contains(id)) {
        std::ostringstream os;
        os << "freed page " << id << " was not live at the previous "
           << "checkpoint";
        emit(Severity::kError, CheckCode::kFreedPageUnknown, index,
             f.sequence, os.str());
      }
    }

    try {
      if (f.kind == CheckpointKind::kIncremental) {
        auto pages = ckpt::decode_raw_pages(f.payload);
        for (mem::PageId id : f.freed_pages) accumulated_.erase_page(id);
        for (auto& [id, bytes] : pages) accumulated_.put_page(id, bytes);
      } else {
        mem::Snapshot pages = compressor_.decompress(f.payload, accumulated_);
        for (mem::PageId id : f.freed_pages) accumulated_.erase_page(id);
        pages.overlay_onto(accumulated_);
      }
    } catch (const CheckError& e) {
      const CheckCode code = f.kind == CheckpointKind::kIncremental
                                 ? CheckCode::kPayloadCorrupt
                                 : CheckCode::kDeltaUndecodable;
      emit(Severity::kError, code, index, f.sequence,
           std::string(f.kind == CheckpointKind::kIncremental
                           ? "raw-page payload undecodable: "
                           : "delta payload undecodable against the "
                             "accumulated pre-state: ") +
               e.what());
      replay_ok_ = false;
    }
  }

  const ChainVerifier::Options& options_;
  const delta::PageAlignedCompressor& compressor_;
  Report& report_;

  bool first_ = true;
  bool replay_ok_ = true;
  std::uint64_t prev_seq_ = 0;
  double prev_app_time_ = 0.0;
  mem::Snapshot accumulated_;
};

}  // namespace

bool is_partial_transfer_name(std::string_view filename) {
  const std::string_view suffix = xfer::kPartialSuffix;
  return filename.size() > suffix.size() &&
         filename.substr(filename.size() - suffix.size()) == suffix;
}

const char* to_string(CheckCode code) {
  switch (code) {
    case CheckCode::kParseError:
      return "parse-error";
    case CheckCode::kBadChainStart:
      return "bad-chain-start";
    case CheckCode::kSequenceNotMonotone:
      return "sequence-not-monotone";
    case CheckCode::kDuplicateSequence:
      return "duplicate-sequence";
    case CheckCode::kSequenceGap:
      return "sequence-gap";
    case CheckCode::kPrunedGap:
      return "pruned-gap";
    case CheckCode::kAppTimeRegressed:
      return "app-time-regressed";
    case CheckCode::kFreedInFull:
      return "freed-in-full";
    case CheckCode::kFreedPageUnknown:
      return "freed-page-unknown";
    case CheckCode::kPayloadCorrupt:
      return "payload-corrupt";
    case CheckCode::kDeltaUndecodable:
      return "delta-undecodable";
    case CheckCode::kReplaySkipped:
      return "replay-skipped";
    case CheckCode::kUncheckedV1:
      return "unchecked-v1";
    case CheckCode::kUnsupportedVersion:
      return "unsupported-version";
  }
  return "?";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "ERROR" : "WARNING") << " ["
     << to_string(code) << "] record " << chain_index;
  if (sequence != kNoSequence) os << " seq " << sequence;
  os << ": " << message;
  return os.str();
}

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) n += d.severity == Severity::kError;
  return n;
}

std::size_t Report::warning_count() const {
  return diagnostics.size() - error_count();
}

std::string Report::summary() const {
  std::ostringstream os;
  os << records_checked << " record(s), " << bytes_checked << " bytes: "
     << error_count() << " error(s), " << warning_count() << " warning(s)";
  return os.str();
}

ChainVerifier::ChainVerifier() : ChainVerifier(Options{}) {}

ChainVerifier::ChainVerifier(Options options) : options_(options) {}

Report ChainVerifier::verify(
    const std::vector<ckpt::CheckpointFile>& chain) const {
  Report report;
  Walker walker(options_, compressor_, report);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    report.bytes_checked += chain[i].serialized_size();
    walker.step(i, &chain[i], {});
  }
  walker.finish();
  return report;
}

Report ChainVerifier::verify_serialized(
    const std::vector<Bytes>& records) const {
  Report report;
  Walker walker(options_, compressor_, report);
  for (std::size_t i = 0; i < records.size(); ++i) {
    report.bytes_checked += records[i].size();
    std::optional<ckpt::CheckpointFile> parsed;
    std::string error;
    CheckCode code = CheckCode::kParseError;
    try {
      parsed = ckpt::CheckpointFile::parse(records[i]);
    } catch (const ckpt::UnsupportedFormatError& e) {
      // Ordered before CheckError: a future-versioned record is a reader
      // mismatch, not corruption, and gets its own code.
      error = e.what();
      code = CheckCode::kUnsupportedVersion;
    } catch (const CheckError& e) {
      error = e.what();
    }
    walker.step(i, parsed ? &*parsed : nullptr, error, code);
  }
  walker.finish();
  return report;
}

}  // namespace aic::verify
