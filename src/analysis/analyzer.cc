#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/layering.h"
#include "analysis/lexer.h"
#include "obs/json.h"

namespace aic::analysis {
namespace {

constexpr std::string_view kAllowMarker = "aic-lint: allow(";

/// Rules allowed by inline comments, keyed by line number. A comment's
/// allowance covers its own line and the next one.
std::map<int, std::set<std::string>> inline_allows(const LexedFile& file) {
  std::map<int, std::set<std::string>> allows;
  for (const Comment& c : file.comments) {
    std::size_t at = c.text.find(kAllowMarker);
    while (at != std::string::npos) {
      const std::size_t open = at + kAllowMarker.size();
      const std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) break;
      std::string rule;
      auto commit = [&] {
        if (!rule.empty()) {
          allows[c.line].insert(rule);
          allows[c.line + 1].insert(rule);
          rule.clear();
        }
      };
      for (std::size_t i = open; i < close; ++i) {
        const char ch = c.text[i];
        if (ch == ',') {
          commit();
        } else if (ch != ' ' && ch != '\t') {
          rule.push_back(ch);
        }
      }
      commit();
      at = c.text.find(kAllowMarker, close);
    }
  }
  return allows;
}

bool finding_order(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.fingerprint < b.fingerprint;
}

}  // namespace

Analysis analyze(const std::vector<SourceFile>& files,
                 const Baseline& baseline) {
  Analysis out;
  out.files = int(files.size());

  std::vector<LexedFile> lexed(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    lexed[i] = lex(files[i].content);
  }

  // Project-wide CheckError family from every library file's class
  // declarations (the exception-discipline rules are project-aware: a new
  // error type deriving from CheckError is legal to throw the moment it is
  // declared).
  std::vector<std::pair<std::string, std::string>> edges;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path.rfind("src/", 0) != 0) continue;
    auto file_edges = class_bases(lexed[i]);
    edges.insert(edges.end(), file_edges.begin(), file_edges.end());
  }
  const std::set<std::string> family = check_error_family(edges);

  std::vector<FileIncludes> layering_inputs;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& f = files[i];
    for (const LexError& e : lexed[i].errors) {
      out.findings.push_back({"lex-error", f.path, e.line,
                              "could not tokenize: " + e.message, e.message,
                              false, ""});
    }
    auto rule_findings = run_token_rules(f.path, lexed[i], family);
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(rule_findings.begin()),
                        std::make_move_iterator(rule_findings.end()));
    if (f.path.rfind("src/", 0) == 0) {
      layering_inputs.push_back({f.path, &lexed[i]});
    }
  }

  auto layer_findings = check_layering(layering_inputs);
  out.findings.insert(out.findings.end(),
                      std::make_move_iterator(layer_findings.begin()),
                      std::make_move_iterator(layer_findings.end()));

  // Inline allows, by (path, line).
  std::map<std::string, std::map<int, std::set<std::string>>> allows;
  for (std::size_t i = 0; i < files.size(); ++i) {
    auto file_allows = inline_allows(lexed[i]);
    if (!file_allows.empty()) allows[files[i].path] = std::move(file_allows);
  }
  for (Finding& f : out.findings) {
    const auto by_path = allows.find(f.path);
    if (by_path == allows.end()) continue;
    const auto by_line = by_path->second.find(f.line);
    if (by_line == by_path->second.end()) continue;
    if (by_line->second.count(f.rule) != 0) {
      f.suppressed = true;
      f.suppressed_by = "inline";
    }
  }

  out.stale = apply_baseline(baseline, out.findings);

  std::sort(out.findings.begin(), out.findings.end(), finding_order);
  for (const Finding& f : out.findings) {
    if (!f.suppressed) {
      ++out.unsuppressed;
    } else if (f.suppressed_by == "baseline") {
      ++out.suppressed_baseline;
    } else {
      ++out.suppressed_inline;
    }
  }
  return out;
}

std::string analysis_to_json(const Analysis& analysis) {
  std::string out = "{\"schema\": \"aic-lint-v1\",\n";
  out += " \"files\": " + std::to_string(analysis.files) + ",\n";
  out += " \"summary\": {\"unsuppressed\": " +
         std::to_string(analysis.unsuppressed) +
         ", \"baseline_suppressed\": " +
         std::to_string(analysis.suppressed_baseline) +
         ", \"inline_suppressed\": " +
         std::to_string(analysis.suppressed_inline) +
         ", \"stale_baseline\": " + std::to_string(analysis.stale.size()) +
         "},\n";
  out += " \"findings\": [";
  bool first = true;
  for (const Finding& f : analysis.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"rule\": \"" + obs::json_escape(f.rule) + "\", \"path\": \"" +
           obs::json_escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"message\": \"" +
           obs::json_escape(f.message) + "\", \"fingerprint\": \"" +
           obs::json_escape(f.fingerprint) + "\", \"suppressed\": " +
           (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      out += ", \"suppressed_by\": \"" + obs::json_escape(f.suppressed_by) +
             "\"";
    }
    out += "}";
  }
  out += first ? "],\n" : "\n ],\n";
  out += " \"stale_baseline\": [";
  first = true;
  for (const BaselineEntry& e : analysis.stale) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"rule\": \"" + obs::json_escape(e.rule) + "\", \"path\": \"" +
           obs::json_escape(e.path) + "\", \"fingerprint\": \"" +
           obs::json_escape(e.fingerprint) + "\"}";
  }
  out += first ? "]}\n" : "\n ]}\n";
  return out;
}

}  // namespace aic::analysis
