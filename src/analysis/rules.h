// Token-level rule engine: the repo conventions L1–L6 plus determinism and
// exception-discipline rules, evaluated over lexer.h token streams.
//
// Rule catalog (ids are stable — they appear in findings, baselines, and
// inline `// aic-lint: allow(<rule>)` comments; DESIGN.md §14 documents
// each with rationale):
//
//   own-new-delete   L1  raw new/delete outside src/common/
//   include-iostream L2  #include <iostream> in src/ library code
//   printf-family    L3  printf/fprintf/puts calls in src/
//   abort-exit       L4  abort()/exit() in src/ (invariants throw CheckError)
//   clock-gateway    L5  chrono clock ::now() outside src/obs/ (src/, bench/,
//                        tools/) — obs::wall_now_ns is the host-clock gateway
//   overlap-memcpy   L6  raw memcpy in src/delta|src/ckpt (aliasing layers)
//   det-entropy          rand/srand/random_device outside common/rng.* —
//                        common::Rng is the only entropy gateway
//   det-clock            time()/gettimeofday()/clock() etc. outside
//                        src/obs/clock.*
//   det-env              getenv/setenv in library code (config is explicit)
//   exc-catch-all        catch (...) that swallows (no rethrow, no
//                        current_exception capture)
//   exc-catch-value      catch by value of a class type (slices; catch by
//                        const reference)
//   exc-throw-type       throw of a type outside the CheckError family
//   obs-name-literal     inline metric-name string in a counter()/gauge()/
//                        histogram() registration outside src/obs/ — sites
//                        name metrics via obs/names.h constants so the
//                        namespace stays greppable and collision-free
//   lex-error            source the lexer could not fully tokenize
//
// Library rules run on src/; clock-gateway and obs-name-literal
// additionally run on bench/ and tools/ (their timing flows into
// BENCH_*.json records that aic_benchdiff compares across runs, and their
// metrics land in the same registry namespace). Findings carry a
// line-independent fingerprint so baseline entries survive unrelated
// edits.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lexer.h"

namespace aic::analysis {

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  std::string fingerprint;
  bool suppressed = false;
  std::string suppressed_by;  // "baseline" | "inline" | "" (not suppressed)
};

/// `Derived -> base` inheritance edges visible in one file, by unqualified
/// class name (the last identifier of a qualified base wins, so
/// `aic::CheckError` contributes "CheckError").
std::vector<std::pair<std::string, std::string>> class_bases(
    const LexedFile& file);

/// Unqualified names of classes transitively derived from CheckError
/// (CheckError itself included) given project-wide inheritance edges.
std::set<std::string> check_error_family(
    const std::vector<std::pair<std::string, std::string>>& edges);

/// Runs every token rule applicable to `path` (repo-relative, forward
/// slashes) over one lexed file. `error_family` comes from
/// check_error_family over the whole library file set.
std::vector<Finding> run_token_rules(const std::string& path,
                                     const LexedFile& file,
                                     const std::set<std::string>& error_family);

}  // namespace aic::analysis
