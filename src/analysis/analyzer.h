// Analyzer orchestration: lex every file once, compute the project-wide
// CheckError family, run the token rules and the layering check, then apply
// inline allows and the suppression baseline.
//
// The library is pure string-in/findings-out — all filesystem traversal and
// I/O live in tools/aic_lint.cc — so tests feed it fixture corpora and
// hostile inputs directly, and the analyzer itself obeys the rules it
// enforces (no iostream, no printing, CheckError-family errors only).
//
// Inline suppression: a comment containing `aic-lint: allow(rule-a,rule-b)`
// suppresses findings of those rules on the comment's line and the line
// after it (so the comment can sit on its own line above the construct).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/baseline.h"
#include "analysis/rules.h"

namespace aic::analysis {

struct SourceFile {
  std::string path;     // repo-relative, forward slashes
  std::string content;  // raw bytes
};

struct Analysis {
  std::vector<Finding> findings;      // sorted by (path, line, rule)
  std::vector<BaselineEntry> stale;   // baseline entries that matched nothing
  int files = 0;
  int unsuppressed = 0;
  int suppressed_baseline = 0;
  int suppressed_inline = 0;

  bool clean() const { return unsuppressed == 0 && stale.empty(); }
};

/// Runs the full analysis over a file set. Total on hostile input: lexer
/// failures become `lex-error` findings, never exceptions.
Analysis analyze(const std::vector<SourceFile>& files,
                 const Baseline& baseline);

/// Machine-readable findings document (schema aic-lint-v1), hostile-input-
/// safe style of obs/json: every string escaped, stable field order.
std::string analysis_to_json(const Analysis& analysis);

}  // namespace aic::analysis
