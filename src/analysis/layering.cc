#include "analysis/layering.h"

#include <algorithm>

namespace aic::analysis {

const std::map<std::string, std::set<std::string>>& layering_policy() {
  // Target architecture. Legacy deviations (ckpt -> storage, xfer ->
  // storage, and the resulting ckpt/storage/xfer cycle) are carried in the
  // suppression baseline, not legalized here — the policy states where the
  // tree is going, the baseline states where it still is.
  static const std::map<std::string, std::set<std::string>> kPolicy = {
      {"common", {}},
      {"obs", {"common"}},
      {"mem", {"common"}},
      {"model", {"common"}},
      {"trace", {"common"}},
      {"analysis", {"common", "obs"}},
      {"workload", {"common", "mem", "trace"}},
      {"failure", {"common", "model"}},
      {"delta", {"common", "mem", "obs"}},
      {"predictor", {"common", "mem", "obs"}},
      {"xfer", {"common", "obs"}},
      {"storage", {"common", "obs", "ckpt", "xfer"}},
      {"ckpt", {"common", "delta", "mem", "obs"}},
      {"verify", {"common", "ckpt", "delta", "xfer"}},
      {"control", {"common", "ckpt", "model", "obs", "predictor", "workload"}},
      {"sim",
       {"common", "ckpt", "control", "failure", "mem", "model", "obs",
        "storage", "workload", "xfer"}},
      {"fleet",
       {"common", "ckpt", "failure", "mem", "model", "obs", "sim",
        "workload", "xfer"}},
      {"aic",
       {"common", "obs", "mem", "model", "trace", "analysis", "workload",
        "failure", "delta", "predictor", "xfer", "storage", "ckpt", "verify",
        "control", "sim", "fleet"}},
  };
  return kPolicy;
}

std::string module_of(std::string_view path) {
  if (path.rfind("src/", 0) != 0) return "";
  const std::size_t next = path.find('/', 4);
  if (next == std::string::npos) return "";
  return std::string(path.substr(4, next - 4));
}

namespace {

/// Module a quoted include path targets ("delta/page_delta.h" -> "delta"),
/// or "" when the include is not module-shaped or names an unknown module.
std::string include_module(const std::string& inc) {
  const std::size_t slash = inc.find('/');
  if (slash == std::string::npos) return "";
  const std::string mod = inc.substr(0, slash);
  return layering_policy().count(mod) != 0 ? mod : "";
}

struct Edge {
  std::string from, to;
  std::string file;     // witness: the file whose include creates the edge
  std::string include;  // the include path as written
  int line = 1;
};

/// One concrete cycle path inside a strongly connected component, found by
/// DFS restricted to the component, starting from its smallest module.
std::vector<std::string> cycle_path(
    const std::set<std::string>& scc,
    const std::map<std::string, std::set<std::string>>& graph) {
  const std::string& start = *scc.begin();
  std::vector<std::string> path = {start};
  std::set<std::string> on_path = {start};
  // Walk edges inside the SCC; every node in an SCC lies on a cycle back to
  // start, so a deterministic greedy walk terminates.
  std::string cur = start;
  for (std::size_t guard = 0; guard <= scc.size(); ++guard) {
    const auto it = graph.find(cur);
    if (it == graph.end()) break;
    std::string next;
    for (const std::string& cand : it->second) {
      if (cand == start && path.size() > 1) {
        path.push_back(start);
        return path;
      }
      if (scc.count(cand) != 0 && on_path.count(cand) == 0 && next.empty()) {
        next = cand;
      }
    }
    if (next.empty()) {
      // Two-node component: the direct back-edge closes it.
      if (it->second.count(start) != 0) {
        path.push_back(start);
        return path;
      }
      break;
    }
    path.push_back(next);
    on_path.insert(next);
    cur = next;
  }
  path.push_back(start);  // fallback; SCC membership guarantees a cycle
  return path;
}

/// Tarjan strongly-connected components, iterative (no recursion so a
/// hostile include graph cannot overflow the stack).
std::vector<std::set<std::string>> strongly_connected(
    const std::map<std::string, std::set<std::string>>& graph) {
  std::vector<std::string> nodes;
  nodes.reserve(graph.size());
  for (const auto& [n, _] : graph) nodes.push_back(n);

  std::map<std::string, int> index, lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::set<std::string>> sccs;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    std::size_t next = 0;
  };

  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& n) {
      index[n] = lowlink[n] = next_index++;
      stack.push_back(n);
      on_stack.insert(n);
      Frame f;
      f.node = n;
      const auto it = graph.find(n);
      if (it != graph.end()) f.succ.assign(it->second.begin(), it->second.end());
      frames.push_back(std::move(f));
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        const std::string& w = f.succ[f.next++];
        if (index.count(w) == 0) {
          push_node(w);
        } else if (on_stack.count(w) != 0) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        if (lowlink[f.node] == index[f.node]) {
          std::set<std::string> scc;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.insert(w);
            if (w == f.node) break;
          }
          sccs.push_back(std::move(scc));
        }
        const std::string done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[done]);
        }
      }
    }
  }
  return sccs;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

}  // namespace

std::vector<Finding> check_layering(const std::vector<FileIncludes>& files) {
  std::vector<Finding> out;
  const auto& policy = layering_policy();

  std::vector<Edge> edges;
  std::map<std::string, std::set<std::string>> graph;
  std::set<std::string> unknown_reported;

  for (const FileIncludes& f : files) {
    const std::string mod = module_of(f.path);
    if (mod.empty() || f.lexed == nullptr) continue;
    const auto pol = policy.find(mod);
    if (pol == policy.end()) {
      if (unknown_reported.insert(mod).second) {
        out.push_back({"layer-edge", f.path, 1,
                       "module '" + mod +
                           "' has no layering-policy entry — add it to "
                           "analysis/layering.cc with its allowed "
                           "dependencies",
                       "unknown-module:" + mod, false, ""});
      }
      continue;
    }
    for (const IncludeDirective& inc : f.lexed->includes) {
      if (inc.angled) continue;
      const std::string dep = include_module(inc.path);
      if (dep.empty() || dep == mod) continue;
      edges.push_back({mod, dep, f.path, inc.path, inc.line});
      graph[mod].insert(dep);
      graph.emplace(dep, std::set<std::string>{});  // node for SCC pass
      if (pol->second.count(dep) == 0) {
        out.push_back({"layer-edge", f.path, inc.line,
                       "illegal module dependency " + mod + " -> " + dep +
                           " (#include \"" + inc.path + "\")",
                       mod + "->" + dep + ":" + inc.path, false, ""});
      }
    }
  }

  for (const std::set<std::string>& scc : strongly_connected(graph)) {
    const bool self_loop =
        scc.size() == 1 && graph[*scc.begin()].count(*scc.begin()) != 0;
    if (scc.size() < 2 && !self_loop) continue;
    // Anchor the finding at the lexicographically smallest witness file of
    // an intra-component edge, so the report is stable across reorderings.
    std::string anchor_file;
    int anchor_line = 1;
    for (const Edge& e : edges) {
      if (scc.count(e.from) == 0 || scc.count(e.to) == 0) continue;
      if (anchor_file.empty() || e.file < anchor_file) {
        anchor_file = e.file;
        anchor_line = e.line;
      }
    }
    const std::vector<std::string> path = cycle_path(scc, graph);
    std::vector<std::string> members(scc.begin(), scc.end());
    out.push_back({"layer-cycle", anchor_file, anchor_line,
                   "module cycle: " + join(path, " -> ") +
                       " — break one edge (see the layer-edge findings for "
                       "this component)",
                   join(members, "+"), false, ""});
  }
  return out;
}

}  // namespace aic::analysis
