// Token-level C++ lexer for the project static analyzer (aic_lint).
//
// The convention greps in scripts/lint.sh cannot see block comments, string
// literals, or `#include` structure — a string containing "exit(" is a false
// positive and code trailing a block comment is a false negative. This lexer
// is the fix: it classifies every byte of a translation unit as comment,
// string/char literal, preprocessor directive, or real token, so the rule
// engine (rules.h) matches only code that the compiler would actually
// compile.
//
// Scope and deliberate simplifications (documented, not accidental):
//
//   * keywords are kIdentifier tokens — the rules match on spelling;
//   * string/char literal *content* is discarded (rules only need to know
//     a literal occupies the span), but raw strings, encoding prefixes, and
//     escapes are honoured so the literal's *end* is found correctly;
//   * backslash-newline splices are resolved before scanning (line numbers
//     are tracked through the splice). Per the standard raw strings revert
//     splices; this lexer does not re-insert them — acceptable because only
//     literal termination matters here, not content;
//   * hostile input never throws or crashes: unterminated comments and
//     literals consume to end-of-file/line and are reported in
//     LexedFile::errors (the analyzer turns them into `lex-error` findings),
//     and unknown bytes become single-character punctuation tokens.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aic::analysis {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords
  kNumber,      // pp-number (incl. digit separators and suffixes)
  kString,      // string literal of any prefix, incl. raw strings
  kChar,        // character literal
  kPunct,       // operator/punctuator; text is the exact spelling
  kDirective,   // a whole preprocessor line; text is the directive name
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
};

/// One `#include` directive, as written.
struct IncludeDirective {
  std::string path;
  bool angled = false;  // <...> vs "..."
  int line = 1;
};

/// A comment's text (delimiters included) — kept for the inline-suppression
/// scanner (`// aic-lint: allow(rule)`).
struct Comment {
  std::string text;
  int line = 1;
};

struct LexError {
  std::string message;
  int line = 1;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Comment> comments;
  std::vector<LexError> errors;
};

/// Lexes one translation unit. Total, never throws: any byte sequence
/// produces a LexedFile (possibly with errors recorded).
LexedFile lex(std::string_view src);

}  // namespace aic::analysis
