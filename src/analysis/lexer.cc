#include "analysis/lexer.h"

#include <array>
#include <cstddef>

namespace aic::analysis {
namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
}

/// String-literal encoding prefixes; an identifier equal to one of these
/// immediately followed by a quote is a literal prefix, not an identifier.
bool is_string_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR" ||
         id == "u8" || id == "u" || id == "U" || id == "L";
}
bool is_char_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

/// Multi-character punctuators, longest first so maximal munch holds.
constexpr std::array<std::string_view, 24> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "##",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) { splice(src); }

  LexedFile run() {
    bool at_line_start = true;
    while (p_ < text_.size()) {
      const char c = text_[p_];
      if (c == '\n') {
        at_line_start = true;
        ++p_;
        continue;
      }
      if (is_space(c)) {
        ++p_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;  // comments do not reset at_line_start
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start) {
        directive();
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (is_ident_start(c)) {
        identifier_or_literal();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
      } else if (c == '"') {
        string_literal(/*raw=*/false);
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  // --- phase 1: backslash-newline splices removed, line map retained ------
  void splice(std::string_view src) {
    text_.reserve(src.size());
    line_of_.reserve(src.size() + 1);
    int line = 1;
    for (std::size_t i = 0; i < src.size();) {
      if (src[i] == '\\' && i + 1 < src.size() &&
          (src[i + 1] == '\n' ||
           (src[i + 1] == '\r' && i + 2 < src.size() && src[i + 2] == '\n'))) {
        i += src[i + 1] == '\r' ? 3 : 2;
        ++line;
        continue;
      }
      text_.push_back(src[i]);
      line_of_.push_back(line);
      if (src[i] == '\n') ++line;
      ++i;
    }
    line_of_.push_back(line);  // sentinel: line of the EOF position
  }

  char peek(std::size_t ahead) const {
    return p_ + ahead < text_.size() ? text_[p_ + ahead] : '\0';
  }
  int line_here() const { return line_of_[p_]; }
  int line_at(std::size_t pos) const {
    return line_of_[pos < line_of_.size() ? pos : line_of_.size() - 1];
  }

  void error(std::string message, int line) {
    out_.errors.push_back({std::move(message), line});
  }

  void emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  // --- comments -----------------------------------------------------------
  void line_comment() {
    const std::size_t start = p_;
    while (p_ < text_.size() && text_[p_] != '\n') ++p_;
    out_.comments.push_back(
        {std::string(text_, start, p_ - start), line_at(start)});
  }

  void block_comment() {
    const std::size_t start = p_;
    p_ += 2;
    while (p_ < text_.size() && !(text_[p_] == '*' && peek(1) == '/')) ++p_;
    if (p_ >= text_.size()) {
      error("unterminated block comment", line_at(start));
    } else {
      p_ += 2;
    }
    out_.comments.push_back(
        {std::string(text_, start, p_ - start), line_at(start)});
  }

  // --- literals -----------------------------------------------------------
  void string_literal(bool raw) {
    const int line = line_here();
    if (raw) {
      raw_string(line);
      return;
    }
    ++p_;  // opening quote
    while (p_ < text_.size()) {
      const char c = text_[p_];
      if (c == '\\' && p_ + 1 < text_.size()) {
        p_ += 2;
      } else if (c == '"') {
        ++p_;
        emit(TokenKind::kString, "", line);
        return;
      } else if (c == '\n') {
        break;  // ordinary string literals do not span lines
      } else {
        ++p_;
      }
    }
    error("unterminated string literal", line);
    emit(TokenKind::kString, "", line);
  }

  void raw_string(int line) {
    ++p_;  // opening quote; cursor now at the delimiter
    std::string delim;
    while (p_ < text_.size() && text_[p_] != '(' && delim.size() <= 16) {
      const char c = text_[p_];
      if (c == ')' || c == '\\' || is_space(c) || c == '\n') break;
      delim.push_back(c);
      ++p_;
    }
    if (p_ >= text_.size() || text_[p_] != '(') {
      error("malformed raw string delimiter", line);
      emit(TokenKind::kString, "", line);
      return;
    }
    ++p_;  // '('
    const std::string close = ")" + delim + "\"";
    const std::size_t end = text_.find(close, p_);
    if (end == std::string::npos) {
      error("unterminated raw string literal", line);
      p_ = text_.size();
    } else {
      p_ = end + close.size();
    }
    emit(TokenKind::kString, "", line);
  }

  void char_literal() {
    const int line = line_here();
    ++p_;  // opening quote
    while (p_ < text_.size()) {
      const char c = text_[p_];
      if (c == '\\' && p_ + 1 < text_.size()) {
        p_ += 2;
      } else if (c == '\'') {
        ++p_;
        emit(TokenKind::kChar, "", line);
        return;
      } else if (c == '\n') {
        break;
      } else {
        ++p_;
      }
    }
    error("unterminated character literal", line);
    emit(TokenKind::kChar, "", line);
  }

  // --- identifiers / numbers ---------------------------------------------
  void identifier_or_literal() {
    const int line = line_here();
    const std::size_t start = p_;
    while (p_ < text_.size() && is_ident_char(text_[p_])) ++p_;
    std::string id(text_, start, p_ - start);
    if (p_ < text_.size() && text_[p_] == '"' && is_string_prefix(id)) {
      string_literal(/*raw=*/id.back() == 'R');
      return;
    }
    if (p_ < text_.size() && text_[p_] == '\'' && is_char_prefix(id)) {
      char_literal();
      return;
    }
    emit(TokenKind::kIdentifier, std::move(id), line);
  }

  void number() {
    const int line = line_here();
    const std::size_t start = p_;
    ++p_;
    while (p_ < text_.size()) {
      const char c = text_[p_];
      if (is_ident_char(c) || c == '.') {
        ++p_;
      } else if (c == '\'' && p_ + 1 < text_.size() &&
                 is_ident_char(text_[p_ + 1])) {
        p_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') &&
                 (text_[p_ - 1] == 'e' || text_[p_ - 1] == 'E' ||
                  text_[p_ - 1] == 'p' || text_[p_ - 1] == 'P')) {
        ++p_;  // exponent sign
      } else {
        break;
      }
    }
    emit(TokenKind::kNumber, std::string(text_, start, p_ - start), line);
  }

  // --- preprocessor -------------------------------------------------------
  void directive() {
    const int line = line_here();
    ++p_;  // '#'
    while (p_ < text_.size() && is_space(text_[p_])) ++p_;
    std::string name;
    while (p_ < text_.size() && is_ident_char(text_[p_])) {
      name.push_back(text_[p_]);
      ++p_;
    }
    if (name == "include") {
      include_target(line);
    }
    // Consume the rest of the directive line, honouring comments and
    // string literals (a "//" inside an #error string is not a comment).
    while (p_ < text_.size() && text_[p_] != '\n') {
      const char c = text_[p_];
      if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();  // may span lines; directive ends at its own line
      } else if (c == '"') {
        directive_quoted('"');
      } else if (c == '\'') {
        directive_quoted('\'');
      } else {
        ++p_;
      }
    }
    emit(TokenKind::kDirective, std::move(name), line);
  }

  /// Skips a quoted span inside a directive body without emitting a token.
  void directive_quoted(char quote) {
    ++p_;
    while (p_ < text_.size() && text_[p_] != quote && text_[p_] != '\n') {
      p_ += (text_[p_] == '\\' && p_ + 1 < text_.size()) ? 2 : 1;
    }
    if (p_ < text_.size() && text_[p_] == quote) ++p_;
  }

  void include_target(int line) {
    while (p_ < text_.size() && is_space(text_[p_])) ++p_;
    if (p_ >= text_.size()) return;
    const char open = text_[p_];
    if (open != '<' && open != '"') return;  // macro-computed include: skip
    const char close = open == '<' ? '>' : '"';
    ++p_;
    std::string path;
    while (p_ < text_.size() && text_[p_] != close && text_[p_] != '\n') {
      path.push_back(text_[p_]);
      ++p_;
    }
    if (p_ < text_.size() && text_[p_] == close) {
      ++p_;
      out_.includes.push_back({std::move(path), open == '<', line});
    } else {
      error("unterminated #include target", line);
    }
  }

  // --- punctuation --------------------------------------------------------
  void punct() {
    const int line = line_here();
    for (const std::string_view op : kPuncts) {
      if (text_.compare(p_, op.size(), op) == 0) {
        emit(TokenKind::kPunct, std::string(op), line);
        p_ += op.size();
        return;
      }
    }
    emit(TokenKind::kPunct, std::string(1, text_[p_]), line);
    ++p_;
  }

  std::string text_;
  std::vector<int> line_of_;
  std::size_t p_ = 0;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace aic::analysis
