#include "analysis/baseline.h"

#include "common/check.h"
#include "obs/json.h"

namespace aic::analysis {

namespace {

std::string required_string(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue& v = obj.at(key);
  AIC_CHECK_MSG(v.is(obs::JsonValue::Kind::kString),
                "baseline: field '" << key << "' must be a string");
  return v.str;
}

}  // namespace

Baseline baseline_from_json(std::string_view text) {
  const obs::JsonValue doc = obs::json_parse(text);
  AIC_CHECK_MSG(doc.is(obs::JsonValue::Kind::kObject),
                "baseline: document must be an object");
  AIC_CHECK_MSG(required_string(doc, "schema") == "aic-lint-baseline-v1",
                "baseline: unsupported schema (want aic-lint-baseline-v1)");
  const obs::JsonValue& list = doc.at("suppressions");
  AIC_CHECK_MSG(list.is(obs::JsonValue::Kind::kArray),
                "baseline: 'suppressions' must be an array");
  Baseline out;
  out.entries.reserve(list.array.size());
  for (const obs::JsonValue& item : list.array) {
    AIC_CHECK_MSG(item.is(obs::JsonValue::Kind::kObject),
                  "baseline: each suppression must be an object");
    BaselineEntry e;
    e.rule = required_string(item, "rule");
    e.path = required_string(item, "path");
    e.fingerprint = required_string(item, "fingerprint");
    if (const obs::JsonValue* r = item.find("reason")) {
      AIC_CHECK_MSG(r->is(obs::JsonValue::Kind::kString),
                    "baseline: 'reason' must be a string");
      e.reason = r->str;
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

std::string baseline_to_json(const Baseline& baseline) {
  std::string out = "{\"schema\": \"aic-lint-baseline-v1\",\n";
  out += " \"suppressions\": [";
  bool first = true;
  for (const BaselineEntry& e : baseline.entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"rule\": \"" + obs::json_escape(e.rule) + "\", \"path\": \"" +
           obs::json_escape(e.path) + "\", \"fingerprint\": \"" +
           obs::json_escape(e.fingerprint) + "\", \"reason\": \"" +
           obs::json_escape(e.reason) + "\"}";
  }
  out += first ? "]}\n" : "\n ]}\n";
  return out;
}

std::vector<BaselineEntry> apply_baseline(const Baseline& baseline,
                                          std::vector<Finding>& findings) {
  std::vector<BaselineEntry> stale;
  for (const BaselineEntry& e : baseline.entries) {
    bool used = false;
    for (Finding& f : findings) {
      if (f.suppressed || f.rule != e.rule || f.path != e.path ||
          f.fingerprint != e.fingerprint) {
        continue;
      }
      f.suppressed = true;
      f.suppressed_by = "baseline";
      used = true;
    }
    if (!used) stale.push_back(e);
  }
  return stale;
}

}  // namespace aic::analysis
