#include "analysis/rules.h"

#include <array>

namespace aic::analysis {
namespace {

struct PathInfo {
  bool library = false;   // under src/
  bool frontend = false;  // under bench/ or tools/
  std::string module;     // first directory under src/ ("" otherwise)
  std::string filename;   // basename
};

PathInfo classify(const std::string& path) {
  PathInfo info;
  const std::size_t slash = path.find_last_of('/');
  info.filename = slash == std::string::npos ? path : path.substr(slash + 1);
  if (path.rfind("src/", 0) == 0) {
    info.library = true;
    const std::size_t next = path.find('/', 4);
    if (next != std::string::npos) info.module = path.substr(4, next - 4);
  } else if (path.rfind("bench/", 0) == 0 || path.rfind("tools/", 0) == 0) {
    info.frontend = true;
  }
  return info;
}

bool is_id(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

bool id_in(const Token& t, std::initializer_list<std::string_view> set) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const std::string_view s : set) {
    if (t.text == s) return true;
  }
  return false;
}

constexpr std::array<std::string_view, 12> kFundamental = {
    "int",   "long",   "short",   "unsigned", "signed",   "char",
    "bool",  "float",  "double",  "wchar_t",  "char16_t", "char32_t",
};

bool is_fundamental(std::string_view id) {
  for (const std::string_view s : kFundamental) {
    if (id == s) return true;
  }
  return false;
}

/// Evaluates every applicable rule over one file's token stream.
class RuleRunner {
 public:
  RuleRunner(const std::string& path, const LexedFile& file,
             const std::set<std::string>& error_family)
      : path_(path),
        info_(classify(path)),
        toks_(file.tokens),
        includes_(file.includes),
        family_(error_family) {}

  std::vector<Finding> run() {
    const bool exempt_clock_gateway = info_.library && info_.module == "obs";
    if (info_.library || info_.frontend) {
      if (!exempt_clock_gateway) clock_gateway();
      // src/obs/ owns the name constants (and its tests exercise raw
      // registration); every other instrumentation site goes through them.
      if (!(info_.library && info_.module == "obs")) obs_name_literal();
    }
    if (!info_.library) return std::move(out_);

    if (info_.module != "common") own_new_delete();
    include_iostream();
    printf_family();
    abort_exit();
    if (info_.module == "delta" || info_.module == "ckpt") overlap_memcpy();
    if (!(info_.module == "common" && info_.filename.rfind("rng.", 0) == 0)) {
      det_entropy();
    }
    if (!(info_.module == "obs" && info_.filename.rfind("clock.", 0) == 0)) {
      det_clock();
    }
    det_env();
    exc_catch_rules();
    exc_throw_type();
    return std::move(out_);
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }
  std::size_t size() const { return toks_.size(); }

  void add(std::string rule, int line, std::string message,
           std::string fingerprint) {
    out_.push_back({std::move(rule), path_, line, std::move(message),
                    std::move(fingerprint), false, ""});
  }

  /// True when token i is an identifier immediately called: `name (`.
  bool is_call(std::size_t i) const {
    return tok(i).kind == TokenKind::kIdentifier && i + 1 < size() &&
           is_punct(tok(i + 1), "(");
  }

  /// True when a callee at i is plain or std::-qualified (member calls and
  /// other-namespace qualifications are someone else's function).
  bool plain_or_std(std::size_t i) const {
    if (i >= 1 && (is_punct(tok(i - 1), ".") || is_punct(tok(i - 1), "->"))) {
      return false;
    }
    if (i >= 1 && is_punct(tok(i - 1), "::")) {
      return i >= 2 && is_id(tok(i - 2), "std");
    }
    return true;
  }

  void flag_calls(std::string_view rule,
                  std::initializer_list<std::string_view> callees,
                  std::string_view message_suffix) {
    for (std::size_t i = 0; i < size(); ++i) {
      if (id_in(tok(i), callees) && is_call(i) && plain_or_std(i)) {
        add(std::string(rule), tok(i).line,
            tok(i).text + "() " + std::string(message_suffix), tok(i).text);
      }
    }
  }

  // --- L1 ------------------------------------------------------------------
  void own_new_delete() {
    for (std::size_t i = 0; i < size(); ++i) {
      if (is_id(tok(i), "new")) {
        add("own-new-delete", tok(i).line,
            "raw new outside src/common/ — ownership is unique_ptr/"
            "containers in library code",
            "new");
      } else if (is_id(tok(i), "delete")) {
        if (i >= 1 && is_punct(tok(i - 1), "=")) continue;  // = delete;
        add("own-new-delete", tok(i).line,
            "raw delete outside src/common/ — ownership is unique_ptr/"
            "containers in library code",
            "delete");
      }
    }
  }

  // --- L2 ------------------------------------------------------------------
  void include_iostream() {
    for (const IncludeDirective& inc : includes_) {
      if (inc.angled && inc.path == "iostream") {
        add("include-iostream", inc.line,
            "#include <iostream> in library code — the library reports "
            "through return values and CheckError, never by printing",
            "iostream");
      }
    }
  }

  // --- L3 ------------------------------------------------------------------
  void printf_family() {
    flag_calls("printf-family", {"printf", "fprintf", "puts"},
               "call in library code — report through return values and "
               "CheckError");
  }

  // --- L4 ------------------------------------------------------------------
  void abort_exit() {
    flag_calls("abort-exit", {"abort", "exit", "_Exit", "quick_exit"},
               "call in library code — invariants throw CheckError so "
               "callers and tests can observe them");
  }

  // --- L5 ------------------------------------------------------------------
  void clock_gateway() {
    for (std::size_t i = 0; i + 3 < size(); ++i) {
      if (id_in(tok(i),
                {"system_clock", "steady_clock", "high_resolution_clock"}) &&
          is_punct(tok(i + 1), "::") && is_id(tok(i + 2), "now") &&
          is_punct(tok(i + 3), "(")) {
        add("clock-gateway", tok(i).line,
            tok(i).text + "::now() outside src/obs/ — obs::wall_now_ns is "
                          "the single host-clock gateway",
            tok(i).text);
      }
    }
  }

  // --- observability -------------------------------------------------------
  void obs_name_literal() {
    for (std::size_t i = 1; i + 2 < size(); ++i) {
      if (!id_in(tok(i), {"counter", "gauge", "histogram"})) continue;
      if (!is_punct(tok(i - 1), ".") && !is_punct(tok(i - 1), "->")) continue;
      if (!is_punct(tok(i + 1), "(")) continue;
      if (tok(i + 2).kind != TokenKind::kString) continue;
      add("obs-name-literal", tok(i).line,
          "inline metric-name literal in " + tok(i).text +
              "() — instrumentation sites name metrics via obs/names.h "
              "constants",
          tok(i).text);
    }
  }

  // --- L6 ------------------------------------------------------------------
  void overlap_memcpy() {
    flag_calls("overlap-memcpy", {"memcpy"},
               "in an aliasing-sensitive layer — use std::memmove or "
               "common/bytes.h copy_no_overlap");
  }

  // --- determinism ---------------------------------------------------------
  void det_entropy() {
    flag_calls("det-entropy",
               {"rand", "srand", "rand_r", "random", "srandom", "drand48"},
               "in library code — common::Rng is the only entropy gateway");
    for (std::size_t i = 0; i < size(); ++i) {
      if (is_id(tok(i), "random_device")) {
        add("det-entropy", tok(i).line,
            "random_device in library code — common::Rng is the only "
            "entropy gateway",
            "random_device");
      }
    }
  }

  void det_clock() {
    flag_calls("det-clock",
               {"time", "gettimeofday", "clock_gettime", "clock", "localtime",
                "gmtime", "ctime", "mktime", "timespec_get"},
               "in library code — obs::wall_now_ns is the only host-clock "
               "gateway");
  }

  void det_env() {
    flag_calls("det-env",
               {"getenv", "secure_getenv", "setenv", "unsetenv", "putenv"},
               "in library code — configuration is passed explicitly, "
               "never read ambiently");
  }

  // --- exception discipline -----------------------------------------------
  /// Index just past the matching closer for the opener at `open`;
  /// size() when unbalanced (hostile input).
  std::size_t skip_balanced(std::size_t open, std::string_view opener,
                            std::string_view closer) const {
    int depth = 0;
    for (std::size_t i = open; i < size(); ++i) {
      if (is_punct(tok(i), opener)) ++depth;
      if (is_punct(tok(i), closer) && --depth == 0) return i + 1;
    }
    return size();
  }

  void exc_catch_rules() {
    for (std::size_t i = 0; i + 1 < size(); ++i) {
      if (!is_id(tok(i), "catch") || !is_punct(tok(i + 1), "(")) continue;
      const std::size_t params_end = skip_balanced(i + 1, "(", ")");
      // Parameter token span, parens excluded.
      const std::size_t lo = i + 2, hi = params_end - 1;
      bool catch_all = false, by_ref = false;
      std::string first_type, joined;
      for (std::size_t k = lo; k < hi && k < size(); ++k) {
        const Token& t = tok(k);
        if (is_punct(t, "...")) catch_all = true;
        if (is_punct(t, "&") || is_punct(t, "*")) by_ref = true;
        if (t.kind == TokenKind::kIdentifier) {
          if (first_type.empty() && t.text != "const" && t.text != "volatile") {
            first_type = t.text;
          }
          joined += joined.empty() ? t.text : " " + t.text;
        }
      }
      if (catch_all) {
        catch_all_swallow(i, params_end);
      } else if (!by_ref && !first_type.empty() &&
                 !is_fundamental(first_type)) {
        add("exc-catch-value", tok(i).line,
            "catch-by-value of class type (" + joined +
                ") — slices; catch by const reference",
            joined);
      }
    }
  }

  void catch_all_swallow(std::size_t catch_idx, std::size_t body_open) {
    if (body_open >= size() || !is_punct(tok(body_open), "{")) return;
    const std::size_t body_end = skip_balanced(body_open, "{", "}");
    for (std::size_t k = body_open; k < body_end; ++k) {
      if (id_in(tok(k), {"throw", "current_exception", "rethrow_exception",
                         "throw_with_nested"})) {
        return;  // rethrows or captures — not a swallow
      }
    }
    add("exc-catch-all", tok(catch_idx).line,
        "catch (...) that swallows — rethrow, capture via "
        "std::current_exception, or catch the specific type",
        "catch(...)");
  }

  void exc_throw_type() {
    for (std::size_t i = 0; i < size(); ++i) {
      if (!is_id(tok(i), "throw")) continue;
      if (i + 1 >= size()) break;
      if (is_punct(tok(i + 1), ";")) continue;  // rethrow
      // Collect the identifier chain of the thrown expression's type.
      std::string last_id;
      std::size_t k = i + 1;
      while (k < size() &&
             (tok(k).kind == TokenKind::kIdentifier || is_punct(tok(k), "::"))) {
        if (tok(k).kind == TokenKind::kIdentifier) last_id = tok(k).text;
        ++k;
      }
      if (last_id.empty()) {
        add("exc-throw-type", tok(i).line,
            "throw of a non-class expression — library errors are the "
            "CheckError family",
            "<non-class>");
      } else if (family_.find(last_id) == family_.end()) {
        add("exc-throw-type", tok(i).line,
            "throw of " + last_id +
                " — library errors derive from aic::CheckError so tests "
                "and callers can catch one family",
            last_id);
      }
    }
  }

  const std::string& path_;
  PathInfo info_;
  const std::vector<Token>& toks_;
  const std::vector<IncludeDirective>& includes_;
  const std::set<std::string>& family_;
  std::vector<Finding> out_;
};

}  // namespace

std::vector<std::pair<std::string, std::string>> class_bases(
    const LexedFile& file) {
  std::vector<std::pair<std::string, std::string>> edges;
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_id(t[i], "class") && !is_id(t[i], "struct")) continue;
    if (i >= 1 && is_id(t[i - 1], "enum")) continue;  // enum class
    std::size_t k = i + 1;
    if (k >= t.size() || t[k].kind != TokenKind::kIdentifier) continue;
    const std::string derived = t[k].text;
    ++k;
    if (k < t.size() && is_id(t[k], "final")) ++k;
    if (k >= t.size() || !is_punct(t[k], ":")) continue;
    ++k;
    // Base list: [access] [virtual] qualified-name [<...>] ("," ...)* "{"
    while (k < t.size() && !is_punct(t[k], "{") && !is_punct(t[k], ";")) {
      while (k < t.size() &&
             id_in(t[k], {"public", "private", "protected", "virtual"})) {
        ++k;
      }
      std::string base;
      while (k < t.size() &&
             (t[k].kind == TokenKind::kIdentifier || is_punct(t[k], "::"))) {
        if (t[k].kind == TokenKind::kIdentifier) base = t[k].text;
        ++k;
      }
      if (k < t.size() && is_punct(t[k], "<")) {  // skip template arguments
        int depth = 0;
        while (k < t.size()) {
          if (is_punct(t[k], "<")) ++depth;
          if (is_punct(t[k], ">") && --depth == 0) {
            ++k;
            break;
          }
          if (is_punct(t[k], ">>")) {
            depth -= 2;
            ++k;
            if (depth <= 0) break;
            continue;
          }
          ++k;
        }
      }
      if (!base.empty()) edges.emplace_back(derived, base);
      if (k < t.size() && is_punct(t[k], ",")) {
        ++k;
        continue;
      }
      break;
    }
  }
  return edges;
}

std::set<std::string> check_error_family(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  std::set<std::string> family = {"CheckError"};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [derived, base] : edges) {
      if (family.count(base) != 0 && family.insert(derived).second) {
        grew = true;
      }
    }
  }
  return family;
}

std::vector<Finding> run_token_rules(
    const std::string& path, const LexedFile& file,
    const std::set<std::string>& error_family) {
  return RuleRunner(path, file, error_family).run();
}

}  // namespace aic::analysis
