// Suppression baseline: the checked-in ledger of known legacy findings.
//
// A new rule lands with the violations it finds in the existing tree
// recorded here, so the gate turns red only for *new* violations while the
// legacy ones are burned down incrementally. Entries match findings on
// (rule, path, fingerprint) — fingerprints are line-independent (the thrown
// type, the offending edge, the callee name), so a baseline survives
// unrelated edits but dies with the code it excuses. A stale entry (one
// matching nothing) is itself a failure: the baseline must stay exact.
//
// Format (aic-lint-baseline-v1, parsed with the hostile-input-safe
// obs/json parser — a truncated or hand-mangled baseline throws CheckError
// rather than silently suppressing everything):
//
//   {"schema": "aic-lint-baseline-v1",
//    "suppressions": [
//      {"rule": "layer-cycle", "path": "src/ckpt/async_checkpointer.h",
//       "fingerprint": "ckpt+storage+xfer", "reason": "..."}]}
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/rules.h"

namespace aic::analysis {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string fingerprint;
  std::string reason;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline document. Throws aic::CheckError on malformed input
/// (bad JSON, wrong schema, missing required fields).
Baseline baseline_from_json(std::string_view text);

/// Serializes a baseline (stable field order, one suppression per line).
std::string baseline_to_json(const Baseline& baseline);

/// Marks findings matched by an entry as suppressed ("baseline"); returns
/// the stale entries that matched nothing.
std::vector<BaselineEntry> apply_baseline(const Baseline& baseline,
                                          std::vector<Finding>& findings);

}  // namespace aic::analysis
