// Include-layering DAG check over src/ modules.
//
// Every `#include "mod/..."` in library code is a module-dependency edge.
// Two properties are enforced:
//
//   layer-edge   each edge must appear in the layering policy below —
//                deny-by-default, so a new dependency is a deliberate,
//                reviewed policy change, not drift. The policy encodes the
//                repo's target architecture: `common` depends on nothing,
//                `obs` only on `common`, and the paper-math modules
//                (`delta`/`mem`/`model`) never reach the orchestration
//                layers (`sim`/`xfer`).
//   layer-cycle  the *actual* edge set must be acyclic. Cycles are reported
//                per strongly connected component with a concrete path, so
//                a violation names the edges to break (legacy cycles live in
//                the suppression baseline until burned down).
//
// Violations name the offending edge, the file and include that create it,
// and (for cycles) a path through the component.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace aic::analysis {

/// The target module-dependency policy: module -> modules it may include.
/// Deny-by-default; `aic` is the umbrella header and may depend on all.
const std::map<std::string, std::set<std::string>>& layering_policy();

/// Module owning `path` ("src/delta/x.h" -> "delta"); "" for paths outside
/// src/ or directly under it.
std::string module_of(std::string_view path);

struct FileIncludes {
  std::string path;
  const LexedFile* lexed = nullptr;
};

/// Checks every file's quoted includes against the policy and the combined
/// module graph for cycles. Non-src files are ignored.
std::vector<Finding> check_layering(const std::vector<FileIncludes>& files);

}  // namespace aic::analysis
