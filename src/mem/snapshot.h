// Point-in-time page images of an AddressSpace.
//
// A Snapshot is the in-memory form of "the previous checkpoint's pages":
// the delta compressor differences current pages against it, and the
// restart engine materializes an AddressSpace from one. It owns copies of
// page bytes, so it stays valid while the live space keeps mutating.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "mem/address_space.h"

namespace aic::mem {

class Snapshot {
 public:
  Snapshot() = default;

  /// Captures all live pages of the space.
  static Snapshot capture(const AddressSpace& space);

  /// Captures only the given pages (which must all exist).
  static Snapshot capture_pages(const AddressSpace& space,
                                const std::vector<PageId>& ids);

  bool contains(PageId id) const { return pages_.contains(id); }
  std::size_t page_count() const { return pages_.size(); }

  /// Page image bytes; page must be present.
  ByteSpan page_bytes(PageId id) const;

  /// Writable view of a present page's image — the in-place restore path
  /// rewrites page frames where they sit instead of building a second
  /// snapshot.
  std::span<std::uint8_t> mutable_page_bytes(PageId id);

  /// Like mutable_page_bytes, but creates a zero-filled page first when
  /// absent.
  std::span<std::uint8_t> ensure_page(PageId id);

  /// Inserts or replaces a page image.
  void put_page(PageId id, ByteSpan bytes);

  /// Removes a page image if present.
  void erase_page(PageId id) { pages_.erase(id); }

  /// Sorted ids of all captured pages.
  std::vector<PageId> page_ids() const;

  /// Applies this snapshot on top of another (later pages win); used when
  /// replaying a full checkpoint followed by increments.
  void overlay_onto(Snapshot& base) const;

  /// Materializes a fresh AddressSpace equal to this snapshot.
  AddressSpace materialize() const;

  /// Byte-for-byte equality with a live address space (test helper).
  bool equals_space(const AddressSpace& space) const;

 private:
  // std::map keeps ids ordered for deterministic iteration/serialization.
  std::map<PageId, std::unique_ptr<PageData>> pages_;
};

}  // namespace aic::mem
