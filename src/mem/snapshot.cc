#include "mem/snapshot.h"

#include <cstring>

#include "common/check.h"

namespace aic::mem {

Snapshot Snapshot::capture(const AddressSpace& space) {
  return capture_pages(space, space.live_pages());
}

Snapshot Snapshot::capture_pages(const AddressSpace& space,
                                 const std::vector<PageId>& ids) {
  Snapshot snap;
  for (PageId id : ids) snap.put_page(id, space.page_bytes(id));
  return snap;
}

ByteSpan Snapshot::page_bytes(PageId id) const {
  auto it = pages_.find(id);
  AIC_CHECK_MSG(it != pages_.end(), "snapshot missing page " << id);
  return ByteSpan(it->second->bytes, kPageSize);
}

std::span<std::uint8_t> Snapshot::mutable_page_bytes(PageId id) {
  auto it = pages_.find(id);
  AIC_CHECK_MSG(it != pages_.end(), "snapshot missing page " << id);
  return std::span<std::uint8_t>(it->second->bytes, kPageSize);
}

std::span<std::uint8_t> Snapshot::ensure_page(PageId id) {
  auto& slot = pages_[id];
  if (!slot) {
    slot = std::make_unique<PageData>();
    std::memset(slot->bytes, 0, kPageSize);
  }
  return std::span<std::uint8_t>(slot->bytes, kPageSize);
}

void Snapshot::put_page(PageId id, ByteSpan bytes) {
  AIC_CHECK(bytes.size() == kPageSize);
  auto& slot = pages_[id];
  if (!slot) slot = std::make_unique<PageData>();
  std::memcpy(slot->bytes, bytes.data(), kPageSize);
}

std::vector<PageId> Snapshot::page_ids() const {
  std::vector<PageId> out;
  out.reserve(pages_.size());
  for (const auto& [id, _] : pages_) out.push_back(id);
  return out;
}

void Snapshot::overlay_onto(Snapshot& base) const {
  for (const auto& [id, data] : pages_)
    base.put_page(id, ByteSpan(data->bytes, kPageSize));
}

AddressSpace Snapshot::materialize() const {
  AddressSpace space;
  for (const auto& [id, data] : pages_) {
    space.allocate(id);
    space.write_page(id, ByteSpan(data->bytes, kPageSize));
  }
  return space;
}

bool Snapshot::equals_space(const AddressSpace& space) const {
  if (space.page_count() != pages_.size()) return false;
  for (const auto& [id, data] : pages_) {
    if (!space.contains(id)) return false;
    ByteSpan live = space.page_bytes(id);
    if (std::memcmp(live.data(), data->bytes, kPageSize) != 0) return false;
  }
  return true;
}

}  // namespace aic::mem
