#include "mem/address_space.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace aic::mem {

void AddressSpace::allocate(PageId id) {
  AIC_CHECK_MSG(!pages_.contains(id), "double allocation of page " << id);
  Entry entry;
  entry.data = std::make_unique<PageData>();
  std::memset(entry.data->bytes, 0, kPageSize);
  entry.protected_ = false;
  auto [it, inserted] = pages_.emplace(id, std::move(entry));
  AIC_CHECK(inserted);
  // A freshly allocated page must appear in the next checkpoint.
  touch(id, it->second);
}

void AddressSpace::allocate_range(PageId first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) allocate(first + i);
}

void AddressSpace::free_page(PageId id) {
  AIC_CHECK_MSG(pages_.erase(id) == 1, "freeing unmapped page " << id);
  dirty_.erase(id);
}

ByteSpan AddressSpace::page_bytes(PageId id) const {
  auto it = pages_.find(id);
  AIC_CHECK_MSG(it != pages_.end(), "reading unmapped page " << id);
  return ByteSpan(it->second.data->bytes, kPageSize);
}

void AddressSpace::touch(PageId id, Entry& entry) {
  if (entry.protected_) {
    entry.protected_ = false;
    ++fault_count_;
    if (fault_observer_) fault_observer_(id);
  }
  dirty_.emplace(id, true);
}

void AddressSpace::write(PageId id, std::size_t offset, ByteSpan data) {
  auto it = pages_.find(id);
  AIC_CHECK_MSG(it != pages_.end(), "writing unmapped page " << id);
  AIC_CHECK_MSG(offset + data.size() <= kPageSize, "write past page end");
  touch(id, it->second);
  std::memcpy(it->second.data->bytes + offset, data.data(), data.size());
}

void AddressSpace::write_page(PageId id, ByteSpan data) {
  AIC_CHECK(data.size() == kPageSize);
  write(id, 0, data);
}

void AddressSpace::mutate(
    PageId id, const std::function<void(std::span<std::uint8_t>)>& fn) {
  auto it = pages_.find(id);
  AIC_CHECK_MSG(it != pages_.end(), "mutating unmapped page " << id);
  touch(id, it->second);
  fn(std::span<std::uint8_t>(it->second.data->bytes, kPageSize));
}

void AddressSpace::protect_all() {
  for (auto& [id, entry] : pages_) entry.protected_ = true;
  dirty_.clear();
}

std::vector<PageId> AddressSpace::dirty_pages() const {
  std::vector<PageId> out;
  out.reserve(dirty_.size());
  for (const auto& [id, _] : dirty_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PageId> AddressSpace::live_pages() const {
  std::vector<PageId> out;
  out.reserve(pages_.size());
  for (const auto& [id, _] : pages_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace aic::mem
