// Simulated process address space with write-protection-based dirty-page
// tracking.
//
// This is the repo's substitute for the paper's BLCR kernel module +
// mprotect() machinery (Section IV.B): at the start of each checkpoint
// interval the checkpointer "write-protects" all pages (protect_all); the
// first write to a protected page raises a simulated page fault, which (1)
// appends the page to the dirty list, (2) notifies an optional fault
// observer (the AIC hot-page sampler hooks here), and (3) unprotects the
// page so subsequent writes are free — exactly the signal-handler flow the
// paper describes.
//
// Pages are 4 KiB (common/units.h) and sparse: only allocated pages hold
// backing bytes. Page ids are virtual page numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"

namespace aic::mem {

using PageId = std::uint64_t;

/// Backing bytes of one page.
struct PageData {
  std::uint8_t bytes[kPageSize];
};

/// Called on the first write to a protected page (simulated page fault).
/// Receives the faulting page id.
using FaultObserver = std::function<void(PageId)>;

class AddressSpace {
 public:
  AddressSpace() = default;

  // Move-only: pages can be large and accidental copies would be costly.
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  AddressSpace(AddressSpace&&) = default;
  AddressSpace& operator=(AddressSpace&&) = default;

  /// Allocates a zero-filled page. Allocation counts as a write: the page
  /// starts dirty (a brand-new page must enter the next checkpoint).
  void allocate(PageId id);
  /// Allocates [first, first+count).
  void allocate_range(PageId first, std::uint64_t count);
  /// Frees a page; it disappears from subsequent checkpoints.
  void free_page(PageId id);

  bool contains(PageId id) const { return pages_.contains(id); }
  std::size_t page_count() const { return pages_.size(); }
  std::uint64_t footprint_bytes() const { return pages_.size() * kPageSize; }

  /// Read-only view of a page's bytes. Page must exist.
  ByteSpan page_bytes(PageId id) const;

  /// Writes `data` into the page at `offset`. First write since the last
  /// protect_all() faults: marks dirty, notifies the observer, unprotects.
  void write(PageId id, std::size_t offset, ByteSpan data);

  /// Overwrites a whole page.
  void write_page(PageId id, ByteSpan data);

  /// In-place mutation helper: applies fn to the page's bytes, with dirty
  /// accounting as for write(). Used by synthetic workloads to avoid
  /// building temporary buffers.
  void mutate(PageId id, const std::function<void(std::span<std::uint8_t>)>& fn);

  /// Arms write protection on all pages and clears the dirty list; mirrors
  /// the interval-start mprotect() sweep.
  void protect_all();

  /// Page ids dirtied (written or allocated) since the last protect_all(),
  /// sorted ascending.
  std::vector<PageId> dirty_pages() const;
  std::size_t dirty_page_count() const { return dirty_.size(); }
  bool is_dirty(PageId id) const { return dirty_.contains(id); }

  /// All live page ids, sorted ascending.
  std::vector<PageId> live_pages() const;

  /// Observer invoked on each simulated page fault (may be empty).
  void set_fault_observer(FaultObserver observer) {
    fault_observer_ = std::move(observer);
  }

  /// Total simulated page faults since construction (diagnostics).
  std::uint64_t fault_count() const { return fault_count_; }

 private:
  struct Entry {
    std::unique_ptr<PageData> data;
    bool protected_ = false;  // armed for fault-on-write
  };

  /// Marks the page dirty, firing the fault observer if it was protected.
  void touch(PageId id, Entry& entry);

  std::unordered_map<PageId, Entry> pages_;
  std::unordered_map<PageId, bool> dirty_;  // used as a set
  FaultObserver fault_observer_;
  std::uint64_t fault_count_ = 0;
};

}  // namespace aic::mem
