// The AIC lightweight predictor (Section IV.D).
//
// Predicts, from the lightweight metrics {DP, t, JD, DI} gathered during
// the running interval, the three target variables needed by the
// checkpoint decider:
//   c1 — local (L1) incremental checkpoint latency,
//   dl — delta-compression latency,
//   ds — compressed delta size,
// from which c2 = dl + ds/B2 and c3 = ds/B3 follow.
//
// Protocol: no offline profiling. The first kWarmupSamples observed
// checkpoints seed a forward stepwise regression (<= 3 terms + intercept
// over the 14 expanded candidates); afterwards, every observation refines
// the selected weights by normalized gradient descent. Until the warm-up
// completes, predictions fall back to the running mean of the observed
// targets (and 0 before the first observation).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "predictor/features.h"
#include "predictor/regression.h"

namespace aic::obs {
class Counter;
class Histogram;
struct Hub;
}  // namespace aic::obs

namespace aic::predictor {

enum class Target : std::size_t { kC1 = 0, kDeltaLatency = 1, kDeltaSize = 2 };
inline constexpr std::size_t kTargetCount = 3;

const char* to_string(Target t);

class AicPredictor {
 public:
  /// Samples required before the stepwise fit (the paper uses four,
  /// permitting up to three variables plus intercept).
  static constexpr std::size_t kWarmupSamples = 4;

  explicit AicPredictor(StepwiseConfig stepwise = StepwiseConfig{},
                        double learning_rate = 0.5);

  /// Predicts a target for the given current metrics. Never negative.
  double predict(Target target, const BaseMetrics& metrics) const;

  /// Feeds back the measured targets of a just-taken checkpoint together
  /// with the metrics observed at its decision time.
  void observe(const BaseMetrics& metrics, double c1, double delta_latency,
               double delta_size);

  bool warmed_up() const { return models_[0].has_value(); }
  std::size_t observations() const { return observations_; }

  /// Attaches an observability hub: every observe() then records the
  /// pre-update prediction's relative error per target into the
  /// predictor.{c1,dl,ds}.rel_err histograms. nullptr detaches.
  void set_obs(obs::Hub* hub);

  /// The fitted model for a target (empty until warmed up) — diagnostics
  /// and the feature-ablation bench use this.
  const std::optional<OnlineGd>& model(Target t) const {
    return models_[std::size_t(t)];
  }

 private:
  StepwiseConfig stepwise_;
  double learning_rate_;
  std::size_t observations_ = 0;

  // Warm-up storage.
  std::vector<std::vector<double>> warmup_xs_;
  std::array<std::vector<double>, kTargetCount> warmup_ys_;

  // Running means (fallback before/while warming up).
  std::array<double, kTargetCount> mean_{0.0, 0.0, 0.0};

  std::array<std::optional<OnlineGd>, kTargetCount> models_;

  // Observability (null when detached).
  obs::Counter* m_observations_ = nullptr;
  std::array<obs::Histogram*, kTargetCount> m_rel_err_{};
};

}  // namespace aic::predictor
