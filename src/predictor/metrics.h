// Lightweight page-similarity metrics for the AIC predictor (Section IV.D).
//
//   Jaccard Distance  JD(P, P') = 1 - m/p  — inter-page dissimilarity: m is
//     the number of byte positions where the hot page P equals its previous
//     checkpointed version P'.
//   Divergence Index  DI(P)     = 1 - v/p  — intra-page dissimilarity: v is
//     the count of the most frequent byte value in P.
//
// Both are normalized to [0, 1] (0 = identical/uniform, 1 = maximally
// different) and cost one linear pass per page, which is what makes
// per-second online prediction affordable (the paper reports < 100 us per
// hot page; see bench/micro_predictor).
#pragma once

#include "common/bytes.h"

namespace aic::predictor {

/// JD between a page and its previous version. Spans must be equal-sized
/// and non-empty.
double jaccard_distance(ByteSpan current, ByteSpan previous);

/// DI of a single page. Span must be non-empty.
double divergence_index(ByteSpan page);

}  // namespace aic::predictor
