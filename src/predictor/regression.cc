#include "predictor/regression.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/linalg.h"

namespace aic::predictor {
namespace {

/// Builds the design matrix [1 | selected columns] for a candidate set.
Matrix design(const std::vector<std::vector<double>>& xs,
              const std::vector<std::size_t>& selected) {
  Matrix m(xs.size(), selected.size() + 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m(i, 0) = 1.0;
    for (std::size_t j = 0; j < selected.size(); ++j)
      m(i, j + 1) = xs[i][selected[j]];
  }
  return m;
}

}  // namespace

double LinearModel::predict(const std::vector<double>& candidates) const {
  double y = intercept;
  for (std::size_t j = 0; j < selected.size(); ++j) {
    AIC_CHECK(selected[j] < candidates.size());
    y += weights[j] * candidates[selected[j]];
  }
  return y;
}

LinearModel stepwise_fit(const std::vector<std::vector<double>>& xs,
                         const std::vector<double>& ys,
                         StepwiseConfig config) {
  AIC_CHECK(xs.size() == ys.size());
  AIC_CHECK_MSG(xs.size() >= config.max_terms + 1,
                "need more samples than terms");
  const std::size_t n_candidates = xs.empty() ? 0 : xs.front().size();

  LinearModel model;
  // Intercept-only baseline.
  double best_rss = 0.0;
  {
    double mean = 0.0;
    for (double y : ys) mean += y;
    mean /= double(ys.size());
    model.intercept = mean;
    for (double y : ys) best_rss += (y - mean) * (y - mean);
  }

  std::vector<double> beta;
  while (model.selected.size() < config.max_terms) {
    std::size_t best_candidate = n_candidates;
    double best_candidate_rss = std::numeric_limits<double>::infinity();
    std::vector<double> best_beta;
    for (std::size_t c = 0; c < n_candidates; ++c) {
      if (std::find(model.selected.begin(), model.selected.end(), c) !=
          model.selected.end())
        continue;
      auto trial = model.selected;
      trial.push_back(c);
      const Matrix x = design(xs, trial);
      if (!least_squares(x, ys, beta)) continue;
      const double rss = residual_sum_squares(x, ys, beta);
      if (rss < best_candidate_rss) {
        best_candidate_rss = rss;
        best_candidate = c;
        best_beta = beta;
      }
    }
    if (best_candidate == n_candidates) break;
    const double improvement =
        best_rss > 0.0 ? 1.0 - best_candidate_rss / best_rss : 0.0;
    if (improvement < config.min_improvement) break;
    model.selected.push_back(best_candidate);
    model.intercept = best_beta[0];
    model.weights.assign(best_beta.begin() + 1, best_beta.end());
    best_rss = best_candidate_rss;
  }
  return model;
}

OnlineGd::OnlineGd(LinearModel initial, double learning_rate)
    : model_(std::move(initial)), learning_rate_(learning_rate) {
  AIC_CHECK(learning_rate > 0.0 && learning_rate <= 2.0);
}

double OnlineGd::update(const std::vector<double>& candidates, double target) {
  const double pred = model_.predict(candidates);
  const double error = target - pred;
  // Normalized LMS over [1, x_selected].
  double norm = 1.0;  // the intercept's pseudo-feature
  for (std::size_t j = 0; j < model_.selected.size(); ++j) {
    const double x = candidates[model_.selected[j]];
    norm += x * x;
  }
  const double step = learning_rate_ * error / norm;
  model_.intercept += step;
  for (std::size_t j = 0; j < model_.selected.size(); ++j)
    model_.weights[j] += step * candidates[model_.selected[j]];
  ++updates_;
  return error;
}

}  // namespace aic::predictor
