#include "predictor/hot_page_sampler.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "predictor/metrics.h"

namespace aic::predictor {

HotPageSampler::HotPageSampler(SamplerConfig config)
    : config_(config),
      capacity_pages_(std::size_t(config.buffer_bytes / kPageSize)),
      tg_(config.initial_tg) {
  AIC_CHECK_MSG(capacity_pages_ >= 2, "sample buffer smaller than two pages");
  AIC_CHECK(config.initial_tg > 0.0);
}

void HotPageSampler::on_fault(mem::PageId id, double now, ByteSpan pre_write) {
  AIC_CHECK(pre_write.size() == kPageSize);
  ++faults_;
  // Same group as the previous arrival? Then this is not the group's first
  // page — skip it.
  if (now - last_arrival_ <= tg_) return;
  last_arrival_ = now;
  ++groups_;
  if (samples_.size() >= capacity_pages_) {
    // Buffer full: coarsen grouping and evict every other sample ("pages in
    // SB are dropped accordingly") so newer groups still fit.
    buffer_filled_ = true;
    tg_ *= 2.0;
    std::vector<Sample> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2)
      kept.push_back(std::move(samples_[i]));
    samples_ = std::move(kept);
  }
  Sample s;
  s.id = id;
  s.arrival = now;
  s.pre_write = std::make_unique<mem::PageData>();
  std::memcpy(s.pre_write->bytes, pre_write.data(), kPageSize);
  samples_.push_back(std::move(s));
}

HotPageSampler::Metrics HotPageSampler::compute(
    const mem::AddressSpace& space) const {
  Metrics m;
  std::size_t used = 0;
  const std::size_t stride =
      std::max<std::size_t>(1, samples_.size() / config_.max_compute_pages);
  for (std::size_t i = 0; i < samples_.size(); i += stride) {
    const Sample& s = samples_[i];
    if (!space.contains(s.id)) continue;  // freed since buffering
    const ByteSpan current = space.page_bytes(s.id);
    m.mean_jd +=
        jaccard_distance(current, ByteSpan(s.pre_write->bytes, kPageSize));
    m.mean_di += divergence_index(current);
    ++used;
  }
  if (used == 0) return m;
  m.mean_jd /= double(used);
  m.mean_di /= double(used);
  m.ok = true;
  return m;
}

void HotPageSampler::adapt() {
  if (buffer_filled_) {
    // tg_ already doubled on overflow; just clear the flag.
    buffer_filled_ = false;
  } else if (samples_.size() * 2 < capacity_pages_) {
    tg_ = std::max(tg_ / 2.0, 1e-6);
  }
}

void HotPageSampler::reset_interval() {
  samples_.clear();
  last_arrival_ = -1e300;
  groups_ = 0;
  faults_ = 0;
  buffer_filled_ = false;
}

SampleStats HotPageSampler::stats() const {
  return SampleStats{samples_.size(), groups_, faults_, tg_};
}

}  // namespace aic::predictor
