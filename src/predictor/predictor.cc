#include "predictor/predictor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aic::predictor {

const char* to_string(Target t) {
  switch (t) {
    case Target::kC1:
      return "c1";
    case Target::kDeltaLatency:
      return "dl";
    case Target::kDeltaSize:
      return "ds";
  }
  return "?";
}

AicPredictor::AicPredictor(StepwiseConfig stepwise, double learning_rate)
    : stepwise_(stepwise), learning_rate_(learning_rate) {}

void AicPredictor::set_obs(obs::Hub* hub) {
  if (hub == nullptr) {
    m_observations_ = nullptr;
    m_rel_err_ = {};
    return;
  }
  namespace on = obs::names;
  obs::MetricsRegistry& m = hub->metrics;
  m_observations_ = m.counter(on::kPredictorObservations);
  const std::array<const char*, kTargetCount> names = {
      on::kPredictorC1RelErr, on::kPredictorDlRelErr, on::kPredictorDsRelErr};
  for (std::size_t t = 0; t < kTargetCount; ++t) {
    // 1% .. ~80x relative error in x2 steps.
    m_rel_err_[t] = m.histogram(
        names[t], obs::Histogram::exponential_buckets(0.01, 2.0, 14));
  }
}

double AicPredictor::predict(Target target, const BaseMetrics& metrics) const {
  const std::size_t t = std::size_t(target);
  AIC_CHECK(t < kTargetCount);
  double value;
  if (models_[t].has_value()) {
    const auto expanded = expand_features(metrics);
    value = models_[t]->predict(
        std::vector<double>(expanded.begin(), expanded.end()));
  } else {
    value = mean_[t];
  }
  // Latencies and sizes cannot be negative; a linear model can be.
  return std::max(value, 0.0);
}

void AicPredictor::observe(const BaseMetrics& metrics, double c1,
                           double delta_latency, double delta_size) {
  const std::array<double, kTargetCount> targets = {c1, delta_latency,
                                                    delta_size};
  if (m_observations_ != nullptr) {
    // Residual of the prediction the decider would have used for this
    // checkpoint, before the model learns from it.
    m_observations_->add();
    for (std::size_t t = 0; t < kTargetCount; ++t) {
      const double predicted = predict(Target(t), metrics);
      const double scale = std::max(std::abs(targets[t]), 1e-12);
      m_rel_err_[t]->observe(std::abs(predicted - targets[t]) / scale);
    }
  }
  ++observations_;
  for (std::size_t t = 0; t < kTargetCount; ++t)
    mean_[t] += (targets[t] - mean_[t]) / double(observations_);

  const auto expanded = expand_features(metrics);
  const std::vector<double> x(expanded.begin(), expanded.end());

  if (!models_[0].has_value()) {
    warmup_xs_.push_back(x);
    for (std::size_t t = 0; t < kTargetCount; ++t)
      warmup_ys_[t].push_back(targets[t]);
    if (warmup_xs_.size() >= kWarmupSamples) {
      for (std::size_t t = 0; t < kTargetCount; ++t) {
        LinearModel fit = stepwise_fit(warmup_xs_, warmup_ys_[t], stepwise_);
        models_[t].emplace(std::move(fit), learning_rate_);
      }
      warmup_xs_.clear();
      for (auto& ys : warmup_ys_) ys.clear();
    }
    return;
  }
  for (std::size_t t = 0; t < kTargetCount; ++t)
    models_[t]->update(x, targets[t]);
}

}  // namespace aic::predictor
