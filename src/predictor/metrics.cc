#include "predictor/metrics.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace aic::predictor {

double jaccard_distance(ByteSpan current, ByteSpan previous) {
  AIC_CHECK(!current.empty());
  AIC_CHECK_MSG(current.size() == previous.size(),
                "JD needs equal-sized pages");
  std::size_t same = 0;
  for (std::size_t i = 0; i < current.size(); ++i)
    same += (current[i] == previous[i]);
  return 1.0 - double(same) / double(current.size());
}

double divergence_index(ByteSpan page) {
  AIC_CHECK(!page.empty());
  std::array<std::uint32_t, 256> histogram{};
  for (std::uint8_t b : page) ++histogram[b];
  const std::uint32_t most =
      *std::max_element(histogram.begin(), histogram.end());
  return 1.0 - double(most) / double(page.size());
}

}  // namespace aic::predictor
