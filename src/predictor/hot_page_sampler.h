// Hot-page sampling with arrival-time grouping (Section IV.E).
//
// A hot page's arrival time is its first write in the current interval.
// Pages are grouped by arrival time: two pages land in different groups if
// their arrivals are more than T_g apart. Only the *first* page of each
// group is buffered in a fixed-size Sample Buffer (SB); this bounds both
// space and the per-decision JD/DI cost.
//
// The buffered copy is the page's *pre-write* content — at the moment of
// the first-write fault the page still holds exactly its value from the
// last checkpoint, so the buffer doubles as the "previous version" P' for
// JD without touching the checkpoint file on disk.
//
// T_g adapts at each decision point: if SB filled up, T_g doubles and every
// other sample is dropped (coarser grouping); if SB is more than half
// empty, T_g halves (finer grouping next interval).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "mem/address_space.h"

namespace aic::predictor {

struct SamplerConfig {
  /// Sample buffer capacity in bytes (the paper uses 8 MiB).
  std::uint64_t buffer_bytes = 8 * kMiB;
  /// Initial arrival-grouping threshold in seconds.
  double initial_tg = 0.01;
  /// At most this many buffered samples enter each JD/DI evaluation
  /// (evenly strided); bounds the per-decision cost when the buffer is
  /// full, in the same spirit as the paper's group-based sampling.
  std::size_t max_compute_pages = 128;
};

struct SampleStats {
  std::size_t samples = 0;        // pages currently buffered
  std::uint64_t groups = 0;       // groups formed this interval
  std::uint64_t faults_seen = 0;  // hot pages observed this interval
  double tg = 0.0;                // current grouping threshold
};

class HotPageSampler {
 public:
  explicit HotPageSampler(SamplerConfig config = SamplerConfig{});

  /// Observer for the first write to `id` at time `now`; `pre_write` is the
  /// page's content before the write (== its last-checkpoint value). Wire
  /// this from mem::AddressSpace::set_fault_observer.
  void on_fault(mem::PageId id, double now, ByteSpan pre_write);

  /// Mean JD of the buffered samples against the space's *current* page
  /// contents, and mean DI of those current contents. Pages freed since
  /// buffering are skipped. Returns {0, 0} with ok=false if no usable
  /// samples exist.
  struct Metrics {
    double mean_jd = 0.0;
    double mean_di = 0.0;
    bool ok = false;
  };
  Metrics compute(const mem::AddressSpace& space) const;

  /// Decision-point bookkeeping: adapts T_g from the fill level, per the
  /// paper's doubling/halving rule.
  void adapt();

  /// Interval rollover: clears the buffer and per-interval counters (a new
  /// checkpoint was just taken; everything is clean again).
  void reset_interval();

  SampleStats stats() const;
  std::size_t capacity_pages() const { return capacity_pages_; }

 private:
  struct Sample {
    mem::PageId id;
    double arrival;
    std::unique_ptr<mem::PageData> pre_write;
  };

  SamplerConfig config_;
  std::size_t capacity_pages_;
  double tg_;
  std::vector<Sample> samples_;
  double last_arrival_ = -1e300;  // arrival time of the latest group
  std::uint64_t groups_ = 0;
  std::uint64_t faults_ = 0;
  bool buffer_filled_ = false;  // SB hit capacity during this interval
};

}  // namespace aic::predictor
