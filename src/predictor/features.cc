#include "predictor/features.h"

namespace aic::predictor {

std::array<double, kCandidateCount> expand_features(const BaseMetrics& m) {
  const double dp = m.dirty_pages, t = m.elapsed, jd = m.jd, di = m.di;
  return {dp,      t,       jd,      di,     dp * dp, t * t,  jd * jd,
          di * di, dp * t,  dp * jd, dp * di, t * jd, t * di, jd * di};
}

const std::array<std::string, kCandidateCount>& feature_names() {
  static const std::array<std::string, kCandidateCount> names = {
      "DP",    "t",     "JD",    "DI",    "DP^2",  "t^2",  "JD^2",
      "DI^2",  "DP*t",  "DP*JD", "DP*DI", "t*JD",  "t*DI", "JD*DI"};
  return names;
}

}  // namespace aic::predictor
