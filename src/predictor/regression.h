// Model fitting for the AIC predictor: forward stepwise regression to pick
// up to three candidate features (Section IV.D: "stepwise regression
// selects which of them to include in the linear model") and a normalized
// gradient-descent online learner [Cesa-Bianchi et al. 1996] that keeps the
// weights tracking as the application drifts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aic::predictor {

/// A sparse linear model over the candidate feature vector: an intercept
/// plus weights on `selected` feature indices.
struct LinearModel {
  std::vector<std::size_t> selected;  // candidate indices, <= max_terms
  std::vector<double> weights;        // aligned with `selected`
  double intercept = 0.0;

  double predict(const std::vector<double>& candidates) const;
};

struct StepwiseConfig {
  std::size_t max_terms = 3;
  /// A term enters only if it reduces RSS by at least this factor
  /// (1 - rss_new/rss_old >= min_improvement), a cheap stand-in for the
  /// partial F-test.
  double min_improvement = 0.01;
};

/// Forward stepwise selection: greedily adds the candidate that most
/// reduces residual sum of squares, refitting jointly (with intercept) at
/// each step, until max_terms or no candidate clears min_improvement.
/// Requires xs.size() == ys.size() >= max_terms + 1 samples.
LinearModel stepwise_fit(const std::vector<std::vector<double>>& xs,
                         const std::vector<double>& ys,
                         StepwiseConfig config = StepwiseConfig{});

/// Normalized gradient-descent updater over a fixed selection. Each update
/// steps the weights by  eta * error * x / (||x||^2 + eps), the normalized
/// LMS rule with worst-case loss bounds per Cesa-Bianchi et al.
class OnlineGd {
 public:
  explicit OnlineGd(LinearModel initial, double learning_rate = 0.5);

  double predict(const std::vector<double>& candidates) const {
    return model_.predict(candidates);
  }

  /// Observes the realized target for the given candidates and adjusts
  /// weights + intercept. Returns the pre-update prediction error.
  double update(const std::vector<double>& candidates, double target);

  const LinearModel& model() const { return model_; }
  std::uint64_t updates() const { return updates_; }

 private:
  LinearModel model_;
  double learning_rate_;
  std::uint64_t updates_ = 0;
};

}  // namespace aic::predictor
