// Candidate feature expansion for the AIC predictor (Section IV.D).
//
// The base metrics are Phi = {DP, t, JD, DI}:
//   DP — dirty pages in the interval so far
//   t  — elapsed time since the last local checkpoint
//   JD — mean Jaccard distance of sampled hot pages
//   DI — mean divergence index of sampled hot pages
//
// Stepwise regression considers the candidate set
//   { C1^g * C2^z | C1, C2 in Phi, 1 <= g + z <= 2 }
// i.e. the four raw metrics, their squares, and all pairwise products —
// 14 distinct candidates.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace aic::predictor {

/// Raw metrics of one observation.
struct BaseMetrics {
  double dirty_pages = 0.0;
  double elapsed = 0.0;
  double jd = 0.0;
  double di = 0.0;
};

/// Number of expanded candidate features.
inline constexpr std::size_t kCandidateCount = 14;

/// Expands the base metrics into the candidate vector. Order: DP, t, JD,
/// DI, DP^2, t^2, JD^2, DI^2, DP*t, DP*JD, DP*DI, t*JD, t*DI, JD*DI.
std::array<double, kCandidateCount> expand_features(const BaseMetrics& m);

/// Human-readable candidate names, index-aligned with expand_features.
const std::array<std::string, kCandidateCount>& feature_names();

}  // namespace aic::predictor
