// ChunkSink over a storage::StorageTarget: staged partials live in a
// side buffer owned by the sink, so nothing is visible to the target's
// get()/read_seconds() (and hence to MultiLevelStore::recover()) until
// commit() publishes the completed object with one atomic put.
//
// The transfer engine has already charged every byte's wire time through
// its Channel, so commit() deliberately ignores the duration returned by
// StorageTarget::put — the put is the publication step, not a second
// transfer.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "storage/storage.h"
#include "xfer/transfer.h"

namespace aic::xfer {

class StagedTargetSink final : public ChunkSink {
 public:
  explicit StagedTargetSink(storage::StorageTarget& target)
      : target_(&target) {}

  void stage(const std::string& key, std::uint64_t offset,
             ByteSpan chunk) override;
  std::uint64_t staged_bytes(const std::string& key) const override;
  void commit(const std::string& key) override;
  void discard(const std::string& key) override;

  /// In-progress partials (key -> staged bytes so far); exposed so tests
  /// and diagnostics can observe what a mid-drain failure left behind.
  const std::map<std::string, Bytes>& staging() const { return staging_; }
  std::size_t partial_count() const { return staging_.size(); }

 private:
  storage::StorageTarget* target_;
  std::map<std::string, Bytes> staging_;
};

}  // namespace aic::xfer
