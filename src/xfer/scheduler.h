// TransferScheduler — the checkpointing core's drain engine.
//
// Owns one simulated Channel per destination level and drives every
// submitted transfer through the chunked state machine of transfer.h under
// a single discrete-event virtual clock:
//
//   * each chunk is one send attempt on the level's channel, charged at
//     the channel's current per-stream bandwidth share (concurrent drains
//     split capacity — the emergent Fig. 7 sharing factor). With tenant
//     QoS configured (set_tenant_qos), the share is priced per tenant:
//     hard reservations are dedicated lanes, best-effort tenants split the
//     residual bandwidth by weight — the fleet's per-tenant QoS layer,
//     still emergent chunk by chunk;
//   * a failed attempt (drop, partial write, or timeout on a stall)
//     retries after capped exponential backoff; exhausting the per-chunk
//     attempt budget aborts the transfer with a TransferError naming the
//     level and chunk offset;
//   * delivered bytes land in the level's ChunkSink staging area and the
//     object is atomically committed only after the last chunk acks;
//   * interrupt_level() models a failure striking mid-drain: in-flight
//     and queued transfers to that level become kInterrupted resumable
//     partials, and resume_level() re-drains from the last acked chunk.
//
// The clock never runs backwards: run_until(t) processes every event up to
// virtual time t (attempt completions, backoff expiries, commits) and
// leaves attempts that end later than t in flight for the next call, so a
// failure simulator can interleave failures with a drain at any instant.
// Everything is deterministic — no host clocks, no host randomness.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xfer/channel.h"
#include "xfer/stats.h"
#include "xfer/transfer.h"

namespace aic::obs {
class Counter;
class Gauge;
class Histogram;
struct Hub;
}  // namespace aic::obs

namespace aic::xfer {

class TransferScheduler {
 public:
  struct Config {
    std::size_t chunk_bytes = 64 * 1024;
    RetryPolicy retry;
    /// Optional observability hub: per-chunk spans, retry/backoff events,
    /// and goodput gauges land here. nullptr = disabled (no overhead
    /// beyond one branch per event site).
    obs::Hub* obs = nullptr;
  };

  TransferScheduler();
  explicit TransferScheduler(Config config);

  /// Registers a destination level with its channel parameters and staging
  /// sink. The sink must outlive the scheduler.
  void add_level(int level, Channel::Config channel, ChunkSink* sink);
  bool has_level(int level) const { return levels_.count(level) > 0; }
  /// The level's channel, for fault injection and inspection.
  Channel& channel(int level);

  /// Registers (or replaces) tenant `tenant`'s QoS on `level`'s channel.
  /// Validates the aggregate: the sum of reserved bandwidth across the
  /// level's tenants (with this entry applied) must not exceed the
  /// channel's capacity — otherwise a ReservationError is thrown and the
  /// QoS table is left unchanged. Weights must be positive, reservations
  /// non-negative and finite.
  void set_tenant_qos(int level, std::uint64_t tenant, TenantQos qos);
  /// The tenant's QoS on `level` (defaults: weight 1, no reservation).
  TenantQos tenant_qos(int level, std::uint64_t tenant) const;

  /// Queues a drain of `data` to `level` under object name `key`; the
  /// transfer starts at the next run_*() call. Keys must be unique among
  /// live (non-discarded) transfers to the same level. `tenant` selects
  /// the QoS lane (see TenantQos); the default tenant 0 reproduces the
  /// pre-QoS equal B/N split.
  TransferId submit(int level, std::string key, Bytes data,
                    std::uint64_t tenant = 0);

  /// Size-only drain for fleet-scale simulation: the transfer carries
  /// `total_bytes` of synthetic (zero) payload that is never materialized —
  /// chunks are staged from a shared scratch buffer, so ten thousand
  /// concurrent multi-GB drains cost chunk_bytes of memory, not the sum of
  /// their footprints. Timing, pricing, interrupt/resume, and commit
  /// semantics are identical to submit(). The caller guarantees key
  /// uniqueness among live transfers (the duplicate scan is skipped — it
  /// is O(live transfers) per call, too dear at fleet scale).
  TransferId submit_sized(int level, std::string key,
                          std::uint64_t total_bytes, std::uint64_t tenant = 0);

  double now() const { return now_; }
  /// True when no transfer is pending or in flight (interrupted and
  /// terminal transfers don't count).
  bool idle() const;

  /// Runs the event loop until idle (commits, aborts, and interrupted
  /// partials only remain).
  void run_until_idle();
  /// Runs the event loop up to virtual time t, then sets now() = t.
  void run_until(double t);

  /// Failure at `level` mid-drain: every pending/in-flight transfer to
  /// that level becomes a resumable kInterrupted partial (the current
  /// chunk attempt is lost; acked bytes are kept). Returns the number of
  /// transfers interrupted.
  std::size_t interrupt_level(int level);
  /// Re-queues interrupted transfers to `level` (fresh per-chunk retry
  /// budget, resuming at the last acked chunk). Returns the count resumed.
  std::size_t resume_level(int level);

  /// Failure striking one job mid-drain: interrupts a single transfer
  /// (acked bytes kept, in-flight chunk lost). Returns false when the
  /// transfer is already terminal or interrupted — an interrupt racing a
  /// commit is a no-op, not an error.
  bool interrupt(TransferId id);
  /// Resumes one interrupted transfer (fresh per-chunk budget, re-drains
  /// from the last acked chunk). Returns false unless it was interrupted.
  bool resume(TransferId id);

  /// Drops a transfer and its staged partial entirely (rollback of a
  /// checkpoint that no longer exists). Terminal records are erased too.
  void discard(TransferId id);

  /// Associates a causal chain (obs/causal.h, id from CausalLog::open)
  /// with a live transfer: the drain-queue / in-flight / backoff / stalled
  /// seconds this transfer accumulates are added to the chain, which is
  /// closed at commit (or closed aborted at abort/discard). Requires an
  /// obs hub with telemetry enabled at that point; without one the
  /// association is dropped silently — attribution is best-effort.
  void annotate(TransferId id, std::uint64_t causal_id);

  const TransferRecord& record(TransferId id) const;
  bool known(TransferId id) const { return entries_.count(id) > 0; }
  /// Throws the transfer's TransferError if it aborted; no-op otherwise.
  void rethrow_if_aborted(TransferId id) const;

  std::size_t runnable_count() const;     // pending + in-flight
  std::size_t interrupted_count() const;
  /// Aggregate counters over every transfer this scheduler has seen
  /// (including discarded ones).
  Stats stats() const;

 private:
  struct Level {
    std::unique_ptr<Channel> channel;
    ChunkSink* sink = nullptr;
    /// Per-tenant QoS; absent tenants price as {1.0, 0.0}.
    std::map<std::uint64_t, TenantQos> qos;
  };
  struct Entry {
    TransferRecord rec;
    Bytes data;
    /// Size-only transfer (submit_sized): payload is synthetic zeros
    /// staged from the scheduler's scratch buffer, `data` stays empty.
    bool synthetic = false;
    double ready_at = 0.0;  // earliest start of the next chunk attempt
    // One in-flight chunk attempt (outcome fixed at start time).
    bool attempt_active = false;
    double attempt_start = 0.0;
    double attempt_end = 0.0;
    bool attempt_acked = false;
    std::uint64_t attempt_bytes = 0;
    std::uint64_t attempt_delivered = 0;
    // Causal attribution (annotate()): where this transfer's latency went,
    // accumulated as it runs, flushed to the chain when it closes.
    std::uint64_t causal_id = 0;
    double wait_since = 0.0;   // start of the current drain-queue wait
    double stall_since = 0.0;  // interrupt time while kInterrupted
    double seg_drainq_s = 0.0;
    double seg_inflight_s = 0.0;
    double seg_backoff_s = 0.0;
    double seg_stalled_s = 0.0;
  };

  Level& level_of(const Entry& e);
  void start_ready_attempts();
  void finish_attempt(Entry& e);
  void commit(Entry& e);
  /// Flushes the entry's accumulated segments into its causal chain and
  /// closes it; no-op without an annotation or telemetry.
  void close_causal(Entry& e, bool aborted);
  void run_events(double limit);
  void interrupt_entry(Entry& e);
  void resume_entry(Entry& e);
  /// Per-stream bandwidth for a starting attempt of `e`, from the level's
  /// active stream population (in-flight attempts plus those in
  /// `starting`): reserved tenants get reserved_bps split across their own
  /// streams, best-effort tenants share the residual by weight.
  double priced_bandwidth(const Entry& e,
                          const std::vector<Entry*>& starting) const;

  Config config_;
  // Metric handles resolved once at construction (all null when
  // config_.obs is null; event sites branch on config_.obs).
  obs::Counter* m_chunks_sent_ = nullptr;
  obs::Counter* m_chunks_failed_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_bytes_acked_ = nullptr;
  obs::Counter* m_bytes_wasted_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Counter* m_interrupts_ = nullptr;
  obs::Counter* m_resumes_ = nullptr;
  obs::Histogram* m_chunk_seconds_ = nullptr;
  obs::Histogram* m_backoff_seconds_ = nullptr;
  obs::Gauge* m_goodput_ = nullptr;
  double now_ = 0.0;
  TransferId next_id_ = 1;
  std::map<int, Level> levels_;
  std::map<TransferId, Entry> entries_;
  /// Zero-filled staging source for synthetic (size-only) transfers; grows
  /// to the largest chunk ever staged and is shared by every such drain.
  Bytes scratch_;
  /// Counters of discarded transfers, folded into stats().
  Stats discarded_stats_;
};

}  // namespace aic::xfer
