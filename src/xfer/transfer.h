// Transfer state machine types shared by the scheduler and its clients.
//
// One Transfer moves one serialized checkpoint object to one destination
// level as a sequence of fixed-size chunks. Lifecycle:
//
//   kPending ──start chunk──▶ kInFlight @ acked_bytes
//      ▲                          │
//      │   interrupt_level()      ├── all chunks acked ──▶ kCommitted
//      └───── resume ──── kInterrupted (resumable partial)
//                                 └── retry cap exhausted ─▶ kAborted
//
// While pending/in-flight/interrupted the object exists only in the level's
// staging area (a ChunkSink), never in the visible store: commit is atomic,
// so a failure between any two chunks can leave at most a resumable
// partial, never a torn visible object. An interrupted transfer keeps its
// acked byte count; resuming re-drains from the last acked chunk with a
// fresh per-chunk retry budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "xfer/stats.h"

namespace aic::xfer {

using TransferId = std::uint64_t;

enum class TransferState : std::uint8_t {
  kPending = 0,     // queued or between chunks, runnable
  kInFlight,        // a chunk attempt is on the wire
  kInterrupted,     // failure mid-drain; resumable at acked_bytes
  kCommitted,       // atomically published to the destination
  kAborted,         // retry cap exhausted; see TransferRecord::error
};

const char* to_string(TransferState state);

/// Naming convention for staged partials that land on a filesystem (used
/// by aic_fsck to tell an in-progress drain from a corrupt record).
inline constexpr const char kPartialSuffix[] = ".partial";

struct RetryPolicy {
  /// Max send attempts per chunk (1 original + max_attempts-1 retries).
  int max_attempts_per_chunk = 8;
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;
  /// An attempt taking longer than this counts as failed at the timeout
  /// (covers stalled channels); 0 disables the timeout.
  double chunk_timeout_s = 0.0;
};

/// Per-tenant QoS on one destination channel: a hard bandwidth reservation
/// (a dedicated lane carved out of the channel — both a floor and the
/// tenant's rate while it is active) and/or a weight for the best-effort
/// residual pool. Tenants with reserved_bps == 0 share the residual
/// bandwidth proportionally to weight — with equal weights and no
/// reservations this degrades to the emergent Fig. 7 B/N split.
struct TenantQos {
  double weight = 1.0;
  double reserved_bps = 0.0;
};

/// Typed rejection of a reservation set whose aggregate demand would
/// oversubscribe a channel: names the level, the offending aggregate, and
/// the channel capacity. Thrown by TransferScheduler::set_tenant_qos; the
/// scheduler's QoS table is left unchanged.
class ReservationError : public CheckError {
 public:
  ReservationError(int level, double reserved_bps, double capacity_bps,
                   const std::string& what)
      : CheckError(what),
        level_(level),
        reserved_bps_(reserved_bps),
        capacity_bps_(capacity_bps) {}

  int level() const { return level_; }
  /// Aggregate reserved bandwidth the rejected set would have demanded.
  double reserved_bps() const { return reserved_bps_; }
  double capacity_bps() const { return capacity_bps_; }

 private:
  int level_;
  double reserved_bps_;
  double capacity_bps_;
};

/// Typed abort error: names the destination level and the chunk offset the
/// drain could not push past.
class TransferError : public CheckError {
 public:
  TransferError(int level, std::uint64_t chunk_offset,
                const std::string& what)
      : CheckError(what), level_(level), chunk_offset_(chunk_offset) {}

  int level() const { return level_; }
  std::uint64_t chunk_offset() const { return chunk_offset_; }

 private:
  int level_;
  std::uint64_t chunk_offset_;
};

/// Staging destination for one level: chunks land at explicit offsets
/// (idempotent — a retry after a partial write overwrites the garbage),
/// and the object becomes visible only on commit.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;

  /// Writes `chunk` at `offset` of the staged object `key`, growing the
  /// staging buffer as needed. May be called repeatedly for the same
  /// offset (retry after partial delivery).
  virtual void stage(const std::string& key, std::uint64_t offset,
                     ByteSpan chunk) = 0;
  /// Bytes currently staged for `key` (0 if no partial exists).
  virtual std::uint64_t staged_bytes(const std::string& key) const = 0;
  /// Atomically publishes the staged object and clears the partial.
  virtual void commit(const std::string& key) = 0;
  /// Drops the staged partial without publishing.
  virtual void discard(const std::string& key) = 0;
};

/// Observable state of one transfer (scheduler-owned).
struct TransferRecord {
  TransferId id = 0;
  std::string key;
  int level = 0;
  /// Owning tenant for QoS pricing (0 = the default tenant: weight 1, no
  /// reservation — the pre-QoS behaviour).
  std::uint64_t tenant = 0;
  TransferState state = TransferState::kPending;
  std::uint64_t total_bytes = 0;
  /// Resume point: bytes confirmed at the sink (whole chunks only).
  std::uint64_t acked_bytes = 0;
  /// Attempts spent on the chunk currently at acked_bytes.
  int chunk_attempts = 0;
  /// Virtual time the transfer was submitted / committed.
  double submit_time = 0.0;
  double commit_time = 0.0;
  /// Backoff delay applied before each retry, in order (monotonically
  /// non-decreasing up to RetryPolicy::max_backoff_s).
  std::vector<double> backoff_history;
  Stats stats;
  /// Abort reason (empty unless kAborted).
  std::string error;

  bool terminal() const {
    return state == TransferState::kCommitted ||
           state == TransferState::kAborted;
  }
};

}  // namespace aic::xfer
