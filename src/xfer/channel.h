// Simulated network channel for checkpoint drains.
//
// A Channel models one link between the checkpointing core and a storage
// level (L2 partner group or L3 remote store): configurable bandwidth and
// per-message latency, fair bandwidth sharing between concurrent streams,
// and injectable faults. All time is virtual; a send() returns how long the
// attempt took, the caller (TransferScheduler) owns the clock.
//
// Bandwidth sharing — the Fig. 7 SF mechanism, made emergent: each send
// attempt is charged at bandwidth / active_streams() as of the moment the
// attempt starts. N equal concurrent drains therefore interleave chunk by
// chunk and each observes ~1/N of the channel's goodput, instead of the
// sharing factor being assumed by a model parameter.
//
// Faults are deterministic and scripted (a FIFO applied to upcoming sends)
// or probabilistic from a seeded RNG:
//   kDrop          the chunk never arrives; the attempt wastes wire time.
//   kStall         delivery is delayed; the scheduler's chunk timeout may
//                  turn the stall into a failed attempt.
//   kPartialWrite  only a prefix of the chunk reaches the sink before the
//                  connection breaks — the staged bytes are garbage past
//                  the last ack and MUST be overwritten by the retry.
#pragma once

#include <cstdint>
#include <deque>

#include "common/check.h"
#include "common/rng.h"

namespace aic::xfer {

enum class FaultKind : std::uint8_t { kDrop = 0, kStall, kPartialWrite };

struct Fault {
  FaultKind kind = FaultKind::kDrop;
  /// Extra delivery delay for kStall (seconds).
  double stall_seconds = 0.0;
  /// Fraction of the chunk delivered before the break, for kPartialWrite.
  double deliver_fraction = 0.5;
};

class Channel {
 public:
  struct Config {
    double bandwidth_bps = 1.0e6;
    double latency_s = 0.0;
  };

  explicit Channel(Config config);

  double bandwidth_bps() const { return config_.bandwidth_bps; }
  double latency_s() const { return config_.latency_s; }

  /// Scripts a fault for an upcoming send (FIFO over all streams).
  void inject(Fault fault) { scripted_.push_back(fault); }
  /// Scripts `count` consecutive drops — the retry/backoff test harness.
  void inject_drops(int count);
  /// Independent per-send drop probability from a seeded RNG (applies only
  /// when no scripted fault is pending).
  void set_drop_probability(double p, std::uint64_t seed);

  /// Stream accounting for bandwidth sharing; the scheduler opens a stream
  /// for the duration of each chunk attempt.
  void open_stream() { ++active_streams_; }
  void close_stream();
  std::size_t active_streams() const { return active_streams_; }

  struct SendOutcome {
    bool acked = false;
    /// Virtual seconds the attempt occupied (as seen by the sender).
    double seconds = 0.0;
    /// Bytes that physically reached the far side (≤ requested; may be
    /// nonzero on a failed partial write).
    std::uint64_t bytes_delivered = 0;
  };

  /// One chunk-send attempt at the current sharing factor. The caller must
  /// have opened a stream for this attempt.
  SendOutcome send(std::uint64_t bytes);

  /// One chunk-send attempt at an explicitly priced per-stream bandwidth —
  /// the QoS path: the TransferScheduler computes each stream's share from
  /// tenant reservations and weights and passes it here. Fault injection
  /// applies identically. A zero bandwidth yields an attempt of infinite
  /// duration (a starved stream), never a division fault.
  SendOutcome send(std::uint64_t bytes, double bandwidth_bps);

 private:
  Config config_;
  std::size_t active_streams_ = 0;
  std::deque<Fault> scripted_;
  double drop_probability_ = 0.0;
  Rng rng_;
};

}  // namespace aic::xfer
