// Per-transfer and aggregate counters for the chunked transfer engine.
//
// Every counter is in virtual (simulated) time/bytes: the discrete-event
// scheduler charges chunk sends against the channel's bandwidth share and
// accumulates the outcome here, so benches can report effective goodput,
// retry pressure, and backoff overhead per drain.
#pragma once

#include <cstdint>

namespace aic::xfer {

struct Stats {
  std::uint64_t chunks_sent = 0;     // attempts that were acked
  std::uint64_t chunks_failed = 0;   // dropped / partial / timed-out attempts
  std::uint64_t retries = 0;         // re-sends after a failed attempt
  std::uint64_t bytes_acked = 0;     // payload bytes confirmed at the sink
  std::uint64_t bytes_wasted = 0;    // bytes sent in failed attempts
  double wire_seconds = 0.0;         // virtual time attempts held the wire
  double backoff_seconds = 0.0;      // virtual time spent backing off
  std::uint64_t transfers_committed = 0;
  std::uint64_t transfers_aborted = 0;
  std::uint64_t transfers_interrupted = 0;  // failure-interruption events

  /// Acked payload bytes per second of elapsed virtual time (not wire
  /// time): the figure the Fig. 7 sharing-factor comparison needs.
  double goodput_bps(double elapsed_seconds) const {
    return elapsed_seconds > 0.0 ? double(bytes_acked) / elapsed_seconds
                                 : 0.0;
  }

  Stats& operator+=(const Stats& o) {
    chunks_sent += o.chunks_sent;
    chunks_failed += o.chunks_failed;
    retries += o.retries;
    bytes_acked += o.bytes_acked;
    bytes_wasted += o.bytes_wasted;
    wire_seconds += o.wire_seconds;
    backoff_seconds += o.backoff_seconds;
    transfers_committed += o.transfers_committed;
    transfers_aborted += o.transfers_aborted;
    transfers_interrupted += o.transfers_interrupted;
    return *this;
  }
};

}  // namespace aic::xfer
