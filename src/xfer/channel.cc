#include "xfer/channel.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aic::xfer {

Channel::Channel(Config config) : config_(config) {
  AIC_CHECK_MSG(std::isfinite(config.bandwidth_bps) &&
                    config.bandwidth_bps > 0.0,
                "channel bandwidth must be positive and finite, got "
                    << config.bandwidth_bps);
  AIC_CHECK_MSG(std::isfinite(config.latency_s) && config.latency_s >= 0.0,
                "channel latency must be non-negative and finite, got "
                    << config.latency_s);
}

void Channel::inject_drops(int count) {
  AIC_CHECK(count >= 0);
  for (int i = 0; i < count; ++i) inject(Fault{FaultKind::kDrop, 0.0, 0.0});
}

void Channel::set_drop_probability(double p, std::uint64_t seed) {
  AIC_CHECK_MSG(p >= 0.0 && p < 1.0,
                "drop probability must be in [0, 1), got " << p);
  drop_probability_ = p;
  rng_ = Rng(seed);
}

void Channel::close_stream() {
  AIC_CHECK_MSG(active_streams_ > 0, "close_stream with no open stream");
  --active_streams_;
}

Channel::SendOutcome Channel::send(std::uint64_t bytes) {
  const std::size_t share = std::max<std::size_t>(active_streams_, 1);
  return send(bytes, config_.bandwidth_bps / double(share));
}

Channel::SendOutcome Channel::send(std::uint64_t bytes,
                                   double bandwidth_bps) {
  AIC_CHECK_MSG(std::isfinite(bandwidth_bps) && bandwidth_bps >= 0.0,
                "per-stream bandwidth must be non-negative and finite, got "
                    << bandwidth_bps);
  // A zero share (a starved best-effort stream while reservations consume
  // the whole channel) yields an attempt that never completes: the
  // scheduler leaves it in flight and virtual time passes it by.
  const double base =
      bandwidth_bps > 0.0
          ? config_.latency_s + double(bytes) / bandwidth_bps
          : std::numeric_limits<double>::infinity();

  if (!scripted_.empty()) {
    const Fault fault = scripted_.front();
    scripted_.pop_front();
    if (fault.kind == FaultKind::kStall) {
      AIC_CHECK(fault.stall_seconds >= 0.0);
      // Delivery eventually succeeds, late; the scheduler's chunk timeout
      // decides whether the sender was still listening.
      return SendOutcome{true, base + fault.stall_seconds, bytes};
    }
    if (fault.kind == FaultKind::kPartialWrite) {
      AIC_CHECK(fault.deliver_fraction >= 0.0 && fault.deliver_fraction < 1.0);
      const auto delivered =
          std::uint64_t(double(bytes) * fault.deliver_fraction);
      const double frac = bytes > 0 ? double(delivered) / double(bytes) : 0.0;
      return SendOutcome{
          false, config_.latency_s + frac * (base - config_.latency_s),
          delivered};
    }
    // kDrop: the chunk is lost in flight — full wire time wasted, nothing
    // lands.
    return SendOutcome{false, base, 0};
  }
  if (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_)) {
    return SendOutcome{false, base, 0};
  }
  return SendOutcome{true, base, bytes};
}

}  // namespace aic::xfer
