#include "xfer/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace aic::xfer {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
namespace on = obs::names;
}  // namespace

const char* to_string(TransferState state) {
  switch (state) {
    case TransferState::kPending:
      return "pending";
    case TransferState::kInFlight:
      return "in-flight";
    case TransferState::kInterrupted:
      return "interrupted";
    case TransferState::kCommitted:
      return "committed";
    case TransferState::kAborted:
      return "aborted";
  }
  return "?";
}

TransferScheduler::TransferScheduler() : TransferScheduler(Config{}) {}

TransferScheduler::TransferScheduler(Config config) : config_(config) {
  AIC_CHECK_MSG(config.chunk_bytes >= 1, "chunk size must be >= 1 byte");
  AIC_CHECK(config.retry.max_attempts_per_chunk >= 1);
  AIC_CHECK(config.retry.initial_backoff_s >= 0.0);
  AIC_CHECK(config.retry.backoff_multiplier >= 1.0);
  AIC_CHECK(config.retry.max_backoff_s >= config.retry.initial_backoff_s);
  AIC_CHECK(config.retry.chunk_timeout_s >= 0.0);
  if (obs::Hub* hub = config_.obs) {
    obs::MetricsRegistry& m = hub->metrics;
    m_chunks_sent_ = m.counter(on::kXferChunksSent);
    m_chunks_failed_ = m.counter(on::kXferChunksFailed);
    m_retries_ = m.counter(on::kXferRetries);
    m_bytes_acked_ = m.counter(on::kXferBytesAcked);
    m_bytes_wasted_ = m.counter(on::kXferBytesWasted);
    m_commits_ = m.counter(on::kXferCommits);
    m_aborts_ = m.counter(on::kXferAborts);
    m_interrupts_ = m.counter(on::kXferInterrupts);
    m_resumes_ = m.counter(on::kXferResumes);
    m_chunk_seconds_ = m.histogram(
        on::kXferChunkSeconds,
        obs::Histogram::exponential_buckets(1e-4, 2.0, 24));
    m_backoff_seconds_ = m.histogram(
        on::kXferBackoffSeconds,
        obs::Histogram::exponential_buckets(1e-3, 2.0, 20));
    m_goodput_ = m.gauge(on::kXferDrainGoodputBps);
  }
}

void TransferScheduler::add_level(int level, Channel::Config channel,
                                  ChunkSink* sink) {
  AIC_CHECK_MSG(sink != nullptr, "level " << level << " needs a sink");
  AIC_CHECK_MSG(levels_.count(level) == 0,
                "level " << level << " already registered");
  levels_[level] = Level{std::make_unique<Channel>(channel), sink, {}};
}

Channel& TransferScheduler::channel(int level) {
  auto it = levels_.find(level);
  AIC_CHECK_MSG(it != levels_.end(), "unknown transfer level " << level);
  return *it->second.channel;
}

void TransferScheduler::set_tenant_qos(int level, std::uint64_t tenant,
                                       TenantQos qos) {
  auto it = levels_.find(level);
  AIC_CHECK_MSG(it != levels_.end(),
                "set_tenant_qos on unregistered level " << level);
  AIC_CHECK_MSG(std::isfinite(qos.weight) && qos.weight > 0.0,
                "tenant " << tenant << " weight must be positive, got "
                          << qos.weight);
  AIC_CHECK_MSG(std::isfinite(qos.reserved_bps) && qos.reserved_bps >= 0.0,
                "tenant " << tenant
                          << " reservation must be non-negative, got "
                          << qos.reserved_bps);
  // Aggregate-demand validation: the reservation set with this entry
  // applied must fit the channel. On rejection the table is untouched.
  const double capacity = it->second.channel->bandwidth_bps();
  double reserved = qos.reserved_bps;
  for (const auto& [t, q] : it->second.qos) {
    if (t != tenant) reserved += q.reserved_bps;
  }
  if (reserved > capacity) {
    std::ostringstream os;
    os << "reservation set on level " << level << " demands " << reserved
       << " B/s but the channel provides " << capacity
       << " B/s (adding tenant " << tenant << " at " << qos.reserved_bps
       << " B/s)";
    throw ReservationError(level, reserved, capacity, os.str());
  }
  it->second.qos[tenant] = qos;
}

TenantQos TransferScheduler::tenant_qos(int level, std::uint64_t tenant) const {
  auto it = levels_.find(level);
  AIC_CHECK_MSG(it != levels_.end(),
                "tenant_qos on unregistered level " << level);
  auto q = it->second.qos.find(tenant);
  return q == it->second.qos.end() ? TenantQos{} : q->second;
}

TransferScheduler::Level& TransferScheduler::level_of(const Entry& e) {
  auto it = levels_.find(e.rec.level);
  AIC_CHECK(it != levels_.end());
  return it->second;
}

TransferId TransferScheduler::submit(int level, std::string key, Bytes data,
                                     std::uint64_t tenant) {
  AIC_CHECK_MSG(levels_.count(level) > 0,
                "submit to unregistered level " << level);
  for (const auto& [id, e] : entries_) {
    AIC_CHECK_MSG(e.rec.level != level || e.rec.key != key,
                  "duplicate live transfer of " << key << " to level "
                                                << level);
  }
  Entry e;
  e.rec.id = next_id_++;
  e.rec.key = std::move(key);
  e.rec.level = level;
  e.rec.tenant = tenant;
  e.rec.total_bytes = data.size();
  e.rec.submit_time = now_;
  e.data = std::move(data);
  e.ready_at = now_;
  e.wait_since = now_;
  const TransferId id = e.rec.id;
  entries_.emplace(id, std::move(e));
  return id;
}

TransferId TransferScheduler::submit_sized(int level, std::string key,
                                           std::uint64_t total_bytes,
                                           std::uint64_t tenant) {
  AIC_CHECK_MSG(levels_.count(level) > 0,
                "submit to unregistered level " << level);
  AIC_CHECK_MSG(total_bytes > 0, "sized submit of empty object " << key);
  Entry e;
  e.rec.id = next_id_++;
  e.rec.key = std::move(key);
  e.rec.level = level;
  e.rec.tenant = tenant;
  e.rec.total_bytes = total_bytes;
  e.rec.submit_time = now_;
  e.synthetic = true;
  e.ready_at = now_;
  e.wait_since = now_;
  const TransferId id = e.rec.id;
  entries_.emplace(id, std::move(e));
  return id;
}

bool TransferScheduler::idle() const { return runnable_count() == 0; }

std::size_t TransferScheduler::runnable_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    n += (e.rec.state == TransferState::kPending ||
          e.rec.state == TransferState::kInFlight);
  }
  return n;
}

std::size_t TransferScheduler::interrupted_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    n += e.rec.state == TransferState::kInterrupted;
  }
  return n;
}

void TransferScheduler::close_causal(Entry& e, bool aborted) {
  if (e.causal_id == 0) return;
  const std::uint64_t id = e.causal_id;
  e.causal_id = 0;
  if (config_.obs == nullptr) return;
  obs::Telemetry* telemetry = config_.obs->telemetry();
  if (telemetry == nullptr) return;
  obs::CausalLog& log = telemetry->causal();
  log.add(id, obs::CausalSegment::kDrainQueue, e.seg_drainq_s);
  log.add(id, obs::CausalSegment::kInFlight, e.seg_inflight_s);
  log.add(id, obs::CausalSegment::kBackoff, e.seg_backoff_s);
  log.add(id, obs::CausalSegment::kStalled, e.seg_stalled_s);
  log.close_at(id, now_, aborted);
}

void TransferScheduler::annotate(TransferId id, std::uint64_t causal_id) {
  auto it = entries_.find(id);
  AIC_CHECK_MSG(it != entries_.end(), "annotate of unknown transfer " << id);
  it->second.causal_id = causal_id;
}

void TransferScheduler::commit(Entry& e) {
  level_of(e).sink->commit(e.rec.key);
  close_causal(e, false);
  e.rec.state = TransferState::kCommitted;
  e.rec.commit_time = now_;
  ++e.rec.stats.transfers_committed;
  if (config_.obs) {
    m_commits_->add();
    const double drain = now_ - e.rec.submit_time;
    if (drain > 0.0) m_goodput_->set(double(e.rec.total_bytes) / drain);
    config_.obs->trace.instant(
        obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvCommit, now_,
        std::uint32_t(e.rec.level),
        {{"bytes", double(e.rec.total_bytes)},
         {"drain_s", drain}});
  }
}

void TransferScheduler::start_ready_attempts() {
  // Two passes so every attempt starting at this instant sees the full
  // concurrent stream count: open all streams first, then price the sends.
  std::vector<Entry*> starting;
  for (auto& [id, e] : entries_) {
    if (e.rec.state != TransferState::kPending || e.attempt_active ||
        e.ready_at > now_) {
      continue;
    }
    if (e.rec.acked_bytes >= e.rec.total_bytes) {
      // Zero-byte object (or nothing left): publish without touching the
      // wire. Ensure a staged (possibly empty) entry exists to commit.
      level_of(e).sink->stage(e.rec.key, e.rec.acked_bytes, ByteSpan{});
      commit(e);
      continue;
    }
    starting.push_back(&e);
  }
  for (Entry* e : starting) level_of(*e).channel->open_stream();
  // Price every attempt starting at this instant against the full stream
  // population as of the instant (in-flight + starting) BEFORE any outcome
  // is fixed, so the pricing is order-independent within the batch.
  std::vector<double> bandwidth(starting.size());
  for (std::size_t i = 0; i < starting.size(); ++i) {
    bandwidth[i] = priced_bandwidth(*starting[i], starting);
  }
  for (std::size_t i = 0; i < starting.size(); ++i) {
    Entry* e = starting[i];
    const std::uint64_t chunk = std::min<std::uint64_t>(
        config_.chunk_bytes, e->rec.total_bytes - e->rec.acked_bytes);
    Channel::SendOutcome out = level_of(*e).channel->send(chunk, bandwidth[i]);
    // A stalled delivery outlasting the chunk timeout is a failed attempt
    // that costs exactly the timeout (the sender stops listening).
    const double timeout = config_.retry.chunk_timeout_s;
    if (timeout > 0.0 && out.seconds > timeout) {
      out.acked = false;
      out.seconds = timeout;
      out.bytes_delivered = 0;
    }
    e->rec.state = TransferState::kInFlight;
    ++e->rec.chunk_attempts;
    e->seg_drainq_s += std::max(0.0, now_ - e->wait_since);
    e->attempt_active = true;
    e->attempt_start = now_;
    e->attempt_end = now_ + out.seconds;
    e->attempt_acked = out.acked;
    e->attempt_bytes = chunk;
    e->attempt_delivered = out.bytes_delivered;
  }
}

double TransferScheduler::priced_bandwidth(
    const Entry& e, const std::vector<Entry*>& starting) const {
  const auto lit = levels_.find(e.rec.level);
  AIC_CHECK(lit != levels_.end());
  const Level& level = lit->second;

  // Stream population on this level at this instant: in-flight attempts
  // (outcome already fixed, but they still occupy the wire) plus every
  // attempt in the starting batch. Nothing in `starting` has
  // attempt_active set yet, so the two sets are disjoint.
  std::map<std::uint64_t, std::size_t> streams;  // tenant -> stream count
  for (const auto& [id, other] : entries_) {
    if (other.rec.level == e.rec.level && other.attempt_active) {
      ++streams[other.rec.tenant];
    }
  }
  for (const Entry* s : starting) {
    if (s->rec.level == e.rec.level) ++streams[s->rec.tenant];
  }

  auto qos_of = [&level](std::uint64_t tenant) {
    const auto it = level.qos.find(tenant);
    return it == level.qos.end() ? TenantQos{} : it->second;
  };

  // Reserved tenants ride their dedicated lanes; best-effort tenants pool
  // their weights over the residual bandwidth. An inactive reserved tenant
  // does not shrink the residual — reservations only bind while the tenant
  // has streams on the wire.
  double reserved_active = 0.0;
  double weight_pool = 0.0;
  for (const auto& [tenant, count] : streams) {
    const TenantQos q = qos_of(tenant);
    if (q.reserved_bps > 0.0) {
      reserved_active += q.reserved_bps;
    } else {
      weight_pool += q.weight;
    }
  }

  const TenantQos mine = qos_of(e.rec.tenant);
  const double my_streams = double(streams[e.rec.tenant]);
  if (mine.reserved_bps > 0.0) return mine.reserved_bps / my_streams;
  const double residual =
      std::max(0.0, level.channel->bandwidth_bps() - reserved_active);
  if (weight_pool <= 0.0) return residual / my_streams;
  return residual * (mine.weight / weight_pool) / my_streams;
}

void TransferScheduler::finish_attempt(Entry& e) {
  Level& level = level_of(e);
  level.channel->close_stream();
  e.attempt_active = false;
  e.rec.stats.wire_seconds += e.attempt_end - e.attempt_start;
  e.seg_inflight_s += e.attempt_end - e.attempt_start;
  if (config_.obs) {
    m_chunk_seconds_->observe(e.attempt_end - e.attempt_start);
    config_.obs->trace.span(
        obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvChunk,
        e.attempt_start, e.attempt_end, std::uint32_t(e.rec.level),
        {{"offset", double(e.rec.acked_bytes)},
         {"bytes", double(e.attempt_bytes)},
         {"ok", e.attempt_acked ? 1.0 : 0.0}});
  }

  if (e.attempt_delivered > 0) {
    // Bytes that physically arrived are staged even when the attempt
    // failed (partial write): the retry overwrites them at the same
    // offset, which is what keeps staging idempotent.
    if (e.synthetic) {
      if (scratch_.size() < e.attempt_delivered) {
        scratch_.assign(e.attempt_delivered, 0);
      }
      level.sink->stage(e.rec.key, e.rec.acked_bytes,
                        ByteSpan(scratch_.data(), e.attempt_delivered));
    } else {
      level.sink->stage(
          e.rec.key, e.rec.acked_bytes,
          ByteSpan(e.data.data() + e.rec.acked_bytes, e.attempt_delivered));
    }
  }

  if (e.attempt_acked) {
    e.rec.acked_bytes += e.attempt_bytes;
    ++e.rec.stats.chunks_sent;
    e.rec.stats.bytes_acked += e.attempt_bytes;
    if (config_.obs) {
      m_chunks_sent_->add();
      m_bytes_acked_->add(e.attempt_bytes);
    }
    e.rec.chunk_attempts = 0;
    e.ready_at = now_;
    e.wait_since = now_;
    if (e.rec.acked_bytes >= e.rec.total_bytes) {
      commit(e);
    } else {
      e.rec.state = TransferState::kPending;
    }
    return;
  }

  // Failed attempt: retry with capped exponential backoff, or abort once
  // the per-chunk budget is exhausted.
  ++e.rec.stats.chunks_failed;
  e.rec.stats.bytes_wasted += e.attempt_bytes;
  if (config_.obs) {
    m_chunks_failed_->add();
    m_bytes_wasted_->add(e.attempt_bytes);
  }
  if (e.rec.chunk_attempts >= config_.retry.max_attempts_per_chunk) {
    std::ostringstream os;
    os << "transfer of " << e.rec.key << " to level " << e.rec.level
       << " aborted at chunk offset " << e.rec.acked_bytes << " after "
       << e.rec.chunk_attempts << " attempts";
    e.rec.error = os.str();
    close_causal(e, true);
    e.rec.state = TransferState::kAborted;
    ++e.rec.stats.transfers_aborted;
    level.sink->discard(e.rec.key);
    if (config_.obs) {
      m_aborts_->add();
      config_.obs->trace.instant(
          obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvAbort, now_,
          std::uint32_t(e.rec.level),
          {{"offset", double(e.rec.acked_bytes)},
           {"attempts", double(e.rec.chunk_attempts)}});
    }
    return;
  }
  const int retry_index = e.rec.chunk_attempts - 1;  // 0 for first retry
  const double backoff = std::min(
      config_.retry.initial_backoff_s *
          std::pow(config_.retry.backoff_multiplier, double(retry_index)),
      config_.retry.max_backoff_s);
  e.rec.backoff_history.push_back(backoff);
  ++e.rec.stats.retries;
  e.rec.stats.backoff_seconds += backoff;
  if (config_.obs) {
    m_retries_->add();
    m_backoff_seconds_->observe(backoff);
    config_.obs->trace.span(
        obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvBackoff, now_,
        now_ + backoff, std::uint32_t(e.rec.level),
        {{"retry", double(retry_index + 1)}});
  }
  e.ready_at = now_ + backoff;
  e.seg_backoff_s += backoff;
  e.wait_since = e.ready_at;
  e.rec.state = TransferState::kPending;
}

void TransferScheduler::run_events(double limit) {
  for (;;) {
    start_ready_attempts();
    double next = kInf;
    for (const auto& [id, e] : entries_) {
      if (e.attempt_active) {
        next = std::min(next, e.attempt_end);
      } else if (e.rec.state == TransferState::kPending) {
        next = std::min(next, std::max(e.ready_at, now_));
      }
    }
    if (next == kInf || next > limit) break;
    now_ = std::max(now_, next);
    for (auto& [id, e] : entries_) {
      if (e.attempt_active && e.attempt_end <= now_) finish_attempt(e);
    }
  }
}

void TransferScheduler::run_until_idle() { run_events(kInf); }

void TransferScheduler::run_until(double t) {
  AIC_CHECK_MSG(t >= now_, "virtual clock cannot run backwards (now "
                               << now_ << ", asked " << t << ")");
  run_events(t);
  now_ = t;
}

void TransferScheduler::interrupt_entry(Entry& e) {
  if (e.attempt_active) {
    // The in-flight chunk dies with the failure; charge the wire time
    // actually elapsed, nothing is acked.
    level_of(e).channel->close_stream();
    e.rec.stats.wire_seconds += std::max(0.0, now_ - e.attempt_start);
    e.seg_inflight_s += std::max(0.0, now_ - e.attempt_start);
    e.attempt_active = false;
    if (config_.obs) {
      config_.obs->trace.span(
          obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvChunk,
          e.attempt_start, now_, std::uint32_t(e.rec.level),
          {{"offset", double(e.rec.acked_bytes)},
           {"bytes", double(e.attempt_bytes)},
           {"ok", 0.0},
           {"lost", 1.0}});
    }
  } else {
    e.seg_drainq_s += std::max(0.0, now_ - e.wait_since);
  }
  e.stall_since = now_;
  e.rec.state = TransferState::kInterrupted;
  ++e.rec.stats.transfers_interrupted;
  if (config_.obs) {
    m_interrupts_->add();
    config_.obs->trace.instant(
        obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvInterrupt, now_,
        std::uint32_t(e.rec.level), {{"acked", double(e.rec.acked_bytes)}});
  }
}

void TransferScheduler::resume_entry(Entry& e) {
  e.rec.state = TransferState::kPending;
  e.rec.chunk_attempts = 0;  // fresh budget for the resumed drain
  e.ready_at = now_;
  e.seg_stalled_s += std::max(0.0, now_ - e.stall_since);
  e.wait_since = now_;
  if (config_.obs) {
    m_resumes_->add();
    config_.obs->trace.instant(
        obs::TimeDomain::kVirtual, on::kCatXfer, on::kEvResume, now_,
        std::uint32_t(e.rec.level),
        {{"acked", double(e.rec.acked_bytes)},
         {"total", double(e.rec.total_bytes)}});
  }
}

std::size_t TransferScheduler::interrupt_level(int level) {
  std::size_t interrupted = 0;
  for (auto& [id, e] : entries_) {
    if (e.rec.level != level) continue;
    if (e.rec.state != TransferState::kPending &&
        e.rec.state != TransferState::kInFlight) {
      continue;
    }
    interrupt_entry(e);
    ++interrupted;
  }
  return interrupted;
}

std::size_t TransferScheduler::resume_level(int level) {
  std::size_t resumed = 0;
  for (auto& [id, e] : entries_) {
    if (e.rec.level != level ||
        e.rec.state != TransferState::kInterrupted) {
      continue;
    }
    resume_entry(e);
    ++resumed;
  }
  return resumed;
}

bool TransferScheduler::interrupt(TransferId id) {
  auto it = entries_.find(id);
  AIC_CHECK_MSG(it != entries_.end(), "interrupt of unknown transfer " << id);
  Entry& e = it->second;
  if (e.rec.state != TransferState::kPending &&
      e.rec.state != TransferState::kInFlight) {
    return false;
  }
  interrupt_entry(e);
  return true;
}

bool TransferScheduler::resume(TransferId id) {
  auto it = entries_.find(id);
  AIC_CHECK_MSG(it != entries_.end(), "resume of unknown transfer " << id);
  Entry& e = it->second;
  if (e.rec.state != TransferState::kInterrupted) return false;
  resume_entry(e);
  return true;
}

void TransferScheduler::discard(TransferId id) {
  auto it = entries_.find(id);
  AIC_CHECK_MSG(it != entries_.end(), "discard of unknown transfer " << id);
  Entry& e = it->second;
  if (e.attempt_active) {
    level_of(e).channel->close_stream();
    e.attempt_active = false;
  }
  if (!e.rec.terminal()) {
    level_of(e).sink->discard(e.rec.key);
    // Dropping a live drain abandons its checkpoint: close the chain
    // aborted so the attribution ledger balances.
    close_causal(e, true);
  }
  discarded_stats_ += e.rec.stats;
  entries_.erase(it);
}

const TransferRecord& TransferScheduler::record(TransferId id) const {
  auto it = entries_.find(id);
  AIC_CHECK_MSG(it != entries_.end(), "unknown transfer " << id);
  return it->second.rec;
}

void TransferScheduler::rethrow_if_aborted(TransferId id) const {
  const TransferRecord& rec = record(id);
  if (rec.state == TransferState::kAborted) {
    throw TransferError(rec.level, rec.acked_bytes, rec.error);
  }
}

Stats TransferScheduler::stats() const {
  Stats total = discarded_stats_;
  for (const auto& [id, e] : entries_) total += e.rec.stats;
  return total;
}

}  // namespace aic::xfer
