#include "xfer/staged_sink.h"

#include <algorithm>

#include "common/check.h"

namespace aic::xfer {

void StagedTargetSink::stage(const std::string& key, std::uint64_t offset,
                             ByteSpan chunk) {
  Bytes& buf = staging_[key];
  const std::size_t end = std::size_t(offset) + chunk.size();
  if (buf.size() < end) buf.resize(end, 0);
  std::copy(chunk.begin(), chunk.end(), buf.begin() + std::ptrdiff_t(offset));
}

std::uint64_t StagedTargetSink::staged_bytes(const std::string& key) const {
  auto it = staging_.find(key);
  return it == staging_.end() ? 0 : it->second.size();
}

void StagedTargetSink::commit(const std::string& key) {
  auto it = staging_.find(key);
  AIC_CHECK_MSG(it != staging_.end(), "commit of unstaged object " << key);
  AIC_CHECK_MSG(target_->available(),
                "commit to unavailable target " << target_->name()
                                                << " for " << key);
  // Publication, not transfer: wire time was charged chunk by chunk.
  (void)target_->put(key, std::move(it->second));
  staging_.erase(it);
}

void StagedTargetSink::discard(const std::string& key) {
  staging_.erase(key);
}

}  // namespace aic::xfer
