// Monte-Carlo simulation of the checkpoint Markov chains.
//
// The analytic solver (model/markov_chain) computes expected times by
// linear algebra; this module walks the same state graphs stochastically —
// sampling exponential failure arrivals and multinomial levels — so the
// two can be cross-checked. A solver bug and a simulator bug would have to
// coincide to slip through, which is the point of having both.
#pragma once

#include <limits>

#include "common/rng.h"
#include "common/stats.h"
#include "model/interval_models.h"
#include "model/markov_chain.h"

namespace aic::sim {

/// One stochastic walk from `start` to absorption; returns the elapsed
/// time. Throws CheckError if the chain is incomplete.
double simulate_chain_once(const model::MarkovChain& chain,
                           model::MarkovChain::StateId start, Rng& rng);

/// Runs `trials` walks and returns the sample statistics of the absorption
/// time.
RunningStats simulate_chain(const model::MarkovChain& chain,
                            model::MarkovChain::StateId start, int trials,
                            Rng rng);

/// Independent event-level simulation of the static L2L3 concurrent
/// interval (implemented from the protocol description, *not* from the
/// chain): work + blocking c1, concurrent L2/L3 transfer windows, old/new
/// checkpoint recovery and the rerun of the previous interval's concurrent
/// segment. Used to validate the interval chain's semantics end to end.
double simulate_l2l3_interval_once(const model::SystemProfile& sys, double w,
                                   Rng& rng);

RunningStats simulate_l2l3_interval(const model::SystemProfile& sys, double w,
                                    int trials, Rng rng);

}  // namespace aic::sim
