#include "sim/failure_sim.h"

#include <algorithm>
#include <vector>

#include <memory>
#include <optional>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "mem/snapshot.h"
#include "model/optimizer.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/multilevel_store.h"
#include "workload/elastic.h"

namespace aic::sim {
namespace {

namespace on = obs::names;

/// The simulator's instrumentation surface, shared by both variants.
/// Every method is a no-op when the run has no hub.
class SimObs {
 public:
  explicit SimObs(obs::Hub* hub) : hub_(hub) {
    if (hub_ == nullptr) return;
    obs::MetricsRegistry& m = hub_->metrics;
    m_failures_[0] = m.counter(on::kSimFailuresL1);
    m_failures_[1] = m.counter(on::kSimFailuresL2);
    m_failures_[2] = m.counter(on::kSimFailuresL3);
    m_restores_ = m.counter(on::kSimRestores);
    m_checkpoints_ = m.counter(on::kSimCheckpoints);
    m_resumed_ = m.counter(on::kSimDrainsResumed);
    m_resizes_ = m.counter(on::kSimResizes);
    m_replans_ = m.counter(on::kSimReplans);
  }

  void failure(double t, int level) {
    if (hub_ == nullptr) return;
    m_failures_[std::size_t(level - 1)]->add();
    hub_->trace.instant(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvFailure,
                        t, std::uint32_t(level), {{"level", double(level)}});
  }

  /// The recovery read, from the failure instant to work resumption.
  void restore(double t0, double t1, int level, double read_seconds) {
    if (hub_ == nullptr) return;
    m_restores_->add();
    hub_->trace.span(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvRestore,
                     t0, t1, std::uint32_t(level),
                     {{"level", double(level)}, {"read_s", read_seconds}});
    tick(t1);
  }

  void interval(double t0, double t1, std::uint64_t file_bytes) {
    if (hub_ == nullptr) return;
    m_checkpoints_->add();
    hub_->trace.span(obs::TimeDomain::kVirtual, on::kCatCkpt, on::kEvInterval,
                     t0, t1, 0, {{"file_bytes", double(file_bytes)}});
    tick(t1);
  }

  /// One telemetry round on the sim's virtual clock (checkpoint and
  /// restore boundaries). Out-of-order boundaries (a restore span ending
  /// before the last checkpoint tick) are skipped — the sampler demands a
  /// nondecreasing clock.
  void tick(double t) {
    if (hub_ == nullptr) return;
    obs::Telemetry* tel = hub_->telemetry();
    if (tel == nullptr || (tel->ticks() > 0 && t < tel->last_tick_s())) return;
    tel->tick(t);
  }

  void drains_resumed(std::size_t n) {
    if (hub_ != nullptr && n > 0) m_resumed_->add(n);
  }

  void resize(double t, std::uint64_t cores_before, std::uint64_t cores_after) {
    if (hub_ == nullptr) return;
    m_resizes_->add();
    hub_->trace.instant(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvResize,
                        t, 0,
                        {{"cores_before", double(cores_before)},
                         {"cores_after", double(cores_after)}});
  }

  void replan(double t, double w) {
    if (hub_ == nullptr) return;
    m_replans_->add();
    hub_->trace.instant(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvReplan,
                        t, 0, {{"w", w}});
  }

  void finish(const FailureSimResult& result) {
    if (hub_ == nullptr) return;
    obs::MetricsRegistry& m = hub_->metrics;
    m.gauge(on::kSimTurnaroundSeconds)->set(result.turnaround);
    m.gauge(on::kSimBaseSeconds)->set(result.base_time);
    m.gauge(on::kSimNet2)->set(result.net2());
  }

 private:
  obs::Hub* hub_;
  std::array<obs::Counter*, 3> m_failures_{};
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_resumed_ = nullptr;
  obs::Counter* m_resizes_ = nullptr;
  obs::Counter* m_replans_ = nullptr;
};

/// Per-checkpoint remote landing times on the wall clock.
struct RemoteState {
  std::uint64_t sequence;
  double l2_done;
  double l3_done;
};

/// The run's workload: the plain benchmark, or an ElasticWorkload over the
/// same profile when resize events are configured. `*elastic` (when the
/// out-pointer is given) aliases the returned workload or stays null.
std::unique_ptr<workload::Workload> make_sim_workload(
    const FailureSimConfig& config, workload::ElasticWorkload** elastic) {
  if (elastic != nullptr) *elastic = nullptr;
  if (config.resizes.empty()) {
    return workload::make_spec_workload(config.benchmark,
                                        config.workload_scale);
  }
  workload::ElasticProfile ep;
  ep.base = workload::spec_profile(config.benchmark, config.workload_scale);
  ep.base_cores = config.base_cores;
  ep.resizes = config.resizes;
  ep.migrate_fraction = config.migrate_fraction;
  auto wl = std::make_unique<workload::ElasticWorkload>(std::move(ep));
  if (elastic != nullptr) *elastic = wl.get();
  return wl;
}

/// The transfer-engine variant: L2/L3 placements are real chunked drains
/// through a MultiLevelStore, advanced in lockstep with the wall clock, so
/// a failure interrupts whatever chunk happens to be in flight and recovery
/// sees exactly the committed objects. Recovery provenance comes from
/// store.recover() (it reads surviving copies, RAID reconstruction
/// included) instead of the analytic landing-time bookkeeping.
FailureSimResult run_failure_sim_xfer(const FailureSimConfig& config) {
  FailureSimResult result;

  // Failure-free reference final state (determinism makes this exact).
  mem::Snapshot reference;
  {
    auto wl = workload::make_spec_workload(config.benchmark,
                                           config.workload_scale);
    mem::AddressSpace space;
    wl->initialize(space);
    wl->step(space, wl->base_time());
    reference = mem::Snapshot::capture(space);
    result.base_time = wl->base_time();
  }

  auto wl =
      workload::make_spec_workload(config.benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);

  SimObs obs(config.obs);
  ckpt::CheckpointChain chain(ckpt::CheckpointChain::Config{
      .obs = config.obs, .rewind_budget = config.rewind_budget});
  failure::FailureInjector injector(config.failures, Rng(config.seed));
  Rng storage_rng(config.seed ^ 0x9e3779b97f4a7c15ull);

  storage::MultiLevelConfig mc;
  mc.local_bps = config.costs.local_bps;
  mc.raid_bps = config.costs.b2_bps;
  mc.remote_bps = config.costs.b3_bps;
  mc.xfer.obs = config.obs;
  if (config.xfer_max_attempts_override > 0) {
    mc.xfer.retry.max_attempts_per_chunk = config.xfer_max_attempts_override;
  }
  storage::MultiLevelStore store(mc);
  if (config.remote_drop_probability > 0.0) {
    store.xfer().channel(3).set_drop_probability(
        config.remote_drop_probability, config.seed ^ 0xf11e57a7ull);
  }

  double wall = 0.0;
  double interval_start_progress = 0.0;
  double interval_start_wall = 0.0;

  // Initial full checkpoint, staged everywhere before t = 0 (drained to
  // completion off the clock); the store's virtual clock is then pinned to
  // the wall clock through the `sync` offset.
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();
  (void)store.put_checkpoint(chain.files().back());
  const double clock0 = store.xfer().now();
  auto sync = [&]() { store.xfer().run_until(clock0 + wall); };

  // Mirrors a rewind-window prune at the storage layer: the victim's
  // objects are erased at every level and a re-anchored successor's stored
  // copy (or in-flight drain) is rewritten with the new full bytes.
  std::uint64_t seen_discards = 0;
  auto reclaim_pruned = [&]() {
    if (chain.rewind().discards() == seen_discards) return;
    seen_discards = chain.rewind().discards();
    const auto& ev = *chain.last_prune();
    const ckpt::CheckpointFile* reanchored = nullptr;
    if (ev.reanchored_sequence.has_value()) {
      for (const ckpt::CheckpointFile& f : chain.files()) {
        if (f.sequence == *ev.reanchored_sequence) {
          reanchored = &f;
          break;
        }
      }
    }
    (void)store.reclaim_checkpoint(ev.victim_sequence, reanchored);
    ++result.checkpoints_pruned;
  };

  failure::FailureEvent pending = injector.next_after(0.0);

  auto handle_failure = [&](int level) {
    ++result.failures_by_level[std::size_t(level - 1)];
    ++result.restores;
    const double fail_at = wall;
    obs.failure(fail_at, level);
    sync();  // bring every drain to the failure instant
    store.apply_failure(level, storage_rng);

    auto rec = store.recover();
    AIC_CHECK_MSG(rec.has_value(),
                  "level-" << level << " failure left nothing restorable");
    const std::uint64_t seq = rec->chain.back().sequence;
    chain.rollback_to(seq);
    store.truncate_to(seq + 1);
    if (!store.raid().available()) {
      // Two RAID members gone (level-3 damage): replace the group and
      // re-seed it from the remote copies before new drains target it.
      store.repair_raid_group();
      (void)store.reseed_from_remote();
    }
    {
      const std::size_t resumed = store.resume_drains();
      result.drains_resumed += int(resumed);
      obs.drains_resumed(resumed);
    }

    auto restored = chain.restore();
    space = restored.memory.materialize();
    wl->restore_cpu_state(restored.cpu_state);
    space.protect_all();
    interval_start_progress = wl->progress();

    // Recovery: the measured read time of the surviving chain; interrupted
    // drains resume concurrently with the re-read.
    wall += rec->read_seconds;
    sync();
    obs.restore(fail_at, wall, level, rec->read_seconds);
    interval_start_wall = wall;
  };

  const double quantum = 1.0;
  while (!wl->finished()) {
    AIC_CHECK_MSG(wall < config.max_wall, "failure sim exceeded max_wall");
    if (pending.time <= wall) {
      wall = std::max(wall, pending.time);
      handle_failure(pending.level);
      pending = injector.next_after(std::max(pending.time, wall));
      continue;
    }
    const double until_failure = pending.time - wall;
    const double step = std::min(quantum, until_failure);
    wl->step(space, step);
    wall += step;
    sync();  // drains progress while the application computes

    const double elapsed = wl->progress() - interval_start_progress;
    if (elapsed >= config.checkpoint_interval &&
        store.unfinished_drains() == 0 && !wl->finished()) {
      // "No L1 until the last L3 has finished": the core is free only once
      // every queued drain has committed. A failure during the blocking
      // local write aborts the checkpoint (nothing was captured yet).
      const double c1_est = double(space.dirty_page_count() * kPageSize) /
                            config.costs.local_bps;
      if (pending.time <= wall + c1_est) {
        wall = pending.time;
        handle_failure(pending.level);
        pending = injector.next_after(wall);
        continue;
      }
      ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), wall);
      ++result.checkpoints;
      storage::DrainTicket ticket =
          store.put_checkpoint_async(chain.files().back());
      reclaim_pruned();
      // Blocking halt: the local write plus the delta-compression latency
      // (the drains themselves overlap with computation from here on).
      wall += ticket.local_seconds +
              config.costs.delta_latency(st.delta_work_units);
      sync();
      space.protect_all();
      interval_start_progress = wl->progress();
      obs.interval(interval_start_wall, wall, st.file_bytes);
      interval_start_wall = wall;
    }
  }

  // Let the tail drains land so the committed story is complete.
  store.xfer().run_until_idle();
  result.xfer_stats = store.xfer().stats();
  result.turnaround = wall;
  result.final_checkpoint_interval = config.checkpoint_interval;
  result.final_state_verified = reference.equals_space(space);
  obs.finish(result);
  return result;
}

/// The analytic variant: L2/L3 placements land after the c2/c3 formula
/// durations (no drain engine). Hosts the elastic-job machinery: on every
/// resize (and every rollback that reverts one) the cost model, failure
/// exposure, and — with replan_on_resize — the work span w_L* are
/// re-derived from the new width.
FailureSimResult run_failure_sim_analytic(const FailureSimConfig& config) {
  FailureSimResult result;

  // Failure-free reference final state (determinism makes this exact).
  mem::Snapshot reference;
  {
    auto ref = make_sim_workload(config, nullptr);
    mem::AddressSpace space;
    ref->initialize(space);
    ref->step(space, ref->base_time());
    reference = mem::Snapshot::capture(space);
    result.base_time = ref->base_time();
  }

  workload::ElasticWorkload* ewl = nullptr;
  auto wl = make_sim_workload(config, &ewl);
  mem::AddressSpace space;
  wl->initialize(space);

  SimObs obs(config.obs);
  // Delta-compressed incrementals, bounded-regret retention when asked.
  ckpt::CheckpointChain chain(ckpt::CheckpointChain::Config{
      .obs = config.obs, .rewind_budget = config.rewind_budget});
  failure::FailureInjector injector(config.failures, Rng(config.seed));

  double wall = 0.0;
  double interval_start_progress = 0.0;
  double interval_start_wall = 0.0;
  std::vector<RemoteState> remote;

  // Width-dependent state, re-derived at every reconfiguration: the cost
  // model (per-node resources scale with the allocation; the per-node
  // remote share b3 does not), the failure exposure (lambda ∝ cores), and
  // the checkpoint interval (under replan_on_resize).
  control::CostModel costs = config.costs;
  failure::FailureSpec exposure = config.failures;
  double interval = config.checkpoint_interval;
  std::optional<ckpt::CaptureStats> last_st;
  std::size_t last_applied = 0;
  std::uint64_t width_epoch = 0;
  std::uint64_t seen_discards = 0;

  // Initial full checkpoint, staged everywhere before t = 0.
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();
  remote.push_back({0, 0.0, 0.0});
  double core_free_at = 0.0;

  failure::FailureEvent pending = injector.next_after(0.0);

  // AIC re-plan: minimize the adaptive interval model's NET^2 in the work
  // span, parameterized by the last capture's measured artifacts under the
  // *current* cost model (or the raw footprint before any incremental).
  auto replan = [&]() {
    const model::IntervalParams prev =
        last_st.has_value()
            ? costs.delta_params(last_st->uncompressed_bytes,
                                 last_st->file_bytes,
                                 last_st->delta_work_units)
            : costs.raw_params(ewl->footprint_pages() * kPageSize);
    model::SystemProfile sys;
    sys.lambda = exposure.lambda;
    sys.c = {prev.c1, prev.c2, prev.c3};
    sys.r = {prev.r1, prev.r2, prev.r3};
    const double lo = std::max(1.0, prev.c1);
    const double hi = std::max(lo * 2.0, wl->base_time());
    const auto opt = model::extreme_value_minimum(
        [&](double w) { return model::net2_adaptive(sys, w, prev, prev); },
        lo, hi, std::clamp(interval, lo, hi));
    interval = std::max(1.0, opt.x);
    ++result.replans;
    obs.replan(wall, interval);
  };

  // Re-derives every width-dependent input after the applied-resize count
  // moved — forward (a resize fired during step()) or backward (a rollback
  // reverted one). The failure process is rebuilt at the new rate with a
  // fresh deterministic stream per width epoch.
  auto check_width = [&]() {
    if (ewl == nullptr || ewl->applied_resizes() == last_applied) return;
    const double f = ewl->scale_factor();
    costs = config.costs;
    costs.local_bps *= f;
    costs.compress_bps *= f;
    costs.b2_bps *= f;
    exposure = config.failures;
    for (double& l : exposure.lambda) l *= f;
    ++width_epoch;
    injector = failure::FailureInjector(
        exposure, Rng(config.seed ^ (0x9E3779B97F4A7C15ull * width_epoch)));
    pending = injector.next_after(wall);
    if (ewl->applied_resizes() > last_applied) {
      result.resizes_applied += int(ewl->applied_resizes() - last_applied);
      const auto& mig = ewl->last_migration();
      obs.resize(wall,
                 mig.has_value() ? mig->cores_before : config.base_cores,
                 ewl->cores());
    }
    last_applied = ewl->applied_resizes();
    if (config.replan_on_resize) replan();
  };

  // Drops a checkpoint the rewind window just pruned from the landing-time
  // bookkeeping (it no longer exists at any level).
  auto drop_pruned = [&]() {
    if (chain.rewind().discards() == seen_discards) return;
    seen_discards = chain.rewind().discards();
    const std::uint64_t victim = chain.last_prune()->victim_sequence;
    remote.erase(std::remove_if(remote.begin(), remote.end(),
                                [&](const RemoteState& r) {
                                  return r.sequence == victim;
                                }),
                 remote.end());
    ++result.checkpoints_pruned;
  };

  auto handle_failure = [&](int level) {
    ++result.failures_by_level[std::size_t(level - 1)];
    ++result.restores;
    const double fail_at = wall;
    obs.failure(fail_at, level);
    // Newest retained checkpoint whose surviving copy covers this failure
    // level; the oldest retained one (its chain starts with a staged or
    // re-anchored full) is the fallback when nothing newer has landed.
    std::uint64_t seq = remote.front().sequence;
    for (const RemoteState& r : remote) {
      const double done = level <= 2 ? r.l2_done : r.l3_done;
      if (done <= wall && r.sequence >= seq) seq = r.sequence;
    }
    chain.rollback_to(seq);
    remote.erase(std::remove_if(remote.begin(), remote.end(),
                                [&](const RemoteState& r) {
                                  return r.sequence > seq;
                                }),
                 remote.end());
    auto restored = chain.restore();
    space = restored.memory.materialize();
    wl->restore_cpu_state(restored.cpu_state);
    space.protect_all();
    interval_start_progress = wl->progress();
    core_free_at = wall;  // in-flight transfer died with the failure
    // A rollback can land before a resize boundary: the job restarts at
    // the narrower width, so re-derive everything from it.
    check_width();

    // Recovery: read the restart chain from the surviving level.
    const double bw = level <= 2 ? costs.b2_bps : costs.b3_bps;
    const double recovery = double(chain.restart_chain_bytes()) / bw;
    wall += recovery;
    obs.restore(fail_at, wall, level, recovery);
    interval_start_wall = wall;
    // Failures can strike during recovery as well; the pending event keeps
    // ticking on the wall clock and is handled by the main loop.
  };

  const double quantum = 1.0;
  while (!wl->finished()) {
    AIC_CHECK_MSG(wall < config.max_wall, "failure sim exceeded max_wall");
    if (pending.time <= wall) {
      handle_failure(pending.level);
      pending = injector.next_after(std::max(pending.time, wall));
      continue;
    }
    // Advance work until the next failure, checkpoint moment, or finish.
    const double until_failure = pending.time - wall;
    const double step = std::min(quantum, until_failure);
    wl->step(space, step);
    wall += step;
    check_width();

    const double elapsed = wl->progress() - interval_start_progress;
    if (elapsed >= interval && wall >= core_free_at && !wl->finished()) {
      // The local write halts the process; a failure during the halt aborts
      // the checkpoint (nothing was captured yet).
      // Estimate c1 from the dirty set before committing.
      const double c1_est = double(space.dirty_page_count() * kPageSize) /
                            costs.local_bps;
      if (pending.time <= wall + c1_est) {
        wall = pending.time;
        handle_failure(pending.level);
        pending = injector.next_after(wall);
        continue;
      }
      ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), wall);
      last_st = st;
      ++result.checkpoints;
      drop_pruned();
      const auto params = costs.delta_params(
          st.uncompressed_bytes, st.file_bytes, st.delta_work_units);
      wall += params.c1;
      remote.push_back({chain.checkpoints_taken() - 1,
                        wall + (params.c2 - params.c1),
                        wall + (params.c3 - params.c1)});
      core_free_at = wall + (params.c3 - params.c1);
      space.protect_all();
      interval_start_progress = wl->progress();
      obs.interval(interval_start_wall, wall, st.file_bytes);
      interval_start_wall = wall;
    }
  }

  result.turnaround = wall;
  result.final_checkpoint_interval = interval;
  result.final_state_verified = reference.equals_space(space);
  obs.finish(result);
  return result;
}

}  // namespace

FailureSimResult run_failure_sim(const FailureSimConfig& config) {
  AIC_CHECK(config.checkpoint_interval > 0.0);
  AIC_CHECK_MSG(config.resizes.empty() || !config.use_transfer_engine,
                "elastic resizes require the analytic simulator variant");
  try {
    return config.use_transfer_engine ? run_failure_sim_xfer(config)
                                      : run_failure_sim_analytic(config);
  } catch (const CheckError& e) {
    // A dying run leaves its flight recording behind (no-op unless the hub
    // enabled one); the typed error still propagates unchanged.
    if (config.obs != nullptr) {
      config.obs->dump_postmortem("failure-sim", e.what());
    }
    throw;
  }
}

}  // namespace aic::sim
