#include "sim/failure_sim.h"

#include <algorithm>
#include <vector>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "mem/snapshot.h"

namespace aic::sim {
namespace {

/// Per-checkpoint remote landing times on the wall clock.
struct RemoteState {
  std::uint64_t sequence;
  double l2_done;
  double l3_done;
};

}  // namespace

FailureSimResult run_failure_sim(const FailureSimConfig& config) {
  AIC_CHECK(config.checkpoint_interval > 0.0);

  FailureSimResult result;

  // Failure-free reference final state (determinism makes this exact).
  mem::Snapshot reference;
  {
    auto wl = workload::make_spec_workload(config.benchmark,
                                           config.workload_scale);
    mem::AddressSpace space;
    wl->initialize(space);
    wl->step(space, wl->base_time());
    reference = mem::Snapshot::capture(space);
    result.base_time = wl->base_time();
  }

  auto wl =
      workload::make_spec_workload(config.benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);

  ckpt::CheckpointChain chain;  // delta-compressed incrementals
  failure::FailureInjector injector(config.failures, Rng(config.seed));

  double wall = 0.0;
  double interval_start_progress = 0.0;
  std::vector<RemoteState> remote;

  // Initial full checkpoint, staged everywhere before t = 0.
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();
  remote.push_back({0, 0.0, 0.0});
  double core_free_at = 0.0;

  failure::FailureEvent pending = injector.next_after(0.0);

  auto handle_failure = [&](int level) {
    ++result.failures_by_level[std::size_t(level - 1)];
    ++result.restores;
    // Newest checkpoint whose surviving copy covers this failure level.
    std::uint64_t seq = 0;
    for (const RemoteState& r : remote) {
      const double done = level <= 2 ? r.l2_done : r.l3_done;
      if (done <= wall && r.sequence >= seq) seq = r.sequence;
    }
    chain.rollback_to(seq);
    remote.erase(std::remove_if(remote.begin(), remote.end(),
                                [&](const RemoteState& r) {
                                  return r.sequence > seq;
                                }),
                 remote.end());
    auto restored = chain.restore();
    space = restored.memory.materialize();
    wl->restore_cpu_state(restored.cpu_state);
    space.protect_all();
    interval_start_progress = wl->progress();
    core_free_at = wall;  // in-flight transfer died with the failure

    // Recovery: read the restart chain from the surviving level.
    const double bw = level <= 2 ? config.costs.b2_bps : config.costs.b3_bps;
    const double recovery = double(chain.restart_chain_bytes()) / bw;
    wall += recovery;
    // Failures can strike during recovery as well; the pending event keeps
    // ticking on the wall clock and is handled by the main loop.
  };

  const double quantum = 1.0;
  while (!wl->finished()) {
    AIC_CHECK_MSG(wall < config.max_wall, "failure sim exceeded max_wall");
    if (pending.time <= wall) {
      handle_failure(pending.level);
      pending = injector.next_after(std::max(pending.time, wall));
      continue;
    }
    // Advance work until the next failure, checkpoint moment, or finish.
    const double until_failure = pending.time - wall;
    const double step = std::min(quantum, until_failure);
    wl->step(space, step);
    wall += step;

    const double elapsed = wl->progress() - interval_start_progress;
    if (elapsed >= config.checkpoint_interval && wall >= core_free_at &&
        !wl->finished()) {
      // The local write halts the process; a failure during the halt aborts
      // the checkpoint (nothing was captured yet).
      // Estimate c1 from the dirty set before committing.
      const double c1_est = double(space.dirty_page_count() * kPageSize) /
                            config.costs.local_bps;
      if (pending.time <= wall + c1_est) {
        wall = pending.time;
        handle_failure(pending.level);
        pending = injector.next_after(wall);
        continue;
      }
      ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), wall);
      ++result.checkpoints;
      const auto params = config.costs.delta_params(
          st.uncompressed_bytes, st.file_bytes, st.delta_work_units);
      wall += params.c1;
      remote.push_back({chain.checkpoints_taken() - 1,
                        wall + (params.c2 - params.c1),
                        wall + (params.c3 - params.c1)});
      core_free_at = wall + (params.c3 - params.c1);
      space.protect_all();
      interval_start_progress = wl->progress();
    }
  }

  result.turnaround = wall;
  result.final_state_verified = reference.equals_space(space);
  return result;
}

}  // namespace aic::sim
