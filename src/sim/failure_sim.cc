#include "sim/failure_sim.h"

#include <algorithm>
#include <vector>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "mem/snapshot.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "storage/multilevel_store.h"

namespace aic::sim {
namespace {

namespace on = obs::names;

/// The simulator's instrumentation surface, shared by both variants.
/// Every method is a no-op when the run has no hub.
class SimObs {
 public:
  explicit SimObs(obs::Hub* hub) : hub_(hub) {
    if (hub_ == nullptr) return;
    obs::MetricsRegistry& m = hub_->metrics;
    m_failures_[0] = m.counter(on::kSimFailuresL1);
    m_failures_[1] = m.counter(on::kSimFailuresL2);
    m_failures_[2] = m.counter(on::kSimFailuresL3);
    m_restores_ = m.counter(on::kSimRestores);
    m_checkpoints_ = m.counter(on::kSimCheckpoints);
    m_resumed_ = m.counter(on::kSimDrainsResumed);
  }

  void failure(double t, int level) {
    if (hub_ == nullptr) return;
    m_failures_[std::size_t(level - 1)]->add();
    hub_->trace.instant(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvFailure,
                        t, std::uint32_t(level), {{"level", double(level)}});
  }

  /// The recovery read, from the failure instant to work resumption.
  void restore(double t0, double t1, int level, double read_seconds) {
    if (hub_ == nullptr) return;
    m_restores_->add();
    hub_->trace.span(obs::TimeDomain::kVirtual, on::kCatSim, on::kEvRestore,
                     t0, t1, std::uint32_t(level),
                     {{"level", double(level)}, {"read_s", read_seconds}});
  }

  void interval(double t0, double t1, std::uint64_t file_bytes) {
    if (hub_ == nullptr) return;
    m_checkpoints_->add();
    hub_->trace.span(obs::TimeDomain::kVirtual, on::kCatCkpt, on::kEvInterval,
                     t0, t1, 0, {{"file_bytes", double(file_bytes)}});
  }

  void drains_resumed(std::size_t n) {
    if (hub_ != nullptr && n > 0) m_resumed_->add(n);
  }

  void finish(const FailureSimResult& result) {
    if (hub_ == nullptr) return;
    obs::MetricsRegistry& m = hub_->metrics;
    m.gauge(on::kSimTurnaroundSeconds)->set(result.turnaround);
    m.gauge(on::kSimBaseSeconds)->set(result.base_time);
    m.gauge(on::kSimNet2)->set(result.net2());
  }

 private:
  obs::Hub* hub_;
  std::array<obs::Counter*, 3> m_failures_{};
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_resumed_ = nullptr;
};

/// Per-checkpoint remote landing times on the wall clock.
struct RemoteState {
  std::uint64_t sequence;
  double l2_done;
  double l3_done;
};

/// The transfer-engine variant: L2/L3 placements are real chunked drains
/// through a MultiLevelStore, advanced in lockstep with the wall clock, so
/// a failure interrupts whatever chunk happens to be in flight and recovery
/// sees exactly the committed objects. Recovery provenance comes from
/// store.recover() (it reads surviving copies, RAID reconstruction
/// included) instead of the analytic landing-time bookkeeping.
FailureSimResult run_failure_sim_xfer(const FailureSimConfig& config) {
  FailureSimResult result;

  // Failure-free reference final state (determinism makes this exact).
  mem::Snapshot reference;
  {
    auto wl = workload::make_spec_workload(config.benchmark,
                                           config.workload_scale);
    mem::AddressSpace space;
    wl->initialize(space);
    wl->step(space, wl->base_time());
    reference = mem::Snapshot::capture(space);
    result.base_time = wl->base_time();
  }

  auto wl =
      workload::make_spec_workload(config.benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);

  SimObs obs(config.obs);
  ckpt::CheckpointChain chain(ckpt::CheckpointChain::Config{
      .obs = config.obs});
  failure::FailureInjector injector(config.failures, Rng(config.seed));
  Rng storage_rng(config.seed ^ 0x9e3779b97f4a7c15ull);

  storage::MultiLevelConfig mc;
  mc.local_bps = config.costs.local_bps;
  mc.raid_bps = config.costs.b2_bps;
  mc.remote_bps = config.costs.b3_bps;
  mc.xfer.obs = config.obs;
  if (config.xfer_max_attempts_override > 0) {
    mc.xfer.retry.max_attempts_per_chunk = config.xfer_max_attempts_override;
  }
  storage::MultiLevelStore store(mc);
  if (config.remote_drop_probability > 0.0) {
    store.xfer().channel(3).set_drop_probability(
        config.remote_drop_probability, config.seed ^ 0xf11e57a7ull);
  }

  double wall = 0.0;
  double interval_start_progress = 0.0;
  double interval_start_wall = 0.0;

  // Initial full checkpoint, staged everywhere before t = 0 (drained to
  // completion off the clock); the store's virtual clock is then pinned to
  // the wall clock through the `sync` offset.
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();
  (void)store.put_checkpoint(chain.files().back());
  const double clock0 = store.xfer().now();
  auto sync = [&]() { store.xfer().run_until(clock0 + wall); };

  failure::FailureEvent pending = injector.next_after(0.0);

  auto handle_failure = [&](int level) {
    ++result.failures_by_level[std::size_t(level - 1)];
    ++result.restores;
    const double fail_at = wall;
    obs.failure(fail_at, level);
    sync();  // bring every drain to the failure instant
    store.apply_failure(level, storage_rng);

    auto rec = store.recover();
    AIC_CHECK_MSG(rec.has_value(),
                  "level-" << level << " failure left nothing restorable");
    const std::uint64_t seq = rec->chain.back().sequence;
    chain.rollback_to(seq);
    store.truncate_to(seq + 1);
    if (!store.raid().available()) {
      // Two RAID members gone (level-3 damage): replace the group and
      // re-seed it from the remote copies before new drains target it.
      store.repair_raid_group();
      (void)store.reseed_from_remote();
    }
    {
      const std::size_t resumed = store.resume_drains();
      result.drains_resumed += int(resumed);
      obs.drains_resumed(resumed);
    }

    auto restored = chain.restore();
    space = restored.memory.materialize();
    wl->restore_cpu_state(restored.cpu_state);
    space.protect_all();
    interval_start_progress = wl->progress();

    // Recovery: the measured read time of the surviving chain; interrupted
    // drains resume concurrently with the re-read.
    wall += rec->read_seconds;
    sync();
    obs.restore(fail_at, wall, level, rec->read_seconds);
    interval_start_wall = wall;
  };

  const double quantum = 1.0;
  while (!wl->finished()) {
    AIC_CHECK_MSG(wall < config.max_wall, "failure sim exceeded max_wall");
    if (pending.time <= wall) {
      wall = std::max(wall, pending.time);
      handle_failure(pending.level);
      pending = injector.next_after(std::max(pending.time, wall));
      continue;
    }
    const double until_failure = pending.time - wall;
    const double step = std::min(quantum, until_failure);
    wl->step(space, step);
    wall += step;
    sync();  // drains progress while the application computes

    const double elapsed = wl->progress() - interval_start_progress;
    if (elapsed >= config.checkpoint_interval &&
        store.unfinished_drains() == 0 && !wl->finished()) {
      // "No L1 until the last L3 has finished": the core is free only once
      // every queued drain has committed. A failure during the blocking
      // local write aborts the checkpoint (nothing was captured yet).
      const double c1_est = double(space.dirty_page_count() * kPageSize) /
                            config.costs.local_bps;
      if (pending.time <= wall + c1_est) {
        wall = pending.time;
        handle_failure(pending.level);
        pending = injector.next_after(wall);
        continue;
      }
      ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), wall);
      ++result.checkpoints;
      storage::DrainTicket ticket =
          store.put_checkpoint_async(chain.files().back());
      // Blocking halt: the local write plus the delta-compression latency
      // (the drains themselves overlap with computation from here on).
      wall += ticket.local_seconds +
              config.costs.delta_latency(st.delta_work_units);
      sync();
      space.protect_all();
      interval_start_progress = wl->progress();
      obs.interval(interval_start_wall, wall, st.file_bytes);
      interval_start_wall = wall;
    }
  }

  // Let the tail drains land so the committed story is complete.
  store.xfer().run_until_idle();
  result.xfer_stats = store.xfer().stats();
  result.turnaround = wall;
  result.final_state_verified = reference.equals_space(space);
  obs.finish(result);
  return result;
}

/// The analytic variant: L2/L3 placements land after the c2/c3 formula
/// durations (no drain engine).
FailureSimResult run_failure_sim_analytic(const FailureSimConfig& config) {
  FailureSimResult result;

  // Failure-free reference final state (determinism makes this exact).
  mem::Snapshot reference;
  {
    auto wl = workload::make_spec_workload(config.benchmark,
                                           config.workload_scale);
    mem::AddressSpace space;
    wl->initialize(space);
    wl->step(space, wl->base_time());
    reference = mem::Snapshot::capture(space);
    result.base_time = wl->base_time();
  }

  auto wl =
      workload::make_spec_workload(config.benchmark, config.workload_scale);
  mem::AddressSpace space;
  wl->initialize(space);

  SimObs obs(config.obs);
  // Delta-compressed incrementals.
  ckpt::CheckpointChain chain(ckpt::CheckpointChain::Config{
      .obs = config.obs});
  failure::FailureInjector injector(config.failures, Rng(config.seed));

  double wall = 0.0;
  double interval_start_progress = 0.0;
  double interval_start_wall = 0.0;
  std::vector<RemoteState> remote;

  // Initial full checkpoint, staged everywhere before t = 0.
  chain.capture(space, wl->cpu_state(), 0.0);
  space.protect_all();
  remote.push_back({0, 0.0, 0.0});
  double core_free_at = 0.0;

  failure::FailureEvent pending = injector.next_after(0.0);

  auto handle_failure = [&](int level) {
    ++result.failures_by_level[std::size_t(level - 1)];
    ++result.restores;
    const double fail_at = wall;
    obs.failure(fail_at, level);
    // Newest checkpoint whose surviving copy covers this failure level.
    std::uint64_t seq = 0;
    for (const RemoteState& r : remote) {
      const double done = level <= 2 ? r.l2_done : r.l3_done;
      if (done <= wall && r.sequence >= seq) seq = r.sequence;
    }
    chain.rollback_to(seq);
    remote.erase(std::remove_if(remote.begin(), remote.end(),
                                [&](const RemoteState& r) {
                                  return r.sequence > seq;
                                }),
                 remote.end());
    auto restored = chain.restore();
    space = restored.memory.materialize();
    wl->restore_cpu_state(restored.cpu_state);
    space.protect_all();
    interval_start_progress = wl->progress();
    core_free_at = wall;  // in-flight transfer died with the failure

    // Recovery: read the restart chain from the surviving level.
    const double bw = level <= 2 ? config.costs.b2_bps : config.costs.b3_bps;
    const double recovery = double(chain.restart_chain_bytes()) / bw;
    wall += recovery;
    obs.restore(fail_at, wall, level, recovery);
    interval_start_wall = wall;
    // Failures can strike during recovery as well; the pending event keeps
    // ticking on the wall clock and is handled by the main loop.
  };

  const double quantum = 1.0;
  while (!wl->finished()) {
    AIC_CHECK_MSG(wall < config.max_wall, "failure sim exceeded max_wall");
    if (pending.time <= wall) {
      handle_failure(pending.level);
      pending = injector.next_after(std::max(pending.time, wall));
      continue;
    }
    // Advance work until the next failure, checkpoint moment, or finish.
    const double until_failure = pending.time - wall;
    const double step = std::min(quantum, until_failure);
    wl->step(space, step);
    wall += step;

    const double elapsed = wl->progress() - interval_start_progress;
    if (elapsed >= config.checkpoint_interval && wall >= core_free_at &&
        !wl->finished()) {
      // The local write halts the process; a failure during the halt aborts
      // the checkpoint (nothing was captured yet).
      // Estimate c1 from the dirty set before committing.
      const double c1_est = double(space.dirty_page_count() * kPageSize) /
                            config.costs.local_bps;
      if (pending.time <= wall + c1_est) {
        wall = pending.time;
        handle_failure(pending.level);
        pending = injector.next_after(wall);
        continue;
      }
      ckpt::CaptureStats st = chain.capture(space, wl->cpu_state(), wall);
      ++result.checkpoints;
      const auto params = config.costs.delta_params(
          st.uncompressed_bytes, st.file_bytes, st.delta_work_units);
      wall += params.c1;
      remote.push_back({chain.checkpoints_taken() - 1,
                        wall + (params.c2 - params.c1),
                        wall + (params.c3 - params.c1)});
      core_free_at = wall + (params.c3 - params.c1);
      space.protect_all();
      interval_start_progress = wl->progress();
      obs.interval(interval_start_wall, wall, st.file_bytes);
      interval_start_wall = wall;
    }
  }

  result.turnaround = wall;
  result.final_state_verified = reference.equals_space(space);
  obs.finish(result);
  return result;
}

}  // namespace

FailureSimResult run_failure_sim(const FailureSimConfig& config) {
  AIC_CHECK(config.checkpoint_interval > 0.0);
  try {
    return config.use_transfer_engine ? run_failure_sim_xfer(config)
                                      : run_failure_sim_analytic(config);
  } catch (const CheckError& e) {
    // A dying run leaves its flight recording behind (no-op unless the hub
    // enabled one); the typed error still propagates unchanged.
    if (config.obs != nullptr) {
      config.obs->dump_postmortem("failure-sim", e.what());
    }
    throw;
  }
}

}  // namespace aic::sim
