// Per-job failure processes for fleet simulations.
//
// A fleet hosts thousands of jobs, each with its own Poisson failure
// process (failure/failure.h). Sampling them all from one shared RNG would
// make every job's failure sequence depend on fleet composition and on the
// order shards happen to draw — the opposite of what a byte-deterministic
// sharded core needs. A JobFailureProcess instead derives each job's
// stream from (fleet_seed, job_id) alone, so the sequence a job sees is
// invariant under shard count, admission order, and which other jobs share
// the fleet — failures strike individual jobs mid-drain at times fixed by
// the seed, never by scheduling accidents.
#pragma once

#include <cstdint>

#include "failure/failure.h"

namespace aic::sim {

class JobFailureProcess {
 public:
  JobFailureProcess(failure::FailureSpec spec, std::uint64_t fleet_seed,
                    std::uint64_t job_id)
      : injector_(spec, Rng(derive_seed(fleet_seed, job_id))) {}

  /// Next failure strictly after `now` (+infinity with a zero rate).
  failure::FailureEvent next_after(double now) {
    return injector_.next_after(now);
  }

  const failure::FailureSpec& spec() const { return injector_.spec(); }

  /// The per-job seed derivation, exposed so tests can pin it: a SplitMix64
  /// mix of the fleet seed and the job id.
  static std::uint64_t derive_seed(std::uint64_t fleet_seed,
                                   std::uint64_t job_id) {
    std::uint64_t state = fleet_seed ^ (job_id * 0x9E3779B97f4A7C15ULL);
    return splitmix64(state);
  }

 private:
  failure::FailureInjector injector_;
};

}  // namespace aic::sim
