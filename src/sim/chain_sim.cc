#include "sim/chain_sim.h"

#include "common/check.h"

namespace aic::sim {
namespace {

/// Samples a failure level given per-level rates (1-based), or 0 for no
/// distinction needed (single level).
int sample_level(const model::MarkovChain& chain, Rng& rng) {
  double total = 0.0;
  for (int k = 1; std::size_t(k) <= chain.level_count(); ++k)
    total += chain.level_rate(k);
  double u = rng.uniform() * total;
  for (int k = 1; std::size_t(k) <= chain.level_count(); ++k) {
    u -= chain.level_rate(k);
    if (u < 0.0) return k;
  }
  return int(chain.level_count());
}

}  // namespace

double simulate_chain_once(const model::MarkovChain& chain,
                           model::MarkovChain::StateId start, Rng& rng) {
  using StateId = model::MarkovChain::StateId;
  double t = 0.0;
  StateId s = start;
  const double total_rate = chain.total_rate();
  std::uint64_t hops = 0;
  while (s != model::MarkovChain::kDone) {
    AIC_CHECK_MSG(++hops < 100'000'000ULL, "chain walk does not absorb");
    const double tau = chain.duration(s);
    if (total_rate <= 0.0) {
      t += tau;
      s = chain.success_target(s);
      continue;
    }
    const double t_fail = rng.exponential(total_rate);
    if (t_fail >= tau) {
      t += tau;
      s = chain.success_target(s);
    } else {
      t += t_fail;
      s = chain.failure_target(s, sample_level(chain, rng));
    }
  }
  return t;
}

RunningStats simulate_chain(const model::MarkovChain& chain,
                            model::MarkovChain::StateId start, int trials,
                            Rng rng) {
  RunningStats stats;
  for (int i = 0; i < trials; ++i)
    stats.add(simulate_chain_once(chain, start, rng));
  return stats;
}

double simulate_l2l3_interval_once(const model::SystemProfile& sys, double w,
                                   Rng& rng) {
  // Independent event-level implementation of the static L2L3 protocol.
  // States mirror Section III.C's description, hand-coded rather than
  // walked from the solver's graph.
  enum class Phase { kWork, kL2Xfer, kL3Tail, kL3Retry, kRecOld2, kRecOld3,
                     kRecNew2, kRerun, kDone };
  const auto p = model::IntervalParams::from_profile(sys);
  const double d2 = sys.shared(p.c2 - p.c1);
  const double d3 = sys.shared(p.c3 - p.c2);
  const double d_full = sys.shared(p.c3 - p.c1);
  const double lambda = sys.total_lambda();

  auto draw_level = [&]() {
    double u = rng.uniform() * lambda;
    if (u < sys.lambda[0]) return 1;
    if (u < sys.lambda[0] + sys.lambda[1]) return 2;
    return 3;
  };

  double t = 0.0;
  Phase phase = Phase::kWork;
  std::uint64_t hops = 0;
  while (phase != Phase::kDone) {
    AIC_CHECK(++hops < 100'000'000ULL);
    double dur = 0.0;
    switch (phase) {
      case Phase::kWork:
        dur = w + p.c1;
        break;
      case Phase::kL2Xfer:
        dur = d2;
        break;
      case Phase::kL3Tail:
        dur = d3;
        break;
      case Phase::kL3Retry:
        dur = d_full;
        break;
      case Phase::kRecOld2:
        dur = p.r2;
        break;
      case Phase::kRecOld3:
        dur = p.r3;
        break;
      case Phase::kRecNew2:
        dur = p.r2;
        break;
      case Phase::kRerun:
        dur = d_full;  // static model: previous interval's segment == own
        break;
      case Phase::kDone:
        break;
    }
    const double t_fail =
        lambda > 0.0 ? rng.exponential(lambda)
                     : std::numeric_limits<double>::infinity();
    if (t_fail >= dur) {
      t += dur;
      switch (phase) {
        case Phase::kWork:
          phase = Phase::kL2Xfer;
          break;
        case Phase::kL2Xfer:
          phase = Phase::kL3Tail;
          break;
        case Phase::kL3Tail:
        case Phase::kL3Retry:
          phase = Phase::kDone;
          break;
        case Phase::kRecOld2:
        case Phase::kRecOld3:
          phase = Phase::kRerun;
          break;
        case Phase::kRecNew2:
          phase = Phase::kL3Retry;
          break;
        case Phase::kRerun:
          phase = Phase::kWork;
          break;
        case Phase::kDone:
          break;
      }
      continue;
    }
    t += t_fail;
    const int level = draw_level();
    switch (phase) {
      case Phase::kWork:
      case Phase::kL2Xfer:  // new L2 incomplete: recover from the old one
      case Phase::kRerun:
        phase = level <= 2 ? Phase::kRecOld2 : Phase::kRecOld3;
        break;
      case Phase::kL3Tail:
      case Phase::kL3Retry:  // new L2 exists
        phase = level <= 2 ? Phase::kRecNew2 : Phase::kRecOld3;
        break;
      case Phase::kRecOld2:
        phase = level <= 2 ? Phase::kRecOld2 : Phase::kRecOld3;
        break;
      case Phase::kRecOld3:
        phase = Phase::kRecOld3;
        break;
      case Phase::kRecNew2:
        phase = level <= 2 ? Phase::kRecNew2 : Phase::kRecOld3;
        break;
      case Phase::kDone:
        break;
    }
  }
  return t;
}

RunningStats simulate_l2l3_interval(const model::SystemProfile& sys, double w,
                                    int trials, Rng rng) {
  RunningStats stats;
  for (int i = 0; i < trials; ++i)
    stats.add(simulate_l2l3_interval_once(sys, w, rng));
  return stats;
}

}  // namespace aic::sim
