// End-to-end failure injection over the real machinery.
//
// Runs a synthetic workload under two-level concurrent incremental+delta
// checkpointing on a wall-clock timeline, injects exponential per-level
// failures, and performs *actual* recoveries: roll the checkpoint chain
// back to the newest copy that survives the failure level (L2 for f1/f2,
// L3 for f3, accounting for in-flight transfers), materialize the restored
// address space, rewind the workload, and replay.
//
// Because workload mutations are a pure function of progress, the final
// memory state after any number of failures and recoveries must equal the
// failure-free run's final state byte for byte — the strongest correctness
// check the library has. The measured turnaround also gives an empirical
// NET^2 to compare against the analytic models.
#pragma once

#include <array>
#include <cstdint>

#include "control/cost_model.h"
#include "failure/failure.h"
#include "workload/workload.h"

namespace aic::sim {

struct FailureSimConfig {
  workload::SpecBenchmark benchmark = workload::SpecBenchmark::kBzip2;
  double workload_scale = 0.25;
  control::CostModel costs;
  failure::FailureSpec failures;
  /// Static checkpoint interval (SIC-style; the point here is recovery
  /// correctness and model validation, not adaptivity).
  double checkpoint_interval = 30.0;
  std::uint64_t seed = 1;
  /// Abort guard: give up if the wall clock exceeds this.
  double max_wall = 1e7;
};

struct FailureSimResult {
  double turnaround = 0.0;  // wall time to completion
  double base_time = 0.0;
  std::array<int, 3> failures_by_level{0, 0, 0};
  int checkpoints = 0;
  int restores = 0;
  /// Final memory byte-matches the failure-free reference run.
  bool final_state_verified = false;

  int total_failures() const {
    return failures_by_level[0] + failures_by_level[1] + failures_by_level[2];
  }
  double net2() const { return base_time > 0 ? turnaround / base_time : 0.0; }
};

FailureSimResult run_failure_sim(const FailureSimConfig& config);

}  // namespace aic::sim
