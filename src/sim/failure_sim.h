// End-to-end failure injection over the real machinery.
//
// Runs a synthetic workload under two-level concurrent incremental+delta
// checkpointing on a wall-clock timeline, injects exponential per-level
// failures, and performs *actual* recoveries: roll the checkpoint chain
// back to the newest copy that survives the failure level (L2 for f1/f2,
// L3 for f3, accounting for in-flight transfers), materialize the restored
// address space, rewind the workload, and replay.
//
// Because workload mutations are a pure function of progress, the final
// memory state after any number of failures and recoveries must equal the
// failure-free run's final state byte for byte — the strongest correctness
// check the library has. The measured turnaround also gives an empirical
// NET^2 to compare against the analytic models.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "control/cost_model.h"
#include "failure/failure.h"
#include "workload/elastic.h"
#include "workload/workload.h"
#include "xfer/stats.h"

namespace aic::obs {
struct Hub;
}  // namespace aic::obs

namespace aic::sim {

struct FailureSimConfig {
  workload::SpecBenchmark benchmark = workload::SpecBenchmark::kBzip2;
  double workload_scale = 0.25;
  control::CostModel costs;
  failure::FailureSpec failures;
  /// Static checkpoint interval (SIC-style; the point here is recovery
  /// correctness and model validation, not adaptivity).
  double checkpoint_interval = 30.0;
  std::uint64_t seed = 1;
  /// Abort guard: give up if the wall clock exceeds this.
  double max_wall = 1e7;
  /// Run the L2/L3 placements through a real MultiLevelStore drain engine
  /// (chunked transfers in virtual time) instead of the analytic
  /// c2/c3 landing-time formulas. Failures then strike *during* drains:
  /// in-flight transfers are interrupted at a chunk boundary, recovery
  /// sees only committed objects, and interrupted drains resume from the
  /// last acked chunk after the restart — the Markov model's
  /// interrupted-transfer states, exercised end to end.
  bool use_transfer_engine = false;
  /// Optional observability hub: failure/restore instants, interval spans,
  /// end-of-run gauges, plus (with use_transfer_engine) every chunk span
  /// the drain engine emits and the chain's compression instrumentation.
  /// nullptr = disabled. Does not perturb the simulation: the virtual
  /// timeline is identical with and without a hub attached.
  obs::Hub* obs = nullptr;
  /// Channel-level fault injection on the remote (L3) drain channel
  /// (use_transfer_engine only): per-chunk drop probability. Combined with
  /// a small attempt budget this makes a drain exhaust its retries and die
  /// mid-drain with a TransferError — the flight-recorder postmortem path.
  double remote_drop_probability = 0.0;
  /// Overrides the drain engine's per-chunk attempt budget when > 0.
  int xfer_max_attempts_override = 0;
  /// Elastic job: core-count reconfigurations keyed on workload progress.
  /// Non-empty turns the benchmark into an ElasticWorkload over the same
  /// profile; at every resize the simulator re-derives the cost model
  /// (local/compress/RAID bandwidth scale with the width, the per-node
  /// remote share does not), rescales the failure exposure (lambda ∝
  /// cores), and — with replan_on_resize — re-solves the AIC work span
  /// w_L* on the adaptive interval model. Analytic variant only: requires
  /// use_transfer_engine == false.
  std::vector<workload::ResizeEvent> resizes;
  /// Core allocation the benchmark's profile is calibrated at.
  std::uint64_t base_cores = 4;
  /// Fraction of the post-resize footprint the migration burst rewrites.
  double migrate_fraction = 0.25;
  /// Re-plan the checkpoint interval after every reconfiguration (and
  /// after a rollback that reverts one). Off = keep the static interval —
  /// the no-replan ablation.
  bool replan_on_resize = true;
  /// Bounded-regret retention: live-checkpoint budget of the chain's
  /// RewindWindow (0 = keep every checkpoint). Pruned checkpoints are
  /// reclaimed from the MultiLevelStore in the transfer-engine variant and
  /// dropped from the landing-time bookkeeping in the analytic one.
  std::size_t rewind_budget = 0;
};

struct FailureSimResult {
  double turnaround = 0.0;  // wall time to completion
  double base_time = 0.0;
  std::array<int, 3> failures_by_level{0, 0, 0};
  int checkpoints = 0;
  int restores = 0;
  /// Final memory byte-matches the failure-free reference run.
  bool final_state_verified = false;
  /// Transfer-engine counters (use_transfer_engine only): chunks, retries,
  /// interruptions, goodput inputs.
  xfer::Stats xfer_stats;
  /// Drains resumed from a mid-flight interruption (use_transfer_engine).
  int drains_resumed = 0;
  /// Forward resize transitions observed on the sim timeline (a rollback
  /// that re-treads past a resize boundary re-fires and re-counts it).
  int resizes_applied = 0;
  /// Decider re-plans executed (replan_on_resize).
  int replans = 0;
  /// Work span in effect when the run completed (== checkpoint_interval
  /// unless a re-plan moved it).
  double final_checkpoint_interval = 0.0;
  /// Checkpoints pruned by the rewind window over the run.
  int checkpoints_pruned = 0;

  int total_failures() const {
    return failures_by_level[0] + failures_by_level[1] + failures_by_level[2];
  }
  double net2() const { return base_time > 0 ? turnaround / base_time : 0.0; }
};

FailureSimResult run_failure_sim(const FailureSimConfig& config);

}  // namespace aic::sim
