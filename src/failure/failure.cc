#include "failure/failure.h"

#include <limits>

#include "common/check.h"
#include "model/system_profile.h"

namespace aic::failure {

FailureSpec FailureSpec::from_total(double total_lambda) {
  auto split = model::split_rate(total_lambda);
  return FailureSpec{{split[0], split[1], split[2]}};
}

FailureInjector::FailureInjector(FailureSpec spec, Rng rng)
    : spec_(spec), rng_(rng) {
  for (double l : spec_.lambda) AIC_CHECK(l >= 0.0);
}

FailureEvent FailureInjector::next_after(double now) {
  const double total = spec_.total();
  if (total <= 0.0) {
    return {std::numeric_limits<double>::infinity(), 0};
  }
  FailureEvent ev;
  ev.time = now + rng_.exponential(total);
  const double u = rng_.uniform() * total;
  if (u < spec_.lambda[0]) {
    ev.level = 1;
  } else if (u < spec_.lambda[0] + spec_.lambda[1]) {
    ev.level = 2;
  } else {
    ev.level = 3;
  }
  return ev;
}

}  // namespace aic::failure
