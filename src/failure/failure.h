// Per-level exponential failure processes (Section III.A).
//
// Failures arrive as a Poisson process with total rate lambda = sum of the
// per-level rates; each arrival is a level-k failure with probability
// lambda_k / lambda. A level-k failure is recoverable only from a
// checkpoint of level >= k:
//   level 1 — transient fault: rerun on the same core, local data intact.
//   level 2 — partial/total node failure: local disk lost; recover from
//             the RAID-5 partner group (or above).
//   level 3 — catastrophic (node + partner group): only the remote file
//             system copy survives.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"

namespace aic::failure {

struct FailureSpec {
  std::array<double, 3> lambda{0.0, 0.0, 0.0};

  double total() const { return lambda[0] + lambda[1] + lambda[2]; }

  /// Splits a total rate into per-level rates with the Coastal shares
  /// (8.33% / 75% / 16.7%, see model/system_profile).
  static FailureSpec from_total(double total_lambda);
};

struct FailureEvent {
  double time = 0.0;  // absolute occurrence time
  int level = 0;      // 1..3
};

/// Samples the failure sequence for one simulated run.
class FailureInjector {
 public:
  FailureInjector(FailureSpec spec, Rng rng);

  /// Next failure strictly after `now`. With a zero total rate the event
  /// time is +infinity.
  FailureEvent next_after(double now);

  const FailureSpec& spec() const { return spec_; }

 private:
  FailureSpec spec_;
  Rng rng_;
};

}  // namespace aic::failure
