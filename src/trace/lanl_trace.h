// LANL usage-log substrate for the idle-core study (Section II.C, Table 1).
//
// The paper analyzes five years of job logs from five LANL systems [15]:
// each record carries submit/dispatch/end times and the node ids of every
// process. A *candidate job* is one where each of its processes always has
// one idle core available on its node throughout execution — those idle
// cores can host AIC's concurrent checkpointing without displacing anyone.
//
// We do not have the proprietary logs, so this module synthesizes
// statistically similar ones: Poisson arrivals, per-system job-width mixes
// (single-core sweeps, node-width multiples, full-machine heroics), and
// heavy-tailed durations, scheduled onto the system's cores FIFO by one of
// two policies:
//   PackedScheduler    — fills nodes completely (the production default
//                        that starves System 20 of idle cores), and
//   RectifiedScheduler — reserves one core per node when the job still
//                        fits, the paper's proposed tweak.
// The analyzer then computes the candidate fraction, reproducing Table 1's
// ordering: big-core systems have many candidates, 4-core/2-core clusters
// few, and the rectified scheduler recovers most of them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace aic::trace {

struct SystemConfig {
  int system_id = 0;
  std::string type;        // "NUMA" or "Cluster"
  int nodes = 1;
  int cores_per_node = 1;
  /// Workload mix: probability that a job requests whole nodes (processes
  /// = cores_per_node per node, the packing-hostile shape) vs scattered
  /// single processes.
  double full_node_job_fraction = 0.4;
  /// Mean number of jobs per synthetic day (drives utilization, which in
  /// turn decides how often the rectified scheduler's best-effort
  /// reservation is actually "available").
  double jobs_per_day = 40.0;
  /// Zipf decay of the whole-node job width (closer to 1 = wider jobs).
  double wide_decay = 0.6;
  /// Fraction of whole-node jobs that span the entire machine — these can
  /// never keep an idle core per node, with or without rectification
  /// (the unfixable population that keeps Table 1's systems 15/16/23 from
  /// improving under the rectified scheduler).
  double machine_filling_fraction = 0.0;
  /// Mean job duration in seconds (Pareto scale; tail capped at a week).
  double mean_duration = 3000.0;

  int total_cores() const { return nodes * cores_per_node; }
};

/// The five systems of Table 1, with workload mixes chosen to reflect each
/// machine's published character.
std::vector<SystemConfig> table1_systems();
SystemConfig system_by_id(int system_id);

struct JobRecord {
  std::uint64_t job_id = 0;
  double submit_time = 0.0;
  double dispatch_time = 0.0;
  double end_time = 0.0;
  /// processes per node actually placed: node -> process count.
  std::map<int, int> placement;

  int process_count() const;
  double runtime() const { return end_time - dispatch_time; }
};

enum class SchedulerPolicy {
  kPacked,     // fill nodes completely
  kRectified,  // keep one core per node free when the job still fits
};

struct TraceConfig {
  double days = 90.0;
  SchedulerPolicy policy = SchedulerPolicy::kPacked;
  std::uint64_t seed = 42;
};

/// Synthesizes a job log for a system: arrivals, FIFO dispatch respecting
/// core capacity under the chosen policy, and completion.
std::vector<JobRecord> generate_log(const SystemConfig& system,
                                    const TraceConfig& config);

struct CandidateStats {
  std::uint64_t jobs = 0;
  std::uint64_t candidates = 0;
  double fraction() const {
    return jobs ? double(candidates) / double(jobs) : 0.0;
  }
};

/// A job is a candidate iff, over its entire execution, every node hosting
/// one of its processes always retains at least one idle core (counting
/// all concurrently running jobs).
CandidateStats analyze_candidates(const std::vector<JobRecord>& log,
                                  const SystemConfig& system);

/// Per-job candidacy, aligned with `log` (flags[i] corresponds to log[i]).
/// analyze_candidates() is the aggregate over these flags; fleet job mixes
/// (workload/lanl_trace.h) use the flags to draw only the jobs that can
/// host AIC's concurrent checkpointing.
std::vector<bool> candidate_flags(const std::vector<JobRecord>& log,
                                  const SystemConfig& system);

}  // namespace aic::trace
