#include "trace/lanl_trace.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace aic::trace {
namespace {

constexpr double kSecondsPerDay = 86400.0;

struct PendingJob {
  std::uint64_t job_id;
  double submit_time;
  double duration;
  bool full_node;  // whole-node allocation shape
  int processes;
};

/// Mutable core occupancy during scheduling.
struct NodeState {
  int used = 0;
};

/// Tries to place `job` under `policy`; returns placement or empty map.
std::map<int, int> try_place(const PendingJob& job,
                             std::vector<NodeState>& nodes,
                             int cores_per_node, SchedulerPolicy policy) {
  // Per-node capacity under the policy. Rectified reserves one core per
  // node "if available": first try with the reservation; if the job cannot
  // fit that way, fall back to full packing (the reservation is
  // best-effort, not a hard guarantee).
  auto attempt = [&](int cap_per_node) -> std::map<int, int> {
    std::map<int, int> placement;
    int remaining = job.processes;
    if (job.full_node) {
      // Whole-node shape: fill nodes to cap, preferring empty nodes (the
      // production scheduler hands such jobs dedicated nodes).
      std::vector<int> order(nodes.size());
      for (std::size_t i = 0; i < nodes.size(); ++i) order[i] = int(i);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return nodes[a].used < nodes[b].used;
      });
      for (int n : order) {
        if (remaining <= 0) break;
        const int free_cap = cap_per_node - nodes[n].used;
        if (free_cap <= 0) continue;
        const int take = std::min(free_cap, remaining);
        placement[n] = take;
        remaining -= take;
      }
    } else {
      // Scattered shape: spread one process per node first (emptiest nodes
      // first), going a layer deeper only when the job is wider than one
      // process per node allows.
      std::vector<int> order(nodes.size());
      for (std::size_t i = 0; i < nodes.size(); ++i) order[i] = int(i);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return nodes[a].used < nodes[b].used;
      });
      for (int layer = 1; layer <= cap_per_node && remaining > 0; ++layer) {
        for (int n : order) {
          if (remaining <= 0) break;
          auto it = placement.find(n);
          const int have = it == placement.end() ? 0 : it->second;
          if (have >= layer) continue;
          if (cap_per_node - nodes[n].used - have <= 0) continue;
          placement[n] = have + 1;
          --remaining;
        }
      }
    }
    if (remaining > 0) return {};
    return placement;
  };

  std::map<int, int> placement;
  if (policy == SchedulerPolicy::kRectified && cores_per_node > 1) {
    placement = attempt(cores_per_node - 1);
  }
  if (placement.empty()) placement = attempt(cores_per_node);
  return placement;
}

}  // namespace

std::vector<SystemConfig> table1_systems() {
  // Workload mixes chosen per machine character: System 20's production
  // scheduler packed processes onto small subsets of 4-core nodes (the
  // paper's explanation for its 17%), System 8's 2-core nodes are trivially
  // filled by pairwise placement, the fat-node systems (23, 16, 15) mostly
  // run jobs far narrower than a node.
  return {
      // id, type, nodes, cores, full-node fraction, jobs/day, wide decay,
      // machine-filling fraction, mean duration
      {15, "NUMA", 1, 256, 0.50, 40.0, 0.97, 0.0, 40000.0},
      {20, "Cluster", 256, 4, 0.80, 35.0, 0.97, 0.75, 20000.0},
      {23, "Cluster", 5, 128, 0.25, 8.0, 0.6, 1.0, 20000.0},
      {8, "Cluster", 164, 2, 0.42, 15.0, 0.7, 0.45, 10000.0},
      {16, "Cluster", 16, 128, 0.62, 25.0, 0.9, 0.95, 30000.0},
  };
}

SystemConfig system_by_id(int system_id) {
  for (const auto& s : table1_systems()) {
    if (s.system_id == system_id) return s;
  }
  AIC_CHECK_MSG(false, "unknown LANL system id " << system_id);
  return {};
}

int JobRecord::process_count() const {
  int total = 0;
  for (const auto& [node, count] : placement) total += count;
  return total;
}

std::vector<JobRecord> generate_log(const SystemConfig& system,
                                    const TraceConfig& config) {
  AIC_CHECK(config.days > 0.0);
  Rng rng(config.seed ^ (std::uint64_t(system.system_id) << 32));

  // Arrival sequence.
  std::deque<PendingJob> arrivals;
  double t = 0.0;
  std::uint64_t next_id = 1;
  const double horizon = config.days * kSecondsPerDay;
  const double rate = system.jobs_per_day / kSecondsPerDay;
  while (true) {
    t += rng.exponential(rate);
    if (t >= horizon) break;
    PendingJob job;
    job.job_id = next_id++;
    job.submit_time = t;
    // Heavy-tailed runtimes: minutes to days.
    job.duration = std::min(rng.pareto(system.mean_duration / 5.0, 1.25),
                            7.0 * kSecondsPerDay);
    job.full_node = rng.bernoulli(system.full_node_job_fraction);
    if (job.full_node) {
      // Whole nodes: machine-filling heroics or a skewed node count.
      // Machine-filling runs are kept short (they monopolize the machine;
      // long ones would saturate the log out of proportion to their count).
      const bool filling = rng.bernoulli(system.machine_filling_fraction);
      const auto k =
          filling ? std::uint64_t(system.nodes)
                  : 1 + rng.zipf_like(std::uint64_t(system.nodes),
                                      system.wide_decay);
      if (filling) job.duration = std::min(job.duration, 0.35 * system.mean_duration);
      job.processes = int(k) * system.cores_per_node;
    } else {
      const auto max_procs =
          std::max<std::uint64_t>(1, std::uint64_t(system.total_cores()) / 2);
      job.processes = int(1 + rng.zipf_like(max_procs, system.wide_decay));
    }
    arrivals.push_back(job);
  }

  // FIFO dispatch over core capacity.
  std::vector<NodeState> nodes(std::size_t(system.nodes));
  std::vector<JobRecord> log;
  struct Running {
    double end_time;
    std::map<int, int> placement;
  };
  std::vector<Running> running;

  auto release_until = [&](double time) {
    for (auto it = running.begin(); it != running.end();) {
      if (it->end_time <= time) {
        for (const auto& [n, c] : it->placement) nodes[std::size_t(n)].used -= c;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  };

  double now = 0.0;
  while (!arrivals.empty()) {
    PendingJob job = arrivals.front();
    arrivals.pop_front();
    now = std::max(now, job.submit_time);
    release_until(now);
    std::map<int, int> placement =
        try_place(job, nodes, system.cores_per_node, config.policy);
    while (placement.empty()) {
      // FIFO head-of-line blocking: wait for the next completion.
      double next_end = -1.0;
      for (const auto& r : running)
        if (next_end < 0.0 || r.end_time < next_end) next_end = r.end_time;
      AIC_CHECK_MSG(next_end >= 0.0,
                    "job " << job.job_id << " can never be placed");
      now = next_end;
      release_until(now);
      placement = try_place(job, nodes, system.cores_per_node, config.policy);
    }
    for (const auto& [n, c] : placement) nodes[std::size_t(n)].used += c;
    JobRecord rec;
    rec.job_id = job.job_id;
    rec.submit_time = job.submit_time;
    rec.dispatch_time = now;
    rec.end_time = now + job.duration;
    rec.placement = placement;
    running.push_back({rec.end_time, placement});
    log.push_back(std::move(rec));
  }
  std::sort(log.begin(), log.end(), [](const JobRecord& a, const JobRecord& b) {
    return a.dispatch_time < b.dispatch_time;
  });
  return log;
}

std::vector<bool> candidate_flags(const std::vector<JobRecord>& log,
                                  const SystemConfig& system) {
  // Per-node usage step functions: sorted (time, delta) -> prefix levels.
  struct Event {
    double time;
    int delta;
  };
  std::vector<std::vector<Event>> events(std::size_t(system.nodes));
  for (const JobRecord& job : log) {
    for (const auto& [n, c] : job.placement) {
      events[std::size_t(n)].push_back({job.dispatch_time, c});
      events[std::size_t(n)].push_back({job.end_time, -c});
    }
  }
  struct Level {
    double time;
    int usage;
  };
  std::vector<std::vector<Level>> levels(std::size_t(system.nodes));
  for (std::size_t n = 0; n < events.size(); ++n) {
    auto& ev = events[n];
    std::sort(ev.begin(), ev.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // releases before acquisitions at a tie
    });
    int usage = 0;
    for (const Event& e : ev) {
      usage += e.delta;
      levels[n].push_back({e.time, usage});
    }
  }

  auto max_usage_in = [&](std::size_t n, double start, double end) {
    const auto& lv = levels[n];
    // Usage level at `start`: last event at time <= start.
    int peak = 0;
    // Find first index with time > start (level before it applies at start).
    std::size_t lo = 0, hi = lv.size();
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (lv[mid].time <= start) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) peak = lv[lo - 1].usage;
    for (std::size_t i = lo; i < lv.size() && lv[i].time < end; ++i)
      peak = std::max(peak, lv[i].usage);
    return peak;
  };

  std::vector<bool> flags;
  flags.reserve(log.size());
  for (const JobRecord& job : log) {
    bool candidate = true;
    for (const auto& [n, c] : job.placement) {
      if (max_usage_in(std::size_t(n), job.dispatch_time, job.end_time) >
          system.cores_per_node - 1) {
        candidate = false;
        break;
      }
    }
    flags.push_back(candidate);
  }
  return flags;
}

CandidateStats analyze_candidates(const std::vector<JobRecord>& log,
                                  const SystemConfig& system) {
  CandidateStats stats;
  stats.jobs = log.size();
  for (const bool flag : candidate_flags(log, system)) {
    stats.candidates += flag;
  }
  return stats;
}

}  // namespace aic::trace
