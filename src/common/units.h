// Units and conversion constants shared across the library.
//
// Convention: all simulated time is in seconds (double), all data sizes in
// bytes (std::uint64_t), all bandwidths in bytes/second (double). Helper
// constants make call sites read like the paper ("483 GB/s", "2 MB/s").
#pragma once

#include <cstdint>

namespace aic {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Page size used throughout (matches the paper's testbed: 4096 bytes).
inline constexpr std::uint64_t kPageSize = 4096ULL;

/// Decimal storage/bandwidth units (the paper quotes GB/s, MB/s decimal).
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

constexpr double mib_to_bytes(double mib) { return mib * double(kMiB); }
constexpr double bytes_to_mib(double bytes) { return bytes / double(kMiB); }

}  // namespace aic
