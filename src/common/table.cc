#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace aic {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  AIC_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(int(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  os.flush();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  os << "# csv: " << title_ << "\n";
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  os.flush();
}

}  // namespace aic
