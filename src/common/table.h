// Plain-text table rendering for benchmark harness output.
//
// Every bench/ binary reproduces one of the paper's tables or figures and
// prints it as an aligned ASCII table plus (optionally) a CSV block that is
// easy to plot; this helper keeps that output uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aic {

/// Column-aligned text table with a title and optional CSV emission.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  /// Renders the aligned table.
  void print(std::ostream& os) const;
  /// Renders a machine-readable CSV block (comma separated, no alignment).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aic
