// Streaming and batch statistics used throughout the library: Welford
// running moments, percentiles, and simple aggregation for experiment
// reports.
#pragma once

#include <cstddef>
#include <vector>

namespace aic {

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * double(n_) : 0.0; }

  /// Half-width of the ~95% confidence interval of the mean.
  double ci95_halfwidth() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than 2 samples.
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 1]. Input need not be sorted.
double percentile_of(std::vector<double> xs, double q);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double correlation_of(const std::vector<double>& xs,
                      const std::vector<double>& ys);

}  // namespace aic
