#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace aic {

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  AIC_CHECK(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = __uint128_t(x) * __uint128_t(n);
  std::uint64_t l = std::uint64_t(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = __uint128_t(x) * __uint128_t(n);
      l = std::uint64_t(m);
    }
  }
  return std::uint64_t(m >> 64);
}

double Rng::exponential(double lambda) {
  AIC_CHECK(lambda > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal() {
  double u1 = 1.0 - uniform();  // (0, 1]
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::poisson(double mean) {
  AIC_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for trace
  // synthesis where mean is large.
  double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : std::uint64_t(v + 0.5);
}

double Rng::pareto(double xm, double alpha) {
  AIC_CHECK(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - uniform();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf_like(std::uint64_t n, double decay) {
  AIC_CHECK(n > 0);
  AIC_CHECK(decay > 0.0 && decay < 1.0);
  // Truncated geometric: index k with weight decay^k, renormalized to [0,n).
  double u = uniform();
  double total = (1.0 - std::pow(decay, double(n))) / (1.0 - decay);
  double acc = 0.0;
  double w = 1.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += w / total;
    if (u < acc) return k;
    w *= decay;
  }
  return n - 1;
}

}  // namespace aic
