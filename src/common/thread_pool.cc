#include "common/thread_pool.h"

#include <utility>

namespace aic::common {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

unsigned ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace aic::common
