#include "common/linalg.h"

#include <cmath>

#include "common/check.h"

namespace aic {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  AIC_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  return out;
}

bool solve_linear(Matrix a, std::vector<double> b, std::vector<double>& x) {
  const std::size_t n = a.rows();
  AIC_CHECK(a.cols() == n && b.size() == n);
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * x[c];
    x[ri] = s / a(ri, ri);
  }
  return true;
}

bool least_squares(const Matrix& x, const std::vector<double>& y,
                   std::vector<double>& beta, double ridge) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  AIC_CHECK(y.size() == n);
  // Normal equations: (X'X + ridge*I) beta = X'y.
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a2 = 0; a2 < p; ++a2) {
      const double xa = x(i, a2);
      if (xa == 0.0) continue;
      xty[a2] += xa * y[i];
      for (std::size_t b2 = a2; b2 < p; ++b2) xtx(a2, b2) += xa * x(i, b2);
    }
  }
  for (std::size_t a2 = 0; a2 < p; ++a2) {
    xtx(a2, a2) += ridge;
    for (std::size_t b2 = 0; b2 < a2; ++b2) xtx(a2, b2) = xtx(b2, a2);
  }
  return solve_linear(xtx, xty, beta);
}

double residual_sum_squares(const Matrix& x, const std::vector<double>& y,
                            const std::vector<double>& beta) {
  AIC_CHECK(x.rows() == y.size() && x.cols() == beta.size());
  double rss = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) pred += x(i, j) * beta[j];
    const double r = y[i] - pred;
    rss += r * r;
  }
  return rss;
}

}  // namespace aic
