#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aic {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double d = x - mean_;
  mean_ += d / double(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(double(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double d = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  m2_ += other.m2_ + d * d * double(n_) * double(other.n_) / double(n);
  mean_ += d * double(other.n_) / double(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / double(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / double(xs.size() - 1));
}

double percentile_of(std::vector<double> xs, double q) {
  AIC_CHECK(q >= 0.0 && q <= 1.0);
  AIC_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const double idx = q * double(xs.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - double(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double correlation_of(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  AIC_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace aic
