// Lightweight invariant checking for the aic library.
//
// AIC_CHECK is active in all build types: the library models checkpointing
// correctness, so silent invariant violations would invalidate every result
// computed downstream. Failures throw aic::CheckError with the failing
// expression and location, which tests can assert on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aic {

/// Thrown when an AIC_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace aic

#define AIC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::aic::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AIC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream aic_check_os_;                              \
      aic_check_os_ << msg;                                          \
      ::aic::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  aic_check_os_.str());              \
    }                                                                \
  } while (0)
