// Clang -Wthread-safety annotation macros, no-ops everywhere else.
//
// The analysis proves lock discipline at compile time: a member declared
// AIC_GUARDED_BY(mutex_) may only be touched while mutex_ is held, and a
// function declared AIC_REQUIRES(mutex_) may only be called with it held.
// GCC accepts the code unannotated (the macros expand to nothing), so the
// annotations are free documentation there and a checked contract under
// clang.
//
// Gating: clang's analysis only understands std::mutex / std::lock_guard
// when the standard library itself is annotated. libc++ is (behind
// _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS); libstdc++ is not — enabling
// the attributes against libstdc++ would flag every correctly-locked
// access as unguarded. So the attributes expand only when the active
// standard library advertises annotated mutex types, or when the build
// forces them on (-DAIC_FORCE_THREAD_ANNOTATIONS with an annotated mutex).
#pragma once

#include <version>

#if defined(AIC_FORCE_THREAD_ANNOTATIONS) ||      \
    (defined(__clang__) &&                        \
     defined(_LIBCPP_HAS_THREAD_SAFETY_ANNOTATIONS))
#define AIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AIC_THREAD_ANNOTATION(x)
#endif

/// Member access requires holding the named mutex.
#define AIC_GUARDED_BY(x) AIC_THREAD_ANNOTATION(guarded_by(x))
/// Pointee access (not the pointer itself) requires the named mutex.
#define AIC_PT_GUARDED_BY(x) AIC_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the named mutex(es) around this function.
#define AIC_REQUIRES(...) \
  AIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires / releases the named mutex(es).
#define AIC_ACQUIRE(...) AIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AIC_RELEASE(...) AIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Caller must NOT hold the named mutex(es) (deadlock prevention).
#define AIC_EXCLUDES(...) AIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; justify at the site.
#define AIC_NO_THREAD_SAFETY_ANALYSIS \
  AIC_THREAD_ANNOTATION(no_thread_safety_analysis)
