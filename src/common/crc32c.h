// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) over
// byte spans — the checksum guarding checkpoint record bodies on disk
// (ckpt/checkpoint_file.h, format v2).
//
// CRC-32C is the conventional storage-integrity polynomial (iSCSI, ext4,
// Btrfs): its error-detection properties on short-to-medium records are
// well characterized, and every single-bit, double-bit, and burst error up
// to 32 bits in a checkpoint record is guaranteed to change the checksum.
// The implementation is a portable slice-by-8 table walk — no SSE4.2
// dependency, so the on-disk format verifies identically on any host.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace aic {

/// CRC-32C of `data`, with the standard init/xor-out (0xFFFFFFFF both).
std::uint32_t crc32c(ByteSpan data);

/// Streaming form: feed `crc32c_update` successive chunks starting from
/// `kCrc32cInit`, then finalize. crc32c(x) == crc32c_finalize(
/// crc32c_update(kCrc32cInit, x)).
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;
std::uint32_t crc32c_update(std::uint32_t state, ByteSpan data);
inline std::uint32_t crc32c_finalize(std::uint32_t state) { return ~state; }

}  // namespace aic
