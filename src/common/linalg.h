// Small dense linear algebra: just enough for the Markov chain expected-time
// solver (Gaussian elimination with partial pivoting) and least-squares fits
// for the stepwise/online regression predictor.
//
// Sizes are tiny (tens of states, <= 4 regression terms) so a simple O(n^3)
// dense solver is the right tool; no external BLAS dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace aic {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns false (and leaves x unspecified) if A is singular to working
/// precision.
bool solve_linear(Matrix a, std::vector<double> b, std::vector<double>& x);

/// Ordinary least squares: finds beta minimizing ||X beta - y||^2 via the
/// normal equations with a tiny ridge term for numerical safety.
/// X is n-by-p (n samples, p features). Returns false if the system is
/// degenerate even with the ridge.
bool least_squares(const Matrix& x, const std::vector<double>& y,
                   std::vector<double>& beta, double ridge = 1e-9);

/// Residual sum of squares of a fitted linear model.
double residual_sum_squares(const Matrix& x, const std::vector<double>& y,
                            const std::vector<double>& beta);

}  // namespace aic
