// Deterministic pseudo-random number generation for workloads, failure
// injection, and trace synthesis.
//
// All stochastic components of the library take an explicit Rng so that
// every experiment is reproducible from a seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, high quality, and
// identical across platforms (unlike std::mt19937 distributions, whose
// std::*_distribution outputs are implementation-defined — we implement the
// distributions ourselves).
#pragma once

#include <cstdint>
#include <limits>

namespace aic {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — the library-wide PRNG. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8badf00d) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return double((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + std::int64_t(uniform_u64(std::uint64_t(hi - lo) + 1));
  }

  /// Exponential with rate lambda (mean 1/lambda). lambda must be > 0.
  double exponential(double lambda);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson with mean `mean` (Knuth for small means, normal approx above).
  std::uint64_t poisson(double mean);

  /// Pareto (power-law) sample with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Geometric-like integer in [0, n): probability decays by `decay` per
  /// step. Used to bias page selection toward "hot" regions.
  std::uint64_t zipf_like(std::uint64_t n, double decay);

  /// Derive an independent child generator (for per-trial streams).
  Rng fork() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace aic
