// Minimal fixed-size thread pool for the concurrent checkpointing core.
//
// The paper dedicates spare cores to checkpointing work (Section II.C's
// idle-core study); this pool is the repo's stand-in for those cores. It is
// built for the delta-compression pipeline's usage pattern: a long-lived
// pool owned by one compressor, fed a burst of shard-encode tasks per
// checkpoint, then drained with wait_idle() before the merged payload is
// assembled. Threads are created once and reused across checkpoints so the
// per-checkpoint cost is task dispatch, not thread spawn.
//
// Thread-safety: run() and wait_idle() may be called from any thread, but
// the intended protocol is a single producer enqueueing a batch and then
// waiting; wait_idle() returns once *all* queued tasks (from any producer)
// have finished. Tasks must not throw — wrap fallible work and carry
// errors out via captured state (see ParallelPageCompressor).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace aic::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some pool thread.
  void run(std::function<void()> task);

  /// Blocks until every task enqueued so far has completed.
  void wait_idle();

  unsigned size() const { return unsigned(threads_.size()); }

  /// Worker count modeling "all cores but the application's":
  /// hardware_concurrency() - 1, clamped to at least 1.
  static unsigned default_workers();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals wait_idle: pending_ hit zero
  std::deque<std::function<void()>> queue_ AIC_GUARDED_BY(mutex_);
  std::size_t pending_ AIC_GUARDED_BY(mutex_) = 0;  // queued + running tasks
  bool stop_ AIC_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;  // written only in ctor, joined in dtor
};

}  // namespace aic::common
