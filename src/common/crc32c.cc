#include "common/crc32c.h"

#include <array>

namespace aic {
namespace {

// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// 8 slice tables, built once at first use (constexpr-buildable, but the
// 8 KiB of tables as a function-local static keeps the binary small and
// the header free of machinery).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, ByteSpan data) {
  const auto& t = tables().t;
  std::size_t i = 0;
  // Slice-by-8 over the aligned middle.
  while (i + 8 <= data.size()) {
    std::uint32_t lo;
    std::memcpy(&lo, data.data() + i, 4);
    lo ^= state;
    std::uint32_t hi;
    std::memcpy(&hi, data.data() + i + 4, 4);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
    i += 8;
  }
  for (; i < data.size(); ++i)
    state = t[0][(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32c(ByteSpan data) {
  return crc32c_finalize(crc32c_update(kCrc32cInit, data));
}

}  // namespace aic
