// Byte-stream serialization: LEB128 varints and little-endian fixed-width
// integers over growable byte buffers.
//
// Used by the delta instruction stream (delta/) and the checkpoint file
// format (ckpt/). All multi-byte integers are stored little-endian so the
// formats are deterministic and portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace aic {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Appends encoded values to a Bytes buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) { fixed(v, 2); }
  void u32(std::uint32_t v) { fixed(v, 4); }
  void u64(std::uint64_t v) { fixed(v, 8); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(std::uint8_t(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(std::uint8_t(v));
  }

  void raw(ByteSpan data) { out_.insert(out_.end(), data.begin(), data.end()); }

  std::size_t size() const { return out_.size(); }

 private:
  void fixed(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  Bytes& out_;
};

/// Aliasing-checked copy for ranges that must not overlap. In-place
/// reconstruction paths use std::memmove for intentional overlap; every
/// other bulk copy in delta/ and ckpt/ goes through here so the L6 lint
/// rule can forbid raw memcpy on those layers outright.
inline void copy_no_overlap(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n) {
  if (n == 0) return;
  const auto d = reinterpret_cast<std::uintptr_t>(dst);
  const auto s = reinterpret_cast<std::uintptr_t>(src);
  AIC_CHECK_MSG(d + n <= s || s + n <= d, "copy_no_overlap: ranges overlap");
  std::memcpy(dst, src, n);
}

/// Reads encoded values from a byte span; bounds-checked via AIC_CHECK.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() {
    AIC_CHECK_MSG(pos_ < data_.size(), "byte stream underrun");
    return data_[pos_++];
  }

  std::uint16_t u16() { return std::uint16_t(fixed(2)); }
  std::uint32_t u32() { return std::uint32_t(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      AIC_CHECK_MSG(shift < 64, "varint overlong");
      std::uint8_t b = u8();
      v |= std::uint64_t(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  ByteSpan raw(std::size_t n) {
    // n comes from untrusted length fields: compare against the bytes
    // left rather than pos_ + n, which a hostile 2^63 length would wrap.
    AIC_CHECK_MSG(n <= data_.size() - pos_, "byte stream underrun");
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  std::uint64_t fixed(int n) {
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= std::uint64_t(u8()) << (8 * i);
    return v;
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace aic
