#include "control/coordinated.h"

#include <algorithm>
#include <cmath>

#include "ckpt/checkpointer.h"
#include "common/check.h"
#include "model/optimizer.h"
#include "predictor/hot_page_sampler.h"

namespace aic::control {
namespace {

using model::IntervalParams;

/// One MPI rank's local state.
struct Rank {
  std::unique_ptr<workload::SyntheticWorkload> wl;
  mem::AddressSpace space;
  std::unique_ptr<predictor::HotPageSampler> sampler;
  ckpt::CheckpointChain chain;
};

double cycle_length(const workload::WorkloadProfile& profile) {
  double total = 0.0;
  for (const auto& p : profile.phases) total += p.duration;
  return total;
}

/// Job-wide latency estimate: every rank writes its local checkpoint and
/// ships its delta in parallel; the coordinated barrier completes at the
/// slowest rank, so each c_k aggregates by max.
IntervalParams aggregate_estimate(const std::vector<Rank>& ranks,
                                  const CostModel& costs) {
  IntervalParams job{};
  for (const Rank& r : ranks) {
    const double dirty_bytes =
        double(r.space.dirty_page_count()) * double(kPageSize);
    const auto jd_di = r.sampler->compute(r.space);
    const double jd = jd_di.ok ? jd_di.mean_jd : 1.0;
    const double ds = dirty_bytes * std::max(jd, 0.02);
    const double dl = 2.5 * dirty_bytes / costs.compress_bps;
    const double c1 = dirty_bytes / costs.local_bps;
    job.c1 = std::max(job.c1, c1);
    job.c2 = std::max(job.c2, c1 + dl + ds / costs.b2_bps);
    job.c3 = std::max(job.c3, c1 + dl + ds / costs.b3_bps);
  }
  job.r1 = job.c1;
  job.r2 = job.c2;
  job.r3 = job.c3;
  return job;
}

}  // namespace

CoordinatedResult run_coordinated(Scheme scheme,
                                  workload::SpecBenchmark benchmark,
                                  const CoordinatedConfig& config) {
  AIC_CHECK_MSG(scheme != Scheme::kMoody,
                "coordinated runs compare adaptive vs static");
  AIC_CHECK(config.processes >= 1);

  const ExperimentConfig& base = config.base;
  // Any rank's failure kills the job: the job-level rates scale with N.
  model::SystemProfile sys = base.system;
  for (auto& l : sys.lambda) l *= double(config.processes);

  // Build the staggered ranks.
  std::vector<Rank> ranks(std::size_t(config.processes));
  const auto proto = workload::spec_profile(benchmark, base.workload_scale);
  const double cycle = cycle_length(proto);
  for (int r = 0; r < config.processes; ++r) {
    auto profile = proto;
    profile.seed ^= std::uint64_t(r) * 0x9E3779B97F4A7C15ULL;
    profile.phase_shift =
        cycle * config.stagger_fraction * double(r) / config.processes;
    auto& rank = ranks[std::size_t(r)];
    rank.wl = std::make_unique<workload::SyntheticWorkload>(profile);
    rank.wl->initialize(rank.space);
    rank.sampler =
        std::make_unique<predictor::HotPageSampler>(base.sampler);
  }
  // Wire the fault observers (shared virtual clock).
  double now = 0.0;
  for (auto& rank : ranks) {
    auto* sampler = rank.sampler.get();
    auto* space = &rank.space;
    rank.space.set_fault_observer([sampler, space, &now](mem::PageId id) {
      sampler->on_fault(id, now, space->page_bytes(id));
    });
  }

  // Staged initial fulls everywhere.
  IntervalParams prev{};
  for (auto& rank : ranks) {
    auto st = rank.chain.capture(rank.space, rank.wl->cpu_state(), 0.0);
    const auto full = base.costs.raw_params(st.uncompressed_bytes);
    prev.c1 = std::max(prev.c1, full.c1);
    prev.r1 = std::max(prev.r1, full.r1);
    prev.r2 = std::max(prev.r2, full.r2);
    prev.r3 = std::max(prev.r3, full.r3);
    rank.space.protect_all();
    rank.sampler->reset_interval();
  }
  prev.c2 = prev.c1;
  prev.c3 = prev.c1;

  // SIC: one static span from the estimate at a probe point.
  double w_static = 0.0;
  if (scheme == Scheme::kSic) {
    // Probe pass on copies is expensive; estimate from a short dry segment
    // of rank 0's profile via the adaptive model at mid-run conditions.
    // Use the offline optimum for the aggregate estimate after a warmup
    // interval of one cycle.
    CoordinatedConfig probe_cfg = config;
    (void)probe_cfg;
    // Cheap approximation: run one cycle, take the aggregate estimate.
    std::vector<Rank> probe(1);
    auto profile = proto;
    probe[0].wl = std::make_unique<workload::SyntheticWorkload>(profile);
    probe[0].wl->initialize(probe[0].space);
    probe[0].sampler =
        std::make_unique<predictor::HotPageSampler>(base.sampler);
    probe[0].space.protect_all();
    probe[0].wl->step(probe[0].space, cycle);
    const auto est = aggregate_estimate(probe, base.costs);
    const auto best = model::minimize_scalar(
        [&](double w) { return model::net2_adaptive(sys, w, est, est); },
        base.min_w, base.max_w, 24, 40);
    w_static = best.x;
  }

  CoordinatedResult result;
  result.scheme = scheme;
  result.workload = proto.name;
  result.processes = config.processes;
  result.base_time = proto.base_time;

  double interval_start = 0.0;
  double core_free_at = 0.0;
  double total_expected = 0.0;
  double total_work = 0.0;
  double total_delta = 0.0;
  std::vector<double> c3_window;
  double prev_c3 = -1.0;
  int decline_streak = 0;

  auto finished = [&] {
    for (auto& rank : ranks)
      if (!rank.wl->finished()) return false;
    return true;
  };

  while (!finished()) {
    for (auto& rank : ranks) rank.wl->step(rank.space, base.decision_period);
    now += base.decision_period;
    const double elapsed = now - interval_start;

    const IntervalParams cur = aggregate_estimate(ranks, base.costs);
    bool take = false;
    if (scheme == Scheme::kSic) {
      take = elapsed >= w_static;
    } else {
      auto objective = [&](double w) {
        return model::net2_adaptive(sys, w, cur, prev);
      };
      const auto best = model::extreme_value_minimum(
          objective, base.min_w, base.max_w, std::max(elapsed, base.min_w));

      c3_window.push_back(cur.c3);
      if (c3_window.size() > 40) c3_window.erase(c3_window.begin());
      const double wmin =
          *std::min_element(c3_window.begin(), c3_window.end());
      double wmean = 0.0;
      for (double v : c3_window) wmean += v;
      wmean /= double(c3_window.size());
      const bool upturn =
          decline_streak >= 3 && prev_c3 >= 0.0 && cur.c3 > prev_c3;
      if (prev_c3 >= 0.0 && cur.c3 < prev_c3) {
        ++decline_streak;
      } else if (cur.c3 > prev_c3) {
        decline_streak = 0;
      }
      prev_c3 = cur.c3;
      const bool at_dip =
          cur.c3 <= 1.1 * wmin || cur.c3 <= 0.7 * wmean || upturn;
      const bool starved = elapsed > 3.0 * best.x;
      take = best.x <= elapsed && (at_dip || starved);
    }
    take = take && now >= core_free_at - 1e-9;

    if (take && !finished()) {
      // Coordinated capture: every rank checkpoints at the barrier; the
      // realized job latency aggregates by max, delta bytes by sum.
      IntervalParams measured{};
      double job_delta = 0.0;
      for (auto& rank : ranks) {
        auto st =
            rank.chain.capture(rank.space, rank.wl->cpu_state(), now);
        const auto p = base.costs.delta_params(
            st.uncompressed_bytes, st.file_bytes, st.delta_work_units);
        measured.c1 = std::max(measured.c1, p.c1);
        measured.c2 = std::max(measured.c2, p.c2);
        measured.c3 = std::max(measured.c3, p.c3);
        job_delta += double(st.file_bytes);
        rank.space.protect_all();
        rank.sampler->adapt();
        rank.sampler->reset_interval();
      }
      measured.r1 = measured.c1;
      measured.r2 = measured.c2;
      measured.r3 = measured.c3;

      const double w = std::max(elapsed, 1e-6);
      total_expected +=
          model::expected_interval_time_adaptive(sys, w, measured, prev);
      total_work += model::interval_work_adaptive(sys, w, measured);
      total_delta += job_delta;
      ++result.checkpoints;
      core_free_at = now + (measured.c3 - measured.c1);
      interval_start = now;
      prev = measured;
    }
  }
  const double tail = now - interval_start;
  total_expected += model::expected_tail_time(sys, tail, prev);
  total_work += tail;
  result.net2 = total_work > 0 ? total_expected / total_work : 1.0;
  result.mean_delta_bytes =
      result.checkpoints ? total_delta / double(result.checkpoints) : 0.0;
  return result;
}

}  // namespace aic::control
