// Coordinated (MPI-style) adaptive checkpointing — the extension the paper
// defers ("AIC for MPI tasks requires tracking similarity degrees of all
// MPI processes for coordinated checkpointing ... will be treated in a
// separate article").
//
// An MPI job's processes must checkpoint together (a coordinated protocol
// drains in-flight messages, the paper's c1 includes that barrier), and a
// failure of ANY process kills the whole job — so the job-level failure
// rate scales with the rank count. The adaptive decision must therefore be
// global: this implementation aggregates every rank's lightweight metrics
// and fires only when the *job-wide* predicted checkpoint cost is at a dip.
//
// The interesting dynamics, and the reason the paper deferred this: ranks
// whose phases are staggered do not reach their cheap moments together, so
// the aggregate dip is shallower than any single rank's — adaptivity buys
// less as the stagger grows. run_coordinated() exposes exactly that knob.
#pragma once

#include <memory>
#include <vector>

#include "control/experiment.h"

namespace aic::control {

struct CoordinatedConfig {
  ExperimentConfig base;
  /// Number of ranks in the job.
  int processes = 4;
  /// Phase stagger between consecutive ranks, as a fraction of the
  /// workload's phase-cycle length (0 = perfectly aligned ranks).
  double stagger_fraction = 0.0;
};

struct CoordinatedResult {
  Scheme scheme{};
  std::string workload;
  int processes = 0;
  double base_time = 0.0;
  double net2 = 0.0;
  std::size_t checkpoints = 0;
  /// Mean aggregate delta bytes per coordinated checkpoint.
  double mean_delta_bytes = 0.0;
};

/// Runs a coordinated job under the adaptive (kAic) or static (kSic)
/// decision rule. Moody is not meaningful here (its schedule is already
/// global); passing it is an error.
CoordinatedResult run_coordinated(Scheme scheme,
                                  workload::SpecBenchmark benchmark,
                                  const CoordinatedConfig& config);

}  // namespace aic::control
