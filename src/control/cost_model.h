// Converts measured checkpoint artifacts into the latency variables of the
// paper's models (Section IV.D / V.A).
//
// From a captured incremental checkpoint we know: the uncompressed content
// size (what the local L1 write moves), the compressed delta size ds, and
// the deterministic compressor effort in work units. The cost model turns
// those into seconds:
//   c1 = uncompressed_bytes / local_bps          (blocking local write)
//   dl = work_units / compress_bps               (delta latency, ckpt core)
//   c2 = c1 + dl + ds / b2_bps                   (RAID-group landing time)
//   c3 = c1 + dl + ds / b3_bps                   (remote-store landing time)
// and r_k = c_k, as the paper assumes. The L2/L3 transfers overlap on the
// checkpointing core's NICs; with B3 << B2, c3 dominates, matching the
// paper's c3 = ds/B3 accounting.
//
// Bandwidths default to the Coastal cluster figures (B2 = 483 GB/s
// aggregate, B3 = 2 MB/s per node). Using deterministic work units rather
// than wall-clock keeps every experiment reproducible across hosts; the
// micro-benchmarks measure the real wall-clock separately.
#pragma once

#include <cstdint>

#include "ckpt/checkpointer.h"
#include "common/units.h"
#include "model/interval_models.h"

namespace aic::control {

struct CostModel {
  double local_bps = 100.0 * kMB;     // L1: node-local disk
  double compress_bps = 400.0 * kMB;  // delta compressor (work units/s)
  double b2_bps = 483.0 * kGB;        // L2: RAID-5 partner group (aggregate)
  double b3_bps = 2.0 * kMB;          // L3: remote FS share per node
  /// Computation-core cost of one decider evaluation (prediction + NR).
  double decision_seconds = 200e-6;
  /// JD/DI cost per sampled page (paper: < 100 us).
  double metric_seconds_per_page = 50e-6;

  /// Latency variables for a delta-compressed incremental checkpoint.
  model::IntervalParams delta_params(std::uint64_t uncompressed_bytes,
                                     std::uint64_t delta_bytes,
                                     std::uint64_t work_units) const {
    model::IntervalParams p;
    p.c1 = double(uncompressed_bytes) / local_bps;
    const double dl = double(work_units) / compress_bps;
    p.c2 = p.c1 + dl + double(delta_bytes) / b2_bps;
    p.c3 = p.c1 + dl + double(delta_bytes) / b3_bps;
    p.r1 = p.c1;
    p.r2 = p.c2;
    p.r3 = p.c3;
    return p;
  }

  /// Latency variables for an uncompressed (full or raw-incremental)
  /// checkpoint of the given size.
  model::IntervalParams raw_params(std::uint64_t bytes) const {
    model::IntervalParams p;
    p.c1 = double(bytes) / local_bps;
    p.c2 = p.c1 + double(bytes) / b2_bps;
    p.c3 = p.c1 + double(bytes) / b3_bps;
    p.r1 = p.c1;
    p.r2 = p.c2;
    p.r3 = p.c3;
    return p;
  }

  double delta_latency(std::uint64_t work_units) const {
    return double(work_units) / compress_bps;
  }

  /// System-size scaling for RMS applications (Section V.C): only the
  /// per-node remote bandwidth shrinks as the system grows.
  CostModel scaled_rms(double s) const {
    CostModel m = *this;
    m.b3_bps /= s;
    return m;
  }

  /// Rescales every bandwidth so that a process of `footprint_bytes`
  /// reproduces the paper's time constants for its 1 GiB benchmarks
  /// (c1 around half a second, delta latencies from tens of milliseconds
  /// for sphinx3 to ~50 s for milc/lbm, c3 in the tens-to-hundreds of
  /// seconds at B3 = 2 MB/s). Our synthetic footprints are megabytes, not
  /// a gigabyte, so without this the checkpoint costs would be negligible
  /// against the paper's failure rates and every scheme would look alike.
  static CostModel paper_scaled(std::uint64_t footprint_bytes) {
    const double ratio = double(footprint_bytes) / double(kGiB);
    CostModel m;
    m.local_bps = 2.0 * kGB * ratio;    // paper: c1 = 0.5 s for ~1 GiB
    m.compress_bps = 50.0 * kMB * ratio;  // single-core Xdelta3-PA class
    m.b2_bps = 483.0 * kGB * ratio;
    m.b3_bps = 2.0 * kMB * ratio;
    return m;
  }
};

}  // namespace aic::control
